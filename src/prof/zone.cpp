#include "prof/zone.hpp"

#if defined(WFS_PROF_ZONES)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wfs::prof {

namespace {

ZoneStats*& registryHead() {
  static ZoneStats* head = nullptr;
  return head;
}

struct DumpAtExit {
  ~DumpAtExit() {
    // Quiet unless the operator asked for output: an instrumented binary is
    // often run under a harness that parses stdout/stderr.
    const char* env = std::getenv("WFS_PROF_ZONES");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
      dumpZones();
    }
  }
};

}  // namespace

ZoneStats& registerZone(const char* name) {
  // Zones register from function-local statics on first execution; the
  // simulator is single-threaded per world and registration is idempotent
  // per call site, so a plain intrusive push suffices.
  static DumpAtExit dumper;
  auto* z = new ZoneStats{};
  z->name = name;
  z->next = registryHead();
  registryHead() = z;
  return *z;
}

void dumpZones() {
  std::vector<const ZoneStats*> rows;
  for (const ZoneStats* z = registryHead(); z != nullptr; z = z->next) rows.push_back(z);
  std::sort(rows.begin(), rows.end(),
            [](const ZoneStats* a, const ZoneStats* b) { return a->nanos > b->nanos; });
  std::fprintf(stderr, "wfprof zones (%zu):\n", rows.size());
  for (const ZoneStats* z : rows) {
    const double ms = static_cast<double>(z->nanos) / 1e6;
    const double per = z->calls > 0 ? static_cast<double>(z->nanos) /
                                          static_cast<double>(z->calls)
                                    : 0.0;
    std::fprintf(stderr, "  %-24s %12llu calls %12.3f ms %9.1f ns/call\n", z->name,
                 static_cast<unsigned long long>(z->calls), ms, per);
  }
}

}  // namespace wfs::prof

#endif  // WFS_PROF_ZONES
