#pragma once

#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace wfs::prof {

/// Per-task execution record, equivalent to what the paper's ptrace-based
/// `wfprof` tool collects for every task of a workflow (§II).
struct TaskTrace {
  int jobId = -1;
  std::string transformation;
  int node = -1;
  double startSeconds = 0.0;
  double endSeconds = 0.0;
  double cpuSeconds = 0.0;
  double ioSeconds = 0.0;
  Bytes bytesRead = 0;
  Bytes bytesWritten = 0;
  Bytes peakMemory = 0;

  [[nodiscard]] double runtime() const { return endSeconds - startSeconds; }
};

enum class UsageLevel { kLow, kMedium, kHigh };

[[nodiscard]] const char* toString(UsageLevel level);

/// Aggregated application resource-usage profile; regenerates Table I.
struct AppProfile {
  double totalTaskRuntime = 0.0;  // sum of task wall-clock runtimes
  double cpuFraction = 0.0;       // CPU time / task runtime
  double ioFraction = 0.0;        // I/O wait / task runtime
  /// Share of task runtime spent in tasks needing > 1 GB resident memory
  /// (the paper's memory-limited criterion for Broadband).
  double memHeavyRuntimeFraction = 0.0;
  Bytes bytesRead = 0;
  Bytes bytesWritten = 0;
  Bytes maxPeakMemory = 0;
  std::size_t taskCount = 0;

  UsageLevel ioLevel = UsageLevel::kLow;
  UsageLevel memoryLevel = UsageLevel::kLow;
  UsageLevel cpuLevel = UsageLevel::kLow;
};

/// Collects task traces during a run and classifies the application in the
/// three Table I dimensions.
class WfProf {
 public:
  void record(TaskTrace trace) { traces_.push_back(std::move(trace)); }

  [[nodiscard]] const std::vector<TaskTrace>& traces() const { return traces_; }
  [[nodiscard]] AppProfile profile() const;

  /// Classification thresholds (fractions of total task runtime). The
  /// bands are calibrated to the simulator's accounting, where page-cache
  /// service makes I/O far cheaper than the ptrace-measured syscall time
  /// wfprof reports: an app with >50% of task time in I/O is I/O-bound
  /// (Montage ~90%), a CPU fraction above 0.95 is CPU-bound (Epigenome
  /// ~99.7%), and Broadband's ~9% I/O / ~91% CPU lands Medium on both.
  struct Thresholds {
    double ioHigh = 0.50, ioMedium = 0.02;
    double cpuHigh = 0.95, cpuMedium = 0.30;
    Bytes memHeavyTask = 1_GB;       // paper: tasks requiring > 1 GB
    double memHighRuntime = 0.50;    // paper: > 75 % for Broadband
    Bytes memMediumPeak = 256_MB;
  };
  [[nodiscard]] AppProfile profileWith(const Thresholds& th) const;

 private:
  std::vector<TaskTrace> traces_;
};

}  // namespace wfs::prof
