#include "prof/wfprof.hpp"

#include <algorithm>

namespace wfs::prof {

const char* toString(UsageLevel level) {
  switch (level) {
    case UsageLevel::kLow: return "Low";
    case UsageLevel::kMedium: return "Medium";
    case UsageLevel::kHigh: return "High";
  }
  return "?";
}

AppProfile WfProf::profile() const { return profileWith(Thresholds{}); }

AppProfile WfProf::profileWith(const Thresholds& th) const {
  AppProfile p;
  p.taskCount = traces_.size();
  double cpu = 0.0, io = 0.0, memHeavy = 0.0;
  for (const auto& t : traces_) {
    const double rt = t.runtime();
    p.totalTaskRuntime += rt;
    cpu += t.cpuSeconds;
    io += t.ioSeconds;
    if (t.peakMemory > th.memHeavyTask) memHeavy += rt;
    p.bytesRead += t.bytesRead;
    p.bytesWritten += t.bytesWritten;
    p.maxPeakMemory = std::max(p.maxPeakMemory, t.peakMemory);
  }
  if (p.totalTaskRuntime > 0) {
    p.cpuFraction = cpu / p.totalTaskRuntime;
    p.ioFraction = io / p.totalTaskRuntime;
    p.memHeavyRuntimeFraction = memHeavy / p.totalTaskRuntime;
  }

  auto level = [](double v, double high, double medium) {
    if (v > high) return UsageLevel::kHigh;
    if (v > medium) return UsageLevel::kMedium;
    return UsageLevel::kLow;
  };
  p.ioLevel = level(p.ioFraction, th.ioHigh, th.ioMedium);
  p.cpuLevel = level(p.cpuFraction, th.cpuHigh, th.cpuMedium);
  if (p.memHeavyRuntimeFraction > th.memHighRuntime) {
    p.memoryLevel = UsageLevel::kHigh;
  } else if (p.maxPeakMemory > th.memMediumPeak) {
    p.memoryLevel = UsageLevel::kMedium;
  } else {
    p.memoryLevel = UsageLevel::kLow;
  }
  return p;
}

}  // namespace wfs::prof
