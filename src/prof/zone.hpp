#pragma once

// Lightweight host-time zone profiler for the engine hot paths
// (settle / schedule / ready-scan), compiled to *nothing* unless the build
// enables -DWFS_PROF_ZONES=1 (CMake option WFS_PROF_ZONES). The disabled
// build must stay bit-for-bit free of zone code — a ctest symbol check
// (prof.zone_noop_symbols) asserts the wfsim binary exports no Zone symbols.
//
// Usage, at the top of a hot function or block:
//
//   WFPROF_ZONE("net/flow-settle");
//
// Each zone keeps a call count and accumulated wall nanoseconds; the table
// is dumped to stderr at process exit when the WFS_PROF_ZONES environment
// variable is also set (so an instrumented binary can still run quietly).
// Zones nest naturally (each scope measures inclusive time).

#if defined(WFS_PROF_ZONES)

#include <chrono>  // wfslint: allow(D1-wall-clock) the zone profiler measures host time by design; simulation code never reads it
#include <cstdint>

namespace wfs::prof {

struct ZoneStats {
  const char* name = nullptr;
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;
  ZoneStats* next = nullptr;  // intrusive registry list
};

/// Registers a zone once (function-local static at the use site makes this
/// a one-time cost) and returns its mutable stats row.
[[nodiscard]] ZoneStats& registerZone(const char* name);

/// Writes the zone table to stderr, sorted by accumulated time.
void dumpZones();

class ZoneScope {
 public:
  explicit ZoneScope(ZoneStats& z) noexcept
      : z_{&z},
        t0_{std::chrono::steady_clock::now()} {}  // wfslint: allow(D1-wall-clock) profiler timestamp
  ZoneScope(const ZoneScope&) = delete;
  ZoneScope& operator=(const ZoneScope&) = delete;
  ~ZoneScope() noexcept {
    const auto t1 = std::chrono::steady_clock::now();  // wfslint: allow(D1-wall-clock) profiler timestamp
    z_->nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0_).count());
    ++z_->calls;
  }

 private:
  ZoneStats* z_;
  std::chrono::steady_clock::time_point t0_;  // wfslint: allow(D1-wall-clock) profiler timestamp
};

}  // namespace wfs::prof

#define WFPROF_ZONE_CAT2(a, b) a##b
#define WFPROF_ZONE_CAT(a, b) WFPROF_ZONE_CAT2(a, b)
#define WFPROF_ZONE(name)                                                        \
  static ::wfs::prof::ZoneStats& WFPROF_ZONE_CAT(wfprofZoneStats_, __LINE__) =   \
      ::wfs::prof::registerZone(name);                                           \
  ::wfs::prof::ZoneScope WFPROF_ZONE_CAT(wfprofZoneScope_, __LINE__) {           \
    WFPROF_ZONE_CAT(wfprofZoneStats_, __LINE__)                                  \
  }

#else  // !WFS_PROF_ZONES

/// Disabled build: expands to a no-op statement; no symbols, no overhead.
#define WFPROF_ZONE(name) static_cast<void>(0)

#endif
