#pragma once

#include "simcore/rng.hpp"
#include "wf/abstract_workflow.hpp"
#include "wf/catalogs.hpp"

namespace wfs::apps {

/// Montage (paper §II): science-grade astronomical mosaics. The paper's
/// 8-degree workflow has 10,429 tasks, reads 4.2 GB of input images and
/// produces 7.9 GB of output (excluding temporary data); >95 % of its time
/// is I/O wait — Table I: I/O High, Memory Low, CPU Low.
struct MontageConfig {
  /// 2,102 input images at full scale gives the published task count:
  /// images + diffs + images + 6 singleton jobs = 10,429.
  int inputImages = 2102;
  /// Overlapping image pairs handled by mDiffFit at full scale.
  int diffFits = 6219;
  /// Scale factor for affordable test runs; task counts scale linearly.
  double scale = 1.0;
};

[[nodiscard]] wf::AbstractWorkflow makeMontage(const MontageConfig& cfg, sim::Rng& rng);

/// Registers Montage's transformations at the execution site.
void registerMontageTransformations(wf::TransformationCatalog& tc);

}  // namespace wfs::apps
