#pragma once

#include "simcore/rng.hpp"
#include "wf/abstract_workflow.hpp"
#include "wf/catalogs.hpp"

namespace wfs::apps {

/// Epigenome (paper §II): maps short DNA reads to a reference genome with
/// MAQ. The chromosome-21 workflow has 529 tasks, reads 1.9 GB and writes
/// ~300 MB; 99 % of its time is CPU — Table I: I/O Low, Memory Medium,
/// CPU High. Structure: split the read files into chunks, run a 4-stage
/// per-chunk pipeline (filter, convert, binary-pack, map), then merge,
/// index and compute the sequence-density pileup.
struct EpigenomeConfig {
  int chunks = 131;  // 1 + 4*131 + 4 = 529 tasks at full scale
  double scale = 1.0;
};

[[nodiscard]] wf::AbstractWorkflow makeEpigenome(const EpigenomeConfig& cfg, sim::Rng& rng);

void registerEpigenomeTransformations(wf::TransformationCatalog& tc);

}  // namespace wfs::apps
