#pragma once

#include "simcore/rng.hpp"
#include "wf/abstract_workflow.hpp"
#include "wf/catalogs.hpp"

namespace wfs::apps {

/// Broadband (paper §II): seismogram synthesis for (source, site) pairs.
/// 6 sources x 8 sites -> 768 tasks (16 per pair), reads 6 GB, writes
/// 303 MB. More than 75 % of its runtime is in tasks needing > 1 GB RAM —
/// Table I: I/O Medium, Memory High, CPU Medium. Each pair runs several
/// executables in sequence "like a mini workflow", which is why NUFA
/// placement (outputs on the local disk) beats distribute (§V.C), and the
/// heavy reuse of velocity-model inputs is why the S3 client cache wins.
struct BroadbandConfig {
  int sources = 6;
  int sites = 8;
  double scale = 1.0;  // scales the number of (source, site) pairs
};

[[nodiscard]] wf::AbstractWorkflow makeBroadband(const BroadbandConfig& cfg, sim::Rng& rng);

void registerBroadbandTransformations(wf::TransformationCatalog& tc);

}  // namespace wfs::apps
