#include "apps/montage.hpp"

#include <algorithm>
#include <cmath>

namespace wfs::apps {

namespace {
/// Jitters `v` by +-10 % (deterministic via the workflow's RNG stream).
double jitter(sim::Rng& rng, double v) { return v * rng.uniform(0.9, 1.1); }
Bytes jitterBytes(sim::Rng& rng, Bytes v) {
  return static_cast<Bytes>(jitter(rng, static_cast<double>(v)));
}
}  // namespace

wf::AbstractWorkflow makeMontage(const MontageConfig& cfg, sim::Rng& rng) {
  // Sizes and CPU demands follow the published aggregates: 2,102 x 2 MB of
  // input imagery (4.2 GB), a ~6.5 GB mosaic + shrunk/jpeg products
  // (~7.9 GB of final output), and a few thousand core-seconds of total
  // compute spread over 10k short tasks (I/O dominates every task).
  const int nImages = std::max(1, static_cast<int>(std::lround(cfg.inputImages * cfg.scale)));
  const int nDiffs = std::max(1, static_cast<int>(std::lround(cfg.diffFits * cfg.scale)));
  constexpr Bytes kInputImage = 2_MB;
  constexpr Bytes kProjected = 1400_KB;
  constexpr Bytes kArea = 600_KB;
  constexpr Bytes kFit = 300_B;
  constexpr Bytes kHdr = 2_KB;

  wf::AbstractWorkflow awf;
  awf.name = "montage-8deg";

  // External inputs: the raw survey images plus the region header.
  for (int i = 0; i < nImages; ++i) {
    awf.externalInputs.push_back({"raw/img_" + std::to_string(i) + ".fits",
                                  jitterBytes(rng, kInputImage)});
  }
  awf.externalInputs.push_back({"region.hdr", 10_KB});

  auto& dag = awf.dag;

  // mProjectPP: reproject every input image.
  for (int i = 0; i < nImages; ++i) {
    wf::JobSpec j;
    j.name = "mProjectPP_" + std::to_string(i);
    j.transformation = "mProjectPP";
    j.cpuSeconds = jitter(rng, 0.7);
    j.peakMemory = 40_MB;
    j.inputs = {awf.externalInputs[static_cast<std::size_t>(i)], {"region.hdr", 10_KB}};
    j.outputs = {{"proj/p_" + std::to_string(i) + ".fits",
                  jitterBytes(rng, kProjected + kArea)}};
    dag.addJob(std::move(j));
  }

  // mDiffFit: fit each overlapping pair of projected images.
  for (int d = 0; d < nDiffs; ++d) {
    const int a = d % nImages;
    const int b = (d + 1 + d / nImages) % nImages;
    wf::JobSpec j;
    j.name = "mDiffFit_" + std::to_string(d);
    j.transformation = "mDiffFit";
    j.cpuSeconds = jitter(rng, 0.15);
    j.peakMemory = 30_MB;
    j.inputs = {{"proj/p_" + std::to_string(a) + ".fits", kProjected + kArea},
                {"proj/p_" + std::to_string(b) + ".fits", kProjected + kArea}};
    // mDiffFit is itself a chained pair (mDiff writes the difference image,
    // mFitplane reads it back) — the bulk of Montage's temporary data.
    j.scratchFiles = {{"tmp/diff_" + std::to_string(d) + ".fits", 6_MB}};
    j.outputs = {{"fit/fit_" + std::to_string(d) + ".txt", kFit}};
    dag.addJob(std::move(j));
  }

  // mConcatFit: gather all fit results.
  {
    wf::JobSpec j;
    j.name = "mConcatFit";
    j.transformation = "mConcatFit";
    j.cpuSeconds = jitter(rng, 12.0);
    j.peakMemory = 100_MB;
    for (int d = 0; d < nDiffs; ++d) {
      j.inputs.push_back({"fit/fit_" + std::to_string(d) + ".txt", kFit});
    }
    j.outputs = {{"fits.tbl", 600_KB}};
    dag.addJob(std::move(j));
  }

  // mBgModel: solve for background corrections.
  {
    wf::JobSpec j;
    j.name = "mBgModel";
    j.transformation = "mBgModel";
    j.cpuSeconds = jitter(rng, 25.0);
    j.peakMemory = 160_MB;
    j.inputs = {{"fits.tbl", 600_KB}};
    j.outputs = {{"corrections.tbl", 1_MB}};
    dag.addJob(std::move(j));
  }

  // mBackground: apply corrections per image.
  for (int i = 0; i < nImages; ++i) {
    wf::JobSpec j;
    j.name = "mBackground_" + std::to_string(i);
    j.transformation = "mBackground";
    j.cpuSeconds = jitter(rng, 0.2);
    j.peakMemory = 40_MB;
    j.inputs = {{"proj/p_" + std::to_string(i) + ".fits", kProjected + kArea},
                {"corrections.tbl", 1_MB}};
    j.outputs = {{"corr/c_" + std::to_string(i) + ".fits",
                  jitterBytes(rng, kProjected + kArea)},
                 {"corr/c_" + std::to_string(i) + ".hdr", kHdr}};
    dag.addJob(std::move(j));
  }

  // mImgtbl: build the image table from the corrected headers.
  {
    wf::JobSpec j;
    j.name = "mImgtbl";
    j.transformation = "mImgtbl";
    j.cpuSeconds = jitter(rng, 6.0);
    j.peakMemory = 60_MB;
    for (int i = 0; i < nImages; ++i) {
      j.inputs.push_back({"corr/c_" + std::to_string(i) + ".hdr", kHdr});
    }
    j.outputs = {{"pimages.tbl", 1_MB}};
    dag.addJob(std::move(j));
  }

  // mAdd: co-add every corrected image into the mosaic (the big I/O tail).
  const Bytes mosaicBytes = static_cast<Bytes>(6.5e9 * cfg.scale);
  const Bytes mosaicArea = static_cast<Bytes>(1.3e9 * cfg.scale);
  {
    wf::JobSpec j;
    j.name = "mAdd";
    j.transformation = "mAdd";
    j.cpuSeconds = jitter(rng, 50.0);
    j.peakMemory = 200_MB;
    j.inputs.push_back({"pimages.tbl", 1_MB});
    for (int i = 0; i < nImages; ++i) {
      j.inputs.push_back({"corr/c_" + std::to_string(i) + ".fits", kProjected + kArea});
    }
    j.outputs = {{"mosaic.fits", mosaicBytes}, {"mosaic.area", mosaicArea}};
    dag.addJob(std::move(j));
  }

  // mShrink + mJPEG: presentation products.
  {
    wf::JobSpec j;
    j.name = "mShrink";
    j.transformation = "mShrink";
    j.cpuSeconds = jitter(rng, 12.0);
    j.peakMemory = 120_MB;
    j.inputs = {{"mosaic.fits", mosaicBytes}};
    j.outputs = {{"mosaic_small.fits", static_cast<Bytes>(5.0e7 * cfg.scale)}};
    dag.addJob(std::move(j));
  }
  {
    wf::JobSpec j;
    j.name = "mJPEG";
    j.transformation = "mJPEG";
    j.cpuSeconds = jitter(rng, 4.0);
    j.peakMemory = 80_MB;
    j.inputs = {{"mosaic_small.fits", static_cast<Bytes>(5.0e7 * cfg.scale)}};
    j.outputs = {{"mosaic.jpg", static_cast<Bytes>(1.0e7 * cfg.scale)}};
    dag.addJob(std::move(j));
  }

  awf.finalProducts = {"mosaic.fits", "mosaic.area"};  // §II: 7.9 GB of output
  awf.finalize();
  return awf;
}

void registerMontageTransformations(wf::TransformationCatalog& tc) {
  for (const char* tx : {"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel", "mBackground",
                         "mImgtbl", "mAdd", "mShrink", "mJPEG"}) {
    tc.add({tx, 1.0});
  }
}

}  // namespace wfs::apps
