#include "apps/epigenome.hpp"

#include <algorithm>
#include <cmath>

namespace wfs::apps {

namespace {
double jitter(sim::Rng& rng, double v) { return v * rng.uniform(0.9, 1.1); }
}  // namespace

wf::AbstractWorkflow makeEpigenome(const EpigenomeConfig& cfg, sim::Rng& rng) {
  const int chunks = std::max(1, static_cast<int>(std::lround(cfg.chunks * cfg.scale)));

  wf::AbstractWorkflow awf;
  awf.name = "epigenome-chr21";

  // Inputs (~1.9 GB): the sequencer read file and the reference genome.
  const Bytes readsBytes = static_cast<Bytes>(1.8e9 * cfg.scale);
  awf.externalInputs.push_back({"reads.fastq", readsBytes});
  awf.externalInputs.push_back({"chr21.bfa", 100_MB});

  auto& dag = awf.dag;
  const Bytes chunkBytes = readsBytes / chunks;

  // fastqSplit.
  {
    wf::JobSpec j;
    j.name = "fastqSplit";
    j.transformation = "fastqSplit";
    j.cpuSeconds = jitter(rng, 25.0);
    j.peakMemory = 120_MB;
    j.inputs = {awf.externalInputs[0]};
    for (int c = 0; c < chunks; ++c) {
      j.outputs.push_back({"chunk/r_" + std::to_string(c) + ".fastq", chunkBytes});
    }
    dag.addJob(std::move(j));
  }

  // Per-chunk pipeline: filterContams -> sol2sanger -> fastq2bfq -> map.
  for (int c = 0; c < chunks; ++c) {
    const std::string tag = std::to_string(c);
    {
      wf::JobSpec j;
      j.name = "filterContams_" + tag;
      j.transformation = "filterContams";
      j.cpuSeconds = jitter(rng, 12.0);
      j.peakMemory = 100_MB;
      j.inputs = {{"chunk/r_" + tag + ".fastq", chunkBytes}};
      j.outputs = {{"filt/f_" + tag + ".fastq", chunkBytes * 95 / 100}};
      dag.addJob(std::move(j));
    }
    {
      wf::JobSpec j;
      j.name = "sol2sanger_" + tag;
      j.transformation = "sol2sanger";
      j.cpuSeconds = jitter(rng, 8.0);
      j.peakMemory = 80_MB;
      j.inputs = {{"filt/f_" + tag + ".fastq", chunkBytes * 95 / 100}};
      j.outputs = {{"sanger/s_" + tag + ".fastq", chunkBytes * 95 / 100}};
      dag.addJob(std::move(j));
    }
    {
      wf::JobSpec j;
      j.name = "fastq2bfq_" + tag;
      j.transformation = "fastq2bfq";
      j.cpuSeconds = jitter(rng, 6.0);
      j.peakMemory = 80_MB;
      j.inputs = {{"sanger/s_" + tag + ".fastq", chunkBytes * 95 / 100}};
      j.outputs = {{"bfq/b_" + tag + ".bfq", chunkBytes * 30 / 100}};
      dag.addJob(std::move(j));
    }
    {
      wf::JobSpec j;
      j.name = "map_" + tag;
      j.transformation = "maq_map";
      j.cpuSeconds = jitter(rng, 200.0);  // the CPU hog (99 % CPU overall)
      j.peakMemory = 800_MB;
      j.inputs = {{"bfq/b_" + tag + ".bfq", chunkBytes * 30 / 100},
                  {"chr21.bfa", 100_MB}};
      j.outputs = {{"map/m_" + tag + ".map", static_cast<Bytes>(1500_KB)}};
      dag.addJob(std::move(j));
    }
  }

  // Batched merge (MAQ merges in batches), then index and pileup. Task
  // total at full scale: 1 + 4*131 + 2 + 1 + 1 = 529, the published count.
  const int half = (chunks + 1) / 2;
  {
    wf::JobSpec j;
    j.name = "mapMerge_0";
    j.transformation = "mapMerge";
    j.cpuSeconds = jitter(rng, 30.0);
    j.peakMemory = 600_MB;
    for (int c = 0; c < half; ++c) {
      j.inputs.push_back({"map/m_" + std::to_string(c) + ".map", 1500_KB});
    }
    j.outputs = {{"merged_0.map", static_cast<Bytes>(1500_KB) * half}};
    dag.addJob(std::move(j));
  }
  {
    wf::JobSpec j;
    j.name = "mapMergeFinal";
    j.transformation = "mapMerge";
    j.cpuSeconds = jitter(rng, 30.0);
    j.peakMemory = 600_MB;
    j.inputs.push_back({"merged_0.map", static_cast<Bytes>(1500_KB) * half});
    for (int c = half; c < chunks; ++c) {
      j.inputs.push_back({"map/m_" + std::to_string(c) + ".map", 1500_KB});
    }
    j.outputs = {{"chr21.map", static_cast<Bytes>(1500_KB) * chunks}};
    dag.addJob(std::move(j));
  }
  {
    wf::JobSpec j;
    j.name = "maqIndex";
    j.transformation = "maqIndex";
    j.cpuSeconds = jitter(rng, 20.0);
    j.peakMemory = 500_MB;
    j.inputs = {{"chr21.map", static_cast<Bytes>(1500_KB) * chunks}};
    j.outputs = {{"chr21.map.idx", 50_MB}};
    dag.addJob(std::move(j));
  }
  {
    wf::JobSpec j;
    j.name = "pileup";
    j.transformation = "pileup";
    j.cpuSeconds = jitter(rng, 30.0);
    j.peakMemory = 700_MB;
    j.inputs = {{"chr21.map", static_cast<Bytes>(1500_KB) * chunks},
                {"chr21.map.idx", 50_MB},
                {"chr21.bfa", 100_MB}};
    j.outputs = {{"density.wig", 55_MB}};
    dag.addJob(std::move(j));
  }

  awf.finalProducts = {"chr21.map", "chr21.map.idx"};  // §II: ~300 MB of output
  awf.finalize();
  return awf;
}

void registerEpigenomeTransformations(wf::TransformationCatalog& tc) {
  for (const char* tx : {"fastqSplit", "filterContams", "sol2sanger", "fastq2bfq", "maq_map",
                         "mapMerge", "maqIndex", "pileup"}) {
    tc.add({tx, 1.0});
  }
}

}  // namespace wfs::apps
