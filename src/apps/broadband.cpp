#include "apps/broadband.hpp"

#include <algorithm>
#include <cmath>

namespace wfs::apps {

namespace {
double jitter(sim::Rng& rng, double v) { return v * rng.uniform(0.9, 1.1); }
}  // namespace

wf::AbstractWorkflow makeBroadband(const BroadbandConfig& cfg, sim::Rng& rng) {
  const int pairs = std::max(
      1, static_cast<int>(std::lround(cfg.sources * cfg.sites * cfg.scale)));

  wf::AbstractWorkflow awf;
  awf.name = "broadband-6x8";

  // Shared input data (~6 GB): regional velocity models reused by every
  // simulation task of every pair, plus per-source rupture descriptions.
  constexpr int kVelocityFiles = 5;
  constexpr Bytes kVelocityBytes = 1150_MB;  // 5 x 1.15 GB ~ 5.75 GB
  for (int v = 0; v < kVelocityFiles; ++v) {
    awf.externalInputs.push_back({"vel/model_" + std::to_string(v) + ".bin", kVelocityBytes});
  }
  for (int s = 0; s < cfg.sources; ++s) {
    awf.externalInputs.push_back({"src/source_" + std::to_string(s) + ".def", 40_MB});
  }

  auto& dag = awf.dag;
  auto velocity = [&](int pair, int k) -> wf::FileSpec {
    return awf.externalInputs[static_cast<std::size_t>((pair + k) % kVelocityFiles)];
  };

  for (int p = 0; p < pairs; ++p) {
    const std::string tag = std::to_string(p);
    const int source = p % cfg.sources;
    const wf::FileSpec srcDef =
        awf.externalInputs[static_cast<std::size_t>(kVelocityFiles + source)];

    // 1 rupture generator.
    wf::JobSpec gen;
    gen.name = "ucsb_createSRF_" + tag;
    gen.transformation = "ucsb_createSRF";
    gen.cpuSeconds = jitter(rng, 20.0);
    gen.peakMemory = 800_MB;
    gen.inputs = {srcDef};
    gen.outputs = {{"srf/rupture_" + tag + ".srf", 20_MB}};
    dag.addJob(std::move(gen));

    // 3 low-frequency synthesis tasks (the memory hogs).
    for (int k = 0; k < 3; ++k) {
      wf::JobSpec j;
      j.name = "jbsim_" + tag + "_" + std::to_string(k);
      j.transformation = "jbsim";
      j.cpuSeconds = jitter(rng, 50.0);
      j.peakMemory = 3500_MB;
      j.inputs = {{"srf/rupture_" + tag + ".srf", 20_MB}, velocity(p, k)};
      // Chained executables exchange a sizeable intermediate on disk.
      j.scratchFiles = {{"tmp/lf_" + tag + "_" + std::to_string(k) + ".tmp", 700_MB}};
      j.outputs = {{"lf/seis_" + tag + "_" + std::to_string(k) + ".grm", 5_MB}};
      dag.addJob(std::move(j));
    }

    // 3 high-frequency synthesis tasks.
    for (int k = 0; k < 3; ++k) {
      wf::JobSpec j;
      j.name = "hfsims_" + tag + "_" + std::to_string(k);
      j.transformation = "hfsims";
      j.cpuSeconds = jitter(rng, 55.0);
      j.peakMemory = 1800_MB;
      j.inputs = {{"srf/rupture_" + tag + ".srf", 20_MB}, velocity(p, k + 1)};
      j.scratchFiles = {{"tmp/hf_" + tag + "_" + std::to_string(k) + ".tmp", 500_MB}};
      j.outputs = {{"hf/seis_" + tag + "_" + std::to_string(k) + ".grm", 5_MB}};
      dag.addJob(std::move(j));
    }

    // 3 merge/site-response tasks combining one LF + one HF seismogram.
    for (int k = 0; k < 3; ++k) {
      wf::JobSpec j;
      j.name = "merge_" + tag + "_" + std::to_string(k);
      j.transformation = "merge_seis";
      j.cpuSeconds = jitter(rng, 20.0);
      j.peakMemory = 1400_MB;
      j.inputs = {{"lf/seis_" + tag + "_" + std::to_string(k) + ".grm", 5_MB},
                  {"hf/seis_" + tag + "_" + std::to_string(k) + ".grm", 5_MB}};
      j.scratchFiles = {{"tmp/mrg_" + tag + "_" + std::to_string(k) + ".tmp", 300_MB}};
      j.outputs = {{"merged/seis_" + tag + "_" + std::to_string(k) + ".grm", 3_MB}};
      dag.addJob(std::move(j));
    }

    // 6 intensity-measure tasks (2 per merged seismogram).
    for (int k = 0; k < 6; ++k) {
      wf::JobSpec j;
      j.name = "seispeak_" + tag + "_" + std::to_string(k);
      j.transformation = "seispeak";
      j.cpuSeconds = jitter(rng, 6.0);
      j.peakMemory = 200_MB;
      j.inputs = {{"merged/seis_" + tag + "_" + std::to_string(k / 2) + ".grm", 3_MB}};
      j.outputs = {{"peaks/peak_" + tag + "_" + std::to_string(k) + ".bsa",
                    static_cast<Bytes>(1050_KB)}};  // 288 peaks ~ 303 MB (§II)
      dag.addJob(std::move(j));
    }
  }

  awf.finalize();
  return awf;
}

void registerBroadbandTransformations(wf::TransformationCatalog& tc) {
  for (const char* tx : {"ucsb_createSRF", "jbsim", "hfsims", "merge_seis", "seispeak"}) {
    tc.add({tx, 1.0});
  }
}

}  // namespace wfs::apps
