#include "blk/disk.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

namespace wfs::blk {

Disk::Disk(net::FlowNetwork& net, const Config& cfg, std::string name)
    : net_{&net},
      cfg_{cfg},
      service_{net, 1.0, std::move(name)},
      extents_{cfg.capacityBytes, cfg.initChunk} {
  assert(cfg.readRate > 0 && cfg.writeRate > 0 && cfg.firstWriteRate > 0);
  assert(cfg.initChunk > 0);
}

Bytes Disk::allocate(Bytes size) {
  assert(size >= 0 && size <= cfg_.capacityBytes);
  // Scatter across block groups, deterministically.
  std::uint64_t h = ++allocCounter_ * 0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  const Bytes groups = std::max<Bytes>(1, cfg_.capacityBytes / cfg_.initChunk);
  Bytes offset = static_cast<Bytes>(h % static_cast<std::uint64_t>(groups)) * cfg_.initChunk;
  if (offset + size > cfg_.capacityBytes) offset = 0;
  return offset;
}

sim::Task<void> Disk::read(Bytes size, net::Path extra) {
  co_await net_->simulator().delay(cfg_.perOpLatency);
  if (size <= 0) co_return;
  const double serviceSeconds =
      static_cast<double>(size) / cfg_.readRate + cfg_.seekTime.asSeconds();
  net::Path path = std::move(extra);
  path.push_back(net::Hop{&service_, serviceSeconds / static_cast<double>(size)});
  co_await net_->transfer(std::move(path), size);
}

sim::Task<void> Disk::write(Bytes size, net::Path extra) {
  const Bytes offset = allocate(size);
  co_await doWrite(offset, size, std::move(extra));
}

sim::Task<void> Disk::writeAt(Bytes offset, Bytes size, net::Path extra) {
  assert(offset >= 0 && offset + size <= cfg_.capacityBytes);
  co_await doWrite(offset, size, std::move(extra));
}

sim::Task<void> Disk::doWrite(Bytes offset, Bytes size, net::Path extra) {
  co_await net_->simulator().delay(cfg_.perOpLatency);
  if (size <= 0) co_return;
  // First-write cost is chunk-granular: every uninitialized chunk byte the
  // write touches is initialized at firstWriteRate (data bytes landing in
  // fresh chunks ride along); only bytes rewriting warm chunks pay the
  // separate writeRate. A sequential stream amortizes initialization to
  // exactly the measured ~20 MB/s; scattered small files amplify it.
  const Bytes chunkBegin = (offset / cfg_.initChunk) * cfg_.initChunk;
  const Bytes chunkEnd =
      std::min(cfg_.capacityBytes,
               ((offset + size + cfg_.initChunk - 1) / cfg_.initChunk) * cfg_.initChunk);
  const Bytes freshChunkBytes = extents_.uncoveredWithin(chunkBegin, chunkEnd);
  const Bytes freshData = extents_.uncoveredWithin(offset, offset + size);
  const Bytes warmData = size - freshData;
  const double serviceSeconds = static_cast<double>(freshChunkBytes) / cfg_.firstWriteRate +
                                static_cast<double>(warmData) / cfg_.writeRate +
                                cfg_.seekTime.asSeconds();
  const double weight = serviceSeconds / static_cast<double>(size);
  extents_.insert(chunkBegin, chunkEnd);
  net::Path path = std::move(extra);
  path.push_back(net::Hop{&service_, weight});
  co_await net_->transfer(std::move(path), size);
}

void Disk::initializeAll() { extents_.insert(0, cfg_.capacityBytes); }

}  // namespace wfs::blk
