#include "blk/chunk_coverage.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace wfs::blk {

ChunkCoverage::ChunkCoverage(Bytes capacity, Bytes chunk)
    : capacity_{capacity}, chunk_{chunk} {
  assert(capacity >= 0 && chunk > 0);
  numChunks_ = static_cast<std::size_t>((capacity + chunk - 1) / chunk);
  bits_.assign((numChunks_ + 63) / 64, 0);
}

Bytes ChunkCoverage::spanOf(std::size_t i) const {
  const Bytes begin = static_cast<Bytes>(i) * chunk_;
  return std::min(capacity_, begin + chunk_) - begin;
}

void ChunkCoverage::insert(Bytes begin, Bytes end) {
  assert(begin >= 0 && end <= capacity_);
  assert(begin % chunk_ == 0);
  assert(end % chunk_ == 0 || end == capacity_);
  if (end <= begin) return;
  const auto first = static_cast<std::size_t>(begin / chunk_);
  const auto last = static_cast<std::size_t>((end + chunk_ - 1) / chunk_);
  for (std::size_t i = first; i < last; ++i) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if ((bits_[i >> 6] & mask) == 0) {
      bits_[i >> 6] |= mask;
      total_ += spanOf(i);
    }
  }
}

Bytes ChunkCoverage::coveredWithin(Bytes begin, Bytes end) const {
  begin = std::max<Bytes>(begin, 0);
  end = std::min(end, capacity_);
  if (end <= begin) return 0;
  const auto first = static_cast<std::size_t>(begin / chunk_);
  const auto last = static_cast<std::size_t>((end - 1) / chunk_);  // inclusive
  if (first == last) {
    return isSet(first) ? end - begin : 0;
  }
  Bytes covered = 0;
  // Partial (or capacity-cut) edge chunks, measured exactly.
  if (isSet(first)) {
    covered += std::min(end, static_cast<Bytes>(first + 1) * chunk_) - begin;
  }
  if (isSet(last)) {
    covered += end - static_cast<Bytes>(last) * chunk_;
  }
  // Interior chunks are fully inside [begin, end) and never capacity-cut
  // (a capacity-cut chunk is the device's last, which here would be the
  // query's last): each set bit contributes exactly chunk_ bytes, counted
  // a word at a time.
  std::size_t i = first + 1;       // first interior chunk
  const std::size_t e = last;      // one past the interior range
  std::size_t interiorSet = 0;
  while (i < e) {
    const std::size_t w = i >> 6;
    const std::size_t wordEnd = std::min(e, (w + 1) << 6);
    std::uint64_t word = bits_[w];
    // Mask to [i, wordEnd) within this word.
    word &= ~std::uint64_t{0} << (i & 63);
    if ((wordEnd & 63) != 0) {
      word &= (std::uint64_t{1} << (wordEnd & 63)) - 1;
    }
    interiorSet += static_cast<std::size_t>(std::popcount(word));
    i = wordEnd;
  }
  covered += static_cast<Bytes>(interiorSet) * chunk_;
  return covered;
}

}  // namespace wfs::blk
