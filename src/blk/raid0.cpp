#include "blk/raid0.hpp"

#include <cassert>
#include <utility>

namespace wfs::blk {

Raid0::Raid0(net::FlowNetwork& net, const Config& cfg, const std::string& name)
    : net_{&net}, cfg_{cfg} {
  assert(cfg.members >= 1);
  disks_.reserve(static_cast<std::size_t>(cfg.members));
  for (int i = 0; i < cfg.members; ++i) {
    disks_.push_back(
        std::make_unique<Disk>(net, cfg.member, name + ".d" + std::to_string(i)));
  }
  if (cfg.readCeiling > 0) readCtrl_.emplace(net, cfg.readCeiling, name + ".rdctl");
  if (cfg.writeCeiling > 0) writeCtrl_.emplace(net, cfg.writeCeiling, name + ".wrctl");
}

sim::Task<void> Raid0::striped(Op op, Bytes offset, Bytes size, net::Path extra) {
  // Small operations touch only as many members as they have stripe chunks.
  const int n = static_cast<int>(
      std::min<Bytes>(memberCount(),
                      std::max<Bytes>(1, (size + cfg_.stripeUnit - 1) / cfg_.stripeUnit)));
  const Bytes chunk = size / n;
  const Bytes last = size - chunk * (n - 1);
  std::vector<sim::Task<void>> parts;
  parts.reserve(static_cast<std::size_t>(n));
  // Rotate the starting member so consecutive small files spread across the
  // array instead of hammering member 0.
  const int start = rotor_;
  rotor_ = (rotor_ + n) % memberCount();
  for (int idx = 0; idx < n; ++idx) {
    const int i = (start + idx) % memberCount();
    const Bytes part = (idx == n - 1) ? last : chunk;
    if (part <= 0) continue;
    net::Path path = extra;  // each member flow also traverses shared hops,
                             // so e.g. a NIC sees the full `size` in total
    if (op == Op::kRead && readCtrl_) path.push_back(net::Hop{&*readCtrl_, 1.0});
    if (op != Op::kRead && writeCtrl_) path.push_back(net::Hop{&*writeCtrl_, 1.0});
    switch (op) {
      case Op::kRead:
        parts.push_back(disks_[static_cast<std::size_t>(i)]->read(part, std::move(path)));
        break;
      case Op::kWrite:
        parts.push_back(disks_[static_cast<std::size_t>(i)]->write(part, std::move(path)));
        break;
      case Op::kWriteAt:
        parts.push_back(disks_[static_cast<std::size_t>(i)]->writeAt(offset / n, part,
                                                                     std::move(path)));
        break;
    }
  }
  co_await sim::allOf(net_->simulator(), std::move(parts));
}

sim::Task<void> Raid0::read(Bytes size, net::Path extra) {
  co_await striped(Op::kRead, 0, size, std::move(extra));
}

sim::Task<void> Raid0::write(Bytes size, net::Path extra) {
  co_await striped(Op::kWrite, 0, size, std::move(extra));
}

sim::Task<void> Raid0::writeAt(Bytes offset, Bytes size, net::Path extra) {
  co_await striped(Op::kWriteAt, offset, size, std::move(extra));
}

Bytes Raid0::allocate(Bytes size) {
  // Members stay in lockstep as long as all allocation goes through the
  // array, so member 0's offset (scaled back up) addresses the stripe set.
  const int n = memberCount();
  const Bytes share = (size + n - 1) / n;
  Bytes offset0 = 0;
  for (int i = 0; i < n; ++i) {
    const Bytes o = disks_[static_cast<std::size_t>(i)]->allocate(share);
    if (i == 0) offset0 = o;
  }
  return offset0 * n;
}

void Raid0::initializeAll() {
  for (auto& d : disks_) d->initializeAll();
}

Bytes Raid0::capacity() const {
  Bytes total = 0;
  for (const auto& d : disks_) total += d->capacity();
  return total;
}

Bytes Raid0::initializedBytes() const {
  Bytes total = 0;
  for (const auto& d : disks_) total += d->initializedBytes();
  return total;
}

}  // namespace wfs::blk
