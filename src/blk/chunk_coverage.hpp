#pragma once

#include <cstdint>
#include <vector>

#include "simcore/units.hpp"

namespace wfs::blk {

/// Chunk-granular initialization coverage for a fixed-capacity device.
///
/// Disk only ever marks whole initialization chunks covered (first writes
/// initialize the full chunk they touch; see Disk::doWrite), so coverage is
/// one bit per chunk instead of an ordered extent map. Queries over
/// arbitrary byte ranges return exactly the bytes an ExtentSet holding the
/// same aligned inserts would report: chunk i spans
/// [i*chunk, min(capacity, (i+1)*chunk)), partial edge chunks are measured
/// scalar, and full interior chunks are counted with word popcounts. This
/// took the per-write coverage query from O(log extents) map walks (~20% of
/// a Montage sweep profile) to a handful of bit operations.
class ChunkCoverage {
 public:
  ChunkCoverage(Bytes capacity, Bytes chunk);

  /// Marks [begin, end) covered. Both bounds must be chunk-aligned, except
  /// that `end` may be the (possibly unaligned) device capacity — exactly
  /// the ranges Disk::doWrite and initializeAll produce.
  void insert(Bytes begin, Bytes end);

  /// Bytes of [begin, end) already covered.
  [[nodiscard]] Bytes coveredWithin(Bytes begin, Bytes end) const;

  /// Bytes of [begin, end) not yet covered.
  [[nodiscard]] Bytes uncoveredWithin(Bytes begin, Bytes end) const {
    return (end - begin) - coveredWithin(begin, end);
  }

  [[nodiscard]] Bytes totalCovered() const { return total_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes chunk() const { return chunk_; }

 private:
  [[nodiscard]] bool isSet(std::size_t i) const {
    return (bits_[i >> 6] >> (i & 63)) & 1u;
  }
  /// Bytes chunk i actually spans (the last chunk may be cut by capacity).
  [[nodiscard]] Bytes spanOf(std::size_t i) const;

  Bytes capacity_;
  Bytes chunk_;
  std::size_t numChunks_;
  Bytes total_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace wfs::blk
