#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blk/disk.hpp"

namespace wfs::blk {

/// Linux software RAID 0 over N ephemeral disks, as the paper deploys on
/// every c1.xlarge (§III.C): 4-disk arrays measured at 80–100 MB/s first
/// writes, 350–400 MB/s subsequent writes, and ~310 MB/s reads.
///
/// Striped I/O fans out to all members in parallel; an optional controller
/// capacity models the md/xen overhead that keeps measured read throughput
/// (~310 MB/s) below the naive 4 x 110 MB/s sum.
class Raid0 : public BlockStore {
 public:
  struct Config {
    Disk::Config member{};
    int members = 4;
    /// Aggregate read ceiling (0 = no ceiling). ~310 MB/s measured.
    Rate readCeiling = MBps(310);
    /// Aggregate write ceiling (0 = no ceiling). ~400 MB/s measured.
    Rate writeCeiling = MBps(400);
    /// md chunk size: an operation only touches ceil(size/stripeUnit)
    /// members (capped at `members`), so small files pay fewer seeks.
    Bytes stripeUnit = 512_KiB;
  };

  Raid0(net::FlowNetwork& net, const Config& cfg, const std::string& name);

  [[nodiscard]] sim::Task<void> read(Bytes size, net::Path extra = {}) override;
  [[nodiscard]] sim::Task<void> write(Bytes size, net::Path extra = {}) override;
  [[nodiscard]] sim::Task<void> writeAt(Bytes offset, Bytes size, net::Path extra = {}) override;
  Bytes allocate(Bytes size) override;
  void initializeAll() override;

  [[nodiscard]] Bytes capacity() const override;
  [[nodiscard]] Bytes initializedBytes() const override;

  [[nodiscard]] int memberCount() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] Disk& member(int i) { return *disks_[static_cast<std::size_t>(i)]; }

 private:
  enum class Op { kRead, kWrite, kWriteAt };
  [[nodiscard]] sim::Task<void> striped(Op op, Bytes offset, Bytes size, net::Path extra);

  net::FlowNetwork* net_;
  Config cfg_;
  int rotor_ = 0;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::optional<net::Capacity> readCtrl_;
  std::optional<net::Capacity> writeCtrl_;
};

}  // namespace wfs::blk
