#include "blk/extent_set.hpp"

#include <algorithm>
#include <cassert>

namespace wfs::blk {

void ExtentSet::insert(Bytes begin, Bytes end) {
  assert(begin <= end);
  if (begin == end) return;

  // Find the first extent that could overlap or touch [begin, end).
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;  // touches or overlaps from the left
  }
  // Absorb all overlapping/touching extents.
  while (it != extents_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    total_ -= it->second - it->first;
    it = extents_.erase(it);
  }
  extents_.emplace(begin, end);
  total_ += end - begin;
}

void ExtentSet::erase(Bytes begin, Bytes end) {
  assert(begin <= end);
  if (begin == end) return;
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != extents_.end() && it->first < end) {
    const Bytes eBegin = it->first;
    const Bytes eEnd = it->second;
    total_ -= eEnd - eBegin;
    it = extents_.erase(it);
    if (eBegin < begin) {
      extents_.emplace(eBegin, begin);
      total_ += begin - eBegin;
    }
    if (eEnd > end) {
      extents_.emplace(end, eEnd);
      total_ += eEnd - end;
    }
  }
}

Bytes ExtentSet::coveredWithin(Bytes begin, Bytes end) const {
  assert(begin <= end);
  Bytes covered = 0;
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    covered += std::min(end, it->second) - std::max(begin, it->first);
  }
  return covered;
}

bool ExtentSet::contains(Bytes point) const { return coveredWithin(point, point + 1) == 1; }

void ExtentSet::clear() {
  extents_.clear();
  total_ = 0;
}

}  // namespace wfs::blk
