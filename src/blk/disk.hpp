#pragma once

#include <memory>
#include <string>

#include "blk/chunk_coverage.hpp"
#include "net/flow_network.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace wfs::blk {

/// Abstract block storage: a single device or a RAID array. I/O calls accept
/// extra flow hops so remote storage systems can pipeline disk service with
/// NIC transfer (one flow through disk + network, as a streaming copy would).
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Sequential read of `size` bytes from an initialized region.
  [[nodiscard]] virtual sim::Task<void> read(Bytes size, net::Path extra = {}) = 0;

  /// Sequential write into freshly allocated space (first-write penalty
  /// applies to whatever fraction of the allocation is uninitialized).
  [[nodiscard]] virtual sim::Task<void> write(Bytes size, net::Path extra = {}) = 0;

  /// Raw positioned write (disk envelope benchmarks).
  [[nodiscard]] virtual sim::Task<void> writeAt(Bytes offset, Bytes size,
                                                net::Path extra = {}) = 0;

  /// Reserves space for `size` bytes and returns its offset; paired with
  /// writeAt() this lets callers (PVFS datafiles) write one file's chunks
  /// contiguously instead of paying per-chunk initialization.
  virtual Bytes allocate(Bytes size) = 0;

  /// Marks every block initialized, as `dd if=/dev/zero` would. The paper
  /// notes this takes ~42 min for 50 GB and is rarely economical.
  virtual void initializeAll() = 0;

  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual Bytes initializedBytes() const = 0;
};

/// One EC2 ephemeral disk (paper §III.C):
///   reads ~110 MB/s; writes to initialized blocks ~100 MB/s; *first* writes
///   ~20 MB/s due to the EC2 disk-virtualization layer.
///
/// The device is a unit-rate service capacity; an operation at device rate R
/// contributes weight 1/R per flow-byte, so heterogeneous operations share
/// the device proportionally and a lone operation runs at exactly R.
class Disk : public BlockStore {
 public:
  struct Config {
    Rate readRate = MBps(110);
    Rate writeRate = MBps(100);
    Rate firstWriteRate = MBps(20);
    /// Issue latency per operation (does not occupy the device).
    sim::Duration perOpLatency = sim::Duration::micros(500);
    /// Head-positioning service per operation; *occupies* the device, so a
    /// storm of small-file operations saturates it even at low bandwidth —
    /// the effect behind PVFS/S3 small-file behaviour in the paper.
    sim::Duration seekTime = sim::Duration::millis(10);
    /// The EC2 virtualization layer initializes storage in chunks: the
    /// first write touching a chunk pays for initializing the WHOLE chunk
    /// at `firstWriteRate`. Sequential streams amortize this; scattered
    /// small-file writes amplify it — a key driver of the paper's "local
    /// disk contention" under many-file workloads.
    Bytes initChunk = 4_MB;
    Bytes capacityBytes = 420_GB;  // one of c1.xlarge's four ephemeral disks
  };

  Disk(net::FlowNetwork& net, const Config& cfg, std::string name);

  [[nodiscard]] sim::Task<void> read(Bytes size, net::Path extra = {}) override;
  [[nodiscard]] sim::Task<void> write(Bytes size, net::Path extra = {}) override;
  [[nodiscard]] sim::Task<void> writeAt(Bytes offset, Bytes size, net::Path extra = {}) override;
  void initializeAll() override;

  [[nodiscard]] Bytes capacity() const override { return cfg_.capacityBytes; }
  [[nodiscard]] Bytes initializedBytes() const override { return extents_.totalCovered(); }

  /// Allocates `size` bytes. Like a real file system, allocations scatter
  /// across block groups (deterministic hash of an allocation counter), so
  /// unrelated small files rarely share an initialization chunk.
  Bytes allocate(Bytes size) override;

  /// Device busy time integral in seconds (the service capacity is
  /// unit-rate, so accumulated service bytes are seconds).
  [[nodiscard]] double busySeconds() const { return service_.serviceBytes(); }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::Task<void> doWrite(Bytes offset, Bytes size, net::Path extra);

  net::FlowNetwork* net_;
  Config cfg_;
  net::Capacity service_;
  ChunkCoverage extents_;
  std::uint64_t allocCounter_ = 0;
};

}  // namespace wfs::blk
