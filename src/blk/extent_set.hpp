#pragma once

#include <cstdint>
#include <map>

#include "simcore/units.hpp"

namespace wfs::blk {

/// Set of disjoint, half-open byte ranges [begin, end).
///
/// Tracks which regions of a virtual disk have been written at least once:
/// EC2 ephemeral disks serve the *first* write to a block at ~20 MB/s and
/// subsequent writes at full speed (paper §III.C), so write cost depends on
/// how much of the target range is already initialized.
class ExtentSet {
 public:
  /// Marks [begin, end) as covered, merging with neighbours.
  void insert(Bytes begin, Bytes end);

  /// Removes coverage of [begin, end) (used by TRIM-style tests).
  void erase(Bytes begin, Bytes end);

  /// Bytes of [begin, end) already covered.
  [[nodiscard]] Bytes coveredWithin(Bytes begin, Bytes end) const;

  /// Bytes of [begin, end) not yet covered.
  [[nodiscard]] Bytes uncoveredWithin(Bytes begin, Bytes end) const {
    return (end - begin) - coveredWithin(begin, end);
  }

  [[nodiscard]] bool contains(Bytes point) const;
  [[nodiscard]] Bytes totalCovered() const { return total_; }
  [[nodiscard]] std::size_t extentCount() const { return extents_.size(); }
  void clear();

 private:
  std::map<Bytes, Bytes> extents_;  // begin -> end
  Bytes total_ = 0;
};

}  // namespace wfs::blk
