#pragma once

/// Umbrella header for the wfcloudsim library: a discrete-event simulation
/// of data-sharing options for scientific workflows on Amazon EC2,
/// reproducing Juve et al., "Data Sharing Options for Scientific Workflows
/// on Amazon EC2" (SC 2010).
///
/// Layers, bottom-up:
///  - wfs::sim      coroutine discrete-event kernel
///  - wfs::net      flow-level network with max-min fair sharing
///  - wfs::blk      ephemeral disks (first-write penalty) and RAID-0
///  - wfs::storage  the data-sharing options: local, S3, NFS, GlusterFS
///                  (NUFA / distribute), PVFS, XtreemFS
///  - wfs::cloud    EC2 instances, provisioning, billing
///  - wfs::wf       Pegasus-style planner + DAGMan engine + Condor-style
///                  scheduler; wf::import ingests WfCommons traces and
///                  wf::synth generates parameterized DAGs
///  - wfs::prof     wfprof-style application profiling (Table I)
///  - wfs::apps     Montage / Broadband / Epigenome workload generators
///  - wfs::analysis one-call experiment driver, parallel sweep executor,
///                  and table/JSONL rendering

#include "analysis/experiment.hpp"
#include "analysis/export.hpp"
#include "analysis/repeat.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "apps/broadband.hpp"
#include "apps/epigenome.hpp"
#include "apps/montage.hpp"
#include "cloud/billing.hpp"
#include "cloud/context_broker.hpp"
#include "cloud/instance_types.hpp"
#include "cloud/pricing.hpp"
#include "cloud/provisioner.hpp"
#include "cloud/vm.hpp"
#include "prof/wfprof.hpp"
#include "wf/engine.hpp"
#include "wf/import/wfcommons.hpp"
#include "wf/planner.hpp"
#include "wf/scheduler.hpp"
#include "wf/synth/generate.hpp"
#include "wf/synth/spec.hpp"
