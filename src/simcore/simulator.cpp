#include "simcore/simulator.hpp"

#include <memory>
#include <utility>

#include "simcore/signal.hpp"

namespace wfs::sim {

void Delay::await_suspend(std::coroutine_handle<> h) const {
  sim_->schedule(d_, [h] { h.resume(); });
}

namespace detail {

struct DetachedHandle::promise_type {
  Simulator* sim;

  // Coroutine parameters are visible to the promise constructor; we use that
  // to learn which simulator owns this root process.
  promise_type(Simulator& s, Task<void>&) : sim{&s} {}

  DetachedHandle get_return_object() noexcept {
    return DetachedHandle{std::coroutine_handle<promise_type>::from_promise(*this)};
  }
  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
      // Unregister, then self-destroy. Nothing may touch the frame after
      // destroy(); returning void leaves control with the resumer.
      Simulator* sim = h.promise().sim;
      void* addr = h.address();
      h.destroy();
      sim->unregisterDetached(addr);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void return_void() const noexcept {}
  [[noreturn]] void unhandled_exception() const noexcept {
    // A root process leaking an exception is a simulation bug; there is no
    // awaiter to propagate it to.
    std::terminate();
  }
};

namespace {
DetachedHandle detachedRun(Simulator&, Task<void> t) {
  co_await std::move(t);
}
}  // namespace

}  // namespace detail

void Simulator::spawn(Task<void> t) {
  auto wrapper = detail::detachedRun(*this, std::move(t));
  detached_.insert(wrapper.handle.address());
  const auto h = wrapper.handle;
  schedule(Duration::zero(), [h] { h.resume(); });
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Advance the clock before dispatching, so code running inside the event
    // observes the event's own timestamp via now().
    now_ = queue_.nextTime();
    queue_.runNext();
    ++n;
  }
  return n;
}

std::size_t Simulator::runUntil(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.nextTime() <= until) {
    now_ = queue_.nextTime();
    queue_.runNext();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

Simulator::~Simulator() {
  // Destroy still-suspended root processes; their frames own any child tasks,
  // so the whole tree is reclaimed.
  auto leftovers = std::move(detached_);
  detached_.clear();
  // wfslint: allow(unordered-iter) destruction order of independent root frames is unobservable: the simulation is over and no event can run
  for (void* addr : leftovers) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
}

namespace {
Task<void> notifyWhenDone(Task<void> inner, std::shared_ptr<std::size_t> remaining,
                          std::shared_ptr<OneShotEvent> done) {
  co_await std::move(inner);
  if (--*remaining == 0) done->fire();
}
}  // namespace

Task<void> allOf(Simulator& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  auto remaining = std::make_shared<std::size_t>(tasks.size());
  auto done = std::make_shared<OneShotEvent>(sim);
  for (auto& t : tasks) {
    sim.spawn(notifyWhenDone(std::move(t), remaining, done));
  }
  tasks.clear();
  co_await done->wait();
}

}  // namespace wfs::sim
