#include "simcore/simulator.hpp"

#include <memory>
#include <utility>

#include "simcore/signal.hpp"

namespace wfs::sim {

void Delay::await_suspend(std::coroutine_handle<> h) const {
  sim_->schedule(d_, [h] { h.resume(); });
}

namespace detail {

struct DetachedHandle::promise_type : DetachedNode {
  Simulator* sim;

  // Root-process wrapper frames recycle through the same arena-aware path
  // as Task frames (see PromiseBase in simcore/task.hpp).
  static void* operator new(std::size_t n) { return frameAllocate(n); }
  static void operator delete(void* p) noexcept { frameFree(p); }

  // Coroutine parameters are visible to the promise constructor; we use that
  // to learn which simulator owns this root process.
  promise_type(Simulator& s, Task<void>&) : sim{&s} {}

  DetachedHandle get_return_object() noexcept {
    return DetachedHandle{std::coroutine_handle<promise_type>::from_promise(*this)};
  }
  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
      // Unlink, then self-destroy. The unlink touches the promise, so it
      // must happen before destroy(); returning void leaves control with
      // the resumer.
      promise_type& p = h.promise();
      p.sim->unregisterDetached(&p);
      h.destroy();
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void return_void() const noexcept {}
  [[noreturn]] void unhandled_exception() const noexcept {
    // A root process leaking an exception is a simulation bug; there is no
    // awaiter to propagate it to.
    std::terminate();
  }
};

namespace {
DetachedHandle detachedRun(Simulator&, Task<void> t) {
  co_await std::move(t);
}
}  // namespace

}  // namespace detail

void Simulator::spawn(Task<void> t) {
  auto wrapper = detail::detachedRun(*this, std::move(t));
  registerDetached(&wrapper.handle.promise());
  const auto h = wrapper.handle;
  schedule(Duration::zero(), [h] { h.resume(); });
}

std::size_t Simulator::run() {
  // Coroutine frames created while this world dispatches come out of its
  // arena (exact-size recycling; wholesale reclaim with the Simulator).
  FrameArenaScope frames{&arena_};
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Advance the clock before dispatching, so code running inside the event
    // observes the event's own timestamp via now().
    now_ = queue_.nextTime();
    queue_.runNext();
    ++n;
  }
  return n;
}

std::size_t Simulator::runUntil(SimTime until) {
  FrameArenaScope frames{&arena_};
  std::size_t n = 0;
  while (!queue_.empty() && queue_.nextTime() <= until) {
    now_ = queue_.nextTime();
    queue_.runNext();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

Simulator::~Simulator() {
  // Destroy still-suspended root processes; their frames own any child tasks,
  // so the whole tree is reclaimed. Detach the chain first so a frame
  // destructor calling back into the registry sees an empty list. Order is
  // reverse spawn order, which is unobservable: the simulation is over and
  // no event can run.
  detail::DetachedNode* n = detachedHead_;
  detachedHead_ = nullptr;
  detachedCount_ = 0;
  while (n != nullptr) {
    detail::DetachedNode* next = n->next;
    auto& p = *static_cast<detail::DetachedHandle::promise_type*>(n);
    std::coroutine_handle<detail::DetachedHandle::promise_type>::from_promise(p).destroy();
    n = next;
  }
}

namespace {
Task<void> notifyWhenDone(Task<void> inner, std::size_t* remaining, OneShotEvent* done) {
  co_await std::move(inner);
  if (--*remaining == 0) done->fire();
}
}  // namespace

Task<void> allOf(Simulator& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  // The counter and event live in this frame: every child decrements (and
  // the last one fires) strictly before this coroutine resumes past wait(),
  // so no shared_ptr control blocks are needed on this hot path.
  std::size_t remaining = tasks.size();
  OneShotEvent done{sim};
  for (auto& t : tasks) {
    sim.spawn(notifyWhenDone(std::move(t), &remaining, &done));
  }
  tasks.clear();
  co_await done.wait();
}

}  // namespace wfs::sim
