#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "simcore/arena.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/file_id.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"
#include "simcore/trace.hpp"

namespace wfs::sim {

class Simulator;

/// Awaitable that resumes the coroutine after a simulated duration.
///
/// Even a zero delay goes through the event queue, so `co_await sim.yield()`
/// is a deterministic FIFO scheduling point.
class Delay {
 public:
  Delay(Simulator& sim, Duration d) : sim_{&sim}, d_{d} {}
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}

 private:
  Simulator* sim_;
  Duration d_;
};

namespace detail {
/// Intrusive hook linking every live root-process frame into its
/// simulator's registry: spawn/finish are pointer swaps on the frame
/// itself, not hash-set node allocations (spawns are a hot path — one per
/// transfer/job/timer process).
struct DetachedNode {
  DetachedNode* prev = nullptr;
  DetachedNode* next = nullptr;
};

/// Self-destroying wrapper coroutine that owns a spawned root Task.
struct DetachedHandle {
  struct promise_type;
  std::coroutine_handle<promise_type> handle;
};
}  // namespace detail

/// Single-threaded discrete-event simulator.
///
/// Activities are Task<> coroutines spawned as root processes; they await
/// Delay / Resource / signal awaitables, all of which resume through the
/// event queue in (time, insertion-order) order, making every run with the
/// same seed bit-identical.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] SimTime now() const { return now_; }

  EventId schedule(Duration after, EventQueue::Callback cb) {
    return queue_.schedule(now_ + after, std::move(cb));
  }
  EventId scheduleAt(SimTime at, EventQueue::Callback cb) {
    return queue_.schedule(at, std::move(cb));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Starts a root process. The task body begins at the current simulation
  /// time, after already-queued events (deferred start, FIFO).
  void spawn(Task<void> t);

  /// Runs until no events remain. Returns the number of events processed.
  std::size_t run();

  /// Runs until the queue is empty or the next event is later than `until`.
  std::size_t runUntil(SimTime until);

  [[nodiscard]] Delay delay(Duration d) { return Delay{*this, d}; }
  [[nodiscard]] Delay yield() { return Delay{*this, Duration::zero()}; }

  /// Number of live root processes (spawned, not yet finished).
  [[nodiscard]] std::size_t liveProcesses() const { return detachedCount_; }

  /// This simulation world's log sink (see WFS_TRACE). Simulator-local so
  /// concurrent simulators (SweepRunner workers) never share mutable state.
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  /// This world's path intern table (see simcore/file_id.hpp). All file
  /// names used by storage, engine, and scheduler resolve through it.
  [[nodiscard]] FileIdTable& files() { return files_; }
  [[nodiscard]] const FileIdTable& files() const { return files_; }

  /// This world's bump arena (see simcore/arena.hpp). Event-queue spill,
  /// flow slabs, engine bookkeeping, and coroutine frames created during
  /// run() all live here and are reclaimed wholesale when the world dies.
  [[nodiscard]] Arena& arena() { return arena_; }

 private:
  friend struct detail::DetachedHandle;
  void registerDetached(detail::DetachedNode* n) {
    n->prev = nullptr;
    n->next = detachedHead_;
    if (detachedHead_ != nullptr) detachedHead_->prev = n;
    detachedHead_ = n;
    ++detachedCount_;
  }
  void unregisterDetached(detail::DetachedNode* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      detachedHead_ = n->next;
    }
    if (n->next != nullptr) n->next->prev = n->prev;
    --detachedCount_;
  }

  // Declared first so it is destroyed last: every other member (queued
  // callbacks, detached coroutine frames) may hold arena-backed memory.
  Arena arena_;
  EventQueue queue_{arena_};
  SimTime now_ = SimTime::origin();
  detail::DetachedNode* detachedHead_ = nullptr;
  std::size_t detachedCount_ = 0;
  Trace trace_;
  FileIdTable files_;
};

/// Runs all tasks as root processes and completes when every one has
/// finished. An empty vector completes immediately.
Task<void> allOf(Simulator& sim, std::vector<Task<void>> tasks);

}  // namespace wfs::sim
