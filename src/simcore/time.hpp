#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace wfs::sim {

/// Duration of simulated time, stored as integer nanoseconds.
///
/// Integer ticks keep the event queue totally ordered and the simulation
/// bit-reproducible; all rate arithmetic converts through double and rounds
/// up, so durations are never silently truncated to zero.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us * 1000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) { return seconds(h * 3600); }

  /// From fractional seconds, rounding up to the next nanosecond so that a
  /// positive duration never collapses to zero.
  [[nodiscard]] static Duration fromSeconds(double s);

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double asSeconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Absolute simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime origin() { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime fromNanos(std::int64_t ns) { return SimTime{ns}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double asSeconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr SimTime operator+(SimTime t, Duration d) { return SimTime{t.ns_ + d.ns()}; }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace wfs::sim
