#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace wfs::sim {

/// Per-simulation monotonic arena with size-bucketed recycling.
///
/// A sweep cell builds one Simulator, runs it, and throws the whole world
/// away; the arena matches that lifecycle. Allocation is a pointer bump out
/// of geometrically growing chunks; deallocation pushes the block onto an
/// exact-size free list so steady-state churn (event slots, flow hops,
/// coroutine frames of repeated operations) recycles without ever touching
/// the system allocator. Everything is reclaimed wholesale by reset() or
/// destruction, which is what bounds a run's allocator traffic by its *peak*
/// live state instead of its total event count.
///
/// Single-threaded by design, like the Simulator that owns it. Blocks larger
/// than kMaxSmall bypass the buckets and are carried on a dedicated list
/// (vector growth doubles through a handful of such blocks per run).
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// Bump- or recycle-allocates `bytes` aligned to at most 16. Never returns
  /// nullptr (throws std::bad_alloc on OS refusal).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Returns a block to the arena for exact-size reuse. `bytes` must be the
  /// size passed to allocate(). Never calls into the system allocator.
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Rewinds every chunk and drops the free lists; all outstanding blocks
  /// are invalidated at once. Chunks and large blocks are kept for reuse, so
  /// a second run of the same shape performs no system allocation at all.
  void reset() noexcept;

  // --- observability (regression hooks for the arena tests) ---------------
  /// Bytes handed out since construction/reset, including recycled ones.
  [[nodiscard]] std::uint64_t bytesAllocated() const { return bytesAllocated_; }
  /// Bytes currently reserved from the system allocator (chunks + large).
  [[nodiscard]] std::uint64_t bytesReserved() const { return bytesReserved_; }
  /// Allocations served from a free list instead of fresh chunk space.
  [[nodiscard]] std::uint64_t recycleHits() const { return recycleHits_; }
  [[nodiscard]] std::size_t chunkCount() const { return chunkCount_; }

 private:
  // Headers are padded to a 16-byte multiple so the payload that follows
  // them starts at the full alignment the arena serves (InlineFunction slots
  // are alignas(max_align_t); a 24-byte header would hand out 8-aligned
  // blocks and fault the compiler's aligned stores).
  struct alignas(16) Chunk {
    Chunk* next;
    std::size_t size;  // payload bytes following this header
    std::size_t used;  // bump offset into the payload
  };
  struct FreeNode {
    FreeNode* next;
  };
  struct alignas(16) LargeBlock {
    LargeBlock* next;
    std::size_t size;  // payload bytes following this header
    bool free;
  };

  /// Granularity of the size classes; also the strongest alignment served.
  static constexpr std::size_t kGrain = 16;
  /// Largest bucketed block; bigger requests use the large-block list.
  static constexpr std::size_t kMaxSmall = 4096;
  static constexpr std::size_t kBuckets = kMaxSmall / kGrain;
  /// First chunk size; doubles until kMaxChunk.
  static constexpr std::size_t kMinChunk = 64 * 1024;
  static constexpr std::size_t kMaxChunk = 1024 * 1024;

  void* bumpFromChunks(std::size_t bytes);
  void* allocateLarge(std::size_t bytes);

  Chunk* chunks_ = nullptr;  // head is the active bump chunk
  LargeBlock* large_ = nullptr;
  FreeNode* buckets_[kBuckets] = {};
  std::uint64_t bytesAllocated_ = 0;
  std::uint64_t bytesReserved_ = 0;
  std::uint64_t recycleHits_ = 0;
  std::size_t chunkCount_ = 0;
};

/// std-compatible allocator over an Arena, with a null-arena fallback to the
/// system allocator so containers (and the components holding them) keep
/// working when no simulation world is attached — standalone unit tests
/// default-construct an EventQueue, for example.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* a) noexcept : arena_{a} {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_{o.arena()} {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

/// Typed pool over an Arena: construct/destroy single objects with exact-size
/// recycling. Used for per-run bookkeeping nodes that come and go in bulk.
template <typename T>
class Pool {
 public:
  explicit Pool(Arena& a) noexcept : arena_{&a} {}

  template <typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    void* p = arena_->allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }
  void destroy(T* p) noexcept {
    p->~T();
    arena_->deallocate(p, sizeof(T));
  }

 private:
  Arena* arena_;
};

/// Arena used for coroutine frames allocated on this thread (set for the
/// duration of Simulator::run/runUntil dispatch). Null outside a run; frame
/// allocation then falls back to the system allocator.
[[nodiscard]] Arena* currentFrameArena() noexcept;

/// RAII installer for currentFrameArena(); restores the previous arena so
/// nested simulations (a simulation building another world) stay correct.
class FrameArenaScope {
 public:
  explicit FrameArenaScope(Arena* a) noexcept;
  FrameArenaScope(const FrameArenaScope&) = delete;
  FrameArenaScope& operator=(const FrameArenaScope&) = delete;
  ~FrameArenaScope();

 private:
  Arena* prev_;
};

/// Coroutine-frame allocation helpers: a 16-byte header in front of the
/// frame records the owning arena (or null for the system allocator) and the
/// block size, so the frame can be freed correctly no matter where its
/// destruction happens relative to run().
[[nodiscard]] void* frameAllocate(std::size_t bytes);
void frameFree(void* frame) noexcept;

}  // namespace wfs::sim
