#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "simcore/time.hpp"

namespace wfs::sim {

std::string Duration::toString() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6fs", asSeconds());
  return buf;
}

Duration Duration::fromSeconds(double s) {
  const double ns = s * 1e9;
  auto whole = static_cast<std::int64_t>(ns);
  if (static_cast<double>(whole) < ns) ++whole;  // round up
  return Duration::nanos(whole);
}

std::string SimTime::toString() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", asSeconds());
  return buf;
}

// wfslint: hot-begin(event-queue) schedule/cancel run per simulated event;
// slot recycling and the 4-ary heap exist so nothing here heap-allocates.
EventId EventQueue::schedule(SimTime at, Callback cb) {
  std::uint32_t slot;
  if (freeHead_ != kNoFree) {
    slot = freeHead_;
    freeHead_ = slots_[slot].heapPos;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);
  const std::size_t pos = heap_.size();
  heap_.push_back(HeapEntry{at, nextSeq_++, slot});
  slots_[slot].heapPos = static_cast<std::uint32_t>(pos);
  siftUp(pos);
  return EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 | slots_[slot].gen};
}

void EventQueue::cancel(EventId id) {
  if (id.seq == 0) return;
  const auto slot = static_cast<std::uint32_t>(id.seq >> 32) - 1;
  const auto gen = static_cast<std::uint32_t>(id.seq & 0xffffffffu);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return;  // stale handle
  removeAt(slots_[slot].heapPos);
  release(slot);
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();  // drop captured state promptly
  ++s.gen;       // invalidate any outstanding EventId for this slot
  s.heapPos = freeHead_;
  freeHead_ = slot;
}

void EventQueue::removeAt(std::size_t i) {
  const std::size_t last = heap_.size() - 1;
  if (i == last) {
    heap_.pop_back();
    return;
  }
  heap_[i] = heap_[last];
  heap_.pop_back();
  slots_[heap_[i].slot].heapPos = static_cast<std::uint32_t>(i);
  if (i > 0 && before(heap_[i], heap_[(i - 1) / 4])) {
    siftUp(i);
  } else {
    siftDown(i);
  }
}

void EventQueue::siftUp(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i].slot].heapPos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = e;
  slots_[e.slot].heapPos = static_cast<std::uint32_t>(i);
}

void EventQueue::siftDown(std::size_t i) {
  HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    slots_[heap_[i].slot].heapPos = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = e;
  slots_[e.slot].heapPos = static_cast<std::uint32_t>(i);
}

SimTime EventQueue::nextTime() const {
  assert(!heap_.empty());
  return heap_[0].at;
}

SimTime EventQueue::runNext() {
  assert(!heap_.empty());
  const HeapEntry top = heap_[0];
  // Move the callback out before running: the callback may schedule new
  // events, which can recycle this slot and reallocate the tables.
  Callback cb = std::move(slots_[top.slot].cb);
  removeAt(0);
  release(top.slot);
  cb();
  return top.at;
}
// wfslint: hot-end

}  // namespace wfs::sim
