#include "simcore/event_queue.hpp"

#include <cassert>
#include <cstdio>
#include <utility>

#include "simcore/time.hpp"

namespace wfs::sim {

std::string Duration::toString() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6fs", asSeconds());
  return buf;
}

Duration Duration::fromSeconds(double s) {
  const double ns = s * 1e9;
  auto whole = static_cast<std::int64_t>(ns);
  if (static_cast<double>(whole) < ns) ++whole;  // round up
  return Duration::nanos(whole);
}

std::string SimTime::toString() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", asSeconds());
  return buf;
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint64_t seq = nextSeq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  dead_.push_back(false);
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (id.seq >= dead_.size() || dead_[id.seq]) return;
  dead_[id.seq] = true;
  assert(live_ > 0);
  --live_;
}

void EventQueue::dropDead() const {
  while (!heap_.empty() && dead_[heap_.top().seq]) heap_.pop();
}

SimTime EventQueue::nextTime() const {
  dropDead();
  assert(!heap_.empty());
  return heap_.top().at;
}

SimTime EventQueue::runNext() {
  dropDead();
  assert(!heap_.empty());
  // Move the callback out before running: the callback may schedule new
  // events, which would invalidate a reference into the heap.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  dead_[e.seq] = true;
  --live_;
  e.cb();
  return e.at;
}

}  // namespace wfs::sim
