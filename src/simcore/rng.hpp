#pragma once

#include <cstdint>

namespace wfs::sim {

/// Deterministic xoshiro256** generator with a SplitMix64 seeder.
///
/// Self-contained (no libstdc++ distribution objects) so that streams are
/// identical across standard-library implementations — a requirement for
/// bit-reproducible experiment tables.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent child stream; used to give every workflow task
  /// its own stream regardless of generation order.
  [[nodiscard]] Rng fork();

  std::uint64_t nextU64();

  /// Uniform in [0, 1).
  double nextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Normal via Box–Muller (one value per call; the pair's second half is
  /// discarded to keep fork()/call interleavings simple and deterministic).
  double normal(double mean, double stddev);

  /// Normal truncated below at `lo` (resamples; lo should be well below the
  /// mean for the distributions used here).
  double truncatedNormal(double mean, double stddev, double lo);

  /// Bounded Pareto on [lo, hi] with shape alpha; models heavy-tailed file
  /// size distributions.
  double boundedPareto(double lo, double hi, double alpha);

 private:
  std::uint64_t s_[4];
};

}  // namespace wfs::sim
