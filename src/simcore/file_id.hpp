#pragma once

// Per-Simulator path intern table.
//
// Every file name that enters a simulation world is interned once into a
// dense FileId (uint32). Hot paths — storage ops descending a LayerStack,
// catalog lookups, placement, engine dependency maps — key on the id;
// strings survive only at the DAG-construction boundary and in JSONL/trace
// export. The table also caches each name's FNV-1a hash (the same function
// as storage::pathHash), so hash-based placement never re-scans the bytes.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wfs::sim {

/// Dense per-Simulator file identifier. Value-semantic handle; only
/// meaningful together with the FileIdTable that minted it.
struct FileId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value = kInvalid;

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const { return value; }
  friend constexpr auto operator<=>(FileId, FileId) = default;
};

/// Interns path strings to dense FileIds. Owned by a Simulator, so ids are
/// world-local and concurrent sweep cells never share mutable state.
class FileIdTable {
 public:
  FileIdTable() = default;
  FileIdTable(const FileIdTable&) = delete;
  FileIdTable& operator=(const FileIdTable&) = delete;

  /// Pre-sizes the lookup index for `expected` names. The deques need no
  /// reservation (stable growth is their point); this only spares the
  /// unordered_map its rehash cascade when a bulk builder is about to
  /// intern 10^5+ paths.
  void reserve(std::size_t expected) { lookup_.reserve(expected); }

  /// Returns the id for `name`, interning it on first sight.
  FileId intern(std::string_view name);

  /// Returns the id for `name`, or an invalid id if it was never interned.
  [[nodiscard]] FileId find(std::string_view name) const;

  /// The interned spelling. Precondition: `id` was minted by this table.
  [[nodiscard]] const std::string& name(FileId id) const { return names_[id.index()]; }

  /// Cached FNV-1a 64-bit hash of the name (== storage::pathHash(name(id))).
  [[nodiscard]] std::uint64_t hash(FileId id) const { return hashes_[id.index()]; }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::deque<std::string> names_;        // deque: stable references across growth
  std::deque<std::uint64_t> hashes_;     // parallel to names_
  std::unordered_map<std::string_view, std::uint32_t> lookup_;  // views into names_
};

}  // namespace wfs::sim
