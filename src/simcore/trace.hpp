#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "simcore/time.hpp"

namespace wfs::sim {

/// Trace categories roughly follow the subsystems.
enum class TraceCat { kKernel, kNet, kDisk, kStorage, kCloud, kWorkflow, kApp };

[[nodiscard]] const char* toString(TraceCat cat);

/// Minimal logging sink, owned by a Simulator (one per simulation world).
/// Disabled by default; experiments enable it for debugging.
///
/// There is deliberately no process-global instance: SweepRunner executes
/// many Simulators concurrently, and a shared sink would interleave their
/// output (and race). Each Simulator owns its Trace; redirect it with
/// `setSink` to capture one world's log in isolation.
///
/// Not a metrics system — quantitative counters live in each subsystem's
/// metrics structs.
class Trace {
 public:
  /// Receives one formatted line (no trailing newline). The view is only
  /// valid for the duration of the call; sinks that keep lines must copy.
  using Sink = std::function<void(std::string_view line)>;

  Trace() = default;

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Redirects output; an empty function restores the default (stderr).
  void setSink(Sink sink) { sink_ = std::move(sink); }

  void log(TraceCat cat, SimTime t, std::string_view msg) const;

 private:
  bool enabled_ = false;
  Sink sink_;
  mutable std::string buf_;  // reused line buffer; Trace is simulator-local
};

/// `sim` is anything exposing `trace()` and `now()` — in practice a
/// Simulator (or a reference to one).
#define WFS_TRACE(cat, sim, msg)                                             \
  do {                                                                       \
    if ((sim).trace().enabled()) {                                           \
      (sim).trace().log((cat), (sim).now(), (msg));                          \
    }                                                                        \
  } while (0)

}  // namespace wfs::sim
