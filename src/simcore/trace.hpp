#pragma once

#include <cstdio>
#include <string>

#include "simcore/time.hpp"

namespace wfs::sim {

/// Trace categories roughly follow the subsystems.
enum class TraceCat { kKernel, kNet, kDisk, kStorage, kCloud, kWorkflow, kApp };

/// Minimal logging sink. Disabled by default; experiments enable it for
/// debugging. Not a metrics system — quantitative counters live in each
/// subsystem's metrics structs.
class Trace {
 public:
  static Trace& instance();

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void log(TraceCat cat, SimTime t, const std::string& msg) const;

 private:
  Trace() = default;
  bool enabled_ = false;
};

#define WFS_TRACE(cat, sim, msg)                                             \
  do {                                                                       \
    if (::wfs::sim::Trace::instance().enabled()) {                           \
      ::wfs::sim::Trace::instance().log((cat), (sim).now(), (msg));          \
    }                                                                        \
  } while (0)

}  // namespace wfs::sim
