#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "simcore/arena.hpp"

namespace wfs::sim {

/// Lazy coroutine used for every simulated activity.
///
/// A Task does not run until awaited (or spawned onto a Simulator). When the
/// body finishes, control symmetrically transfers back to the awaiter, so
/// arbitrarily deep call chains cost no stack. The handle is owned by the
/// Task object; destroying a Task that is suspended destroys the whole frame
/// tree (children are Task locals inside the frame), which is what makes
/// simulation teardown leak-free.
template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  // Task frames churn at event rate (every storage op is a coroutine chain).
  // When a Simulator is dispatching, frames come out of its arena and are
  // recycled exact-size; a header written by frameAllocate routes each frame
  // back to wherever it came from, so frames created outside a run (test
  // bodies, setup code) still free correctly through the system allocator.
  static void* operator new(std::size_t n) { return frameAllocate(n); }
  static void operator delete(void* p) noexcept { frameFree(p); }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value{};
  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_{h} {}
  Task(Task&& o) noexcept : handle_{std::exchange(o.handle_, {})} {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it (it is lazy) and resumes the awaiter when the
  /// task's body completes, yielding its return value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      [[nodiscard]] bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the handle (used by Simulator::spawn).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace wfs::sim
