#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simcore/time.hpp"

namespace wfs::sim {

/// Handle to a scheduled event; used to cancel timers.
struct EventId {
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks.
///
/// Ties are broken by insertion sequence number so that execution order is
/// deterministic and FIFO among simultaneous events — the property every
/// other component (resources, signals, flow settlement) relies on.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId schedule(SimTime at, Callback cb);

  /// Marks an event dead; it is dropped when popped. O(1).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] SimTime nextTime() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  SimTime runNext();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dropDead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::vector<bool> dead_;  // indexed by seq
  std::uint64_t nextSeq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace wfs::sim
