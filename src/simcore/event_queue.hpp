#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/arena.hpp"
#include "simcore/inline_function.hpp"
#include "simcore/time.hpp"

namespace wfs::sim {

/// Handle to a scheduled event; used to cancel timers.
///
/// Encodes a slot index plus a generation counter, so a default-constructed
/// id never matches and a handle kept past its event's execution (or
/// cancellation) becomes a harmless no-op.
struct EventId {
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks.
///
/// Ties are broken by insertion sequence number so that execution order is
/// deterministic and FIFO among simultaneous events — the property every
/// other component (resources, signals, flow settlement) relies on.
///
/// Implementation: a 4-ary implicit heap of (time, seq) keys over a slot
/// table holding the callbacks. Cancellation removes the entry eagerly
/// (O(log n)) and recycles its slot, so memory is bounded by the peak number
/// of simultaneously live events — not by the total ever scheduled. The
/// callback type stores small captures inline (no allocation ≤ 48 bytes).
class EventQueue {
 public:
  using Callback = InlineFunction<void()>;

  /// Standalone queue over the system allocator (unit tests).
  EventQueue() = default;
  /// Queue whose slot table and heap spill into `arena` — the Simulator
  /// passes its per-run arena so queue growth is reclaimed wholesale.
  explicit EventQueue(Arena& arena)
      : slots_{ArenaAllocator<Slot>{&arena}}, heap_{ArenaAllocator<HeapEntry>{&arena}} {}

  EventId schedule(SimTime at, Callback cb);

  /// Removes an event from the queue. Stale or already-run ids are ignored.
  /// O(log n) in the number of live events.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime nextTime() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  SimTime runNext();

  /// Number of slots ever allocated. Bounded by the peak count of
  /// simultaneously live events (regression hook for O(live) memory).
  [[nodiscard]] std::size_t slotCapacity() const { return slots_.size(); }

 private:
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;      // bumped on release; stale ids mismatch
    std::uint32_t heapPos = 0;  // position in heap_; next-free link when free
  };
  // Comparison keys live in the heap array itself so sifting touches
  // contiguous memory; the slot table is only consulted on pop/cancel.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // global insertion order: FIFO among equal times
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  void removeAt(std::size_t i);
  void release(std::uint32_t slot);

  std::vector<Slot, ArenaAllocator<Slot>> slots_;
  std::vector<HeapEntry, ArenaAllocator<HeapEntry>> heap_;
  std::uint32_t freeHead_ = kNoFree;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace wfs::sim
