#pragma once

#include <coroutine>
#include <utility>
#include <vector>

#include "simcore/simulator.hpp"

namespace wfs::sim {

/// One-shot latch: waiters suspend until fire(); waits after fire() complete
/// immediately. Resumptions go through the event queue (FIFO at fire time).
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulator& sim) : sim_{&sim} {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  [[nodiscard]] bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->schedule(Duration::zero(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      OneShotEvent* ev;
      [[nodiscard]] bool await_ready() const noexcept { return ev->fired_; }
      void await_suspend(std::coroutine_handle<> h) const { ev->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Reusable broadcast signal: fire() wakes everyone currently waiting;
/// later waiters block until the next fire(). Useful for condition loops:
///   while (!pred()) co_await signal.wait();
class Broadcast {
 public:
  explicit Broadcast(Simulator& sim) : sim_{&sim} {}
  Broadcast(const Broadcast&) = delete;
  Broadcast& operator=(const Broadcast&) = delete;

  void fire() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->schedule(Duration::zero(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Broadcast* s;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const { s->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace wfs::sim
