#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "simcore/simulator.hpp"

namespace wfs::sim {

class Resource;

/// RAII grant of `amount` units of a Resource; releases on destruction.
class Lease {
 public:
  Lease() = default;
  Lease(Resource& r, std::int64_t amount) : res_{&r}, amount_{amount} {}
  Lease(Lease&& o) noexcept : res_{std::exchange(o.res_, nullptr)}, amount_{o.amount_} {}
  Lease& operator=(Lease&& o) noexcept;
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { release(); }

  void release();
  [[nodiscard]] bool held() const { return res_ != nullptr; }
  [[nodiscard]] std::int64_t amount() const { return res_ ? amount_ : 0; }

 private:
  Resource* res_ = nullptr;
  std::int64_t amount_ = 0;
};

/// Counting semaphore with strict FIFO granting.
///
/// Models node cores, memory, and any other discrete capacity. A waiter is
/// granted only when it reaches the head of the queue and enough units are
/// free, so a large request cannot be starved by a stream of small ones
/// (matters for Broadband's >1 GB tasks competing for the 7 GB of c1.xlarge
/// RAM).
class Resource {
 public:
  Resource(Simulator& sim, std::int64_t capacity, std::string name = {});
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t available() const { return available_; }
  [[nodiscard]] std::int64_t inUse() const { return capacity_ - available_; }
  [[nodiscard]] std::size_t queueLength() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// co_await acquire(n) suspends until n units are granted.
  [[nodiscard]] auto acquire(std::int64_t n = 1) {
    struct Awaiter {
      Resource* res;
      std::int64_t n;
      [[nodiscard]] bool await_ready() const { return res->tryAcquireNow(n); }
      void await_suspend(std::coroutine_handle<> h) { res->enqueue(n, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, n};
  }

  /// co_await scoped(n) yields an RAII Lease.
  [[nodiscard]] auto scoped(std::int64_t n = 1) {
    struct Awaiter {
      Resource* res;
      std::int64_t n;
      [[nodiscard]] bool await_ready() const { return res->tryAcquireNow(n); }
      void await_suspend(std::coroutine_handle<> h) { res->enqueue(n, h); }
      [[nodiscard]] Lease await_resume() const { return Lease{*res, n}; }
    };
    return Awaiter{this, n};
  }

  void release(std::int64_t n = 1);

  /// Non-blocking acquire; returns whether n units were taken.
  bool tryAcquire(std::int64_t n = 1);

 private:
  friend class Lease;
  bool tryAcquireNow(std::int64_t n);
  void enqueue(std::int64_t n, std::coroutine_handle<> h);
  void drainQueue();

  struct Waiter {
    std::int64_t n;
    std::coroutine_handle<> handle;
  };

  Simulator* sim_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::string name_;
  std::deque<Waiter> waiters_;
};

}  // namespace wfs::sim
