#include "simcore/arena.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace wfs::sim {

namespace {

constexpr std::size_t roundUp(std::size_t n, std::size_t grain) {
  return (n + grain - 1) / grain * grain;
}

thread_local Arena* tlsFrameArena = nullptr;

}  // namespace

Arena::~Arena() {
  while (chunks_ != nullptr) {
    Chunk* next = chunks_->next;
    std::free(chunks_);
    chunks_ = next;
  }
  while (large_ != nullptr) {
    LargeBlock* next = large_->next;
    std::free(large_);
    large_ = next;
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align <= kGrain && "arena serves at most 16-byte alignment");
  (void)align;
  if (bytes == 0) bytes = 1;
  const std::size_t size = roundUp(bytes, kGrain);
  bytesAllocated_ += size;
  if (size > kMaxSmall) return allocateLarge(size);
  const std::size_t bucket = size / kGrain - 1;
  if (FreeNode* node = buckets_[bucket]; node != nullptr) {
    buckets_[bucket] = node->next;
    ++recycleHits_;
    return node;
  }
  return bumpFromChunks(size);
}

void* Arena::bumpFromChunks(std::size_t size) {
  if (chunks_ == nullptr || chunks_->used + size > chunks_->size) {
    // Look for a rewound chunk (after reset()) with room before growing.
    std::size_t grown = kMinChunk;
    if (chunks_ != nullptr) grown = std::min(kMaxChunk, chunks_->size * 2);
    if (grown < size) grown = roundUp(size, kGrain);
    auto* c = static_cast<Chunk*>(std::malloc(sizeof(Chunk) + grown));
    if (c == nullptr) throw std::bad_alloc{};
    c->next = chunks_;
    c->size = grown;
    c->used = 0;
    chunks_ = c;
    ++chunkCount_;
    bytesReserved_ += grown;
  }
  void* p = reinterpret_cast<unsigned char*>(chunks_ + 1) + chunks_->used;
  chunks_->used += size;
  return p;
}

void* Arena::allocateLarge(std::size_t size) {
  // Exact-size reuse: vector regrowth in a second run repeats the first
  // run's sizes, so a short linear scan finds the freed twin.
  for (LargeBlock* b = large_; b != nullptr; b = b->next) {
    if (b->free && b->size == size) {
      b->free = false;
      ++recycleHits_;
      return b + 1;
    }
  }
  auto* b = static_cast<LargeBlock*>(std::malloc(sizeof(LargeBlock) + size));
  if (b == nullptr) throw std::bad_alloc{};
  b->next = large_;
  b->size = size;
  b->free = false;
  large_ = b;
  bytesReserved_ += size;
  return b + 1;
}

void Arena::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t size = roundUp(bytes, kGrain);
  if (size > kMaxSmall) {
    auto* b = reinterpret_cast<LargeBlock*>(p) - 1;
    assert(b->size == size);
    b->free = true;
    return;
  }
  const std::size_t bucket = size / kGrain - 1;
  auto* node = static_cast<FreeNode*>(p);
  node->next = buckets_[bucket];
  buckets_[bucket] = node;
}

void Arena::reset() noexcept {
  for (Chunk* c = chunks_; c != nullptr; c = c->next) c->used = 0;
  for (LargeBlock* b = large_; b != nullptr; b = b->next) b->free = true;
  for (auto& bucket : buckets_) bucket = nullptr;
  bytesAllocated_ = 0;
}

Arena* currentFrameArena() noexcept { return tlsFrameArena; }

FrameArenaScope::FrameArenaScope(Arena* a) noexcept : prev_{tlsFrameArena} {
  tlsFrameArena = a;
}

FrameArenaScope::~FrameArenaScope() { tlsFrameArena = prev_; }

namespace {
struct FrameHeader {
  Arena* arena;
  std::size_t size;  // header + frame bytes, as passed to Arena::allocate
};
static_assert(sizeof(FrameHeader) == 16, "frame header must preserve 16-byte alignment");
}  // namespace

void* frameAllocate(std::size_t bytes) {
  const std::size_t total = sizeof(FrameHeader) + bytes;
  Arena* a = tlsFrameArena;
  void* raw = a != nullptr ? a->allocate(total, 16) : std::malloc(total);
  if (raw == nullptr) throw std::bad_alloc{};
  auto* h = static_cast<FrameHeader*>(raw);
  h->arena = a;
  h->size = total;
  return h + 1;
}

void frameFree(void* frame) noexcept {
  if (frame == nullptr) return;
  auto* h = static_cast<FrameHeader*>(frame) - 1;
  if (h->arena != nullptr) {
    h->arena->deallocate(h, h->size);
  } else {
    std::free(h);
  }
}

}  // namespace wfs::sim
