#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace wfs::sim {

/// Numerically stable online mean/variance (Welford) with min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Half-width of the ~95% confidence interval of the mean (normal
  /// approximation; fine for the >=5 repetitions used in experiments).
  [[nodiscard]] double ci95() const {
    return n_ < 2 ? 0.0 : 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact sample percentiles over a retained sample set (experiment scale
/// keeps these small; no sketching needed).
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  /// p in [0, 100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

inline double Percentiles::percentile(double p) {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace wfs::sim
