#pragma once

// Move-only callable wrapper with small-buffer optimization.
//
// Callables whose captured state fits in the inline buffer (and is nothrow
// move-constructible) are stored in place, so scheduling an event never
// allocates for the common case of a handle-sized capture. Larger callables
// fall back to a single heap allocation, like std::function.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wfs::sim {

/// Inline capture budget for EventQueue callbacks (bytes).
inline constexpr std::size_t kInlineFunctionBuffer = 48;

template <class Sig, std::size_t N = kInlineFunctionBuffer>
class InlineFunction;

template <class R, class... Args, std::size_t N>
class InlineFunction<R(Args...), N> {
 public:
  InlineFunction() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor) - drop-in for std::function
    emplace(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { moveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) { return vtable_->invoke(&storage_, std::forward<Args>(args)...); }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr bool kFitsInline = sizeof(D) <= N &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  struct InlineOps {
    static D* self(void* s) noexcept { return std::launder(reinterpret_cast<D*>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      D* from = self(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* s) noexcept { self(s)->~D(); }
    static constexpr VTable kVt{&invoke, &relocate, &destroy};
  };

  template <class D>
  struct HeapOps {
    static D* self(void* s) noexcept { return *std::launder(reinterpret_cast<D**>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(self(src));  // transfer ownership of the heap object
    }
    static void destroy(void* s) noexcept { delete self(s); }
    static constexpr VTable kVt{&invoke, &relocate, &destroy};
  };

  template <class F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::kVt;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &HeapOps<D>::kVt;
    }
  }

  void moveFrom(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(&storage_, &other.storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[N];
  const VTable* vtable_ = nullptr;
};

}  // namespace wfs::sim
