#include "simcore/resource.hpp"

#include <cassert>
#include <utility>

namespace wfs::sim {

Lease& Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    res_ = std::exchange(o.res_, nullptr);
    amount_ = o.amount_;
  }
  return *this;
}

void Lease::release() {
  if (res_ != nullptr) {
    res_->release(amount_);
    res_ = nullptr;
  }
}

Resource::Resource(Simulator& sim, std::int64_t capacity, std::string name)
    : sim_{&sim}, capacity_{capacity}, available_{capacity}, name_{std::move(name)} {
  assert(capacity >= 0);
}

bool Resource::tryAcquireNow(std::int64_t n) {
  assert(n >= 0 && n <= capacity_);
  // Strict FIFO: even if units are free, a newcomer must queue behind
  // existing waiters.
  if (!waiters_.empty() || available_ < n) return false;
  available_ -= n;
  return true;
}

bool Resource::tryAcquire(std::int64_t n) { return tryAcquireNow(n); }

void Resource::enqueue(std::int64_t n, std::coroutine_handle<> h) {
  waiters_.push_back(Waiter{n, h});
}

void Resource::release(std::int64_t n) {
  assert(n >= 0);
  available_ += n;
  assert(available_ <= capacity_);
  drainQueue();
}

void Resource::drainQueue() {
  // Grant head-of-line waiters whose request fits. Units are reserved here,
  // synchronously, so nothing can steal them before the waiter resumes via
  // the event queue.
  while (!waiters_.empty() && waiters_.front().n <= available_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.n;
    sim_->schedule(Duration::zero(), [h = w.handle] { h.resume(); });
  }
}

}  // namespace wfs::sim
