#include "simcore/file_id.hpp"

namespace wfs::sim {

namespace {

// FNV-1a, 64-bit — kept identical to storage::pathHash so hash-based
// placement (DHT layouts) is unchanged by interning.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FileId FileIdTable::intern(std::string_view name) {
  if (const auto it = lookup_.find(name); it != lookup_.end()) {
    return FileId{it->second};
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  hashes_.push_back(fnv1a(name));
  lookup_.emplace(std::string_view{names_.back()}, id);
  return FileId{id};
}

FileId FileIdTable::find(std::string_view name) const {
  const auto it = lookup_.find(name);
  return it == lookup_.end() ? FileId{} : FileId{it->second};
}

}  // namespace wfs::sim
