#include "simcore/rng.hpp"

#include <cassert>
#include <cmath>

namespace wfs::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork() { return Rng{nextU64()}; }

std::uint64_t Rng::nextU64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::nextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(nextU64());  // full range
  // Rejection sampling for unbiased modulo.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = nextU64();
  while (v >= limit) v = nextU64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * nextDouble(); }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = nextDouble();
  // wfslint: allow(float-eq) rejection-samples the one exact value log() cannot take
  while (u == 0.0) u = nextDouble();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = nextDouble();
  // wfslint: allow(float-eq) rejection-samples the one exact value log() cannot take
  while (u1 == 0.0) u1 = nextDouble();
  const double u2 = nextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::truncatedNormal(double mean, double stddev, double lo) {
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  return lo;
}

double Rng::boundedPareto(double lo, double hi, double alpha) {
  assert(lo > 0 && hi > lo && alpha > 0);
  const double u = nextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace wfs::sim
