#pragma once

#include <cstdint>

namespace wfs {

/// Data sizes are plain 64-bit byte counts; the helpers below make call
/// sites read like the paper's units (MB/s bandwidths, GB data sets).
using Bytes = std::int64_t;

inline constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
inline constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v) * 1000; }
inline constexpr Bytes operator""_MB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1000 * 1000;
}
inline constexpr Bytes operator""_GB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1000 * 1000 * 1000;
}
inline constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return static_cast<Bytes>(v) << 30; }

/// Transfer / service rates in bytes per second.
using Rate = double;

inline constexpr Rate MBps(double v) { return v * 1e6; }
inline constexpr Rate GBps(double v) { return v * 1e9; }
inline constexpr Rate Gbps(double v) { return v * 1e9 / 8.0; }

}  // namespace wfs
