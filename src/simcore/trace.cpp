#include "simcore/trace.hpp"

namespace wfs::sim {

Trace& Trace::instance() {
  static Trace t;
  return t;
}

namespace {
const char* catName(TraceCat c) {
  switch (c) {
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kNet: return "net";
    case TraceCat::kDisk: return "disk";
    case TraceCat::kStorage: return "storage";
    case TraceCat::kCloud: return "cloud";
    case TraceCat::kWorkflow: return "wf";
    case TraceCat::kApp: return "app";
  }
  return "?";
}
}  // namespace

void Trace::log(TraceCat cat, SimTime t, const std::string& msg) const {
  std::fprintf(stderr, "[%12.6f] %-7s %s\n", t.asSeconds(), catName(cat), msg.c_str());
}

}  // namespace wfs::sim
