#include "simcore/trace.hpp"

#include <cstdio>

namespace wfs::sim {

const char* toString(TraceCat c) {
  switch (c) {
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kNet: return "net";
    case TraceCat::kDisk: return "disk";
    case TraceCat::kStorage: return "storage";
    case TraceCat::kCloud: return "cloud";
    case TraceCat::kWorkflow: return "wf";
    case TraceCat::kApp: return "app";
  }
  return "?";
}

void Trace::log(TraceCat cat, SimTime t, std::string_view msg) const {
  char head[48];
  const int n =
      std::snprintf(head, sizeof head, "[%12.6f] %-7s ", t.asSeconds(), toString(cat));
  if (sink_) {
    buf_.assign(head, static_cast<std::size_t>(n));
    buf_.append(msg);
    sink_(buf_);
  } else {
    std::fprintf(stderr, "%s%.*s\n", head, static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace wfs::sim
