#include "simcore/trace.hpp"

#include <cstdio>

namespace wfs::sim {

const char* toString(TraceCat c) {
  switch (c) {
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kNet: return "net";
    case TraceCat::kDisk: return "disk";
    case TraceCat::kStorage: return "storage";
    case TraceCat::kCloud: return "cloud";
    case TraceCat::kWorkflow: return "wf";
    case TraceCat::kApp: return "app";
  }
  return "?";
}

void Trace::log(TraceCat cat, SimTime t, const std::string& msg) const {
  char head[48];
  std::snprintf(head, sizeof head, "[%12.6f] %-7s ", t.asSeconds(), toString(cat));
  if (sink_) {
    sink_(head + msg);
  } else {
    std::fprintf(stderr, "%s%s\n", head, msg.c_str());
  }
}

}  // namespace wfs::sim
