#include "wf/scheduler.hpp"

#include <cassert>

#include "prof/zone.hpp"

namespace wfs::wf {

Scheduler::Scheduler(sim::Simulator& sim, std::vector<int> slotsPerNode, Policy policy,
                     const storage::StorageSystem* storage)
    : sim_{&sim},
      free_{std::move(slotsPerNode)},
      total_{free_},
      dispatched_(free_.size(), 0),
      policy_{policy},
      storage_{storage} {
  assert(!free_.empty());
  assert(policy != Policy::kDataAware || storage != nullptr);
}

// wfslint: hot-begin(sched-dispatch) pickNode/tryClaim/drainQueue run on
// every job claim and slot release; node ranking and queue matching must
// stay allocation-free.
int Scheduler::pickNode(const JobSpec& job) const {
  WFPROF_ZONE("sched/pick-node");
  const int n = static_cast<int>(free_.size());
  if (policy_ == Policy::kDataAware) {
    // Rank free nodes by the input bytes they can serve locally; fall back
    // to round-robin among the best.
    int best = -1;
    Bytes bestScore = -1;
    for (int k = 0; k < n; ++k) {
      const int i = (rotor_ + k) % n;
      if (free_[static_cast<std::size_t>(i)] <= 0) continue;
      Bytes score = 0;
      for (const auto& f : job.inputs) {
        // Engine-bound workflows carry interned ids; fall back to the string
        // path for hand-built JobSpecs in tests.
        score += f.id.valid() ? storage_->localityHint(i, f.id)
                              : storage_->localityHint(i, f.lfn);
      }
      if (score > bestScore) {
        bestScore = score;
        best = i;
      }
    }
    return best;
  }
  // Locality-blind FIFO: first free node in round-robin order.
  for (int k = 0; k < n; ++k) {
    const int i = (rotor_ + k) % n;
    if (free_[static_cast<std::size_t>(i)] > 0) return i;
  }
  return -1;
}

int Scheduler::tryClaim(const JobSpec& job) {
  WFPROF_ZONE("sched/try-claim");
  if (!queue_.empty()) return -1;  // strict FIFO: wait behind earlier jobs
  const int node = pickNode(job);
  if (node < 0) return -1;
  --free_[static_cast<std::size_t>(node)];
  ++dispatched_[static_cast<std::size_t>(node)];
  rotor_ = (node + 1) % static_cast<int>(free_.size());
  return node;
}

void Scheduler::enqueue(const JobSpec* job, int* nodeOut, std::coroutine_handle<> h) {
  queue_.push_back(Awaiting{job, nodeOut, h});
}

void Scheduler::releaseSlot(int node) {
  ++free_[static_cast<std::size_t>(node)];
  drainQueue();
}

void Scheduler::drainQueue() {
  WFPROF_ZONE("sched/drain-queue");
  // Match head-of-queue jobs while slots remain (usually just the freed one).
  while (!queue_.empty()) {
    const int chosen = pickNode(*queue_.front().job);
    if (chosen < 0) break;
    Awaiting w = queue_.front();
    queue_.pop_front();
    --free_[static_cast<std::size_t>(chosen)];
    ++dispatched_[static_cast<std::size_t>(chosen)];
    rotor_ = (chosen + 1) % static_cast<int>(free_.size());
    *w.nodeOut = chosen;
    sim_->schedule(sim::Duration::zero(), [h = w.handle] { h.resume(); });
  }
}
// wfslint: hot-end

void Scheduler::failNode(int node) {
  free_[static_cast<std::size_t>(node)] = 0;
}

void Scheduler::reviveNode(int node) {
  const auto i = static_cast<std::size_t>(node);
  free_[i] = total_[i];
  drainQueue();
}

}  // namespace wfs::wf
