#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prof/wfprof.hpp"
#include "simcore/arena.hpp"
#include "simcore/resource.hpp"
#include "simcore/rng.hpp"
#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"
#include "storage/base/storage_system.hpp"
#include "wf/planner.hpp"
#include "wf/scheduler.hpp"

namespace wfs::wf {

/// DAGMan-style workflow executor (paper §III.A): releases jobs as their
/// parents finish, hands them to the Condor-style scheduler, and runs each
/// as read-inputs -> compute -> write-outputs against the chosen storage
/// system. Job wrapping for S3 (GET/PUT staging) lives inside the S3
/// storage backend, mirroring the paper's modified Pegasus.
///
/// Recovery model: a fault::FaultInjector drives the crash-stop hooks
/// (onNodeCrash / onFilesLost / notifyFilesChanged). A job attempt whose
/// node died is detected at its next await boundary and re-queued without
/// spending DAGMan retry budget; intermediates that died with the node are
/// recomputed by resubmitting their (already done) producer jobs.
class DagmanEngine {
 public:
  struct Options {
    /// Per-core speed multiplier (from the instance type).
    double coreSpeed = 1.0;
    /// Probability that a job attempt crashes mid-compute (models the
    /// flaky-substrate behaviour the paper hit with PVFS 2.8, which
    /// "could not run without crashes or loss of data").
    double transientFailureProb = 0.0;
    /// DAGMan-style retry budget per job; a job exceeding it fails the
    /// run and the engine emits a rescue DAG. Crash-stop aborts and
    /// lost-input waits do not consume this budget.
    int maxRetries = 3;
    std::uint64_t faultSeed = 7;
  };

  /// Binds the workflow to the simulation: every FileSpec's lfn is interned
  /// into the simulator's FileIdTable (FileSpec::id), which is why the
  /// workflow reference is mutable.
  DagmanEngine(sim::Simulator& sim, ExecutableWorkflow& workflow,
               storage::StorageSystem& storage, Scheduler& scheduler,
               std::vector<sim::Resource*> nodeMemory, prof::WfProf* prof,
               const Options& opt);

  /// Runs the whole DAG; completes when the last job finishes.
  [[nodiscard]] sim::Task<void> execute();

  [[nodiscard]] sim::Duration makespan() const { return finishedAt_ - startedAt_; }
  [[nodiscard]] int completedJobs() const { return completed_; }

  /// True if some job exhausted its retries; the DAG did not complete.
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::uint64_t retryCount() const { return retries_; }

  /// DAGMan rescue DAG: the jobs still pending when the run failed, in a
  /// valid execution order — resubmitting them resumes the workflow.
  [[nodiscard]] std::vector<JobId> rescueDag() const;

  // --- Crash-stop recovery hooks (driven by fault::FaultInjector) ---------

  /// Worker `node`'s VM terminated. Attempts running there notice the epoch
  /// change at their next await and abort; their slots died with the VM.
  void onNodeCrash(int node);

  /// Files died with a crashed node (StorageSystem::failNode's sweep).
  /// Resubmits the done producers of every lost intermediate some unfinished
  /// consumer still needs — recursively, so a lost chain recomputes from the
  /// deepest ancestor whose output survives.
  void onFilesLost(const std::vector<sim::FileId>& lost);

  /// Wakes jobs parked on lost inputs (call after restoreNode re-staged
  /// pre-staged data). No-op when nothing waits.
  void notifyFilesChanged() { filesChanged_->fire(); }

  /// Whether execute() has run to completion (success or failed run).
  [[nodiscard]] bool finished() const { return allDone_->fired(); }

  /// Attempts aborted because their node crashed underneath them.
  [[nodiscard]] std::uint64_t crashAborts() const { return crashAborts_; }
  /// Done jobs resubmitted to regenerate crash-lost outputs.
  [[nodiscard]] std::uint64_t recomputedJobs() const { return recomputedJobs_; }

 private:
  [[nodiscard]] sim::Task<void> runJob(JobId id);
  void submitReadyChildren(JobId finished);
  /// Marks `id` active and spawns its runJob coroutine.
  void spawnJob(JobId id);
  [[nodiscard]] bool inputsAvailable(const JobSpec& job) const;

  template <typename T>
  using AVec = std::vector<T, sim::ArenaAllocator<T>>;

  sim::Simulator* sim_;
  const ExecutableWorkflow* wf_;
  storage::StorageSystem* storage_;
  Scheduler* scheduler_;
  std::vector<sim::Resource*> nodeMemory_;
  prof::WfProf* prof_;
  Options opt_;

  // Per-job state is kept as dense arena-backed byte/int arrays and the
  // forward adjacency as a CSR (offset + flat edge list) built once in the
  // constructor: the ready-scan after every job completion then walks two
  // contiguous arrays instead of chasing a vector-of-vectors, and the whole
  // bookkeeping is freed wholesale with the simulator's arena.
  AVec<int> indegree_;
  AVec<std::uint8_t> done_;
  /// A runJob coroutine is in flight for the job (guards double-submit
  /// during recovery).
  AVec<std::uint8_t> active_;
  AVec<std::uint32_t> childBegin_;  ///< CSR offsets, jobCount()+1 entries
  AVec<JobId> childList_;           ///< CSR edges, dag children order
  /// Bumped per crash; an attempt compares against its claim-time value to
  /// learn its VM died under it.
  std::vector<std::uint64_t> nodeEpoch_;
  /// Reverse maps for recompute-on-loss, dense by FileId (-1 = no producer,
  /// i.e. a pre-staged input). Consumers are a CSR over FileId.
  AVec<JobId> producerOf_;
  AVec<std::uint32_t> consumerBegin_;  ///< CSR offsets, files.size()+1
  AVec<JobId> consumerList_;
  int completed_ = 0;
  bool failed_ = false;
  std::uint64_t retries_ = 0;
  std::uint64_t crashAborts_ = 0;
  std::uint64_t recomputedJobs_ = 0;
  /// Placeholder stream only: the constructor re-seeds from
  /// Options::faultSeed before any draw (wfslint D3 bans literal seeds).
  sim::Rng faultRng_{};
  sim::SimTime startedAt_{};
  sim::SimTime finishedAt_{};
  std::unique_ptr<sim::OneShotEvent> allDone_;
  std::unique_ptr<sim::Broadcast> filesChanged_;
};

}  // namespace wfs::wf
