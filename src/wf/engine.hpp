#pragma once

#include <memory>
#include <vector>

#include "prof/wfprof.hpp"
#include "simcore/resource.hpp"
#include "simcore/rng.hpp"
#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"
#include "storage/base/storage_system.hpp"
#include "wf/planner.hpp"
#include "wf/scheduler.hpp"

namespace wfs::wf {

/// DAGMan-style workflow executor (paper §III.A): releases jobs as their
/// parents finish, hands them to the Condor-style scheduler, and runs each
/// as read-inputs -> compute -> write-outputs against the chosen storage
/// system. Job wrapping for S3 (GET/PUT staging) lives inside the S3
/// storage backend, mirroring the paper's modified Pegasus.
class DagmanEngine {
 public:
  struct Options {
    /// Per-core speed multiplier (from the instance type).
    double coreSpeed = 1.0;
    /// Probability that a job attempt crashes mid-compute (models the
    /// flaky-substrate behaviour the paper hit with PVFS 2.8, which
    /// "could not run without crashes or loss of data").
    double transientFailureProb = 0.0;
    /// DAGMan-style retry budget per job; a job exceeding it fails the
    /// run and the engine emits a rescue DAG.
    int maxRetries = 3;
    std::uint64_t faultSeed = 7;
  };

  DagmanEngine(sim::Simulator& sim, const ExecutableWorkflow& workflow,
               storage::StorageSystem& storage, Scheduler& scheduler,
               std::vector<sim::Resource*> nodeMemory, prof::WfProf* prof,
               const Options& opt);

  /// Runs the whole DAG; completes when the last job finishes.
  [[nodiscard]] sim::Task<void> execute();

  [[nodiscard]] sim::Duration makespan() const { return finishedAt_ - startedAt_; }
  [[nodiscard]] int completedJobs() const { return completed_; }

  /// True if some job exhausted its retries; the DAG did not complete.
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::uint64_t retryCount() const { return retries_; }

  /// DAGMan rescue DAG: the jobs still pending when the run failed, in a
  /// valid execution order — resubmitting them resumes the workflow.
  [[nodiscard]] std::vector<JobId> rescueDag() const;

 private:
  [[nodiscard]] sim::Task<void> runJob(JobId id);
  void submitReadyChildren(JobId finished);

  sim::Simulator* sim_;
  const ExecutableWorkflow* wf_;
  storage::StorageSystem* storage_;
  Scheduler* scheduler_;
  std::vector<sim::Resource*> nodeMemory_;
  prof::WfProf* prof_;
  Options opt_;

  std::vector<int> indegree_;
  std::vector<bool> done_;
  int completed_ = 0;
  bool failed_ = false;
  std::uint64_t retries_ = 0;
  sim::Rng faultRng_{7};
  sim::SimTime startedAt_{};
  sim::SimTime finishedAt_{};
  std::unique_ptr<sim::OneShotEvent> allDone_;
};

}  // namespace wfs::wf
