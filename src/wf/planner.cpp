#include "wf/planner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>

namespace wfs::wf {

Planner::Planner(const TransformationCatalog& tc, const ReplicaCatalog& rc, SiteCatalog site)
    : tc_{&tc}, rc_{&rc}, site_{std::move(site)} {}

void Planner::validate(const AbstractWorkflow& abstract) const {
  // Validate transformations against the site's catalog.
  for (JobId id = 0; id < abstract.dag.jobCount(); ++id) {
    const JobSpec& j = abstract.dag.job(id);
    if (!tc_->has(j.transformation)) {
      throw std::logic_error("planner: transformation not available at site '" +
                             site_.siteName + "': " + j.transformation);
    }
  }
  // Validate that every external input has a registered replica.
  for (const auto& f : abstract.externalInputs) {
    if (!rc_->has(f.lfn)) {
      throw std::logic_error("planner: no replica registered for input: " + f.lfn);
    }
  }
  if (!abstract.dag.isAcyclic()) {
    throw std::logic_error("planner: abstract workflow has a cycle");
  }
}

ExecutableWorkflow Planner::plan(const AbstractWorkflow& abstract, const Options& opt) const {
  validate(abstract);

  ExecutableWorkflow exec;
  exec.name = abstract.name;
  exec.externalInputs = abstract.externalInputs;
  exec.clusterFactor = std::max(1, opt.clusterFactor);
  if (exec.clusterFactor == 1) {
    exec.dag = abstract.dag;
    // Apply the site's cpu factor per transformation.
    for (JobId id = 0; id < exec.dag.jobCount(); ++id) {
      JobSpec& j = exec.dag.job(id);
      j.cpuSeconds *= tc_->get(j.transformation).cpuFactor;
    }
    exec.dag.connectByFiles(exec.externalInputs);
    return exec;
  }
  exec.dag = clusterDag(abstract.dag, exec.clusterFactor);
  for (JobId id = 0; id < exec.dag.jobCount(); ++id) {
    JobSpec& j = exec.dag.job(id);
    j.cpuSeconds *= tc_->get(j.transformation).cpuFactor;
  }
  exec.dag.connectByFiles(exec.externalInputs);
  return exec;
}

ExecutableWorkflow Planner::plan(AbstractWorkflow&& abstract, const Options& opt) const {
  validate(abstract);

  ExecutableWorkflow exec;
  exec.name = std::move(abstract.name);
  exec.clusterFactor = std::max(1, opt.clusterFactor);
  if (exec.clusterFactor == 1) {
    exec.dag = std::move(abstract.dag);
  } else {
    exec.dag = clusterDag(abstract.dag, exec.clusterFactor);
  }
  exec.externalInputs = std::move(abstract.externalInputs);
  for (JobId id = 0; id < exec.dag.jobCount(); ++id) {
    JobSpec& j = exec.dag.job(id);
    j.cpuSeconds *= tc_->get(j.transformation).cpuFactor;
  }
  exec.dag.connectByFiles(exec.externalInputs);
  return exec;
}

Dag Planner::clusterDag(const Dag& dag, int factor) const {
  // Horizontal clustering: merge up to `factor` same-transformation jobs of
  // the same topological level. Level = longest path from a root, so merged
  // jobs can never depend on each other.
  const auto order = dag.topologicalOrder();
  std::vector<int> level(static_cast<std::size_t>(dag.jobCount()), 0);
  for (const JobId id : order) {
    for (const JobId c : dag.children(id)) {
      level[static_cast<std::size_t>(c)] =
          std::max(level[static_cast<std::size_t>(c)], level[static_cast<std::size_t>(id)] + 1);
    }
  }
  std::map<std::pair<std::string, int>, std::vector<JobId>> buckets;
  for (const JobId id : order) {
    const JobSpec& j = dag.job(id);
    buckets[{j.transformation, level[static_cast<std::size_t>(id)]}].push_back(id);
  }

  Dag out;
  for (const auto& [key, ids] : buckets) {
    for (std::size_t base = 0; base < ids.size(); base += static_cast<std::size_t>(factor)) {
      const std::size_t end = std::min(ids.size(), base + static_cast<std::size_t>(factor));
      JobSpec merged;
      merged.transformation = key.first;
      merged.name = "cluster_" + key.first + "_l" + std::to_string(key.second) + "_" +
                    std::to_string(base / static_cast<std::size_t>(factor));
      std::unordered_set<std::string> inSet, outSet;
      for (std::size_t k = base; k < end; ++k) {
        const JobSpec& j = dag.job(ids[k]);
        merged.cpuSeconds += j.cpuSeconds;
        merged.peakMemory = std::max(merged.peakMemory, j.peakMemory);
        for (const auto& f : j.inputs) {
          if (inSet.insert(f.lfn).second) merged.inputs.push_back(f);
        }
        for (const auto& f : j.outputs) {
          if (outSet.insert(f.lfn).second) merged.outputs.push_back(f);
        }
        // Every constituent task still produces its own temporaries.
        merged.scratchFiles.insert(merged.scratchFiles.end(), j.scratchFiles.begin(),
                                   j.scratchFiles.end());
      }
      // A file produced inside the cluster is not an input of the cluster.
      std::erase_if(merged.inputs,
                    [&outSet](const FileSpec& f) { return outSet.contains(f.lfn); });
      out.addJob(std::move(merged));
    }
  }
  return out;
}

ExecutableWorkflow Planner::plan(const AbstractWorkflow& abstract) const {
  return plan(abstract, Options{});
}

}  // namespace wfs::wf
