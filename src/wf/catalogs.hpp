#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simcore/units.hpp"

namespace wfs::wf {

/// Pegasus transformation catalog: which logical executables exist at the
/// execution site and how they behave there.
class TransformationCatalog {
 public:
  struct Entry {
    std::string transformation;
    /// Multiplier on a job's cpuSeconds at this site (1.0 = reference core).
    double cpuFactor = 1.0;
  };

  void add(Entry e);
  [[nodiscard]] bool has(const std::string& transformation) const;
  [[nodiscard]] const Entry& get(const std::string& transformation) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, Entry> entries_;
};

/// Pegasus replica catalog: where logical files already exist. For these
/// experiments inputs are pre-staged into the chosen storage system.
class ReplicaCatalog {
 public:
  void registerReplica(const std::string& lfn, const std::string& site);
  [[nodiscard]] bool has(const std::string& lfn) const { return replicas_.contains(lfn); }
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

 private:
  std::unordered_map<std::string, std::string> replicas_;
};

/// Pegasus site catalog entry for the (single) cloud execution site.
struct SiteCatalog {
  std::string siteName = "ec2";
  int workerNodes = 1;
  int coresPerNode = 8;
  Bytes memoryPerNode = 0;
  std::string storageSystem;
};

}  // namespace wfs::wf
