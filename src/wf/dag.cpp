#include "wf/dag.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

namespace wfs::wf {

void Dag::reserve(int jobCapacity) {
  if (jobCapacity <= 0) return;
  const auto n = static_cast<std::size_t>(jobCapacity);
  jobs_.reserve(n);
  children_.reserve(n);
  parents_.reserve(n);
}

JobId Dag::addJob(JobSpec spec) {
  const JobId id = static_cast<JobId>(jobs_.size());
  spec.id = id;
  jobs_.push_back(std::move(spec));
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

void Dag::addEdge(JobId parent, JobId child) {
  if (parent == child) throw std::logic_error("wf/dag: self-edge");
  auto& kids = children_.at(static_cast<std::size_t>(parent));
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return;  // dedupe
  kids.push_back(child);
  parents_.at(static_cast<std::size_t>(child)).push_back(parent);
}

const JobSpec& Dag::job(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)); }
JobSpec& Dag::job(JobId id) { return jobs_.at(static_cast<std::size_t>(id)); }

const std::vector<JobId>& Dag::children(JobId id) const {
  return children_.at(static_cast<std::size_t>(id));
}
const std::vector<JobId>& Dag::parents(JobId id) const {
  return parents_.at(static_cast<std::size_t>(id));
}

std::vector<JobId> Dag::topologicalOrder() const {
  std::vector<int> indegree(jobs_.size(), 0);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    indegree[i] = static_cast<int>(parents_[i].size());
  }
  std::deque<JobId> ready;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<JobId>(i));
  }
  std::vector<JobId> order;
  order.reserve(jobs_.size());
  while (!ready.empty()) {
    const JobId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const JobId c : children_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  if (order.size() != jobs_.size()) throw std::logic_error("wf/dag: workflow DAG has a cycle");
  return order;
}

bool Dag::isAcyclic() const {
  try {
    (void)topologicalOrder();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void Dag::connectByFiles(const std::vector<FileSpec>& externalInputs) {
  externalInputs_ = externalInputs;
  // Keys are views into jobs_/externalInputs_ LFNs, which are stable for the
  // lifetime of this function — at 10^5-10^6 tasks the owned-string copies
  // (and rehash growth without the reserve) dominated generation time.
  std::size_t outputCount = 0;
  for (const auto& j : jobs_) outputCount += j.outputs.size();
  std::unordered_map<std::string_view, JobId> producer;
  producer.reserve(outputCount);
  for (const auto& j : jobs_) {
    for (const auto& f : j.outputs) {
      auto [it, inserted] = producer.emplace(f.lfn, j.id);
      if (!inserted) {
        throw std::logic_error("wf/dag: two jobs produce the same file: " + f.lfn);
      }
      (void)it;
    }
  }
  std::unordered_set<std::string_view> external;
  external.reserve(externalInputs_.size());
  for (const auto& f : externalInputs_) external.insert(f.lfn);
  for (const auto& j : jobs_) {
    for (const auto& f : j.inputs) {
      if (auto it = producer.find(f.lfn); it != producer.end()) {
        addEdge(it->second, j.id);
      } else if (!external.contains(f.lfn)) {
        throw std::logic_error("wf/dag: input file has no producer and is not external: " + f.lfn);
      }
    }
  }
}

Bytes Dag::totalInputBytes() const {
  Bytes total = 0;
  for (const auto& f : externalInputs_) total += f.size;
  return total;
}

Bytes Dag::totalOutputBytes() const {
  std::unordered_set<std::string> consumed;
  for (const auto& j : jobs_) {
    for (const auto& f : j.inputs) consumed.insert(f.lfn);
  }
  Bytes total = 0;
  for (const auto& j : jobs_) {
    for (const auto& f : j.outputs) {
      if (!consumed.contains(f.lfn)) total += f.size;
    }
  }
  return total;
}

std::size_t Dag::distinctFileCount() const {
  // Named distinctLfns (not `files`): wfslint's D2 index is token-based and
  // repo-wide, so unordered members deserve names that don't collide with
  // ordered locals elsewhere.
  std::unordered_set<std::string> distinctLfns;
  for (const auto& f : externalInputs_) distinctLfns.insert(f.lfn);
  for (const auto& j : jobs_) {
    for (const auto& f : j.outputs) distinctLfns.insert(f.lfn);
  }
  return distinctLfns.size();
}

double Dag::totalCpuSeconds() const {
  double total = 0;
  for (const auto& j : jobs_) total += j.cpuSeconds;
  return total;
}

}  // namespace wfs::wf
