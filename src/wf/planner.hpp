#pragma once

#include <string>
#include <vector>

#include "wf/abstract_workflow.hpp"
#include "wf/catalogs.hpp"

namespace wfs::wf {

/// Concrete plan: the executable DAG after mapping, plus bookkeeping the
/// engine needs.
struct ExecutableWorkflow {
  std::string name;
  Dag dag;
  std::vector<FileSpec> externalInputs;
  /// Jobs per horizontal cluster (1 = no clustering).
  int clusterFactor = 1;
};

/// The Pegasus mapper (paper §III.A): validates the abstract workflow
/// against the catalogs and emits the executable workflow.
///
/// Because the experiments pre-stage all input data and keep outputs in the
/// cloud (§III.C), the plan contains no stage-in/stage-out jobs; the
/// S3-mode GET/PUT job wrapping lives in the storage layer.
class Planner {
 public:
  struct Options {
    /// Horizontal clustering: merge up to `clusterFactor` sibling jobs of
    /// the same transformation into one scheduled job. Pegasus uses this
    /// to amortize scheduling overhead for workflows like Montage with
    /// thousands of short tasks; 1 disables it (the paper's setup).
    int clusterFactor = 1;
  };

  Planner(const TransformationCatalog& tc, const ReplicaCatalog& rc, SiteCatalog site);

  /// Throws std::logic_error if a transformation or input replica is
  /// missing, or the DAG is malformed.
  [[nodiscard]] ExecutableWorkflow plan(const AbstractWorkflow& abstract,
                                        const Options& opt) const;
  [[nodiscard]] ExecutableWorkflow plan(const AbstractWorkflow& abstract) const;
  /// Consuming overload for callers done with the abstract workflow: at
  /// clusterFactor 1 the DAG moves straight into the plan instead of
  /// deep-copying 10^5-10^6 JobSpecs (strings and file vectors included) —
  /// at WfCommons scale that copy was a measurable slice of a run.
  [[nodiscard]] ExecutableWorkflow plan(AbstractWorkflow&& abstract, const Options& opt) const;

 private:
  void validate(const AbstractWorkflow& abstract) const;
  [[nodiscard]] Dag clusterDag(const Dag& dag, int factor) const;

  const TransformationCatalog* tc_;
  const ReplicaCatalog* rc_;
  SiteCatalog site_;
};

}  // namespace wfs::wf
