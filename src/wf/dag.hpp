#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/file_id.hpp"
#include "simcore/units.hpp"

namespace wfs::wf {

using JobId = int;

/// A logical file flowing between jobs.
struct FileSpec {
  std::string lfn;  // logical file name
  Bytes size = 0;
  /// Interned id of `lfn` in the simulation's FileIdTable; invalid until the
  /// engine binds the workflow to a simulator. Everything after DAG
  /// construction (storage ops, locality ranking, recovery maps) runs on
  /// this id — the string survives only for export and error text.
  sim::FileId id{};

  friend bool operator==(const FileSpec& a, const FileSpec& b) {
    return a.lfn == b.lfn && a.size == b.size;
  }
};

/// One executable task of a workflow.
struct JobSpec {
  JobId id = -1;
  std::string name;            // unique instance name, e.g. "mProjectPP_0042"
  std::string transformation;  // logical executable, e.g. "mProjectPP"
  double cpuSeconds = 0.0;     // pure compute demand on one core
  Bytes peakMemory = 0;        // resident set the scheduler must reserve
  std::vector<FileSpec> inputs;
  std::vector<FileSpec> outputs;
  /// Intra-job intermediates: several Broadband transformations are "mini
  /// workflows" of executables run in sequence (paper §V.C), writing files
  /// that the next executable of the SAME job immediately re-reads. On a
  /// shared file system these hit the shared store (NUFA keeps them on the
  /// local brick — its whole advantage); in S3 mode the wrapper leaves
  /// them on the local disk and never uploads them.
  std::vector<FileSpec> scratchFiles;
};

/// Directed acyclic graph of jobs. Edges mean "parent must finish first";
/// most are derived from producer -> consumer file pairs.
class Dag {
 public:
  JobId addJob(JobSpec spec);
  void addEdge(JobId parent, JobId child);

  /// Preallocates the job and adjacency tables; bulk builders (trace import,
  /// synthetic generation at 10^5-10^6 tasks) call this once up front so
  /// addJob never regrows mid-construction.
  void reserve(int jobCapacity);

  [[nodiscard]] const JobSpec& job(JobId id) const;
  [[nodiscard]] JobSpec& job(JobId id);
  [[nodiscard]] int jobCount() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] const std::vector<JobId>& children(JobId id) const;
  [[nodiscard]] const std::vector<JobId>& parents(JobId id) const;

  /// True if the graph is acyclic (Kahn's algorithm).
  [[nodiscard]] bool isAcyclic() const;

  /// Jobs in a valid topological order; throws std::logic_error on a cycle.
  [[nodiscard]] std::vector<JobId> topologicalOrder() const;

  /// Derives edges from file producer/consumer relationships. Every input
  /// not produced by some job must appear in `externalInputs` (throws
  /// std::logic_error otherwise). Call once after all jobs are added.
  void connectByFiles(const std::vector<FileSpec>& externalInputs);

  // Aggregate statistics (paper §II reports these per application).
  [[nodiscard]] Bytes totalInputBytes() const;   // external inputs read
  [[nodiscard]] Bytes totalOutputBytes() const;  // files never consumed
  [[nodiscard]] std::size_t distinctFileCount() const;
  [[nodiscard]] double totalCpuSeconds() const;

 private:
  std::vector<JobSpec> jobs_;
  std::vector<std::vector<JobId>> children_;
  std::vector<std::vector<JobId>> parents_;
  std::vector<FileSpec> externalInputs_;
};

}  // namespace wfs::wf
