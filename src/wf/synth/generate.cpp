#include "wf/synth/generate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace wfs::wf::synth {

namespace {

constexpr const char* kSrcTx = "synth_src";
constexpr const char* kStageTx = "synth_stage";
constexpr const char* kSinkTx = "synth_sink";

/// Output LFN of task `t`; short on purpose — at 10^6 tasks the intern
/// table stores every one of these. Formatted in one pass (single
/// construction, SSO-sized up to 10^6) rather than via concatenation.
std::string taskFile(int t) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "synth/f_%d", t);
  return {buf, static_cast<std::size_t>(n)};
}

double drawCpu(const SynthSpec& spec, sim::Rng& cpuRng) {
  return spec.cpuSeconds * cpuRng.uniform(0.5, 1.5);
}

Bytes drawSize(const SynthSpec& spec, sim::Rng& sizeRng) {
  const double v = static_cast<double>(spec.fileBytes) * sizeRng.uniform(0.5, 1.5);
  return std::max<Bytes>(1, static_cast<Bytes>(std::llround(v)));
}

JobSpec baseJob(int t, const char* tx, const SynthSpec& spec, sim::Rng& cpuRng) {
  JobSpec j;
  char buf[48];
  const int n = std::snprintf(buf, sizeof buf, "%s_%d", tx, t);
  j.name.assign(buf, static_cast<std::size_t>(n));
  j.transformation = tx;
  j.cpuSeconds = drawCpu(spec, cpuRng);
  return j;
}

}  // namespace

AbstractWorkflow makeSynthetic(const SynthSpec& spec, sim::Rng& rng) {
  // One child stream per concern: topology choices can never shift the
  // runtime/size draws, so e.g. layered:fanin=2 and fanin=3 agree on every
  // task's runtime.
  sim::Rng topoRng = rng.fork();
  sim::Rng cpuRng = rng.fork();
  sim::Rng sizeRng = rng.fork();

  AbstractWorkflow awf;
  awf.name = spec.canonical();
  const FileSpec stagedInput{"synth/in", spec.fileBytes, {}};
  awf.externalInputs.push_back(stagedInput);

  Dag& dag = awf.dag;
  dag.reserve(spec.tasks);

  switch (spec.topology) {
    case SynthSpec::Topology::kChain: {
      for (int t = 0; t < spec.tasks; ++t) {
        const char* tx = t == 0 ? kSrcTx : (t == spec.tasks - 1 ? kSinkTx : kStageTx);
        JobSpec j = baseJob(t, tx, spec, cpuRng);
        j.inputs = {t == 0 ? stagedInput : dag.job(t - 1).outputs.front()};
        j.outputs = {{taskFile(t), drawSize(spec, sizeRng), {}}};
        dag.addJob(std::move(j));
      }
      break;
    }
    case SynthSpec::Topology::kFanout: {
      JobSpec src = baseJob(0, kSrcTx, spec, cpuRng);
      src.inputs = {stagedInput};
      src.outputs = {{taskFile(0), drawSize(spec, sizeRng), {}}};
      const FileSpec rootFile = src.outputs.front();
      dag.addJob(std::move(src));
      for (int t = 1; t <= spec.width; ++t) {
        JobSpec j = baseJob(t, kSinkTx, spec, cpuRng);
        j.inputs = {rootFile};
        j.outputs = {{taskFile(t), drawSize(spec, sizeRng), {}}};
        dag.addJob(std::move(j));
      }
      break;
    }
    case SynthSpec::Topology::kFanin: {
      JobSpec sink = baseJob(spec.width, kSinkTx, spec, cpuRng);
      sink.inputs.reserve(static_cast<std::size_t>(spec.width));
      for (int t = 0; t < spec.width; ++t) {
        JobSpec j = baseJob(t, kSrcTx, spec, cpuRng);
        j.inputs = {stagedInput};
        j.outputs = {{taskFile(t), drawSize(spec, sizeRng), {}}};
        sink.inputs.push_back(j.outputs.front());
        dag.addJob(std::move(j));
      }
      sink.outputs = {{taskFile(spec.width), drawSize(spec, sizeRng), {}}};
      dag.addJob(std::move(sink));
      break;
    }
    case SynthSpec::Topology::kDiamond: {
      JobSpec src = baseJob(0, kSrcTx, spec, cpuRng);
      src.inputs = {stagedInput};
      src.outputs = {{taskFile(0), drawSize(spec, sizeRng), {}}};
      const FileSpec rootFile = src.outputs.front();
      dag.addJob(std::move(src));
      JobSpec sink = baseJob(spec.width + 1, kSinkTx, spec, cpuRng);
      sink.inputs.reserve(static_cast<std::size_t>(spec.width));
      for (int t = 1; t <= spec.width; ++t) {
        JobSpec j = baseJob(t, kStageTx, spec, cpuRng);
        j.inputs = {rootFile};
        j.outputs = {{taskFile(t), drawSize(spec, sizeRng), {}}};
        sink.inputs.push_back(j.outputs.front());
        dag.addJob(std::move(j));
      }
      sink.outputs = {{taskFile(spec.width + 1), drawSize(spec, sizeRng), {}}};
      dag.addJob(std::move(sink));
      break;
    }
    case SynthSpec::Topology::kLayered: {
      // Row-major layers of `width`, last layer possibly ragged. Each task
      // past layer 0 reads one deterministic stride parent plus fanin-1
      // random draws from the previous layer (deduped).
      int layerStart = 0;
      int prevStart = 0;
      int prevCount = 0;
      // Hoisted out of the task loop: at 10^5-10^6 tasks a fresh vector per
      // task is pure allocator churn.
      std::vector<int> parentRows;
      parentRows.reserve(static_cast<std::size_t>(spec.fanin));
      for (int t = 0; t < spec.tasks; ++t) {
        const int j = t - layerStart;
        if (j == spec.width) {
          prevStart = layerStart;
          prevCount = spec.width;
          layerStart = t;
        }
        const int col = t - layerStart;
        const bool lastLayer = layerStart + spec.width >= spec.tasks;
        const char* tx = layerStart == 0 ? kSrcTx : (lastLayer ? kSinkTx : kStageTx);
        JobSpec job = baseJob(t, tx, spec, cpuRng);
        if (layerStart == 0) {
          job.inputs = {stagedInput};
        } else {
          parentRows.clear();
          parentRows.push_back(prevStart + col % prevCount);
          for (int d = 1; d < spec.fanin; ++d) {
            const int pick =
                prevStart + static_cast<int>(topoRng.uniformInt(0, prevCount - 1));
            if (std::find(parentRows.begin(), parentRows.end(), pick) == parentRows.end()) {
              parentRows.push_back(pick);
            }
          }
          job.inputs.reserve(parentRows.size());
          for (const int p : parentRows) job.inputs.push_back(dag.job(p).outputs.front());
        }
        job.outputs = {{taskFile(t), drawSize(spec, sizeRng), {}}};
        dag.addJob(std::move(job));
      }
      break;
    }
  }

  awf.finalize();
  return awf;
}

void registerSynthTransformations(TransformationCatalog& tc) {
  for (const char* tx : {kSrcTx, kStageTx, kSinkTx}) tc.add({tx, 1.0});
}

}  // namespace wfs::wf::synth
