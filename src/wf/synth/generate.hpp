#pragma once

// Seeded synthetic DAG generator.
//
// Turns a resolved SynthSpec into an AbstractWorkflow the same way the
// built-in paper apps do: jobs named per instance, transformations drawn
// from a tiny fixed catalog (synth_src / synth_stage / synth_sink), file
// flow finalized into dependency edges. Determinism contract: equal
// (spec.canonical(), seed) pairs generate byte-identical workflows —
// runtimes and file sizes are jittered from forked child streams so no
// topology choice can perturb the size draws.
//
// Built to scale: Dag::reserve() preallocates the job/adjacency tables, so
// a layered 10^6-task DAG constructs without vector regrowth (ROADMAP
// item 5's scale probe; see bench/bench_synth_scale.cpp).

#include "simcore/rng.hpp"
#include "wf/abstract_workflow.hpp"
#include "wf/catalogs.hpp"
#include "wf/synth/spec.hpp"

namespace wfs::wf::synth {

/// Generates the workflow described by `spec`. `rng` is forked per concern
/// (topology / runtimes / sizes); pass a stream forked from the experiment
/// seed, never a literal.
[[nodiscard]] AbstractWorkflow makeSynthetic(const SynthSpec& spec, sim::Rng& rng);

/// Registers the three synthetic transformations in `tc`.
void registerSynthTransformations(TransformationCatalog& tc);

}  // namespace wfs::wf::synth
