#pragma once

// Synthetic-workflow SPEC grammar.
//
// A spec is one token: `topology[:key=value,...]`, e.g.
//   chain:tasks=1000
//   diamond:width=16,mix=data
//   layered:tasks=100000,width=500,fanin=3,cpu=2,file=4MB
//
// Topologies: chain | fanout | fanin | diamond | layered.
// Keys (per-topology applicability is enforced):
//   tasks   total task count            (chain, layered; 1..2000000)
//   width   breadth of the fan/layer    (fanout, fanin, diamond, layered)
//   layers  layer count                 (layered; alternative to width)
//   fanin   parents per layered task    (layered; 1..64, default 2)
//   mix     balanced | data | cpu       (sets cpu/file defaults)
//   cpu     mean task runtime, seconds  (overrides the mix default)
//   file    mean file size, bytes with optional KB/MB/GB suffix
//
// parse() resolves every default, so canonical() names the *fully resolved*
// workflow — that string is what lands in JSONL (`synth_spec`) and must be
// stable: two specs with equal canonical() generate identical DAGs under
// equal seeds. The full grammar with examples lives in docs/WORKFLOWS.md.

#include <stdexcept>
#include <string>
#include <string_view>

#include "simcore/units.hpp"

namespace wfs::wf::synth {

/// Spec rejection; `what()` is one actionable line (no spec prefix — the
/// CLI prepends the offending flag value verbatim).
class SynthError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SynthSpec {
  enum class Topology { kChain, kFanout, kFanin, kDiamond, kLayered };
  enum class Mix { kBalanced, kData, kCpu };

  Topology topology = Topology::kChain;
  Mix mix = Mix::kBalanced;
  int tasks = 0;            // resolved total task count
  int width = 0;            // resolved breadth (0 where inapplicable: chain)
  int layers = 0;           // resolved layer count (layered only)
  int fanin = 2;            // parents per layered task
  double cpuSeconds = 0.0;  // mean per-task runtime
  Bytes fileBytes = 0;      // mean per-file size

  /// Parses and fully resolves a spec string; throws SynthError.
  static SynthSpec parse(std::string_view text);

  /// Normalized spelling with all defaults resolved; deterministic, used as
  /// the workflow name and the JSONL `synth_spec` value.
  [[nodiscard]] std::string canonical() const;
};

}  // namespace wfs::wf::synth
