#include "wf/synth/spec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wfs::wf::synth {

namespace {

constexpr int kMaxTasks = 2'000'000;
/// Fan hubs get O(width^2) edge-dedup work in Dag::addEdge; layered specs
/// scale to millions of tasks, so wide one-hub topologies are capped.
constexpr int kMaxFanWidth = 10'000;

[[noreturn]] void reject(const std::string& msg) { throw SynthError(msg); }

long long parseCount(std::string_view value, const std::string& key) {
  const std::string copy(value);
  char* end = nullptr;
  const long long v = std::strtoll(copy.c_str(), &end, 10);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    reject(key + " expects an integer, got '" + copy + "'");
  }
  return v;
}

double parseSeconds(std::string_view value) {
  const std::string copy(value);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size() || !std::isfinite(v) || v <= 0.0) {
    reject("cpu expects a positive number of seconds, got '" + copy + "'");
  }
  return v;
}

Bytes parseSize(std::string_view value) {
  Bytes unit = 1;
  std::string_view digits = value;
  if (value.size() > 2) {
    const std::string_view suffix = value.substr(value.size() - 2);
    if (suffix == "KB") unit = 1000;
    if (suffix == "MB") unit = 1000 * 1000;
    if (suffix == "GB") unit = 1000 * 1000 * 1000;
    if (unit != 1) digits = value.substr(0, value.size() - 2);
  }
  const std::string copy(digits);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size() || !std::isfinite(v) || v <= 0.0) {
    reject("file expects a positive size (optionally suffixed KB/MB/GB), got '" +
           std::string(value) + "'");
  }
  const double scaled = v * static_cast<double>(unit);
  if (scaled > 9.0e15) reject("file size '" + std::string(value) + "' is implausibly large");
  const Bytes rounded = static_cast<Bytes>(std::llround(scaled));
  if (rounded < 1) reject("file size '" + std::string(value) + "' rounds below one byte");
  return rounded;
}

const char* topologyName(SynthSpec::Topology t) {
  switch (t) {
    case SynthSpec::Topology::kChain: return "chain";
    case SynthSpec::Topology::kFanout: return "fanout";
    case SynthSpec::Topology::kFanin: return "fanin";
    case SynthSpec::Topology::kDiamond: return "diamond";
    case SynthSpec::Topology::kLayered: return "layered";
  }
  return "?";
}

const char* mixName(SynthSpec::Mix m) {
  switch (m) {
    case SynthSpec::Mix::kBalanced: return "balanced";
    case SynthSpec::Mix::kData: return "data";
    case SynthSpec::Mix::kCpu: return "cpu";
  }
  return "?";
}

std::string formatSize(Bytes b) {
  const Bytes giga = 1000LL * 1000 * 1000;
  const Bytes mega = 1000LL * 1000;
  if (b % giga == 0) return std::to_string(b / giga) + "GB";
  if (b % mega == 0) return std::to_string(b / mega) + "MB";
  if (b % 1000 == 0) return std::to_string(b / 1000) + "KB";
  return std::to_string(b);
}

std::string formatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

}  // namespace

SynthSpec SynthSpec::parse(std::string_view text) {
  if (text.empty()) reject("empty spec (expected topology[:key=value,...])");

  std::string_view head = text;
  std::string_view params;
  if (const std::size_t colon = text.find(':'); colon != std::string_view::npos) {
    head = text.substr(0, colon);
    params = text.substr(colon + 1);
  }

  SynthSpec spec;
  if (head == "chain") {
    spec.topology = Topology::kChain;
  } else if (head == "fanout") {
    spec.topology = Topology::kFanout;
  } else if (head == "fanin") {
    spec.topology = Topology::kFanin;
  } else if (head == "diamond") {
    spec.topology = Topology::kDiamond;
  } else if (head == "layered") {
    spec.topology = Topology::kLayered;
  } else {
    reject("unknown topology '" + std::string(head) +
           "' (expected chain|fanout|fanin|diamond|layered)");
  }

  const bool isLayered = spec.topology == Topology::kLayered;
  const bool isChain = spec.topology == Topology::kChain;

  long long tasksGiven = -1;
  long long widthGiven = -1;
  long long layersGiven = -1;
  long long faninGiven = -1;
  double cpuGiven = -1.0;
  Bytes fileGiven = -1;
  std::vector<std::string> seenKeys;

  std::string_view rest = params;
  while (!rest.empty()) {
    std::string_view token = rest;
    if (const std::size_t comma = rest.find(','); comma != std::string_view::npos) {
      token = rest.substr(0, comma);
      rest = rest.substr(comma + 1);
    } else {
      rest = {};
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      reject("malformed parameter '" + std::string(token) + "' (expected key=value)");
    }
    const std::string key(token.substr(0, eq));
    const std::string_view value = token.substr(eq + 1);
    for (const std::string& prior : seenKeys) {
      if (prior == key) reject("duplicate parameter '" + key + "'");
    }
    seenKeys.push_back(key);

    if (key == "tasks") {
      if (!isChain && !isLayered) reject("'tasks' only applies to chain and layered topologies");
      tasksGiven = parseCount(value, key);
      if (tasksGiven < 1 || tasksGiven > kMaxTasks) {
        reject("tasks must be in [1, " + std::to_string(kMaxTasks) + "], got '" +
               std::string(value) + "'");
      }
    } else if (key == "width") {
      if (isChain) reject("'width' does not apply to the chain topology");
      widthGiven = parseCount(value, key);
      const long long cap = isLayered ? kMaxTasks : kMaxFanWidth;
      if (widthGiven < 1 || widthGiven > cap) {
        reject("width must be in [1, " + std::to_string(cap) + "], got '" +
               std::string(value) + "'");
      }
    } else if (key == "layers") {
      if (!isLayered) reject("'layers' only applies to the layered topology");
      layersGiven = parseCount(value, key);
      if (layersGiven < 1 || layersGiven > kMaxTasks) {
        reject("layers must be in [1, " + std::to_string(kMaxTasks) + "], got '" +
               std::string(value) + "'");
      }
    } else if (key == "fanin") {
      if (!isLayered) reject("'fanin' only applies to the layered topology");
      faninGiven = parseCount(value, key);
      if (faninGiven < 1 || faninGiven > 64) {
        reject("fanin must be in [1, 64], got '" + std::string(value) + "'");
      }
    } else if (key == "mix") {
      if (value == "balanced") {
        spec.mix = Mix::kBalanced;
      } else if (value == "data") {
        spec.mix = Mix::kData;
      } else if (value == "cpu") {
        spec.mix = Mix::kCpu;
      } else {
        reject("unknown mix '" + std::string(value) + "' (expected balanced|data|cpu)");
      }
    } else if (key == "cpu") {
      cpuGiven = parseSeconds(value);
    } else if (key == "file") {
      fileGiven = parseSize(value);
    } else {
      reject("unknown parameter '" + key +
             "' (expected tasks|width|layers|fanin|mix|cpu|file)");
    }
  }

  // Mix presets, then explicit overrides.
  switch (spec.mix) {
    case Mix::kBalanced:
      spec.cpuSeconds = 10.0;
      spec.fileBytes = 16_MB;
      break;
    case Mix::kData:  // short tasks pushing big files: stresses storage
      spec.cpuSeconds = 1.0;
      spec.fileBytes = 64_MB;
      break;
    case Mix::kCpu:  // long tasks, token files: storage nearly idle
      spec.cpuSeconds = 120.0;
      spec.fileBytes = 1_MB;
      break;
  }
  if (cpuGiven > 0.0) spec.cpuSeconds = cpuGiven;
  if (fileGiven > 0) spec.fileBytes = fileGiven;

  // Topology-specific shape resolution.
  switch (spec.topology) {
    case Topology::kChain:
      spec.tasks = static_cast<int>(tasksGiven > 0 ? tasksGiven : 100);
      break;
    case Topology::kFanout:
    case Topology::kFanin:
      spec.width = static_cast<int>(widthGiven > 0 ? widthGiven : 100);
      spec.tasks = spec.width + 1;
      break;
    case Topology::kDiamond:
      spec.width = static_cast<int>(widthGiven > 0 ? widthGiven : 100);
      spec.tasks = spec.width + 2;
      break;
    case Topology::kLayered: {
      spec.tasks = static_cast<int>(tasksGiven > 0 ? tasksGiven : 100);
      if (widthGiven > 0) {
        spec.width = static_cast<int>(widthGiven);
      } else if (layersGiven > 0) {
        spec.width = static_cast<int>((static_cast<long long>(spec.tasks) + layersGiven - 1) /
                                      layersGiven);
        if (spec.width < 1) spec.width = 1;
      } else {
        spec.width = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(spec.tasks))));
      }
      spec.layers = (spec.tasks + spec.width - 1) / spec.width;
      if (layersGiven > 0 && layersGiven != spec.layers) {
        reject("layers=" + std::to_string(layersGiven) + " is inconsistent with tasks=" +
               std::to_string(spec.tasks) + ",width=" + std::to_string(spec.width) +
               " (which give " + std::to_string(spec.layers) + " layers)");
      }
      if (faninGiven > 0) spec.fanin = static_cast<int>(faninGiven);
      break;
    }
  }
  return spec;
}

std::string SynthSpec::canonical() const {
  std::string out = topologyName(topology);
  out += ':';
  switch (topology) {
    case Topology::kChain:
      out += "tasks=" + std::to_string(tasks);
      break;
    case Topology::kFanout:
    case Topology::kFanin:
    case Topology::kDiamond:
      out += "width=" + std::to_string(width);
      break;
    case Topology::kLayered:
      out += "tasks=" + std::to_string(tasks) + ",width=" + std::to_string(width) +
             ",fanin=" + std::to_string(fanin);
      break;
  }
  out += ",mix=";
  out += mixName(mix);
  out += ",cpu=" + formatSeconds(cpuSeconds);
  out += ",file=" + formatSize(fileBytes);
  return out;
}

}  // namespace wfs::wf::synth
