#include "wf/import/wfcommons.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "wf/import/json.hpp"

namespace wfs::wf::import {

namespace {

[[noreturn]] void bail(const std::string& source, const std::string& msg) {
  throw ImportError(source + ": " + msg);
}

/// Sizes arrive as JSON numbers (doubles). Anything that is not an exact
/// non-negative byte count is a trace bug we refuse to guess around.
Bytes byteCount(double v, const std::string& ctx, const std::string& source) {
  if (!std::isfinite(v) || v < 0.0) {
    bail(source, ctx + ": size must be a finite non-negative number");
  }
  if (v > 9.0e15) {  // beyond double's exact-integer range; also ~9 PB
    bail(source, ctx + ": size " + std::to_string(v) + " overflows the exact 2^53-byte range");
  }
  if (std::fabs(v - std::nearbyint(v)) > 0.0) {
    bail(source, ctx + ": size must be a whole number of bytes");
  }
  return static_cast<Bytes>(v);
}

std::string stringMember(const JsonValue& obj, const char* key, const std::string& ctx,
                         const std::string& source) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) bail(source, ctx + ": missing required field '" + key + "'");
  if (!v->isString()) bail(source, ctx + ": field '" + key + "' must be a string");
  return v->text;
}

/// Accumulates one task's file list, cross-checking sizes against every
/// earlier mention of the same logical name anywhere in the trace.
class FileTable {
 public:
  explicit FileTable(const std::string& source) : source_{source} {}

  FileSpec make(const std::string& lfn, Bytes size, const std::string& ctx) {
    if (lfn.empty()) bail(source_, ctx + ": file name must be non-empty");
    auto [slot, inserted] = sizeByLfn_.try_emplace(lfn, size);
    if (!inserted && slot->second != size) {
      bail(source_, ctx + ": file '" + lfn + "' declared with conflicting sizes " +
                        std::to_string(slot->second) + " and " + std::to_string(size));
    }
    return FileSpec{lfn, size, {}};
  }

 private:
  const std::string& source_;
  std::map<std::string, Bytes> sizeByLfn_;  // lookup + conflict detection only
};

/// Context shared by both schema shapes while tasks are being translated.
struct ImportScratch {
  const std::string& source;
  FileTable files;
  std::map<std::string, Bytes> externalSizeById;     // v1.4 specification.files
  std::map<std::string, double> runtimeById;         // v1.4 execution.tasks
  std::map<std::string, JobId> rowByTaskId;
  std::vector<std::pair<JobId, std::string>> parentRefs;  // (child row, parent task id)

  explicit ImportScratch(const std::string& src) : source{src}, files{src} {}
};

/// v1.0–1.3 file entry: {"link": "input"|"output", "name"|"id"|"file": lfn,
/// "size"|"sizeInBytes": bytes}.
void addLegacyFiles(const JsonValue& task, JobSpec& job, ImportScratch& sc,
                    const std::string& ctx) {
  const JsonValue* list = task.find("files");
  if (list == nullptr) return;
  if (!list->isArray()) bail(sc.source, ctx + ": field 'files' must be an array");
  for (std::size_t i = 0; i < list->items.size(); ++i) {
    const JsonValue& entry = list->items[i];
    const std::string fctx = ctx + ", files[" + std::to_string(i) + "]";
    if (!entry.isObject()) bail(sc.source, fctx + ": must be an object");
    const std::string link = stringMember(entry, "link", fctx, sc.source);
    const JsonValue* nameV = entry.find("name");
    if (nameV == nullptr) nameV = entry.find("id");
    if (nameV == nullptr) nameV = entry.find("file");
    if (nameV == nullptr || !nameV->isString()) {
      bail(sc.source, fctx + ": missing file name (need 'name', 'id', or 'file' string)");
    }
    const JsonValue* sizeV = entry.find("sizeInBytes");
    if (sizeV == nullptr) sizeV = entry.find("size");
    if (sizeV == nullptr || !sizeV->isNumber()) {
      bail(sc.source, fctx + ": missing numeric 'size' / 'sizeInBytes'");
    }
    FileSpec f = sc.files.make(nameV->text, byteCount(sizeV->number, fctx, sc.source), fctx);
    if (link == "input") {
      job.inputs.push_back(std::move(f));
    } else if (link == "output") {
      job.outputs.push_back(std::move(f));
    } else {
      bail(sc.source, fctx + ": link must be 'input' or 'output', got '" + link + "'");
    }
  }
}

/// v1.4+ file references: arrays of string ids resolved against
/// workflow.specification.files.
void addReferencedFiles(const JsonValue& task, const char* key, std::vector<FileSpec>& dest,
                        ImportScratch& sc, const std::string& ctx) {
  const JsonValue* list = task.find(key);
  if (list == nullptr) return;
  if (!list->isArray()) bail(sc.source, ctx + ": field '" + key + "' must be an array");
  for (const JsonValue& ref : list->items) {
    if (!ref.isString()) bail(sc.source, ctx + ": entries of '" + key + "' must be file-id strings");
    const auto sizeIt = sc.externalSizeById.find(ref.text);
    if (sizeIt == sc.externalSizeById.end()) {
      bail(sc.source, ctx + ": file '" + ref.text +
                          "' is not declared in workflow.specification.files");
    }
    dest.push_back(sc.files.make(ref.text, sizeIt->second, ctx));
  }
}

/// One task object (either shape) -> one Dag job plus pending parent refs.
void importTask(const JsonValue& task, std::size_t index, Dag& dag, ImportScratch& sc) {
  std::string ctx = "task [" + std::to_string(index) + "]";
  if (!task.isObject()) bail(sc.source, ctx + ": must be an object");
  // Identity: "id" when present (v1.3+ instances, v1.4 spec tasks), else
  // "name" (early 1.x traces); either alone is enough.
  std::string taskName;
  if (const JsonValue* nameV = task.find("name"); nameV != nullptr) {
    if (!nameV->isString()) bail(sc.source, ctx + ": field 'name' must be a string");
    taskName = nameV->text;
  }
  std::string taskId;
  if (const JsonValue* idV = task.find("id"); idV != nullptr) {
    if (!idV->isString()) bail(sc.source, ctx + ": field 'id' must be a string");
    taskId = idV->text;
  }
  if (taskId.empty()) taskId = taskName;
  if (taskName.empty()) taskName = taskId;
  if (taskId.empty()) bail(sc.source, ctx + ": missing required field 'name' (or 'id')");
  ctx = "task '" + taskId + "'";

  JobSpec job;
  job.name = taskId;
  const JsonValue* catV = task.find("category");
  if (catV != nullptr && catV->isString() && !catV->text.empty()) {
    job.transformation = catV->text;
  } else {
    job.transformation = taskName;
  }

  const JsonValue* rtV = task.find("runtimeInSeconds");
  if (rtV == nullptr) rtV = task.find("runtime");
  if (rtV != nullptr) {
    if (!rtV->isNumber()) bail(sc.source, ctx + ": runtime must be a number");
    job.cpuSeconds = rtV->number;
  } else {
    const auto execIt = sc.runtimeById.find(taskId);
    if (execIt == sc.runtimeById.end()) {
      bail(sc.source, ctx + ": no runtime (need task 'runtime'/'runtimeInSeconds' or a "
                          "workflow.execution.tasks entry)");
    }
    job.cpuSeconds = execIt->second;
  }
  if (!std::isfinite(job.cpuSeconds) || job.cpuSeconds < 0.0) {
    bail(sc.source, ctx + ": runtime must be finite and >= 0");
  }

  const JsonValue* memBytesV = task.find("memoryInBytes");
  if (memBytesV != nullptr) {
    if (!memBytesV->isNumber()) bail(sc.source, ctx + ": memoryInBytes must be a number");
    job.peakMemory = byteCount(memBytesV->number, ctx + " memoryInBytes", sc.source);
  } else if (const JsonValue* memKbV = task.find("memory"); memKbV != nullptr) {
    // Legacy schemas record resident set in KB.
    if (!memKbV->isNumber()) bail(sc.source, ctx + ": memory must be a number");
    job.peakMemory = byteCount(memKbV->number, ctx + " memory", sc.source) * 1024;
  }

  addLegacyFiles(task, job, sc, ctx);
  addReferencedFiles(task, "inputFiles", job.inputs, sc, ctx);
  addReferencedFiles(task, "outputFiles", job.outputs, sc, ctx);

  const JsonValue* parentsV = task.find("parents");
  std::vector<std::string> parentIds;
  if (parentsV != nullptr) {
    if (!parentsV->isArray()) bail(sc.source, ctx + ": field 'parents' must be an array");
    for (const JsonValue& p : parentsV->items) {
      if (!p.isString()) bail(sc.source, ctx + ": parents entries must be task-id strings");
      if (p.text == taskId) bail(sc.source, ctx + ": lists itself as a parent");
      parentIds.push_back(p.text);
    }
  }

  const JobId row = dag.addJob(std::move(job));
  if (!sc.rowByTaskId.try_emplace(taskId, row).second) {
    bail(sc.source, "duplicate task id '" + taskId + "'");
  }
  for (std::string& pid : parentIds) sc.parentRefs.emplace_back(row, std::move(pid));
}

/// workflow.specification.files: [{"id": ..., "sizeInBytes": ...}].
void loadSpecificationFiles(const JsonValue& spec, ImportScratch& sc) {
  const JsonValue* list = spec.find("files");
  if (list == nullptr) return;
  if (!list->isArray()) bail(sc.source, "workflow.specification.files must be an array");
  for (std::size_t i = 0; i < list->items.size(); ++i) {
    const JsonValue& entry = list->items[i];
    const std::string fctx = "specification.files[" + std::to_string(i) + "]";
    if (!entry.isObject()) bail(sc.source, fctx + ": must be an object");
    const std::string fileId = stringMember(entry, "id", fctx, sc.source);
    const JsonValue* sizeV = entry.find("sizeInBytes");
    if (sizeV == nullptr) sizeV = entry.find("size");
    if (sizeV == nullptr || !sizeV->isNumber()) {
      bail(sc.source, fctx + " ('" + fileId + "'): missing numeric 'sizeInBytes'");
    }
    const Bytes size = byteCount(sizeV->number, fctx + " ('" + fileId + "')", sc.source);
    if (!sc.externalSizeById.try_emplace(fileId, size).second) {
      bail(sc.source, fctx + ": duplicate file id '" + fileId + "'");
    }
  }
}

/// workflow.execution.tasks: [{"id": ..., "runtimeInSeconds": ...}].
void loadExecutionRuntimes(const JsonValue& workflow, ImportScratch& sc) {
  const JsonValue* exec = workflow.find("execution");
  if (exec == nullptr || !exec->isObject()) return;
  const JsonValue* list = exec->find("tasks");
  if (list == nullptr || !list->isArray()) return;
  for (std::size_t i = 0; i < list->items.size(); ++i) {
    const JsonValue& entry = list->items[i];
    const std::string ectx = "execution.tasks[" + std::to_string(i) + "]";
    if (!entry.isObject()) bail(sc.source, ectx + ": must be an object");
    const std::string taskRef = stringMember(entry, "id", ectx, sc.source);
    const JsonValue* rtV = entry.find("runtimeInSeconds");
    if (rtV == nullptr) rtV = entry.find("runtime");
    if (rtV == nullptr || !rtV->isNumber()) {
      bail(sc.source, ectx + " ('" + taskRef + "'): missing numeric 'runtimeInSeconds'");
    }
    if (!sc.runtimeById.try_emplace(taskRef, rtV->number).second) {
      bail(sc.source, ectx + ": duplicate execution entry for task '" + taskRef + "'");
    }
  }
}

}  // namespace

AbstractWorkflow importWfCommons(std::string_view jsonText, const std::string& source) {
  JsonValue root;
  try {
    root = parseJson(jsonText);
  } catch (const JsonError& e) {
    bail(source, std::string("invalid JSON at ") + e.what());
  }
  if (!root.isObject()) bail(source, "top-level JSON value must be an object");
  const JsonValue* workflow = root.find("workflow");
  if (workflow == nullptr || !workflow->isObject()) {
    bail(source, "missing required 'workflow' object");
  }

  ImportScratch sc{source};
  loadExecutionRuntimes(*workflow, sc);

  // Locate the task list: v1.0-1.3 keeps it at workflow.tasks, v1.4+ under
  // workflow.specification.tasks (with a file table alongside).
  const JsonValue* taskList = workflow->find("tasks");
  if (const JsonValue* spec = workflow->find("specification");
      spec != nullptr && spec->isObject()) {
    loadSpecificationFiles(*spec, sc);
    if (taskList == nullptr) taskList = spec->find("tasks");
  }
  if (taskList == nullptr || !taskList->isArray()) {
    bail(source, "no task list (need workflow.tasks or workflow.specification.tasks)");
  }
  if (taskList->items.empty()) bail(source, "workflow contains no tasks");

  AbstractWorkflow awf;
  if (const JsonValue* nameV = root.find("name"); nameV != nullptr && nameV->isString()) {
    awf.name = nameV->text;
  } else {
    awf.name = std::filesystem::path(source).stem().string();
  }

  for (std::size_t i = 0; i < taskList->items.size(); ++i) {
    importTask(taskList->items[i], i, awf.dag, sc);
  }

  // Explicit parent edges, resolved now that every task id is known.
  for (const auto& [childRow, parentId] : sc.parentRefs) {
    const auto parentIt = sc.rowByTaskId.find(parentId);
    if (parentIt == sc.rowByTaskId.end()) {
      bail(source, "task '" + awf.dag.job(childRow).name + "': unknown parent '" + parentId + "'");
    }
    awf.dag.addEdge(parentIt->second, childRow);
  }

  // External inputs = every input no task produces, in first-appearance
  // order (deterministic across identical traces).
  std::map<std::string, bool> produced;  // lookup only
  for (JobId row = 0; row < awf.dag.jobCount(); ++row) {
    for (const FileSpec& f : awf.dag.job(row).outputs) produced.try_emplace(f.lfn, true);
  }
  std::map<std::string, bool> claimed;  // dedupe across consumers
  for (JobId row = 0; row < awf.dag.jobCount(); ++row) {
    for (const FileSpec& f : awf.dag.job(row).inputs) {
      if (!produced.contains(f.lfn) && claimed.try_emplace(f.lfn, true).second) {
        awf.externalInputs.push_back(f);
      }
    }
  }

  try {
    awf.finalize();
  } catch (const std::logic_error& e) {
    bail(source, e.what());
  }
  if (!awf.dag.isAcyclic()) {
    bail(source, "tasks form a dependency cycle (check 'parents' lists and file flow)");
  }
  return awf;
}

AbstractWorkflow importWfCommonsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ImportError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw ImportError(path + ": read error");
  return importWfCommons(buf.str(), path);
}

}  // namespace wfs::wf::import
