#pragma once

// WfCommons / WorkflowHub trace ingestion.
//
// Parses the WfCommons JSON trace format (schema v1.x, the common
// interchange format of WorkflowHub 2020 / WfCommons 2021) into a
// wfs::wf::AbstractWorkflow, so any published execution trace can run
// through the same planner/engine/storage pipeline as the three built-in
// paper applications. The exact subset of the schema we honor — and the
// fields we deliberately ignore — is documented in docs/WORKFLOWS.md.
//
// Design rules:
//  * strict validation with actionable one-line errors (`ImportError`):
//    every message names the source and the offending task/file/value;
//  * deterministic output: tasks keep trace order, derived structures are
//    order-preserving (no unordered iteration), so the same bytes in
//    always produce the same DAG out;
//  * both the v1.0–1.3 shape (workflow.tasks[].files[]) and the v1.4+
//    split shape (workflow.specification.tasks[] + specification.files[]
//    + execution.tasks[] runtimes) are accepted.

#include <stdexcept>
#include <string>
#include <string_view>

#include "wf/abstract_workflow.hpp"

namespace wfs::wf::import {

/// Trace rejection; `what()` is one line: "<source>: <problem>".
class ImportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a WfCommons JSON document. `source` labels error messages
/// (typically the file name). Throws ImportError on any malformed,
/// inconsistent, or cyclic input.
[[nodiscard]] AbstractWorkflow importWfCommons(std::string_view jsonText,
                                               const std::string& source);

/// Reads `path` and imports it; "cannot open"/read errors also surface as
/// ImportError so the CLI can report one line.
[[nodiscard]] AbstractWorkflow importWfCommonsFile(const std::string& path);

}  // namespace wfs::wf::import
