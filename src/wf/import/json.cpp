#include "wf/import/json.hpp"

#include <cstdlib>

namespace wfs::wf::import {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const Member& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_{doc} {}

  JsonValue parseDocument() {
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != doc_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  /// Deep enough for any real trace; bounded so a pathological input dies
  /// with one line instead of a stack overflow.
  static constexpr int kMaxDepth = 96;

  std::string_view doc_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& reason) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
      if (doc_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(line, col, reason);
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= doc_.size(); }
  [[nodiscard]] char peek() const { return doc_[pos_]; }

  void skipWs() {
    while (!atEnd()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    skipWs();
    if (atEnd() || peek() != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (atEnd() || peek() != c) return false;
    ++pos_;
    return true;
  }

  void expectLiteral(std::string_view lit) {
    if (doc_.substr(pos_, lit.size()) != lit) {
      fail("invalid token (expected '" + std::string(lit) + "')");
    }
    pos_ += lit.size();
  }

  JsonValue parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 96 levels");
    skipWs();
    if (atEnd()) fail("unexpected end of input");
    JsonValue v;
    switch (peek()) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.text = parseString();
        return v;
      case 't':
        expectLiteral("true");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        expectLiteral("false");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        expectLiteral("null");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default: return parseNumber();
    }
  }

  JsonValue parseObject(int depth) {
    expect('{', "'{'");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    for (;;) {
      skipWs();
      if (atEnd() || peek() != '"') fail("expected object key string");
      std::string key = parseString();
      expect(':', "':' after object key");
      v.members.emplace_back(std::move(key), parseValue(depth + 1));
      if (consume('}')) return v;
      expect(',', "',' or '}' in object");
    }
  }

  JsonValue parseArray(int depth) {
    expect('[', "'['");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    for (;;) {
      v.items.push_back(parseValue(depth + 1));
      if (consume(']')) return v;
      expect(',', "',' or ']' in array");
    }
  }

  std::string parseString() {
    // Caller guarantees peek() == '"'.
    ++pos_;
    std::string out;
    for (;;) {
      if (atEnd()) fail("unterminated string");
      const char c = doc_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (atEnd()) fail("unterminated escape sequence");
      const char e = doc_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendUnicodeEscape(out); break;
        default: --pos_; fail("unknown escape sequence");
      }
    }
  }

  unsigned parseHex4() {
    if (pos_ + 4 > doc_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = doc_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("non-hex digit in \\u escape");
      }
    }
    return code;
  }

  void appendUnicodeEscape(std::string& out) {
    unsigned code = parseHex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
      if (pos_ + 2 > doc_.size() || doc_[pos_] != '\\' || doc_[pos_ + 1] != 'u') {
        fail("unpaired UTF-16 surrogate");
      }
      pos_ += 2;
      const unsigned low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (!atEnd() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) {
      pos_ = start;
      fail("invalid value");
    }
    if (!atEnd() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("digit required after decimal point");
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("digit required in exponent");
    }
    // The slice is a valid JSON number by construction; strtod cannot fail
    // (a NUL-terminated copy keeps it off doc_'s unterminated storage).
    const std::string slice(doc_.substr(start, pos_ - start));
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(slice.c_str(), nullptr);
    return v;
  }
};

}  // namespace

JsonValue parseJson(std::string_view doc) { return Parser{doc}.parseDocument(); }

}  // namespace wfs::wf::import
