#pragma once

// Minimal deterministic JSON reader for trace ingestion.
//
// The repo takes no third-party dependencies, so the WfCommons importer
// carries its own recursive-descent parser. Two properties matter more
// than speed here and shaped the representation:
//  * object members are kept as a *vector* of (key, value) pairs in source
//    order — never an unordered map — so anything derived from a parsed
//    document (task order, error messages, JSONL) is byte-deterministic
//    (wfslint rule D2);
//  * every parse failure carries the 1-based line:column of the offending
//    byte, so an importer error is one actionable line, not a stack trace.

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wfs::wf::import {

/// Parse failure; `what()` is "<line>:<col>: <reason>".
class JsonError : public std::runtime_error {
 public:
  JsonError(int line, int col, const std::string& reason)
      : std::runtime_error(std::to_string(line) + ":" + std::to_string(col) + ": " + reason),
        line_{line},
        col_{col} {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  int line_;
  int col_;
};

/// One parsed JSON value. Numbers are stored as double (exact for the
/// integer range |v| <= 2^53 — far beyond any real trace's byte counts;
/// the importer re-checks integrality where it matters).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;    // kArray
  std::vector<Member> members;     // kObject, in source order

  [[nodiscard]] bool isObject() const { return kind == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind == Kind::kArray; }
  [[nodiscard]] bool isString() const { return kind == Kind::kString; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::kNumber; }

  /// First member with `key`, or nullptr. Linear scan: trace objects have
  /// a handful of members and the importer touches each at most once.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing garbage is an error).
/// Throws JsonError on malformed input.
[[nodiscard]] JsonValue parseJson(std::string_view doc);

}  // namespace wfs::wf::import
