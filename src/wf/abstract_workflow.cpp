#include "wf/abstract_workflow.hpp"

#include <unordered_set>

#include "wf/catalogs.hpp"

namespace wfs::wf {

void registerWorkflowTransformations(const AbstractWorkflow& awf, TransformationCatalog& tc) {
  for (JobId id = 0; id < awf.dag.jobCount(); ++id) {
    const std::string& tx = awf.dag.job(id).transformation;
    if (!tc.has(tx)) tc.add({tx, 1.0});
  }
}

Bytes AbstractWorkflow::finalOutputBytes() const {
  std::unordered_set<std::string> consumed;
  for (JobId id = 0; id < dag.jobCount(); ++id) {
    for (const auto& f : dag.job(id).inputs) consumed.insert(f.lfn);
  }
  const std::unordered_set<std::string> marked{finalProducts.begin(), finalProducts.end()};
  Bytes total = 0;
  for (JobId id = 0; id < dag.jobCount(); ++id) {
    for (const auto& f : dag.job(id).outputs) {
      if (!consumed.contains(f.lfn) || marked.contains(f.lfn)) total += f.size;
    }
  }
  return total;
}

}  // namespace wfs::wf
