#include "wf/catalogs.hpp"

#include <stdexcept>

namespace wfs::wf {

void TransformationCatalog::add(Entry e) {
  entries_[e.transformation] = std::move(e);
}

bool TransformationCatalog::has(const std::string& transformation) const {
  return entries_.contains(transformation);
}

const TransformationCatalog::Entry& TransformationCatalog::get(
    const std::string& transformation) const {
  auto it = entries_.find(transformation);
  if (it == entries_.end()) {
    throw std::out_of_range("wf/catalog: transformation not in catalog: " + transformation);
  }
  return it->second;
}

void ReplicaCatalog::registerReplica(const std::string& lfn, const std::string& site) {
  replicas_[lfn] = site;
}

}  // namespace wfs::wf
