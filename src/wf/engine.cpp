#include "wf/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "simcore/trace.hpp"

namespace wfs::wf {

DagmanEngine::DagmanEngine(sim::Simulator& sim, const ExecutableWorkflow& workflow,
                           storage::StorageSystem& storage, Scheduler& scheduler,
                           std::vector<sim::Resource*> nodeMemory, prof::WfProf* prof,
                           const Options& opt)
    : sim_{&sim},
      wf_{&workflow},
      storage_{&storage},
      scheduler_{&scheduler},
      nodeMemory_{std::move(nodeMemory)},
      prof_{prof},
      opt_{opt} {
  allDone_ = std::make_unique<sim::OneShotEvent>(sim);
  faultRng_ = sim::Rng{opt.faultSeed};
  indegree_.resize(static_cast<std::size_t>(workflow.dag.jobCount()));
  done_.resize(static_cast<std::size_t>(workflow.dag.jobCount()), false);
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    indegree_[static_cast<std::size_t>(id)] =
        static_cast<int>(workflow.dag.parents(id).size());
  }
}

std::vector<JobId> DagmanEngine::rescueDag() const {
  std::vector<JobId> pending;
  for (const JobId id : wf_->dag.topologicalOrder()) {
    if (!done_[static_cast<std::size_t>(id)]) pending.push_back(id);
  }
  return pending;
}

sim::Task<void> DagmanEngine::execute() {
  startedAt_ = sim_->now();
  const int total = wf_->dag.jobCount();
  if (total == 0) {
    finishedAt_ = sim_->now();
    co_return;
  }
  for (JobId id = 0; id < total; ++id) {
    if (indegree_[static_cast<std::size_t>(id)] == 0) {
      sim_->spawn(runJob(id));
    }
  }
  co_await allDone_->wait();
  finishedAt_ = sim_->now();
}

void DagmanEngine::submitReadyChildren(JobId finished) {
  for (const JobId c : wf_->dag.children(finished)) {
    if (--indegree_[static_cast<std::size_t>(c)] == 0) {
      sim_->spawn(runJob(c));
    }
  }
}

sim::Task<void> DagmanEngine::runJob(JobId id) {
  const JobSpec& job = wf_->dag.job(id);
  const double computeSeconds = job.cpuSeconds / opt_.coreSpeed;
  prof::TaskTrace trace;
  int node = -1;
  sim::Lease memLease;  // held across output writes, released at the end

  for (int attempt = 0;; ++attempt) {
    node = co_await scheduler_->claimSlot(job);

    // Reserve resident memory on the node (Broadband's >1 GB tasks cap the
    // effective parallelism of a 7 GB c1.xlarge below its 8 cores).
    sim::Resource& mem = *nodeMemory_.at(static_cast<std::size_t>(node));
    if (job.peakMemory > mem.capacity()) {
      throw std::runtime_error("job " + job.name + " needs more memory than node has");
    }
    if (job.peakMemory > 0) {
      memLease = co_await mem.scoped(job.peakMemory);
    }

    WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
              "job " + job.name + " starts on node " + std::to_string(node) +
                  (attempt > 0 ? " (attempt " + std::to_string(attempt + 1) + ")" : ""));

    trace = prof::TaskTrace{};
    trace.jobId = id;
    trace.transformation = job.transformation;
    trace.node = node;
    trace.startSeconds = sim_->now().asSeconds();
    trace.peakMemory = job.peakMemory;

    // Stage/read every input through the storage system (re-done on a
    // retry, just as a resubmitted Condor job would).
    for (const auto& f : job.inputs) {
      const double t0 = sim_->now().asSeconds();
      co_await storage_->read(node, f.lfn);
      trace.ioSeconds += sim_->now().asSeconds() - t0;
      trace.bytesRead += storage_->sizeOf(f.lfn);  // authoritative catalog size
    }

    // Intra-job intermediates: the chained executables of a transformation
    // write and immediately re-read scratch files (Broadband §V.C).
    // Unique per attempt so the write-once catalog is respected.
    for (const auto& f : job.scratchFiles) {
      const std::string lfn =
          attempt == 0 ? f.lfn : f.lfn + ".retry" + std::to_string(attempt);
      const double t0 = sim_->now().asSeconds();
      co_await storage_->scratchRoundTrip(node, lfn, f.size);
      storage_->discard(node, lfn);  // jobs delete their temporaries
      trace.ioSeconds += sim_->now().asSeconds() - t0;
      trace.bytesRead += f.size;
      trace.bytesWritten += f.size;
    }

    // Compute — possibly crashing partway through (transient failure,
    // e.g. the kind of instability the paper saw with PVFS 2.8).
    if (opt_.transientFailureProb > 0 &&
        faultRng_.nextDouble() < opt_.transientFailureProb) {
      co_await sim_->delay(
          sim::Duration::fromSeconds(computeSeconds * faultRng_.nextDouble()));
      WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
                "job " + job.name + " failed transiently on node " + std::to_string(node));
      memLease.release();
      scheduler_->releaseSlot(node);
      ++retries_;
      if (attempt >= opt_.maxRetries) {
        // DAGMan gives up on this job; the run fails and a rescue DAG is
        // left behind. Jobs already running continue to completion.
        failed_ = true;
        allDone_->fire();
        co_return;
      }
      continue;
    }
    co_await sim_->delay(sim::Duration::fromSeconds(computeSeconds));
    break;
  }

  // Write every output.
  for (const auto& f : job.outputs) {
    const double t0 = sim_->now().asSeconds();
    co_await storage_->write(node, f.lfn, f.size);
    trace.ioSeconds += sim_->now().asSeconds() - t0;
    trace.bytesWritten += f.size;
  }

  trace.endSeconds = sim_->now().asSeconds();
  trace.cpuSeconds = computeSeconds;
  memLease.release();
  scheduler_->releaseSlot(node);
  if (prof_ != nullptr) prof_->record(std::move(trace));

  WFS_TRACE(sim::TraceCat::kWorkflow, *sim_, "job " + job.name + " done");

  done_[static_cast<std::size_t>(id)] = true;
  if (!failed_) submitReadyChildren(id);
  if (++completed_ == wf_->dag.jobCount()) allDone_->fire();
}

}  // namespace wfs::wf
