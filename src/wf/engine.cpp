#include "wf/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "prof/zone.hpp"
#include "simcore/trace.hpp"

namespace wfs::wf {

DagmanEngine::DagmanEngine(sim::Simulator& sim, ExecutableWorkflow& workflow,
                           storage::StorageSystem& storage, Scheduler& scheduler,
                           std::vector<sim::Resource*> nodeMemory, prof::WfProf* prof,
                           const Options& opt)
    : sim_{&sim},
      wf_{&workflow},
      storage_{&storage},
      scheduler_{&scheduler},
      nodeMemory_{std::move(nodeMemory)},
      prof_{prof},
      opt_{opt},
      indegree_{sim::ArenaAllocator<int>{&sim.arena()}},
      done_{sim::ArenaAllocator<std::uint8_t>{&sim.arena()}},
      active_{sim::ArenaAllocator<std::uint8_t>{&sim.arena()}},
      childBegin_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      childList_{sim::ArenaAllocator<JobId>{&sim.arena()}},
      producerOf_{sim::ArenaAllocator<JobId>{&sim.arena()}},
      consumerBegin_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      consumerList_{sim::ArenaAllocator<JobId>{&sim.arena()}} {
  allDone_ = std::make_unique<sim::OneShotEvent>(sim);
  filesChanged_ = std::make_unique<sim::Broadcast>(sim);
  faultRng_ = sim::Rng{opt.faultSeed};
  const auto jobCount = static_cast<std::size_t>(workflow.dag.jobCount());
  indegree_.resize(jobCount);
  done_.assign(jobCount, 0);
  active_.assign(jobCount, 0);
  nodeEpoch_.resize(nodeMemory_.size(), 0);
  // Intern every logical file name once, up front; the run itself then
  // never hashes a path string again.
  sim::FileIdTable& files = sim.files();
  // Most jobs mint one distinct output; pre-sizing by job count keeps the
  // intern index from rehashing during 10^5+-task bulk binds.
  files.reserve(files.size() + jobCount + workflow.externalInputs.size());
  auto internAll = [&files](std::vector<FileSpec>& specs) {
    for (FileSpec& f : specs) f.id = files.intern(f.lfn);
  };
  for (FileSpec& f : workflow.externalInputs) f.id = files.intern(f.lfn);
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    indegree_[static_cast<std::size_t>(id)] =
        static_cast<int>(workflow.dag.parents(id).size());
    JobSpec& job = workflow.dag.job(id);
    internAll(job.inputs);
    internAll(job.outputs);
    internAll(job.scratchFiles);
  }
  // Forward adjacency as CSR, preserving the dag's child order so the
  // ready/spawn sequence is identical to walking dag.children() directly.
  childBegin_.assign(jobCount + 1, 0);
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    const auto i = static_cast<std::size_t>(id);
    childBegin_[i + 1] =
        childBegin_[i] + static_cast<std::uint32_t>(workflow.dag.children(id).size());
  }
  childList_.resize(childBegin_[jobCount]);
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    std::uint32_t k = childBegin_[static_cast<std::size_t>(id)];
    for (const JobId c : workflow.dag.children(id)) childList_[k++] = c;
  }
  // Reverse file maps: producer array plus consumer CSR (two-pass count).
  producerOf_.assign(files.size(), -1);
  consumerBegin_.assign(files.size() + 1, 0);
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    const JobSpec& job = workflow.dag.job(id);
    for (const auto& f : job.outputs) producerOf_[f.id.index()] = id;
    for (const auto& f : job.inputs) ++consumerBegin_[f.id.index() + 1];
  }
  for (std::size_t i = 1; i < consumerBegin_.size(); ++i) {
    consumerBegin_[i] += consumerBegin_[i - 1];
  }
  consumerList_.resize(consumerBegin_[files.size()]);
  // Fill positions walk forward per file, preserving job-id order within
  // each file's consumer run (same order the per-file vectors produced).
  AVec<std::uint32_t> cursor{consumerBegin_.begin(), consumerBegin_.end() - 1,
                             sim::ArenaAllocator<std::uint32_t>{&sim.arena()}};
  for (JobId id = 0; id < workflow.dag.jobCount(); ++id) {
    const JobSpec& job = workflow.dag.job(id);
    for (const auto& f : job.inputs) consumerList_[cursor[f.id.index()]++] = id;
  }
}

std::vector<JobId> DagmanEngine::rescueDag() const {
  std::vector<JobId> pending;
  for (const JobId id : wf_->dag.topologicalOrder()) {
    if (!done_[static_cast<std::size_t>(id)]) pending.push_back(id);
  }
  return pending;
}

sim::Task<void> DagmanEngine::execute() {
  startedAt_ = sim_->now();
  const int total = wf_->dag.jobCount();
  if (total == 0) {
    finishedAt_ = sim_->now();
    co_return;
  }
  for (JobId id = 0; id < total; ++id) {
    if (indegree_[static_cast<std::size_t>(id)] == 0) spawnJob(id);
  }
  co_await allDone_->wait();
  finishedAt_ = sim_->now();
}

void DagmanEngine::spawnJob(JobId id) {
  active_[static_cast<std::size_t>(id)] = true;
  sim_->spawn(runJob(id));
}

// wfslint: hot-begin(ready-scan) runs after every job completion; the CSR
// walk and byte-array checks must stay allocation-free.
void DagmanEngine::submitReadyChildren(JobId finished) {
  WFPROF_ZONE("engine/ready-scan");
  const std::uint32_t end = childBegin_[static_cast<std::size_t>(finished) + 1];
  for (std::uint32_t k = childBegin_[static_cast<std::size_t>(finished)]; k < end; ++k) {
    const JobId c = childList_[k];
    const auto ci = static_cast<std::size_t>(c);
    if (done_[ci] != 0 || active_[ci] != 0) continue;  // recovery re-finish of a parent
    if (--indegree_[ci] == 0) spawnJob(c);
  }
}
// wfslint: hot-end

bool DagmanEngine::inputsAvailable(const JobSpec& job) const {
  return std::all_of(job.inputs.begin(), job.inputs.end(),
                     [this](const auto& f) { return storage_->available(f.id); });
}

void DagmanEngine::onNodeCrash(int node) {
  ++nodeEpoch_.at(static_cast<std::size_t>(node));
}

void DagmanEngine::onFilesLost(const std::vector<sim::FileId>& lost) {
  const auto jobCount = static_cast<std::size_t>(wf_->dag.jobCount());
  std::vector<bool> resub(jobCount, false);

  // Fixpoint: a done producer of a lost file must rerun if any consumer of
  // that file is unfinished (or is itself being resubmitted — which can make
  // further producers needed, hence the loop).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const sim::FileId file : lost) {
      if (!file.valid() || file.index() >= producerOf_.size()) continue;
      const JobId p = producerOf_[file.index()];
      if (p < 0) continue;  // pre-staged input: re-staged on restore
      const auto pi = static_cast<std::size_t>(p);
      if (!done_[pi] || resub[pi]) continue;
      bool needed = false;
      const std::uint32_t cb = consumerBegin_[file.index()];
      const std::uint32_t ce = consumerBegin_[file.index() + 1];
      if (cb == ce) {
        needed = true;  // final workflow output
      } else {
        for (std::uint32_t k = cb; k < ce; ++k) {
          const auto ci = static_cast<std::size_t>(consumerList_[k]);
          if (!done_[ci] || resub[ci]) {
            needed = true;
            break;
          }
        }
      }
      if (needed) {
        resub[pi] = true;
        changed = true;
      }
    }
  }

  for (JobId p = 0; p < wf_->dag.jobCount(); ++p) {
    if (!resub[static_cast<std::size_t>(p)]) continue;
    done_[static_cast<std::size_t>(p)] = false;
    --completed_;
    ++recomputedJobs_;
    WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
              "job " + wf_->dag.job(p).name + " resubmitted to recompute lost output");
  }
  // Pending children of a resubmitted job must wait for the fresh output:
  // restore the dependency edge its earlier completion had released.
  for (JobId p = 0; p < wf_->dag.jobCount(); ++p) {
    if (!resub[static_cast<std::size_t>(p)]) continue;
    for (const JobId c : wf_->dag.children(p)) {
      const auto ci = static_cast<std::size_t>(c);
      if (!done_[ci] && !active_[ci] && !resub[ci]) ++indegree_[ci];
    }
  }
  for (JobId p = 0; p < wf_->dag.jobCount(); ++p) {
    const auto pi = static_cast<std::size_t>(p);
    if (!resub[pi]) continue;
    int deg = 0;
    for (const JobId par : wf_->dag.parents(p)) {
      if (!done_[static_cast<std::size_t>(par)]) ++deg;
    }
    indegree_[pi] = deg;
    if (deg == 0 && !active_[pi]) spawnJob(p);
  }
}

sim::Task<void> DagmanEngine::runJob(JobId id) {
  const JobSpec& job = wf_->dag.job(id);
  const double computeSeconds = job.cpuSeconds / opt_.coreSpeed;
  prof::TaskTrace trace;
  int budgetUsed = 0;

  for (int attempt = 0;; ++attempt) {
    // Recovery can mark this job's inputs lost after it became ready; park
    // until recompute/re-stage delivers them. Fault-free this never waits.
    while (!inputsAvailable(job)) co_await filesChanged_->wait();

    const int node = co_await scheduler_->claimSlot(job);
    const std::uint64_t epochAtClaim = nodeEpoch_[static_cast<std::size_t>(node)];

    // Reserve resident memory on the node (Broadband's >1 GB tasks cap the
    // effective parallelism of a 7 GB c1.xlarge below its 8 cores).
    sim::Resource& mem = *nodeMemory_.at(static_cast<std::size_t>(node));
    if (job.peakMemory > mem.capacity()) {
      throw std::runtime_error("wf/engine: job " + job.name + " needs more memory than node has");
    }
    sim::Lease memLease;
    if (job.peakMemory > 0) {
      memLease = co_await mem.scoped(job.peakMemory);
    }

    WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
              "job " + job.name + " starts on node " + std::to_string(node) +
                  (attempt > 0 ? " (attempt " + std::to_string(attempt + 1) + ")" : ""));

    trace = prof::TaskTrace{};
    trace.jobId = id;
    trace.transformation = job.transformation;
    trace.node = node;
    trace.startSeconds = sim_->now().asSeconds();
    trace.peakMemory = job.peakMemory;

    // Which outputs already exist (survivors of an earlier completion being
    // partially recomputed) — these must not be retracted if this attempt
    // dies, and must not be re-written if it succeeds.
    std::vector<char> outputPreexisted(job.outputs.size(), 0);
    for (std::size_t i = 0; i < job.outputs.size(); ++i) {
      outputPreexisted[i] = storage_->available(job.outputs[i].id) ? 1 : 0;
    }

    bool inputLost = false;
    bool ioFailed = false;
    bool transient = false;
    try {
      // Stage/read every input through the storage system (re-done on a
      // retry, just as a resubmitted Condor job would).
      for (const auto& f : job.inputs) {
        const double t0 = sim_->now().asSeconds();
        co_await storage_->read(node, f.id);
        trace.ioSeconds += sim_->now().asSeconds() - t0;
        trace.bytesRead += storage_->sizeOf(f.id);  // authoritative catalog size
      }

      // Intra-job intermediates: the chained executables of a transformation
      // write and immediately re-read scratch files (Broadband §V.C). A
      // retried attempt regenerates them under the same names — the catalog
      // admits re-creation of a discarded scratch entry.
      for (const auto& f : job.scratchFiles) {
        const double t0 = sim_->now().asSeconds();
        co_await storage_->scratchRoundTrip(node, f.id, f.size);
        storage_->discard(node, f.id);  // jobs delete their temporaries
        trace.ioSeconds += sim_->now().asSeconds() - t0;
        trace.bytesRead += f.size;
        trace.bytesWritten += f.size;
      }

      // Compute — possibly crashing partway through (transient failure,
      // e.g. the kind of instability the paper saw with PVFS 2.8).
      if (opt_.transientFailureProb > 0 &&
          faultRng_.nextDouble() < opt_.transientFailureProb) {
        transient = true;
        co_await sim_->delay(
            sim::Duration::fromSeconds(computeSeconds * faultRng_.nextDouble()));
      } else {
        co_await sim_->delay(sim::Duration::fromSeconds(computeSeconds));

        // Write every output (skipping survivors of a partial recompute).
        for (std::size_t i = 0; i < job.outputs.size(); ++i) {
          if (outputPreexisted[i] != 0) continue;
          const auto& f = job.outputs[i];
          const double t0 = sim_->now().asSeconds();
          co_await storage_->write(node, f.id, f.size);
          trace.ioSeconds += sim_->now().asSeconds() - t0;
          trace.bytesWritten += f.size;
        }
      }
    } catch (const storage::FileLostError&) {
      inputLost = true;
    } catch (const storage::StorageFaultError&) {
      ioFailed = true;
    }

    const bool crashed = nodeEpoch_[static_cast<std::size_t>(node)] != epochAtClaim;

    if (!crashed && !inputLost && !ioFailed && !transient) {
      trace.endSeconds = sim_->now().asSeconds();
      trace.cpuSeconds = computeSeconds;
      memLease.release();
      scheduler_->releaseSlot(node);
      if (prof_ != nullptr) prof_->record(std::move(trace));

      WFS_TRACE(sim::TraceCat::kWorkflow, *sim_, "job " + job.name + " done");

      done_[static_cast<std::size_t>(id)] = true;
      active_[static_cast<std::size_t>(id)] = false;
      if (!failed_) submitReadyChildren(id);
      filesChanged_->fire();  // recovery waiters may feed on these outputs
      if (++completed_ == wf_->dag.jobCount()) allDone_->fire();
      co_return;
    }

    // --- Failed attempt: undo its partial footprint -----------------------
    // Scratch temporaries an aborted attempt left behind are deleted, and
    // outputs it managed to write are retracted so consumers never see a
    // partial result — the catalog accepts the retry's clean re-write.
    for (const auto& f : job.scratchFiles) {
      const storage::FileMeta* m = storage_->meta(f.id);
      if (m != nullptr && m->scratch && !m->discarded) storage_->discard(node, f.id);
    }
    for (std::size_t i = 0; i < job.outputs.size(); ++i) {
      if (outputPreexisted[i] == 0 && storage_->available(job.outputs[i].id)) {
        storage_->retractFile(job.outputs[i].id);
      }
    }

    memLease.release();

    if (crashed) {
      // The VM died under the attempt; its slot no longer exists, so it is
      // deliberately not released. Crash retries cost no DAGMan budget.
      WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
                "job " + job.name + " aborted by crash of node " + std::to_string(node));
      ++crashAborts_;
      continue;
    }

    scheduler_->releaseSlot(node);

    if (inputLost) {
      // An input died mid-read; its producer is being resubmitted (or its
      // pre-staged copy re-staged). Wait at the top of the loop.
      WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
                "job " + job.name + " lost an input on node " + std::to_string(node));
      continue;
    }

    WFS_TRACE(sim::TraceCat::kWorkflow, *sim_,
              "job " + job.name + " failed " + (transient ? "transiently" : "on storage") +
                  " on node " + std::to_string(node));
    ++retries_;
    if (budgetUsed >= opt_.maxRetries) {
      // DAGMan gives up on this job; the run fails and a rescue DAG is
      // left behind. Jobs already running continue to completion.
      active_[static_cast<std::size_t>(id)] = false;
      failed_ = true;
      allDone_->fire();
      co_return;
    }
    ++budgetUsed;
  }
}

}  // namespace wfs::wf
