#pragma once

#include <string>
#include <vector>

#include "wf/dag.hpp"

namespace wfs::wf {

class TransformationCatalog;

/// Resource-independent workflow description, as handed to the Pegasus
/// mapper: jobs named by logical transformation, files by logical name,
/// plus the externally supplied input data set.
struct AbstractWorkflow {
  std::string name;
  Dag dag;
  std::vector<FileSpec> externalInputs;
  /// Logical names of science products that are *also* consumed downstream
  /// (e.g. Montage's mosaic, which mShrink reads). Never-consumed outputs
  /// are products implicitly.
  std::vector<std::string> finalProducts;

  /// Derives dependency edges from file flow; call once after generation.
  void finalize() { dag.connectByFiles(externalInputs); }

  /// Bytes of non-temporary output: never-consumed files plus the marked
  /// final products — the paper's "output data (excluding temporary)".
  [[nodiscard]] Bytes finalOutputBytes() const;
};

/// Registers every transformation the workflow references (cpuFactor 1.0)
/// that `tc` does not already know. The built-in apps hand-list their
/// catalogs; imported traces name arbitrary executables, so their catalog
/// is derived from the DAG instead.
void registerWorkflowTransformations(const AbstractWorkflow& awf, TransformationCatalog& tc);

}  // namespace wfs::wf
