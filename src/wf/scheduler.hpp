#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "simcore/simulator.hpp"
#include "storage/base/storage_system.hpp"
#include "wf/dag.hpp"

namespace wfs::wf {

/// Condor-style matchmaker: one queue of idle jobs, one slot per core on
/// every worker.
///
/// The default policy reproduces the paper's setup (§IV.A): the scheduler
/// "does not consider data locality or parent-child affinity", so a file
/// cached on one node regularly gets consumed on another. The data-aware
/// policy implements the improvement the paper conjectures: rank candidate
/// nodes by how many input bytes they can serve locally.
class Scheduler {
 public:
  enum class Policy { kFifo, kDataAware };

  Scheduler(sim::Simulator& sim, std::vector<int> slotsPerNode, Policy policy,
            const storage::StorageSystem* storage = nullptr);

  /// Claims one slot; resumes with the chosen node index. Strict FIFO among
  /// waiting jobs.
  [[nodiscard]] auto claimSlot(const JobSpec& job) {
    struct Awaiter {
      Scheduler* s;
      const JobSpec* job;
      int node = -1;
      [[nodiscard]] bool await_ready() {
        node = s->tryClaim(*job);
        return node >= 0;
      }
      void await_suspend(std::coroutine_handle<> h) { s->enqueue(job, &node, h); }
      [[nodiscard]] int await_resume() const { return node; }
    };
    return Awaiter{this, &job};
  }

  void releaseSlot(int node);

  /// Crash-stop: `node`'s slots vanish — idle ones immediately, held ones
  /// by never being released (the engine drops the slot of an attempt whose
  /// node died instead of calling releaseSlot).
  void failNode(int node);

  /// A replacement VM for `node` joined the pool with its full slot count;
  /// drains the queue onto it.
  void reviveNode(int node);

  [[nodiscard]] int freeSlots(int node) const {
    return free_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] std::size_t queueLength() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dispatched(int node) const {
    return dispatched_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] Policy policy() const { return policy_; }

 private:
  struct Awaiting {
    const JobSpec* job;
    int* nodeOut;
    std::coroutine_handle<> handle;
  };

  /// Returns the chosen node or -1 if the job must wait.
  int tryClaim(const JobSpec& job);
  void enqueue(const JobSpec* job, int* nodeOut, std::coroutine_handle<> h);
  /// Picks the best free node for `job`, or -1. FIFO policy round-robins;
  /// data-aware ranks by storage locality.
  [[nodiscard]] int pickNode(const JobSpec& job) const;
  /// Matches head-of-queue jobs to free slots (the releaseSlot drain loop).
  void drainQueue();

  sim::Simulator* sim_;
  std::vector<int> free_;
  /// Full slot complement per node (what reviveNode restores).
  std::vector<int> total_;
  std::vector<std::uint64_t> dispatched_;
  Policy policy_;
  const storage::StorageSystem* storage_;
  std::deque<Awaiting> queue_;
  mutable int rotor_ = 0;
};

}  // namespace wfs::wf
