#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/base/storage_system.hpp"
// Known up-layer edge: crash recovery drives the engine's rescue DAG and the
// scheduler's node retirement directly. Extracting a fault-facing interface
// below wf/ is ROADMAP work (fault recovery API).
#include "wf/engine.hpp"     // wfslint: allow(L-layering) recovery drives the engine, see above
#include "wf/scheduler.hpp"  // wfslint: allow(L-layering) recovery retires scheduler nodes, see above

namespace wfs::fault {

/// What the injector did to one run — folded into the experiment result and
/// the availability-sweep JSONL.
struct InjectionReport {
  std::uint64_t crashes = 0;
  std::uint64_t replacementVms = 0;
  std::uint64_t lostFiles = 0;
  std::uint64_t restagedInputs = 0;
  /// (node, atSeconds) per executed crash, in execution order — the billing
  /// split points for replacement-VM accounting.
  std::vector<std::pair<int, double>> crashTimes;
};

/// Executes a FaultPlan's crash-stop schedule against a live run: at each
/// crash time it kills the node in the scheduler, bumps the engine's node
/// epoch, sweeps the storage catalog for files that died with the VM, hands
/// the loss to the engine for recompute-on-loss, then models acquiring and
/// contextualizing a replacement VM before re-joining the node to the pool.
///
/// Outage windows and per-op faults are not handled here — they live in the
/// FaultLayer armed onto the storage stacks (StorageSystem::armFaults).
///
/// Crashes are executed sequentially in schedule order; a crash whose time
/// falls inside the previous replacement window is served right after it
/// (the schedule stays deterministic either way).
class FaultInjector {
 public:
  struct Config {
    /// Replacement-VM boot latency range (the paper's c1.xlarge boots are
    /// uniformly sampled by the Provisioner; mirror its defaults).
    double bootMinSeconds = 70.0;
    double bootMaxSeconds = 90.0;
    /// Contextualization on top of boot (per-node setup + service start).
    double setupSeconds = 8.0;
    std::uint64_t seed = 1;
  };

  FaultInjector(sim::Simulator& sim, const FaultPlan& plan, wf::DagmanEngine& engine,
                wf::Scheduler& scheduler, storage::StorageSystem& storage,
                const Config& cfg)
      : sim_{&sim},
        plan_{&plan},
        engine_{&engine},
        scheduler_{&scheduler},
        storage_{&storage},
        cfg_{cfg},
        rng_{cfg.seed} {}

  /// Spawn alongside engine.execute(); finishes when the schedule is drained
  /// or the workflow ends.
  [[nodiscard]] sim::Task<void> run();

  [[nodiscard]] const InjectionReport& report() const { return report_; }

 private:
  sim::Simulator* sim_;
  const FaultPlan* plan_;
  wf::DagmanEngine* engine_;
  wf::Scheduler* scheduler_;
  storage::StorageSystem* storage_;
  Config cfg_;
  sim::Rng rng_;
  InjectionReport report_;
};

}  // namespace wfs::fault
