#include "fault/injector.hpp"

#include <string>

#include "simcore/trace.hpp"

namespace wfs::fault {

sim::Task<void> FaultInjector::run() {
  // Plan times are relative to run() start (= workflow start when spawned
  // right after cluster deployment), matching how makespans exclude boot.
  const double t0 = sim_->now().asSeconds();
  for (const NodeCrash& crash : plan_->crashes) {
    const double now = sim_->now().asSeconds();
    if (t0 + crash.atSeconds > now) {
      co_await sim_->delay(sim::Duration::fromSeconds(t0 + crash.atSeconds - now));
    }
    if (engine_->finished()) co_return;
    if (crash.node < 0 || crash.node >= storage_->nodeCount()) continue;

    WFS_TRACE(sim::TraceCat::kCloud, *sim_,
              "node " + std::to_string(crash.node) + " crash-stops");
    scheduler_->failNode(crash.node);
    engine_->onNodeCrash(crash.node);
    const std::vector<sim::FileId> lost = storage_->failNode(crash.node);
    engine_->onFilesLost(lost);
    ++report_.crashes;
    report_.lostFiles += lost.size();
    report_.crashTimes.emplace_back(crash.node, sim_->now().asSeconds() - t0);

    // Acquire and contextualize the replacement VM, then re-join it.
    const double boot = rng_.uniform(cfg_.bootMinSeconds, cfg_.bootMaxSeconds);
    co_await sim_->delay(sim::Duration::fromSeconds(boot + cfg_.setupSeconds));
    if (engine_->finished()) co_return;
    const int restaged = storage_->restoreNode(crash.node);
    report_.restagedInputs += static_cast<std::uint64_t>(restaged);
    ++report_.replacementVms;
    scheduler_->reviveNode(crash.node);
    engine_->notifyFilesChanged();
    // Kick the backend's self-heal in the background: it re-replicates the
    // replacement VM's share of the namespace through the ordinary I/O
    // paths, competing with the resumed workflow for network and disks.
    sim_->spawn(storage_->healNode(crash.node));
    WFS_TRACE(sim::TraceCat::kCloud, *sim_,
              "node " + std::to_string(crash.node) + " replaced (" +
                  std::to_string(restaged) + " inputs re-staged)");
  }
}

}  // namespace wfs::fault
