#include "fault/plan.hpp"

#include <algorithm>

namespace wfs::fault {

std::vector<std::pair<double, double>> FaultPlan::outageWindows() const {
  std::vector<std::pair<double, double>> windows;
  windows.reserve(outages.size());
  for (const Outage& o : outages) windows.emplace_back(o.startSeconds, o.endSeconds);
  return windows;
}

FaultPlan Spec::materialize(int workerNodes) const {
  FaultPlan plan;
  if (!active()) return plan;
  plan.opFaultProb = opFaultProb;
  plan.opFaultSeed = seed;

  sim::Rng root{seed};
  // Fork one stream per concern in a fixed order, so adding crashes never
  // changes which outage times are drawn and vice versa.
  sim::Rng crashRng = root.fork();
  sim::Rng outageRng = root.fork();

  // wfslint: allow(D7-counter-monotonic) FaultPlan::crashes is the crash-event list, not the FaultOutcome counter
  plan.crashes = explicitCrashes;
  if (crashRatePerNodeHour > 0.0) {
    const double meanGap = 3600.0 / crashRatePerNodeHour;
    for (int n = 0; n < workerNodes; ++n) {
      sim::Rng nodeRng = crashRng.fork();
      double t = nodeRng.exponential(meanGap);
      while (t < horizonSeconds) {
        plan.crashes.push_back(NodeCrash{t, n});
        t += nodeRng.exponential(meanGap);
      }
    }
  }
  std::sort(plan.crashes.begin(), plan.crashes.end(), [](const NodeCrash& a, const NodeCrash& b) {
    if (a.atSeconds != b.atSeconds) return a.atSeconds < b.atSeconds;
    return a.node < b.node;
  });

  plan.outages = explicitOutages;
  if (outageRatePerHour > 0.0) {
    const double meanGap = 3600.0 / outageRatePerHour;
    double t = outageRng.exponential(meanGap);
    while (t < horizonSeconds) {
      const double len = std::max(1.0, outageRng.exponential(outageMeanSeconds));
      plan.outages.push_back(Outage{t, t + len});
      t = t + len + outageRng.exponential(meanGap);
    }
  }
  std::sort(plan.outages.begin(), plan.outages.end(), [](const Outage& a, const Outage& b) {
    return a.startSeconds < b.startSeconds;
  });

  return plan;
}

}  // namespace wfs::fault
