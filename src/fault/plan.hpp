#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simcore/rng.hpp"

namespace wfs::fault {

/// One crash-stop node failure: the worker VM terminates at `atSeconds`
/// (spot reclaim / hardware loss), taking its local media with it. A
/// replacement VM is then acquired and contextualized.
struct NodeCrash {
  double atSeconds = 0.0;
  int node = 0;
};

/// One service-outage window: the backend's shared service (NFS server,
/// PVFS daemons, Gluster volume) is unresponsive for [startSeconds,
/// endSeconds); ops that arrive in the window stall until it closes.
struct Outage {
  double startSeconds = 0.0;
  double endSeconds = 0.0;
};

/// A fully materialized fault schedule for one experiment cell. Derived
/// from a seed — never from wall clock — so every run of the same cell at
/// any `--jobs` level draws the identical schedule.
struct FaultPlan {
  std::vector<NodeCrash> crashes;  // sorted by (atSeconds, node)
  std::vector<Outage> outages;     // sorted, non-overlapping
  double opFaultProb = 0.0;
  std::uint64_t opFaultSeed = 1;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && outages.empty() && opFaultProb <= 0.0;
  }

  [[nodiscard]] std::vector<std::pair<double, double>> outageWindows() const;
};

/// User-facing fault specification: either rates (Poisson arrivals drawn
/// from `seed`) or explicit event lists, plus the storage retry policy.
/// Embedded in analysis::ExperimentConfig; `enabled == false` is the
/// paper-faithful zero-fault path and must not perturb a single event.
///
/// Part of sweep-cell identity: analysis/fabric/cellid.cpp destructures
/// this struct exhaustively for config hashing, so adding or removing a
/// field breaks that build until the serializer is updated.
struct Spec {
  bool enabled = false;
  std::uint64_t seed = 1;

  /// Poisson crash-stop rate per worker node, in crashes per node-hour.
  double crashRatePerNodeHour = 0.0;
  /// Per-op storage fault probability (FaultLayer).
  double opFaultProb = 0.0;
  /// Poisson service-outage rate per hour and mean outage length.
  double outageRatePerHour = 0.0;
  double outageMeanSeconds = 30.0;
  /// Sampling horizon for rate-derived events.
  double horizonSeconds = 4.0 * 3600.0;

  /// Explicit events, merged with (and sorted against) rate-derived ones.
  std::vector<NodeCrash> explicitCrashes;
  std::vector<Outage> explicitOutages;

  /// Storage-op retry policy (RetryLayer).
  int maxOpRetries = 4;
  double retryBackoffSeconds = 0.5;

  /// Whether this spec produces any fault machinery at all.
  [[nodiscard]] bool active() const {
    return enabled && (crashRatePerNodeHour > 0.0 || opFaultProb > 0.0 ||
                       outageRatePerHour > 0.0 || !explicitCrashes.empty() ||
                       !explicitOutages.empty());
  }

  /// Draws the concrete schedule for a cluster of `workerNodes` workers.
  [[nodiscard]] FaultPlan materialize(int workerNodes) const;
};

}  // namespace wfs::fault
