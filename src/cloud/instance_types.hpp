#pragma once

#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace wfs::cloud {

/// EC2 instance type as of the paper's experiments (2010, us-east).
struct InstanceType {
  std::string name;
  int cores;
  Bytes memory;
  int ephemeralDisks;
  /// On-demand $/hour (2010 price book).
  double pricePerHour;
  /// NIC rate; the 2010 fleet was gigabit.
  Rate nicRate;
  /// Per-core speed relative to a c1.xlarge core (ECU-derived).
  double coreSpeed;
};

/// Catalog of the types the paper uses or mentions (§III.B, §V.C, §VI).
class InstanceCatalog {
 public:
  InstanceCatalog();

  [[nodiscard]] const InstanceType& get(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const std::vector<InstanceType>& all() const { return types_; }

 private:
  std::vector<InstanceType> types_;
};

/// Process-wide catalog (read-only after construction).
[[nodiscard]] const InstanceCatalog& instanceCatalog();

}  // namespace wfs::cloud
