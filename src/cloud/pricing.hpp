#pragma once

#include <cstdint>

#include "simcore/units.hpp"

namespace wfs::cloud {

/// Amazon's 2010 fee schedule for the cost components the paper charges
/// (§VI): hourly instances with round-up, and S3 request/storage fees.
/// Transfers within EC2 are free.
struct PriceBook {
  double s3PutPer1000 = 0.01;       // $ per 1,000 PUTs
  double s3GetPer10000 = 0.01;      // $ per 10,000 GETs
  double s3StoragePerGBMonth = 0.15;

  [[nodiscard]] double s3RequestCost(std::uint64_t puts, std::uint64_t gets) const {
    return static_cast<double>(puts) / 1000.0 * s3PutPer1000 +
           static_cast<double>(gets) / 10000.0 * s3GetPer10000;
  }

  /// Storage fee for holding `bytes` for `seconds` (paper: "<< $0.01" for
  /// these workloads — included for completeness).
  [[nodiscard]] double s3StorageCost(Bytes bytes, double seconds) const {
    const double gbMonths = static_cast<double>(bytes) / 1e9 * seconds / (30.0 * 24 * 3600);
    return gbMonths * s3StoragePerGBMonth;
  }
};

}  // namespace wfs::cloud
