#include "cloud/pricing.hpp"

// Header-only; translation unit reserved for future regional price books.
