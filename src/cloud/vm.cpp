#include "cloud/vm.hpp"

namespace wfs::cloud {

Vm::Vm(sim::Simulator& sim, net::FlowNetwork& net, const InstanceType& type,
       std::string hostname, const Options& opt)
    : type_{&type}, hostname_{std::move(hostname)} {
  nic_ = std::make_unique<net::Nic>(net, type.nicRate, type.nicRate, opt.nicLatency,
                                    hostname_);
  blk::Raid0::Config rc;
  rc.member = opt.disk;
  rc.members = type.ephemeralDisks;
  // Envelope ceilings scale with the array width relative to the measured
  // 4-disk c1.xlarge numbers (§III.C).
  rc.readCeiling = MBps(77.5) * type.ephemeralDisks;
  rc.writeCeiling = MBps(100) * type.ephemeralDisks;
  disk_ = std::make_unique<blk::Raid0>(net, rc, hostname_ + ".md0");
  if (opt.initializeDisks) disk_->initializeAll();
  cores_ = std::make_unique<sim::Resource>(sim, type.cores, hostname_ + ".cores");
  memory_ = std::make_unique<sim::Resource>(sim, type.memory, hostname_ + ".mem");
}

}  // namespace wfs::cloud
