#include "cloud/instance_types.hpp"

#include <stdexcept>

namespace wfs::cloud {

InstanceCatalog::InstanceCatalog() {
  // 2010 us-east on-demand prices; memory/cores from the contemporary EC2
  // documentation. c1.xlarge is the worker type for every experiment
  // (paper §III.B); m1.xlarge hosts NFS (§IV.B); m2.4xlarge is the big
  // NFS-server variant in the Broadband discussion (§V.C).
  types_ = {
      {"m1.small", 1, 2_GB, 1, 0.085, Gbps(1), 0.4},
      {"m1.large", 2, 8_GB, 2, 0.34, Gbps(1), 0.8},
      {"m1.xlarge", 4, 16_GB, 4, 0.68, Gbps(1), 0.8},
      {"c1.medium", 2, 2_GB, 1, 0.17, Gbps(1), 1.0},
      {"c1.xlarge", 8, 7_GB, 4, 0.68, Gbps(1), 1.0},
      {"m2.4xlarge", 8, 64_GB, 2, 2.40, Gbps(1), 1.1},
  };
}

const InstanceType& InstanceCatalog::get(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  throw std::out_of_range("cloud/instances: unknown EC2 instance type: " + name);
}

bool InstanceCatalog::has(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return true;
  }
  return false;
}

const InstanceCatalog& instanceCatalog() {
  static const InstanceCatalog catalog;
  return catalog;
}

}  // namespace wfs::cloud
