#include "cloud/billing.hpp"

#include <cmath>

namespace wfs::cloud {

void BillingEngine::recordInstance(const InstanceType& type, sim::SimTime start,
                                   sim::SimTime end) {
  usage_.push_back(Usage{type.pricePerHour, (end - start).asSeconds()});
}

CostReport BillingEngine::report() const {
  CostReport r;
  for (const auto& u : usage_) {
    const double hours = u.seconds / 3600.0;
    // Amazon bills whole hours; even a few seconds cost one full hour.
    r.resourceCostHourly += std::ceil(hours - 1e-9) * u.pricePerHour;
    r.resourceCostPerSecond += u.seconds * (u.pricePerHour / 3600.0);
  }
  r.s3RequestCost = book_.s3RequestCost(puts_, gets_);
  // Storage cost from integrated byte-seconds (paper: "<< $0.01" here).
  r.s3StorageCost =
      s3ByteSeconds_ / 1e9 / (30.0 * 24 * 3600) * book_.s3StoragePerGBMonth;
  r.extraFees = extraFees_;
  return r;
}

}  // namespace wfs::cloud
