#include "cloud/context_broker.hpp"

#include <vector>

#include "simcore/simulator.hpp"

namespace wfs::cloud {

ContextBroker::ContextBroker(sim::Simulator& sim, Provisioner& prov, const Config& cfg)
    : sim_{&sim}, prov_{&prov}, cfg_{cfg} {}

sim::Task<void> ContextBroker::bootAndConfigure(Vm& vm, sim::Duration bootTime) {
  co_await sim_->delay(bootTime);           // instance boot (70-90 s)
  co_await sim_->delay(cfg_.perNodeSetup);  // ctx agent + config generation
  co_await sim_->delay(cfg_.serviceStart);  // daemons up
  vm.setBootedAt(sim_->now());
}

sim::Task<void> ContextBroker::deploy(VirtualCluster& cluster, sim::Rng& rng) {
  std::vector<sim::Task<void>> boots;
  for (auto& vm : cluster.workers) {
    boots.push_back(bootAndConfigure(*vm, prov_->sampleBootTime(rng)));
  }
  if (cluster.auxiliary) {
    boots.push_back(bootAndConfigure(*cluster.auxiliary, prov_->sampleBootTime(rng)));
  }
  co_await sim::allOf(*sim_, std::move(boots));
  readyAt_ = sim_->now();
}

ContextBroker::ContextBroker(sim::Simulator& sim, Provisioner& prov)
    : ContextBroker{sim, prov, Config{}} {}

}  // namespace wfs::cloud
