#pragma once

#include <memory>
#include <string>

#include "blk/raid0.hpp"
#include "cloud/instance_types.hpp"
#include "net/nic.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulator.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::cloud {

/// One EC2 instance: cores and memory as schedulable resources, a gigabit
/// NIC, and its ephemeral disks assembled into the RAID-0 array the paper
/// builds on every node (§III.C).
class Vm {
 public:
  struct Options {
    /// Disk model for each ephemeral device.
    blk::Disk::Config disk{};
    /// Zero-fill the array at launch (the paper measured ~42 min for 50 GB
    /// and does *not* initialize; kept for the ablation benches).
    bool initializeDisks = false;
    sim::Duration nicLatency = sim::Duration::micros(100);
  };

  Vm(sim::Simulator& sim, net::FlowNetwork& net, const InstanceType& type,
     std::string hostname, const Options& opt);

  [[nodiscard]] const InstanceType& type() const { return *type_; }
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] net::Nic& nic() { return *nic_; }
  [[nodiscard]] blk::Raid0& disk() { return *disk_; }
  [[nodiscard]] sim::Resource& cores() { return *cores_; }
  [[nodiscard]] sim::Resource& memory() { return *memory_; }

  [[nodiscard]] storage::StorageNode storageNode() {
    return storage::StorageNode{hostname_, nic_.get(), disk_.get(), type_->memory};
  }

  [[nodiscard]] sim::SimTime bootedAt() const { return bootedAt_; }
  void setBootedAt(sim::SimTime t) { bootedAt_ = t; }

 private:
  const InstanceType* type_;
  std::string hostname_;
  std::unique_ptr<net::Nic> nic_;
  std::unique_ptr<blk::Raid0> disk_;
  std::unique_ptr<sim::Resource> cores_;
  std::unique_ptr<sim::Resource> memory_;
  sim::SimTime bootedAt_{};
};

}  // namespace wfs::cloud
