#pragma once

#include <string>
#include <vector>

#include "cloud/instance_types.hpp"
#include "cloud/pricing.hpp"
#include "simcore/time.hpp"

namespace wfs::cloud {

/// Cost breakdown for one run, under both charging models the paper uses
/// (§VI): what Amazon actually bills (hourly, partial hours rounded up) and
/// the hypothetical per-second rate (hourly / 3600).
struct CostReport {
  double resourceCostHourly = 0.0;
  double resourceCostPerSecond = 0.0;
  double s3RequestCost = 0.0;
  double s3StorageCost = 0.0;
  /// Other metered service fees (EBS I/O requests in the extension).
  double extraFees = 0.0;

  [[nodiscard]] double totalHourly() const {
    return resourceCostHourly + s3RequestCost + s3StorageCost + extraFees;
  }
  [[nodiscard]] double totalPerSecond() const {
    return resourceCostPerSecond + s3RequestCost + s3StorageCost + extraFees;
  }
};

/// Meters VM usage intervals and S3 traffic, then prices them.
class BillingEngine {
 public:
  explicit BillingEngine(PriceBook book = PriceBook{}) : book_{book} {}

  /// Records that an instance of `type` ran for [start, end).
  void recordInstance(const InstanceType& type, sim::SimTime start, sim::SimTime end);

  void recordS3Requests(std::uint64_t puts, std::uint64_t gets) {
    puts_ += puts;
    gets_ += gets;
  }
  void recordS3Storage(Bytes bytes, double seconds) {
    s3ByteSeconds_ += static_cast<double>(bytes) * seconds;
  }

  /// Additional service fee (e.g. EBS per-million-I/O requests).
  void recordExtraFee(double dollars) { extraFees_ += dollars; }

  [[nodiscard]] CostReport report() const;
  [[nodiscard]] const PriceBook& priceBook() const { return book_; }

 private:
  struct Usage {
    double pricePerHour;
    double seconds;
  };
  PriceBook book_;
  std::vector<Usage> usage_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  double s3ByteSeconds_ = 0.0;
  double extraFees_ = 0.0;
};

}  // namespace wfs::cloud
