#pragma once

#include <string>
#include <vector>

#include "cloud/provisioner.hpp"
#include "simcore/rng.hpp"
#include "simcore/task.hpp"

namespace wfs::cloud {

/// Nimbus Context Broker (paper §III.A): turns freshly booted instances
/// into a configured virtual cluster — collects addresses, generates the
/// Condor / storage-system configuration for each role, and starts the
/// services. The alternative is tedious, error-prone manual setup.
class ContextBroker {
 public:
  struct Config {
    /// Context agent exchange + config generation per node.
    sim::Duration perNodeSetup = sim::Duration::seconds(5);
    /// Service start (condor daemons, storage daemons).
    sim::Duration serviceStart = sim::Duration::seconds(3);
  };

  ContextBroker(sim::Simulator& sim, Provisioner& prov, const Config& cfg);
  ContextBroker(sim::Simulator& sim, Provisioner& prov);

  /// Boots and contextualizes every VM of the cluster (in parallel);
  /// completes when the whole virtual cluster is ready. Returns through
  /// `readyAt` pointers being set on the VMs.
  [[nodiscard]] sim::Task<void> deploy(VirtualCluster& cluster, sim::Rng& rng);

  [[nodiscard]] sim::SimTime readyAt() const { return readyAt_; }

 private:
  [[nodiscard]] sim::Task<void> bootAndConfigure(Vm& vm, sim::Duration bootTime);

  sim::Simulator* sim_;
  Provisioner* prov_;
  Config cfg_;
  sim::SimTime readyAt_{};
};

}  // namespace wfs::cloud
