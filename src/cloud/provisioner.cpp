#include "cloud/provisioner.hpp"

#include "simcore/trace.hpp"

namespace wfs::cloud {

Provisioner::Provisioner(sim::Simulator& sim, net::FlowNetwork& net, BillingEngine& billing,
                         const Config& cfg)
    : sim_{&sim}, net_{&net}, billing_{&billing}, cfg_{cfg} {}

std::unique_ptr<Vm> Provisioner::request(const std::string& typeName,
                                         const std::string& hostname) {
  const InstanceType& type = instanceCatalog().get(typeName);
  auto vm = std::make_unique<Vm>(*sim_, *net_, type, hostname, cfg_.vmOptions);
  open_.push_back(Pending{&type, sim_->now()});
  WFS_TRACE(sim::TraceCat::kCloud, *sim_, "provision " + typeName + " as " + hostname);
  return vm;
}

sim::Duration Provisioner::sampleBootTime(sim::Rng& rng) const {
  const double lo = cfg_.bootMin.asSeconds();
  const double hi = cfg_.bootMax.asSeconds();
  return sim::Duration::fromSeconds(rng.uniform(lo, hi));
}

void Provisioner::settleBilling() {
  for (const auto& p : open_) {
    billing_->recordInstance(*p.type, p.requestedAt, sim_->now());
  }
  open_.clear();
}

Provisioner::Provisioner(sim::Simulator& sim, net::FlowNetwork& net, BillingEngine& billing)
    : Provisioner{sim, net, billing, Config{}} {}

}  // namespace wfs::cloud
