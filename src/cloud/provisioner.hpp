#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/vm.hpp"
#include "net/fabric.hpp"
#include "simcore/rng.hpp"

namespace wfs::cloud {

/// A provisioned set of instances: the workers plus any auxiliary hosts
/// (the dedicated NFS server).
struct VirtualCluster {
  std::vector<std::unique_ptr<Vm>> workers;
  std::unique_ptr<Vm> auxiliary;  // e.g. NFS server; may be null

  [[nodiscard]] std::vector<storage::StorageNode> workerNodes() const {
    std::vector<storage::StorageNode> out;
    out.reserve(workers.size());
    for (const auto& vm : workers) out.push_back(vm->storageNode());
    return out;
  }
};

/// Requests instances from the (infinitely elastic) EC2 region and models
/// boot latency. The paper reports 70-90 s boots and excludes them from
/// makespans; the provisioner still simulates them so billing starts at
/// request time, as Amazon's meter does.
class Provisioner {
 public:
  struct Config {
    sim::Duration bootMin = sim::Duration::seconds(70);
    sim::Duration bootMax = sim::Duration::seconds(90);
    Vm::Options vmOptions{};
  };

  Provisioner(sim::Simulator& sim, net::FlowNetwork& net, BillingEngine& billing,
              const Config& cfg);
  Provisioner(sim::Simulator& sim, net::FlowNetwork& net, BillingEngine& billing);

  /// Synchronously creates the VM objects; boot completion is simulated by
  /// contextualization (ContextBroker). Billing is noted at request time.
  [[nodiscard]] std::unique_ptr<Vm> request(const std::string& typeName,
                                            const std::string& hostname);

  [[nodiscard]] sim::Duration sampleBootTime(sim::Rng& rng) const;

  /// Reports instance usage [requestTime, now] to billing; call at teardown.
  void settleBilling();

 private:
  sim::Simulator* sim_;
  net::FlowNetwork* net_;
  BillingEngine* billing_;
  Config cfg_;
  struct Pending {
    const InstanceType* type;
    sim::SimTime requestedAt;
  };
  std::vector<Pending> open_;
};

}  // namespace wfs::cloud
