#pragma once

#include <memory>
#include <vector>

#include "storage/base/storage_system.hpp"
#include "storage/s3/object_store.hpp"
#include "storage/stack/lru_cache_layer.hpp"
#include "storage/stack/node_stack.hpp"

namespace wfs::storage {

/// The S3 data-sharing option: every node runs an S3 client with a
/// whole-file cache; jobs are wrapped with GET/PUT staging (paper §IV.A).
///
/// Stack (per node): s3/stage -> s3/whole-file-cache -> s3/transport, with
/// a node-local scratch stack (node/page-cache -> node/write-behind ->
/// node/device) on the side — GET lands objects on the scratch disk before
/// the program reads them, PUT re-reads scratch before uploading.
class S3Fs : public StorageSystem {
 public:
  struct Config {
    ObjectStore::Config store{};
    NodeStackConfig scratch{};
    /// Client cache capacity per node; effectively the scratch disk.
    Bytes clientCacheBytes = 1500_GB;
  };

  /// `net` must be the flow network the node NICs are registered in.
  S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
       const Config& cfg);
  S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes);
  ~S3Fs() override;

  [[nodiscard]] std::string name() const override { return "s3"; }
  /// S3 jobs run against the local disk; scratch never touches S3 (no GET,
  /// no PUT, no request fees) — a structural advantage of the wrapper.
  using StorageSystem::scratchRoundTrip;
  [[nodiscard]] sim::Task<void> scratchRoundTrip(int node, sim::FileId file,
                                                 Bytes size) override;

  [[nodiscard]] ObjectStore& objectStore() { return *store_; }
  [[nodiscard]] const ObjectStore& objectStore() const { return *store_; }
  /// Whether `node`'s whole-file cache holds the file (i.e. it is on that
  /// node's scratch disk).
  [[nodiscard]] bool cached(int node, sim::FileId file) const {
    return wholeFile_.at(static_cast<std::size_t>(node))->cached(file);
  }
  [[nodiscard]] bool cached(int node, const std::string& path) const {
    return cached(node, files().find(path));
  }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;
  void doPreload(sim::FileId file, Bytes size) override;
  /// Only the scratch page cache drops; the whole-file cache records disk
  /// residency, which deleting page-cache entries does not change.
  void doDiscard(int node, sim::FileId file) override;

  /// Uploaded objects are durable in S3; only node-local scratch dies.
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override {
    (void)file;
    return meta.scratch && meta.creator == node;
  }
  /// The replacement VM starts with a cold whole-file cache: every object
  /// it reads must be GET-staged again, even ones this node uploaded.
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override;

 private:
  [[nodiscard]] LayerStack& pipeline(int node) {
    return *pipelines_.at(static_cast<std::size_t>(node));
  }

  std::unique_ptr<ObjectStore> store_;
  std::vector<std::unique_ptr<LayerStack>> scratch_;
  std::vector<std::unique_ptr<LayerStack>> pipelines_;
  std::vector<LruCacheLayer*> wholeFile_;
};

}  // namespace wfs::storage
