#pragma once

#include <memory>
#include <vector>

#include "storage/base/node_scratch.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/s3/s3_client.hpp"

namespace wfs::storage {

/// The S3 data-sharing option: every node runs an S3 client with a
/// whole-file cache; jobs are wrapped with GET/PUT staging (paper §IV.A).
class S3Fs : public StorageSystem {
 public:
  struct Config {
    ObjectStore::Config store{};
    NodeScratch::Config scratch{};
    /// Client cache capacity per node; effectively the scratch disk.
    Bytes clientCacheBytes = 1500_GB;
  };

  /// `net` must be the flow network the node NICs are registered in.
  S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
       const Config& cfg);
  S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "s3"; }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;
  /// S3 jobs run against the local disk; scratch never touches S3 (no GET,
  /// no PUT, no request fees) — a structural advantage of the wrapper.
  [[nodiscard]] sim::Task<void> scratchRoundTrip(int node, std::string path,
                                                 Bytes size) override;
  void discard(int node, const std::string& path) override;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const override;

  [[nodiscard]] ObjectStore& objectStore() { return *store_; }
  [[nodiscard]] const ObjectStore& objectStore() const { return *store_; }
  [[nodiscard]] S3Client& client(int node) {
    return *clients_.at(static_cast<std::size_t>(node));
  }

 private:
  std::unique_ptr<ObjectStore> store_;
  std::vector<std::unique_ptr<NodeScratch>> scratch_;
  std::vector<std::unique_ptr<S3Client>> clients_;
};

}  // namespace wfs::storage
