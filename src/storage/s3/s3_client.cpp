#include "storage/s3/s3_client.hpp"

namespace wfs::storage {

S3Client::S3Client(ObjectStore& store, NodeScratch& scratch, net::Nic* nic,
                   Bytes cacheCapacity)
    : store_{&store}, scratch_{&scratch}, nic_{nic}, cache_{cacheCapacity} {}

sim::Task<void> S3Client::fetchAndRead(const std::string& path, Bytes size,
                                       StorageMetrics& metrics) {
  if (cache_.touch(path)) {
    ++metrics.cacheHits;
    ++metrics.localReads;
  } else {
    ++metrics.cacheMisses;
    ++metrics.remoteReads;
    ++metrics.getRequests;
    // S3 -> local disk: the first of the paper's "read twice" pair.
    co_await store_->get(nic_, size);
    co_await scratch_->write(path, size);
    cache_.put(path, size);
  }
  // Local disk -> program: the second read (page-cache hot after a GET).
  co_await scratch_->read(path, size);
}

sim::Task<void> S3Client::writeAndStore(const std::string& path, Bytes size,
                                        StorageMetrics& metrics) {
  // Program -> local disk ("written twice": disk now, S3 next).
  co_await scratch_->write(path, size);
  cache_.put(path, size);
  // Local disk -> S3 (page-cache hot, so the cost is the upload).
  co_await scratch_->read(path, size);
  ++metrics.putRequests;
  co_await store_->put(nic_, size);
}

}  // namespace wfs::storage
