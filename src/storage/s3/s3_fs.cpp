#include "storage/s3/s3_fs.hpp"

namespace wfs::storage {

S3Fs::S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
           const Config& cfg)
    : StorageSystem{std::move(nodes)}, store_{std::make_unique<ObjectStore>(net, cfg.store)} {
  scratch_.reserve(nodes_.size());
  clients_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    scratch_.push_back(std::make_unique<NodeScratch>(sim, n, cfg.scratch));
    clients_.push_back(std::make_unique<S3Client>(*store_, *scratch_.back(), n.nic,
                                                  cfg.clientCacheBytes));
  }
}

sim::Task<void> S3Fs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  co_await client(nodeIdx).writeAndStore(path, size, metrics_);
}

sim::Task<void> S3Fs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  metrics_.bytesRead += meta.size;
  co_await client(nodeIdx).fetchAndRead(path, meta.size, metrics_);
}

sim::Task<void> S3Fs::scratchRoundTrip(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesWritten += size;
  metrics_.bytesRead += size;
  NodeScratch& local = *scratch_.at(static_cast<std::size_t>(nodeIdx));
  co_await local.write(path, size);
  co_await local.read(path, size);
}

void S3Fs::discard(int nodeIdx, const std::string& path) {
  scratch_.at(static_cast<std::size_t>(nodeIdx))->pageCache().erase(path);
}

void S3Fs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  store_->noteStored(size);  // staged into a bucket before the run
}

Bytes S3Fs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path)) return 0;
  return clients_.at(static_cast<std::size_t>(nodeIdx))->cached(path)
             ? catalog_.lookup(path).size
             : 0;
}

S3Fs::S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes)
    : S3Fs{sim, net, std::move(nodes), Config{}} {}

}  // namespace wfs::storage
