#include "storage/s3/s3_fs.hpp"

namespace wfs::storage {
namespace {

/// Top of the S3 pipeline — the GET/PUT job wrapper's disk side. Writes
/// land on the scratch disk before the lower layers cache/upload them;
/// reads resolve below first (cache check, GET staging on miss), then the
/// program reads the file off the local disk.
class S3StageLayer final : public IoLayer {
 public:
  explicit S3StageLayer(LayerStack& scratch) : scratch_{&scratch} {}

  [[nodiscard]] std::string name() const override { return "s3/stage"; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    if (op.kind == OpKind::kRead) {
      auto below = forward(op);
      co_await std::move(below);
      // Local disk -> program: the second read (page-cache hot after a GET).
      Op local{OpKind::kRead, op.node, op.file, op.size};
      local.parentClock = op.parentClock;
      auto rd = scratch_->submit(local);
      co_await std::move(rd);
      co_return;
    }
    // Program -> local disk ("written twice": disk now, S3 next).
    Op local{op.kind, op.node, op.file, op.size};
    local.parentClock = op.parentClock;
    auto wr = scratch_->submit(local);
    co_await std::move(wr);
    auto below = forward(op);
    co_await std::move(below);
  }

 private:
  LayerStack* scratch_;
};

/// Bottom of the S3 pipeline — the actual GET/PUT requests. Reads are
/// misses of the whole-file cache above: GET the object and stage it onto
/// the scratch disk. Writes re-read scratch (page-cache hot) and PUT.
class S3TransportLayer final : public IoLayer {
 public:
  S3TransportLayer(ObjectStore& store, LayerStack& scratch, net::Nic* nic)
      : store_{&store}, scratch_{&scratch}, nic_{nic} {}

  [[nodiscard]] std::string name() const override { return "s3/transport"; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;  // the object lives in S3, not on any node
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    if (op.kind == OpKind::kRead) {
      ++metrics_->getRequests;
      if (op.node >= 0) metrics_->nodeIo(op.node).fromNetwork += op.size;
      // S3 -> local disk: the first of the paper's "read twice" pair.
      auto get = store_->get(nic_, op.size);
      co_await std::move(get);
      Op stage{OpKind::kWrite, op.node, op.file, op.size};
      stage.parentClock = op.parentClock;
      auto wr = scratch_->submit(stage);
      co_await std::move(wr);
      co_return;
    }
    // Local disk -> S3 (page-cache hot, so the cost is the upload).
    Op reread{OpKind::kRead, op.node, op.file, op.size};
    reread.parentClock = op.parentClock;
    auto rd = scratch_->submit(reread);
    co_await std::move(rd);
    ++metrics_->putRequests;
    auto put = store_->put(nic_, op.size);
    co_await std::move(put);
  }

 private:
  ObjectStore* store_;
  LayerStack* scratch_;
  net::Nic* nic_;
};

}  // namespace

S3Fs::S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
           const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, store_{std::make_unique<ObjectStore>(net, cfg.store)} {
  scratch_.reserve(nodes_.size());
  pipelines_.reserve(nodes_.size());
  std::vector<LayerStack*> stackPtrs;
  for (const auto& n : nodes_) {
    scratch_.push_back(makeNodeStack(sim, metrics_, n, cfg.scratch));

    // The whole-file cache records which objects already live on this
    // node's disk — valid because the workloads are strictly write-once —
    // so each file is fetched at most once per node and locally-produced
    // outputs are never re-fetched. Hits are free here: the scratch stack
    // pays the actual local read.
    LruCacheLayer::Config cache;
    cache.name = "s3/whole-file-cache";
    cache.capacity = cfg.clientCacheBytes;
    cache.hitCost = LruCacheLayer::HitCost::kFree;
    cache.putBeforeForwardOnWrite = true;  // warm before the PUT re-reads scratch
    cache.hitCountsCacheHit = true;
    cache.hitCountsLocalRead = true;
    cache.missCountsCacheMiss = true;
    cache.missCountsRemoteRead = true;

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<S3StageLayer>(*scratch_.back()));
    layers.push_back(std::make_unique<LruCacheLayer>(cache));
    layers.push_back(std::make_unique<S3TransportLayer>(*store_, *scratch_.back(), n.nic));
    pipelines_.push_back(std::make_unique<LayerStack>(sim, metrics_, std::move(layers)));
    wholeFile_.push_back(static_cast<LruCacheLayer*>(pipelines_.back()->layer(1)));
    stackPtrs.push_back(pipelines_.back().get());
  }
  setNodeStacks(std::move(stackPtrs));
}

S3Fs::S3Fs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes)
    : S3Fs{sim, net, std::move(nodes), Config{}} {}

S3Fs::~S3Fs() = default;

sim::Task<void> S3Fs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return pipeline(nodeIdx).write(nodeIdx, file, size);
}

sim::Task<void> S3Fs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  return pipeline(nodeIdx).read(nodeIdx, file, size);
}

sim::Task<void> S3Fs::scratchRoundTrip(int nodeIdx, sim::FileId file, Bytes size) {
  catalog_.create(file, size, nodeIdx, /*scratch=*/true);
  ++metrics_.writeOps;
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesWritten += size;
  metrics_.bytesRead += size;
  metrics_.nodeIo(nodeIdx).written += size;
  LayerStack& local = *scratch_.at(static_cast<std::size_t>(nodeIdx));
  auto wr = local.scratchWrite(nodeIdx, file, size);
  co_await std::move(wr);
  auto rd = local.read(nodeIdx, file, size);
  co_await std::move(rd);
}

void S3Fs::doDiscard(int nodeIdx, sim::FileId file) {
  scratch_.at(static_cast<std::size_t>(nodeIdx))->discard(nodeIdx, file);
}

void S3Fs::onNodeFail(int nodeIdx, const std::vector<sim::FileId>& lost) {
  (void)lost;
  wholeFile_.at(static_cast<std::size_t>(nodeIdx))->cache().clear();
  wipeStackCaches(*scratch_.at(static_cast<std::size_t>(nodeIdx)));
}

void S3Fs::doPreload(sim::FileId file, Bytes size) {
  (void)file;
  store_->noteStored(size);  // staged into a bucket before the run
}

}  // namespace wfs::storage
