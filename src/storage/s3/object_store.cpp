#include "storage/s3/object_store.hpp"

namespace wfs::storage {

ObjectStore::ObjectStore(net::FlowNetwork& net, const Config& cfg)
    : net_{&net}, cfg_{cfg}, service_{net, cfg.aggregateRate, "s3.service"} {}

sim::Task<void> ObjectStore::get(net::Nic* client, Bytes size) {
  ++gets_;
  co_await request(client, size, /*upload=*/false);
}

sim::Task<void> ObjectStore::put(net::Nic* client, Bytes size) {
  ++puts_;
  bytesStored_ += size;
  co_await request(client, size, /*upload=*/true);
}

sim::Task<void> ObjectStore::request(net::Nic* client, Bytes size, bool upload) {
  co_await net_->simulator().delay(cfg_.requestLatency);
  if (size <= 0) co_return;
  // The connection ceiling lives in the coroutine frame: one Capacity per
  // in-flight request, destroyed when the transfer finishes.
  net::Capacity connection{*net_, cfg_.perConnectionRate, "s3.conn"};
  net::Path path;
  if (upload && client != nullptr) path.push_back(net::Hop{&client->tx(), 1.0});
  path.push_back(net::Hop{&connection, 1.0});
  path.push_back(net::Hop{&service_, 1.0});
  if (!upload && client != nullptr) path.push_back(net::Hop{&client->rx(), 1.0});
  co_await net_->transfer(std::move(path), size);
}

}  // namespace wfs::storage
