#pragma once

#include <cstdint>
#include <string>

#include "net/fabric.hpp"
#include "net/flow_network.hpp"
#include "simcore/task.hpp"

namespace wfs::storage {

/// The Amazon S3 service endpoint (paper §IV.A): a distributed object store
/// reached through a REST interface.
///
/// The service itself scales far beyond one virtual cluster, so the model is
/// an aggregate service capacity plus a *per-connection* throughput ceiling
/// and a fixed per-request latency — the two parameters that actually hurt
/// workflows with thousands of small files.
class ObjectStore {
 public:
  struct Config {
    /// REST round-trip before the first payload byte.
    sim::Duration requestLatency = sim::Duration::millis(60);
    /// Single-connection throughput ceiling.
    Rate perConnectionRate = MBps(25);
    /// Aggregate capacity of the service frontend as seen by one cluster.
    Rate aggregateRate = GBps(5);
  };

  ObjectStore(net::FlowNetwork& net, const Config& cfg);

  /// Downloads `size` bytes to `client`; counts one GET request.
  [[nodiscard]] sim::Task<void> get(net::Nic* client, Bytes size);

  /// Uploads `size` bytes from `client`; counts one PUT request.
  [[nodiscard]] sim::Task<void> put(net::Nic* client, Bytes size);

  [[nodiscard]] std::uint64_t getCount() const { return gets_; }
  [[nodiscard]] std::uint64_t putCount() const { return puts_; }
  [[nodiscard]] Bytes bytesStored() const { return bytesStored_; }
  void noteStored(Bytes size) { bytesStored_ += size; }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::Task<void> request(net::Nic* client, Bytes size, bool upload);

  net::FlowNetwork* net_;
  Config cfg_;
  net::Capacity service_;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
  Bytes bytesStored_ = 0;
};

}  // namespace wfs::storage
