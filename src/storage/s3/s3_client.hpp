#pragma once

#include <string>

#include "storage/base/lru_cache.hpp"
#include "storage/base/metrics.hpp"
#include "storage/base/node_scratch.hpp"
#include "storage/s3/object_store.hpp"

namespace wfs::storage {

/// Per-node S3 client with the paper's whole-file cache (§IV.A).
///
/// GET copies the object onto the node's scratch disk before the program
/// reads it; PUT copies the program's output from scratch disk to S3. The
/// cache records which objects already live on this node's disk — valid
/// because the workloads are strictly write-once — so each file is fetched
/// at most once per node and locally-produced outputs are never re-fetched.
class S3Client {
 public:
  S3Client(ObjectStore& store, NodeScratch& scratch, net::Nic* nic, Bytes cacheCapacity);

  /// Ensures `path` is on the local disk (GET on miss), then lets the
  /// program read it. Returns through `metrics` whether it was a hit.
  [[nodiscard]] sim::Task<void> fetchAndRead(const std::string& path, Bytes size,
                                             StorageMetrics& metrics);

  /// Program writes `path` locally, then the wrapper PUTs it to S3.
  [[nodiscard]] sim::Task<void> writeAndStore(const std::string& path, Bytes size,
                                              StorageMetrics& metrics);

  [[nodiscard]] bool cached(const std::string& path) const { return cache_.contains(path); }
  [[nodiscard]] const LruCache& cache() const { return cache_; }

 private:
  ObjectStore* store_;
  NodeScratch* scratch_;
  net::Nic* nic_;
  LruCache cache_;
};

}  // namespace wfs::storage
