#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/node_stack.hpp"

namespace wfs::storage {

/// The replica-tracking layer of the p2p option: every output stays on the
/// disk of the node that produced it (in that node's scratch stack), and a
/// consumer scheduled elsewhere pulls the file directly from the producer.
/// The location map is what Pegasus would carry in its replica catalog.
class P2pReplicaLayer final : public IoLayer {
 public:
  struct Config {
    /// Control-message exchange to negotiate a transfer.
    sim::Duration handshake = sim::Duration::millis(1);
    /// Pulled files are kept (cached) on the consumer's disk for reuse.
    bool keepPulledCopies = true;
  };

  P2pReplicaLayer(net::Fabric& fabric, std::vector<const StorageNode*> nodes,
                  std::vector<LayerStack*> scratch, Config cfg)
      : cfg_{cfg}, fabric_{&fabric}, nodes_{std::move(nodes)}, scratch_{std::move(scratch)} {}

  [[nodiscard]] std::string name() const override { return "p2p/replica"; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    return hasReplica(node, file) ? size : 0;
  }

  /// Nodes currently holding a replica of `file`.
  [[nodiscard]] const std::vector<int>& replicas(sim::FileId file) const;
  [[nodiscard]] bool hasReplica(int node, sim::FileId file) const;
  [[nodiscard]] std::uint64_t pullCount() const { return pulls_; }
  /// Crash-stop: forget every replica `node` held (its disk is gone).
  void dropNode(int node);

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;
  void handle(Op& op) override;

 private:
  [[nodiscard]] std::vector<int>& holdersOf(sim::FileId file) {
    if (where_.size() <= file.index()) where_.resize(file.index() + 1);
    return where_[file.index()];
  }

  Config cfg_;
  net::Fabric* fabric_;
  std::vector<const StorageNode*> nodes_;
  std::vector<LayerStack*> scratch_;
  /// file -> nodes holding it, dense by FileId (-1 never appears; preloads
  /// replicate everywhere like the paper's pre-staged inputs). A plain
  /// vector keeps the dropNode() crash sweep reproducible (wfslint D2) and
  /// replica lookups allocation-free.
  std::vector<std::vector<int>> where_;
  std::uint64_t pulls_ = 0;
};

/// Peer-to-peer data sharing — the configuration the paper names as future
/// work (§VIII): no shared file system; every output stays on the disk of
/// the node that produced it, and a consumer scheduled elsewhere pulls the
/// file directly from the producer (Condor-style file transfer).
///
/// Compared with GlusterFS NUFA this removes the distributed-volume
/// machinery (lookups, bricks, io-cache) but gives up transparent POSIX
/// access: the workflow system must track locations.
///
/// Stack (shared): p2p/replica over per-node scratch stacks
/// (node/page-cache -> node/write-behind -> node/device).
class P2pFs : public StorageSystem {
 public:
  struct Config {
    NodeStackConfig scratch{};
    /// Control-message exchange to negotiate a transfer.
    sim::Duration handshake = sim::Duration::millis(1);
    /// Pulled files are kept (cached) on the consumer's disk for reuse.
    bool keepPulledCopies = true;
  };

  P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
        const Config& cfg);
  P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "p2p"; }
  using StorageSystem::scratchRoundTrip;
  [[nodiscard]] sim::Task<void> scratchRoundTrip(int node, sim::FileId file,
                                                 Bytes size) override;

  /// Nodes currently holding a replica of the file.
  [[nodiscard]] const std::vector<int>& replicas(sim::FileId file) const {
    return replica_->replicas(file);
  }
  [[nodiscard]] const std::vector<int>& replicas(const std::string& path) const {
    return replica_->replicas(files().find(path));
  }
  [[nodiscard]] std::uint64_t pullCount() const { return replica_->pullCount(); }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// A file dies when its only replicas sat on the crashed node's disk
  /// (scratch always does; outputs survive if a consumer pulled a copy).
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override;
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override;

 private:
  std::vector<std::unique_ptr<LayerStack>> scratch_;
  std::unique_ptr<LayerStack> stack_;
  P2pReplicaLayer* replica_ = nullptr;
};

}  // namespace wfs::storage
