#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/node_scratch.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::storage {

/// Peer-to-peer data sharing — the configuration the paper names as future
/// work (§VIII): no shared file system; every output stays on the disk of
/// the node that produced it, and a consumer scheduled elsewhere pulls the
/// file directly from the producer (Condor-style file transfer).
///
/// Compared with GlusterFS NUFA this removes the distributed-volume
/// machinery (lookups, bricks, io-cache) but gives up transparent POSIX
/// access: the workflow system must track locations — modeled by the
/// location map below, which Pegasus would carry in its replica catalog.
class P2pFs : public StorageSystem {
 public:
  struct Config {
    NodeScratch::Config scratch{};
    /// Control-message exchange to negotiate a transfer.
    sim::Duration handshake = sim::Duration::millis(1);
    /// Pulled files are kept (cached) on the consumer's disk for reuse.
    bool keepPulledCopies = true;
  };

  P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
        const Config& cfg);
  P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "p2p"; }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;
  [[nodiscard]] sim::Task<void> scratchRoundTrip(int node, std::string path,
                                                 Bytes size) override;
  void discard(int node, const std::string& path) override;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const override;

  /// Nodes currently holding a replica of `path`.
  [[nodiscard]] const std::vector<int>& replicas(const std::string& path) const;
  [[nodiscard]] std::uint64_t pullCount() const { return pulls_; }

 private:
  [[nodiscard]] bool hasReplica(int node, const std::string& path) const;

  sim::Simulator* sim_;
  net::Fabric* fabric_;
  Config cfg_;
  std::vector<std::unique_ptr<NodeScratch>> scratch_;
  /// path -> nodes holding it (-1 never appears; preloads replicate
  /// everywhere like the paper's pre-staged inputs).
  std::unordered_map<std::string, std::vector<int>> where_;
  std::uint64_t pulls_ = 0;
};

}  // namespace wfs::storage
