#include "storage/p2p/p2p_fs.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfs::storage {

bool P2pReplicaLayer::hasReplica(int nodeIdx, const std::string& path) const {
  auto it = where_.find(path);
  if (it == where_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), nodeIdx) != it->second.end();
}

const std::vector<int>& P2pReplicaLayer::replicas(const std::string& path) const {
  static const std::vector<int> kEmpty;
  auto it = where_.find(path);
  return it == where_.end() ? kEmpty : it->second;
}

void P2pReplicaLayer::dropNode(int nodeIdx) {
  for (auto& [path, holders] : where_) {
    holders.erase(std::remove(holders.begin(), holders.end(), nodeIdx), holders.end());
  }
}

sim::Task<void> P2pReplicaLayer::process(Op& op) {
  LayerStack& local = *scratch_.at(static_cast<std::size_t>(op.node));
  if (isWriteLike(op.kind)) {
    Op store{op.kind, op.node, op.path, op.size};
    store.parentClock = op.parentClock;
    auto wr = local.submit(store);
    co_await std::move(wr);
    where_[op.path].push_back(op.node);
    co_return;
  }

  if (hasReplica(op.node, op.path)) {
    ++metrics_->localReads;
    ++metrics_->cacheHits;
    ++ledger().cacheHits;
    Op rd{OpKind::kRead, op.node, op.path, op.size};
    rd.parentClock = op.parentClock;
    auto body = local.submit(rd);
    co_await std::move(body);
    co_return;
  }
  ++metrics_->remoteReads;
  ++metrics_->cacheMisses;
  ++ledger().cacheMisses;
  ++pulls_;
  const auto& holders = replicas(op.path);
  if (holders.empty()) {
    throw std::logic_error("p2p: no replica of " + op.path);
  }
  // Pull from the first holder (the producer): handshake, then a streaming
  // flow producer-disk -> producer-NIC -> consumer-NIC, landing in the
  // consumer's write-back cache.
  const int src = holders.front();
  const StorageNode& producer = *nodes_.at(static_cast<std::size_t>(src));
  const StorageNode& consumer = *nodes_.at(static_cast<std::size_t>(op.node));
  co_await sim_->delay(cfg_.handshake +
                       fabric_->oneWayLatency(consumer.nic, producer.nic));
  if (op.node >= 0) metrics_->nodeIo(op.node).fromNetwork += op.size;
  if (pageCacheOf(*scratch_.at(static_cast<std::size_t>(src))).cached(op.path)) {
    // Producer page cache -> wire.
    auto flow = fabric_->network().transfer(fabric_->path(producer.nic, consumer.nic),
                                            op.size);
    co_await std::move(flow);
  } else {
    auto disk = producer.disk->read(op.size, fabric_->path(producer.nic, consumer.nic));
    co_await std::move(disk);
  }
  if (cfg_.keepPulledCopies) {
    Op store{OpKind::kWrite, op.node, op.path, op.size};
    store.parentClock = op.parentClock;
    auto wr = local.submit(store);
    co_await std::move(wr);
    where_[op.path].push_back(op.node);
  }
  // Program reads the landed copy (page-cache hot).
  Op rd{OpKind::kRead, op.node, op.path, op.size};
  rd.parentClock = op.parentClock;
  auto body = local.submit(rd);
  co_await std::move(body);
}

void P2pReplicaLayer::handle(Op& op) {
  if (op.kind == OpKind::kPreload) {
    auto& holders = where_[op.path];
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      holders.push_back(i);  // staged everywhere
    }
    return;
  }
  // Discard: only the consumer's page cache drops; replicas stay on disk.
  scratch_.at(static_cast<std::size_t>(op.node))->control(op);
}

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
             const Config& cfg)
    : StorageSystem{std::move(nodes)} {
  scratch_.reserve(nodes_.size());
  std::vector<LayerStack*> scratchPtrs;
  std::vector<const StorageNode*> nodePtrs;
  for (const auto& n : nodes_) {
    scratch_.push_back(makeNodeStack(sim, metrics_, n, cfg.scratch));
    scratchPtrs.push_back(scratch_.back().get());
    nodePtrs.push_back(&n);
  }
  P2pReplicaLayer::Config replica;
  replica.handshake = cfg.handshake;
  replica.keepPulledCopies = cfg.keepPulledCopies;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(std::make_unique<P2pReplicaLayer>(fabric, std::move(nodePtrs),
                                                     std::move(scratchPtrs), replica));
  stack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  replica_ = static_cast<P2pReplicaLayer*>(stack_->layer(0));
  setNodeStacks(std::vector<LayerStack*>(nodes_.size(), stack_.get()));
}

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : P2pFs{sim, fabric, std::move(nodes), Config{}} {}

sim::Task<void> P2pFs::doWrite(int nodeIdx, std::string path, Bytes size) {
  return stack_->write(nodeIdx, std::move(path), size);
}

sim::Task<void> P2pFs::doRead(int nodeIdx, std::string path, Bytes size) {
  return stack_->read(nodeIdx, std::move(path), size);
}

bool P2pFs::losesDataOnCrash(int nodeIdx, const std::string& path, const FileMeta& meta) const {
  if (meta.scratch) return meta.creator == nodeIdx;
  const std::vector<int>& holders = replica_->replicas(path);
  if (holders.empty()) return false;
  return std::all_of(holders.begin(), holders.end(),
                     [nodeIdx](int h) { return h == nodeIdx; });
}

void P2pFs::onNodeFail(int nodeIdx, const std::vector<std::string>& lost) {
  (void)lost;
  replica_->dropNode(nodeIdx);
  wipeStackCaches(*scratch_.at(static_cast<std::size_t>(nodeIdx)));
}

sim::Task<void> P2pFs::scratchRoundTrip(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx, /*scratch=*/true);
  ++metrics_.writeOps;
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesWritten += size;
  metrics_.bytesRead += size;
  metrics_.nodeIo(nodeIdx).written += size;
  LayerStack& local = *scratch_.at(static_cast<std::size_t>(nodeIdx));
  auto wr = local.scratchWrite(nodeIdx, path, size);
  co_await std::move(wr);
  auto rd = local.read(nodeIdx, std::move(path), size);
  co_await std::move(rd);
}

}  // namespace wfs::storage
