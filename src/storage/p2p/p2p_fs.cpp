#include "storage/p2p/p2p_fs.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfs::storage {

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
             const Config& cfg)
    : StorageSystem{std::move(nodes)}, sim_{&sim}, fabric_{&fabric}, cfg_{cfg} {
  scratch_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    scratch_.push_back(std::make_unique<NodeScratch>(sim, n, cfg.scratch));
  }
}

bool P2pFs::hasReplica(int nodeIdx, const std::string& path) const {
  auto it = where_.find(path);
  if (it == where_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), nodeIdx) != it->second.end();
}

const std::vector<int>& P2pFs::replicas(const std::string& path) const {
  static const std::vector<int> kEmpty;
  auto it = where_.find(path);
  return it == where_.end() ? kEmpty : it->second;
}

sim::Task<void> P2pFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  co_await scratch_[static_cast<std::size_t>(nodeIdx)]->write(path, size);
  where_[path].push_back(nodeIdx);
}

sim::Task<void> P2pFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  metrics_.bytesRead += meta.size;

  if (hasReplica(nodeIdx, path)) {
    ++metrics_.localReads;
    ++metrics_.cacheHits;
    co_await scratch_[static_cast<std::size_t>(nodeIdx)]->read(path, meta.size);
    co_return;
  }
  ++metrics_.remoteReads;
  ++metrics_.cacheMisses;
  ++pulls_;
  const auto& holders = replicas(path);
  if (holders.empty()) {
    throw std::logic_error("p2p: no replica of " + path);
  }
  // Pull from the first holder (the producer): handshake, then a streaming
  // flow producer-disk -> producer-NIC -> consumer-NIC, landing in the
  // consumer's write-back cache.
  const int src = holders.front();
  StorageNode& producer = node(src);
  StorageNode& consumer = node(nodeIdx);
  co_await sim_->delay(cfg_.handshake +
                       fabric_->oneWayLatency(consumer.nic, producer.nic));
  NodeScratch& srcScratch = *scratch_[static_cast<std::size_t>(src)];
  if (srcScratch.cached(path)) {
    // Producer page cache -> wire.
    co_await fabric_->network().transfer(fabric_->path(producer.nic, consumer.nic),
                                         meta.size);
  } else {
    co_await producer.disk->read(meta.size, fabric_->path(producer.nic, consumer.nic));
  }
  if (cfg_.keepPulledCopies) {
    co_await scratch_[static_cast<std::size_t>(nodeIdx)]->write(path, meta.size);
    where_[path].push_back(nodeIdx);
  }
  // Program reads the landed copy (page-cache hot).
  co_await scratch_[static_cast<std::size_t>(nodeIdx)]->read(path, meta.size);
}

void P2pFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  auto& holders = where_[path];
  for (int i = 0; i < nodeCount(); ++i) holders.push_back(i);  // staged everywhere
}

sim::Task<void> P2pFs::scratchRoundTrip(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesWritten += size;
  metrics_.bytesRead += size;
  NodeScratch& local = *scratch_[static_cast<std::size_t>(nodeIdx)];
  co_await local.write(path, size);
  co_await local.read(path, size);
}

void P2pFs::discard(int nodeIdx, const std::string& path) {
  scratch_[static_cast<std::size_t>(nodeIdx)]->pageCache().erase(path);
}

Bytes P2pFs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path) || !hasReplica(nodeIdx, path)) return 0;
  return catalog_.lookup(path).size;
}

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : P2pFs{sim, fabric, std::move(nodes), Config{}} {}

}  // namespace wfs::storage
