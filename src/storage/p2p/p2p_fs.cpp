#include "storage/p2p/p2p_fs.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfs::storage {

bool P2pReplicaLayer::hasReplica(int nodeIdx, sim::FileId file) const {
  const std::vector<int>& holders = replicas(file);
  return std::find(holders.begin(), holders.end(), nodeIdx) != holders.end();
}

const std::vector<int>& P2pReplicaLayer::replicas(sim::FileId file) const {
  static const std::vector<int> kEmpty;
  if (!file.valid() || file.index() >= where_.size()) return kEmpty;
  return where_[file.index()];
}

void P2pReplicaLayer::dropNode(int nodeIdx) {
  for (auto& holders : where_) {
    holders.erase(std::remove(holders.begin(), holders.end(), nodeIdx), holders.end());
  }
}

sim::Task<void> P2pReplicaLayer::process(Op& op) {
  LayerStack& local = *scratch_.at(static_cast<std::size_t>(op.node));
  if (isWriteLike(op.kind)) {
    Op store{op.kind, op.node, op.file, op.size};
    store.parentClock = op.parentClock;
    auto wr = local.submit(store);
    co_await std::move(wr);
    holdersOf(op.file).push_back(op.node);
    co_return;
  }

  if (hasReplica(op.node, op.file)) {
    ++metrics_->localReads;
    ++metrics_->cacheHits;
    ++ledger().cacheHits;
    Op rd{OpKind::kRead, op.node, op.file, op.size};
    rd.parentClock = op.parentClock;
    auto body = local.submit(rd);
    co_await std::move(body);
    co_return;
  }
  ++metrics_->remoteReads;
  ++metrics_->cacheMisses;
  ++ledger().cacheMisses;
  ++pulls_;
  const auto& holders = replicas(op.file);
  if (holders.empty()) {
    throw std::logic_error("p2p: no replica of " + sim_->files().name(op.file));
  }
  // Pull from the first holder (the producer): handshake, then a streaming
  // flow producer-disk -> producer-NIC -> consumer-NIC, landing in the
  // consumer's write-back cache.
  const int src = holders.front();
  const StorageNode& producer = *nodes_.at(static_cast<std::size_t>(src));
  const StorageNode& consumer = *nodes_.at(static_cast<std::size_t>(op.node));
  co_await sim_->delay(cfg_.handshake +
                       fabric_->oneWayLatency(consumer.nic, producer.nic));
  if (op.node >= 0) metrics_->nodeIo(op.node).fromNetwork += op.size;
  if (pageCacheOf(*scratch_.at(static_cast<std::size_t>(src))).cached(op.file)) {
    // Producer page cache -> wire.
    auto flow = fabric_->network().transfer(fabric_->path(producer.nic, consumer.nic),
                                            op.size);
    co_await std::move(flow);
  } else {
    auto disk = producer.disk->read(op.size, fabric_->path(producer.nic, consumer.nic));
    co_await std::move(disk);
  }
  if (cfg_.keepPulledCopies) {
    Op store{OpKind::kWrite, op.node, op.file, op.size};
    store.parentClock = op.parentClock;
    auto wr = local.submit(store);
    co_await std::move(wr);
    holdersOf(op.file).push_back(op.node);
  }
  // Program reads the landed copy (page-cache hot).
  Op rd{OpKind::kRead, op.node, op.file, op.size};
  rd.parentClock = op.parentClock;
  auto body = local.submit(rd);
  co_await std::move(body);
}

void P2pReplicaLayer::handle(Op& op) {
  if (op.kind == OpKind::kPreload) {
    auto& holders = holdersOf(op.file);
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      holders.push_back(i);  // staged everywhere
    }
    return;
  }
  // Discard: only the consumer's page cache drops; replicas stay on disk.
  scratch_.at(static_cast<std::size_t>(op.node))->control(op);
}

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
             const Config& cfg)
    : StorageSystem{sim, std::move(nodes)} {
  scratch_.reserve(nodes_.size());
  std::vector<LayerStack*> scratchPtrs;
  std::vector<const StorageNode*> nodePtrs;
  for (const auto& n : nodes_) {
    scratch_.push_back(makeNodeStack(sim, metrics_, n, cfg.scratch));
    scratchPtrs.push_back(scratch_.back().get());
    nodePtrs.push_back(&n);
  }
  P2pReplicaLayer::Config replica;
  replica.handshake = cfg.handshake;
  replica.keepPulledCopies = cfg.keepPulledCopies;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(std::make_unique<P2pReplicaLayer>(fabric, std::move(nodePtrs),
                                                     std::move(scratchPtrs), replica));
  stack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  replica_ = static_cast<P2pReplicaLayer*>(stack_->layer(0));
  setNodeStacks(std::vector<LayerStack*>(nodes_.size(), stack_.get()));
}

P2pFs::P2pFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : P2pFs{sim, fabric, std::move(nodes), Config{}} {}

sim::Task<void> P2pFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return stack_->write(nodeIdx, file, size);
}

sim::Task<void> P2pFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  return stack_->read(nodeIdx, file, size);
}

bool P2pFs::losesDataOnCrash(int nodeIdx, sim::FileId file, const FileMeta& meta) const {
  if (meta.scratch) return meta.creator == nodeIdx;
  const std::vector<int>& holders = replica_->replicas(file);
  if (holders.empty()) return false;
  return std::all_of(holders.begin(), holders.end(),
                     [nodeIdx](int h) { return h == nodeIdx; });
}

void P2pFs::onNodeFail(int nodeIdx, const std::vector<sim::FileId>& lost) {
  (void)lost;
  replica_->dropNode(nodeIdx);
  wipeStackCaches(*scratch_.at(static_cast<std::size_t>(nodeIdx)));
}

sim::Task<void> P2pFs::scratchRoundTrip(int nodeIdx, sim::FileId file, Bytes size) {
  catalog_.create(file, size, nodeIdx, /*scratch=*/true);
  ++metrics_.writeOps;
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesWritten += size;
  metrics_.bytesRead += size;
  metrics_.nodeIo(nodeIdx).written += size;
  LayerStack& local = *scratch_.at(static_cast<std::size_t>(nodeIdx));
  auto wr = local.scratchWrite(nodeIdx, file, size);
  co_await std::move(wr);
  auto rd = local.read(nodeIdx, file, size);
  co_await std::move(rd);
}

}  // namespace wfs::storage
