#include "storage/ebs/ebs_fs.hpp"

#include <stdexcept>

namespace wfs::storage {

EbsFs::EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
             const Config& cfg)
    : StorageSystem{std::move(nodes)}, sim_{&sim}, net_{&net}, cfg_{cfg} {
  volumes_.reserve(nodes_.size());
  pageCache_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    volumes_.push_back(
        std::make_unique<net::Capacity>(net, cfg.volumeRate, n.host + ".ebs"));
    pageCache_.push_back(std::make_unique<LruCache>(static_cast<Bytes>(
        static_cast<double>(n.memoryBytes) * cfg.scratch.pageCacheFraction)));
  }
}

sim::Task<void> EbsFs::volumeIo(int nodeIdx, Bytes size) {
  ioRequests_ += static_cast<std::uint64_t>((size + cfg_.ioUnit - 1) / cfg_.ioUnit);
  co_await sim_->delay(cfg_.requestLatency);
  net::Capacity* vol = volumes_[static_cast<std::size_t>(nodeIdx)].get();
  net::Path path;
  path.push_back(net::Hop{vol, 1.0});
  // The volume is network-attached: traffic also crosses the node's NIC.
  if (node(nodeIdx).nic != nullptr) {
    path.push_back(net::Hop{&node(nodeIdx).nic->rx(), 1.0});
  }
  co_await net_->transfer(std::move(path), size);
}

sim::Task<void> EbsFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  co_await volumeIo(nodeIdx, size);  // no first-write penalty on EBS
  pageCache_[static_cast<std::size_t>(nodeIdx)]->put(path, size);
}

sim::Task<void> EbsFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  if (meta.creator != -1 && meta.creator != nodeIdx) {
    throw std::logic_error("ebs volume is attached to one instance: " + path);
  }
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesRead += meta.size;
  if (pageCache_[static_cast<std::size_t>(nodeIdx)]->touch(path)) {
    ++metrics_.cacheHits;
    co_await sim_->delay(memCopyTime(meta.size, cfg_.scratch.memRate));
    co_return;
  }
  ++metrics_.cacheMisses;
  co_await volumeIo(nodeIdx, meta.size);
  pageCache_[static_cast<std::size_t>(nodeIdx)]->put(path, meta.size);
}

void EbsFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
}

void EbsFs::discard(int nodeIdx, const std::string& path) {
  pageCache_[static_cast<std::size_t>(nodeIdx)]->erase(path);
}

Bytes EbsFs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path)) return 0;
  const FileMeta& meta = catalog_.lookup(path);
  return (meta.creator == -1 || meta.creator == nodeIdx) ? meta.size : 0;
}

EbsFs::EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes)
    : EbsFs{sim, net, std::move(nodes), Config{}} {}

}  // namespace wfs::storage
