#include "storage/ebs/ebs_fs.hpp"

#include <stdexcept>

#include "storage/stack/lru_cache_layer.hpp"
#include "storage/stack/rpc_transport_layer.hpp"

namespace wfs::storage {

EbsFs::EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
             const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, cfg_{cfg} {
  volumes_.reserve(nodes_.size());
  stacks_.reserve(nodes_.size());
  std::vector<LayerStack*> stackPtrs;
  for (const auto& n : nodes_) {
    volumes_.push_back(
        std::make_unique<net::Capacity>(net, cfg.volumeRate, n.host + ".ebs"));

    LruCacheLayer::Config cache;
    cache.name = "ebs/page-cache";
    cache.capacity = static_cast<Bytes>(static_cast<double>(n.memoryBytes) *
                                        cfg.scratch.pageCacheFraction);
    cache.memRate = cfg.scratch.memRate;
    cache.hitCountsCacheHit = true;
    cache.missCountsCacheMiss = true;

    RpcTransportLayer::Config vol;
    vol.name = "ebs/volume";
    vol.net = &net;
    vol.onIssue = [this](const Op& op) {
      ioRequests_ += static_cast<std::uint64_t>((op.size + cfg_.ioUnit - 1) / cfg_.ioUnit);
    };
    vol.latency = [this](const Op&) { return cfg_.requestLatency; };
    vol.route = [this](const Op& op) {
      net::Path path;
      path.push_back(net::Hop{volumes_[static_cast<std::size_t>(op.node)].get(), 1.0});
      // The volume is network-attached: traffic also crosses the node's NIC.
      if (node(op.node).nic != nullptr) {
        path.push_back(net::Hop{&node(op.node).nic->rx(), 1.0});
      }
      return path;
    };
    // The "wire" here is the instance's own attachment, not cross-node
    // sharing: reads come off the network fabric all the same.

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<LruCacheLayer>(cache));
    layers.push_back(std::make_unique<RpcTransportLayer>(vol));
    stacks_.push_back(std::make_unique<LayerStack>(sim, metrics_, std::move(layers)));
    stackPtrs.push_back(stacks_.back().get());
  }
  setNodeStacks(std::move(stackPtrs));
}

EbsFs::EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes)
    : EbsFs{sim, net, std::move(nodes), Config{}} {}

sim::Task<void> EbsFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  // no first-write penalty on EBS
  return stacks_[static_cast<std::size_t>(nodeIdx)]->write(nodeIdx, file, size);
}

sim::Task<void> EbsFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  const FileMeta& meta = catalog_.lookup(file);
  if (meta.creator != -1 && meta.creator != nodeIdx) {
    throw std::logic_error("storage/ebs: volume is attached to one instance: " +
                           files().name(file) + " (created on node " +
                           std::to_string(meta.creator) + ", read from node " +
                           std::to_string(nodeIdx) + ")");
  }
  ++metrics_.localReads;
  auto body = stacks_[static_cast<std::size_t>(nodeIdx)]->read(nodeIdx, file, size);
  co_await std::move(body);
}

Bytes EbsFs::localityHint(int nodeIdx, sim::FileId file) const {
  if (!catalog_.exists(file)) return 0;
  const FileMeta& meta = catalog_.lookup(file);
  return (meta.creator == -1 || meta.creator == nodeIdx) ? meta.size : 0;
}

}  // namespace wfs::storage
