#pragma once

#include <memory>
#include <vector>

#include "storage/base/storage_system.hpp"
#include "storage/stack/node_stack.hpp"

namespace wfs::storage {

/// EBS-backed node storage — an extension experiment. The paper stores VM
/// images and inputs in S3/EBS (§VI) but runs workflows on ephemeral
/// disks; this option asks how the study would have looked on EBS volumes:
/// network-attached block storage with *no first-write penalty* but lower,
/// network-bound throughput and per-GB-month + per-I/O fees (2010 EBS:
/// $0.10/GB-month, $0.10 per million I/O requests).
///
/// Like the local option it shares nothing between nodes, so it appears in
/// extension benches rather than the paper's figures.
///
/// Stack (per node): ebs/page-cache -> ebs/volume.
class EbsFs : public StorageSystem {
 public:
  struct Config {
    /// Sustained throughput of one 2010 EBS volume (network-attached).
    Rate volumeRate = MBps(70);
    /// Average request latency to the EBS service.
    sim::Duration requestLatency = sim::Duration::millis(3);
    /// I/O accounting granularity for the per-million-request fee.
    Bytes ioUnit = 128_KiB;
    NodeStackConfig scratch{};  // page cache still applies
  };

  EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
        const Config& cfg);
  EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "ebs"; }
  using StorageSystem::localityHint;
  [[nodiscard]] Bytes localityHint(int node, sim::FileId file) const override;

  [[nodiscard]] std::uint64_t ioRequests() const { return ioRequests_; }
  /// 2010 fee: $0.10 per million I/O requests.
  [[nodiscard]] double ioRequestCost() const {
    return static_cast<double>(ioRequests_) / 1e6 * 0.10;
  }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// The volume is network-attached and survives the instance; a crash only
  /// costs the replacement VM its warm page cache (the volume re-attaches).
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override {
    (void)lost;
    wipeStackCaches(*stacks_.at(static_cast<std::size_t>(node)));
  }

 private:
  Config cfg_;
  /// One volume capacity per node (attached storage is per-instance).
  std::vector<std::unique_ptr<net::Capacity>> volumes_;
  std::vector<std::unique_ptr<LayerStack>> stacks_;
  std::uint64_t ioRequests_ = 0;
};

}  // namespace wfs::storage
