#pragma once

#include <memory>
#include <vector>

#include "storage/base/node_scratch.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::storage {

/// EBS-backed node storage — an extension experiment. The paper stores VM
/// images and inputs in S3/EBS (§VI) but runs workflows on ephemeral
/// disks; this option asks how the study would have looked on EBS volumes:
/// network-attached block storage with *no first-write penalty* but lower,
/// network-bound throughput and per-GB-month + per-I/O fees (2010 EBS:
/// $0.10/GB-month, $0.10 per million I/O requests).
///
/// Like the local option it shares nothing between nodes, so it appears in
/// extension benches rather than the paper's figures.
class EbsFs : public StorageSystem {
 public:
  struct Config {
    /// Sustained throughput of one 2010 EBS volume (network-attached).
    Rate volumeRate = MBps(70);
    /// Average request latency to the EBS service.
    sim::Duration requestLatency = sim::Duration::millis(3);
    /// I/O accounting granularity for the per-million-request fee.
    Bytes ioUnit = 128_KiB;
    NodeScratch::Config scratch{};  // page cache still applies
  };

  EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes,
        const Config& cfg);
  EbsFs(sim::Simulator& sim, net::FlowNetwork& net, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "ebs"; }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;
  void discard(int node, const std::string& path) override;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const override;

  [[nodiscard]] std::uint64_t ioRequests() const { return ioRequests_; }
  /// 2010 fee: $0.10 per million I/O requests.
  [[nodiscard]] double ioRequestCost() const {
    return static_cast<double>(ioRequests_) / 1e6 * 0.10;
  }

 private:
  [[nodiscard]] sim::Task<void> volumeIo(int node, Bytes size);

  sim::Simulator* sim_;
  net::FlowNetwork* net_;
  Config cfg_;
  /// One volume capacity per node (attached storage is per-instance).
  std::vector<std::unique_ptr<net::Capacity>> volumes_;
  std::vector<std::unique_ptr<LruCache>> pageCache_;
  std::uint64_t ioRequests_ = 0;
};

}  // namespace wfs::storage
