#include "storage/local/local_fs.hpp"

#include <stdexcept>

namespace wfs::storage {

LocalFs::LocalFs(sim::Simulator& sim, std::vector<StorageNode> nodes,
                 const NodeScratch::Config& cfg)
    : StorageSystem{std::move(nodes)} {
  scratch_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    scratch_.push_back(std::make_unique<NodeScratch>(sim, n, cfg));
  }
}

sim::Task<void> LocalFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  co_await scratch(nodeIdx).write(path, size);
}

sim::Task<void> LocalFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  if (meta.creator != -1 && meta.creator != nodeIdx) {
    throw std::logic_error("local storage cannot serve '" + path + "' on node " +
                           std::to_string(nodeIdx) + ": created on node " +
                           std::to_string(meta.creator));
  }
  ++metrics_.readOps;
  ++metrics_.localReads;
  metrics_.bytesRead += meta.size;
  co_await scratch(nodeIdx).read(path, meta.size);
}

void LocalFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
}

void LocalFs::discard(int nodeIdx, const std::string& path) {
  scratch(nodeIdx).pageCache().erase(path);
}

Bytes LocalFs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path)) return 0;
  const FileMeta& meta = catalog_.lookup(path);
  return (meta.creator == -1 || meta.creator == nodeIdx) ? meta.size : 0;
}

}  // namespace wfs::storage
