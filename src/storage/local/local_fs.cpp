#include "storage/local/local_fs.hpp"

#include <stdexcept>

namespace wfs::storage {

LocalFs::LocalFs(sim::Simulator& sim, std::vector<StorageNode> nodes,
                 const NodeStackConfig& cfg)
    : StorageSystem{sim, std::move(nodes)} {
  scratch_.reserve(nodes_.size());
  std::vector<LayerStack*> stacks;
  for (const auto& n : nodes_) {
    scratch_.push_back(makeNodeStack(sim, metrics_, n, cfg));
    stacks.push_back(scratch_.back().get());
  }
  setNodeStacks(std::move(stacks));
}

sim::Task<void> LocalFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return scratch(nodeIdx).write(nodeIdx, file, size);
}

sim::Task<void> LocalFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  const FileMeta& meta = catalog_.lookup(file);
  if (meta.creator != -1 && meta.creator != nodeIdx) {
    throw std::logic_error("storage/local: cannot serve '" + files().name(file) +
                           "' on node " + std::to_string(nodeIdx) + ": created on node " +
                           std::to_string(meta.creator));
  }
  ++metrics_.localReads;
  auto body = scratch(nodeIdx).read(nodeIdx, file, size);
  co_await std::move(body);
}

Bytes LocalFs::localityHint(int nodeIdx, sim::FileId file) const {
  if (!catalog_.exists(file)) return 0;
  const FileMeta& meta = catalog_.lookup(file);
  return (meta.creator == -1 || meta.creator == nodeIdx) ? meta.size : 0;
}

}  // namespace wfs::storage
