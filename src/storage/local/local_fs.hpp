#pragma once

#include <memory>
#include <vector>

#include "storage/base/node_scratch.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::storage {

/// "Local" option of the paper: each node's RAID-0 ephemeral array, no
/// sharing. Usable only when every consumer of a file runs on the node that
/// produced it — in the paper this is the single-node configuration, plotted
/// as a lone point in Figs 2-4.
///
/// Pre-staged input data is considered present on every node (the paper
/// stages inputs before the measured window).
class LocalFs : public StorageSystem {
 public:
  LocalFs(sim::Simulator& sim, std::vector<StorageNode> nodes,
          const NodeScratch::Config& cfg = {});

  [[nodiscard]] std::string name() const override { return "local"; }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;
  void discard(int node, const std::string& path) override;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const override;

  [[nodiscard]] NodeScratch& scratch(int node) {
    return *scratch_.at(static_cast<std::size_t>(node));
  }

 private:
  std::vector<std::unique_ptr<NodeScratch>> scratch_;
};

}  // namespace wfs::storage
