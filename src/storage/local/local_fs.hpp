#pragma once

#include <memory>
#include <vector>

#include "storage/base/storage_system.hpp"
#include "storage/stack/node_stack.hpp"

namespace wfs::storage {

/// "Local" option of the paper: each node's RAID-0 ephemeral array, no
/// sharing. Usable only when every consumer of a file runs on the node that
/// produced it — in the paper this is the single-node configuration, plotted
/// as a lone point in Figs 2-4.
///
/// Pre-staged input data is considered present on every node (the paper
/// stages inputs before the measured window).
///
/// Stack (per node): node/page-cache -> node/write-behind -> node/device.
class LocalFs : public StorageSystem {
 public:
  LocalFs(sim::Simulator& sim, std::vector<StorageNode> nodes,
          const NodeStackConfig& cfg = {});

  [[nodiscard]] std::string name() const override { return "local"; }
  using StorageSystem::localityHint;
  [[nodiscard]] Bytes localityHint(int node, sim::FileId file) const override;

  [[nodiscard]] LayerStack& scratch(int node) {
    return *scratch_.at(static_cast<std::size_t>(node));
  }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// Everything the node itself produced dies with its ephemeral array;
  /// pre-staged inputs (creator == -1) are considered present everywhere.
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override {
    (void)file;
    return meta.creator == node;
  }
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override {
    (void)lost;
    wipeStackCaches(scratch(node));
  }

 private:
  std::vector<std::unique_ptr<LayerStack>> scratch_;
};

}  // namespace wfs::storage
