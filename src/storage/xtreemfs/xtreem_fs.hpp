#pragma once

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/layouts.hpp"

namespace wfs::storage {

/// XtreemFS (paper §IV): an object-based file system designed for wide-area
/// deployments. The paper ran a few experiments with it, found workflows
/// took more than twice as long as on the other systems, and dropped it.
///
/// Its WAN heritage is modeled as heavy per-operation cost (directory +
/// metadata + capability round trips through MRC/OSD services) and a modest
/// per-connection streaming rate, with objects placed on OSDs by hash and
/// no client-side caching of workflow data.
///
/// Stack (shared): cluster/osd-placement (resolve-only) -> xtreemfs/osd.
class XtreemFs : public StorageSystem {
 public:
  struct Config {
    /// Combined MRC metadata + capability + OSD setup latency per open.
    sim::Duration perOpLatency = sim::Duration::millis(35);
    /// Per-connection streaming ceiling.
    Rate perConnectionRate = MBps(12);
  };

  XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
           const Config& cfg);
  XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "xtreemfs"; }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// Objects live on the OSD the hash placed them on, unreplicated.
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override {
    (void)meta;
    return osdLayout_.locate(file) == node;
  }

 private:
  Config cfg_;
  DistributeLayout osdLayout_;
  std::unique_ptr<LayerStack> stack_;
};

}  // namespace wfs::storage
