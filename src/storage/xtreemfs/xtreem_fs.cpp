#include "storage/xtreemfs/xtreem_fs.hpp"

namespace wfs::storage {

XtreemFs::XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
                   const Config& cfg)
    : StorageSystem{std::move(nodes)},
      sim_{&sim},
      fabric_{&fabric},
      cfg_{cfg},
      osdLayout_{nodeCount()} {}

sim::Task<void> XtreemFs::transfer(int clientIdx, int osdIdx, Bytes size, bool isWrite) {
  co_await sim_->delay(cfg_.perOpLatency);
  if (size <= 0) co_return;
  StorageNode& osd = node(osdIdx);
  net::Nic* client = node(clientIdx).nic;
  // The per-connection ceiling lives in the coroutine frame for the
  // duration of the transfer.
  net::Capacity connection{fabric_->network(), cfg_.perConnectionRate, "xtreemfs.conn"};
  if (isWrite) {
    net::Path path = fabric_->path(client, osd.nic);
    path.push_back(net::Hop{&connection, 1.0});
    co_await osd.disk->write(size, std::move(path));
  } else {
    net::Path path = fabric_->path(osd.nic, client);
    path.push_back(net::Hop{&connection, 1.0});
    co_await osd.disk->read(size, std::move(path));
  }
}

sim::Task<void> XtreemFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  co_await transfer(nodeIdx, osdLayout_.place(path, nodeIdx), size, /*isWrite=*/true);
}

sim::Task<void> XtreemFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  ++metrics_.remoteReads;
  metrics_.bytesRead += meta.size;
  co_await transfer(nodeIdx, osdLayout_.locate(path), meta.size, /*isWrite=*/false);
}

void XtreemFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  osdLayout_.place(path, -1);
}

XtreemFs::XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : XtreemFs{sim, fabric, std::move(nodes), Config{}} {}

}  // namespace wfs::storage
