#include "storage/xtreemfs/xtreem_fs.hpp"

#include "storage/stack/placement_layer.hpp"

namespace wfs::storage {
namespace {

/// The OSD data path: per-open MRC/capability latency, then the object
/// streamed over a fresh connection with its own rate ceiling. Expects
/// `op.owner` resolved by the placement layer above.
class XtreemOsdLayer final : public IoLayer {
 public:
  XtreemOsdLayer(net::Fabric& fabric, std::vector<const StorageNode*> nodes,
                 sim::Duration perOpLatency, Rate perConnectionRate)
      : fabric_{&fabric},
        nodes_{std::move(nodes)},
        perOpLatency_{perOpLatency},
        perConnectionRate_{perConnectionRate} {}

  [[nodiscard]] std::string name() const override { return "xtreemfs/osd"; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;  // no client-side caching of workflow data
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    co_await sim_->delay(perOpLatency_);
    if (op.size <= 0) co_return;
    const StorageNode& osd = *nodes_.at(static_cast<std::size_t>(op.owner));
    net::Nic* client = nodes_.at(static_cast<std::size_t>(op.node))->nic;
    // The per-connection ceiling lives in the coroutine frame for the
    // duration of the transfer.
    net::Capacity connection{fabric_->network(), perConnectionRate_, "xtreemfs.conn"};
    if (isWriteLike(op.kind)) {
      net::Path path = fabric_->path(client, osd.nic);
      path.push_back(net::Hop{&connection, 1.0});
      co_await osd.disk->write(op.size, std::move(path));
    } else {
      if (op.node >= 0) {
        auto& io = metrics_->nodeIo(op.node);
        (op.owner == op.node ? io.fromDisk : io.fromNetwork) += op.size;
      }
      net::Path path = fabric_->path(osd.nic, client);
      path.push_back(net::Hop{&connection, 1.0});
      co_await osd.disk->read(op.size, std::move(path));
    }
  }

 private:
  net::Fabric* fabric_;
  std::vector<const StorageNode*> nodes_;
  sim::Duration perOpLatency_;
  Rate perConnectionRate_;
};

}  // namespace

XtreemFs::XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
                   const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, cfg_{cfg}, osdLayout_{nodeCount(), sim.files()} {
  std::vector<const StorageNode*> nodePtrs;
  nodePtrs.reserve(nodes_.size());
  for (const auto& n : nodes_) nodePtrs.push_back(&n);

  // Resolve-only placement: the OSD layer pays all latency itself, and
  // owning an object's OSD confers no locality (reads still open a
  // connection through the full MRC/OSD path).
  PlacementLayer::Config placement;
  placement.name = "cluster/osd-placement";
  placement.remoteLookup = false;
  placement.countLocalRemote = false;
  placement.remoteWritePayload = false;
  placement.routeReadsFromOwner = false;
  placement.localityFromOwner = false;

  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(
      std::make_unique<PlacementLayer>(fabric, osdLayout_, nodePtrs, placement));
  layers.push_back(std::make_unique<XtreemOsdLayer>(fabric, nodePtrs, cfg.perOpLatency,
                                                    cfg.perConnectionRate));
  stack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  setNodeStacks(std::vector<LayerStack*>(nodes_.size(), stack_.get()));
}

XtreemFs::XtreemFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : XtreemFs{sim, fabric, std::move(nodes), Config{}} {}

sim::Task<void> XtreemFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return stack_->write(nodeIdx, file, size);
}

sim::Task<void> XtreemFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  ++metrics_.remoteReads;
  return stack_->read(nodeIdx, file, size);
}

}  // namespace wfs::storage
