#pragma once

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/nfs/nfs_server.hpp"
#include "storage/stack/layer_stack.hpp"

namespace wfs::storage {

/// The NFS data-sharing option (paper §IV.B): a single dedicated server
/// node exports the shared file system to every worker.
///
/// Centralization is the defining property: every byte a worker reads or
/// writes crosses the server's one NIC, and every operation costs an RPC —
/// fine with few clients or light I/O, degrading as the cluster grows
/// (Broadband's 2->4 node regression in Fig 4).
///
/// Stack (per client): nfs/client-cache -> nfs/rpc, where nfs/rpc crosses
/// the wire into the shared server stack nfs/server-cache ->
/// nfs/write-behind -> nfs/device.
class NfsFs : public StorageSystem {
 public:
  struct Config {
    NfsServer::Config server{};
    /// Client-observed latency per metadata/issue RPC (async, noatime
    /// configuration keeps this small).
    sim::Duration rpcLatency = sim::Duration::micros(400);
    /// Linux NFS clients cache read data in the local page cache
    /// (close-to-open consistency). Slightly larger than the local-disk
    /// option's page-cache share because dirty data leaves the box quickly
    /// instead of occupying RAM behind the write-back throttle.
    double clientCacheFraction = 0.6;
    Rate memRate = GBps(1);
  };

  /// `workers` excludes the server node; `serverNode` is the dedicated host.
  NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
        StorageNode serverNode, const Config& cfg);
  NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
        StorageNode serverNode);

  [[nodiscard]] std::string name() const override { return "nfs"; }

  [[nodiscard]] NfsServer& server() { return *server_; }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// All data lives on the dedicated server, which worker crashes don't
  /// touch; the worker only loses its client cache.
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override;

 private:
  std::unique_ptr<NfsServer> server_;
  Config cfg_;
  std::unique_ptr<LayerStack> serverStack_;
  std::vector<std::unique_ptr<LayerStack>> clientStacks_;
};

}  // namespace wfs::storage
