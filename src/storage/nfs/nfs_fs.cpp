#include "storage/nfs/nfs_fs.hpp"

#include "storage/stack/device_layer.hpp"
#include "storage/stack/lru_cache_layer.hpp"
#include "storage/stack/write_behind_layer.hpp"

namespace wfs::storage {
namespace {

/// The wire between an NFS client and the server: per-op RPC round trip,
/// an nfsd thread, stream accounting, then the payload — writes cross the
/// network before entering the server stack, reads descend with a
/// server->client route for the serving layer to stream over.
class NfsRpcLayer final : public IoLayer {
 public:
  NfsRpcLayer(net::Fabric& fabric, NfsServer& server, LayerStack& serverStack,
              net::Nic* clientNic, sim::Duration rpcLatency)
      : fabric_{&fabric},
        server_{&server},
        serverStack_{&serverStack},
        clientNic_{clientNic},
        rpc_{rpcLatency} {}

  [[nodiscard]] std::string name() const override { return "nfs/rpc"; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;  // everything beyond the client cache is a network away
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    net::Nic* client = clientNic_;
    net::Nic* serverNic = server_->node().nic;
    // LOOKUP/GETATTR (reads) or CREATE/OPEN (writes) round trip plus
    // server CPU.
    co_await sim_->delay(rpc_ + fabric_->oneWayLatency(client, serverNic));
    co_await server_->serveOp();
    server_->streamStarted(op.size);
    if (op.kind == OpKind::kRead) {
      // The serving server layer (cache or disk) streams straight back to
      // the client over this route.
      op.route = fabric_->path(serverNic, client);
      op.route.push_back(net::Hop{&server_->backplane(), 1.0});
      auto below = serverStack_->submit(op);
      co_await std::move(below);
      server_->streamFinished(op.size);
      co_return;
    }
    // Data crosses the network into server memory; `async` means the reply
    // does not wait for the disk, but a full dirty buffer blocks admission.
    net::Path wirePath = fabric_->path(client, serverNic);
    wirePath.push_back(net::Hop{&server_->backplane(), 1.0});
    auto flow = fabric_->network().transfer(std::move(wirePath), op.size);
    co_await std::move(flow);
    server_->streamFinished(op.size);
    op.route = {};
    auto below = serverStack_->submit(op);
    co_await std::move(below);
  }

  void handle(Op& op) override { serverStack_->control(op); }

 private:
  net::Fabric* fabric_;
  NfsServer* server_;
  LayerStack* serverStack_;
  net::Nic* clientNic_;
  sim::Duration rpc_;
};

}  // namespace

NfsFs::NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
             StorageNode serverNode, const Config& cfg)
    : StorageSystem{sim, std::move(workers)},
      server_{std::make_unique<NfsServer>(sim, fabric.network(), std::move(serverNode),
                                          cfg.server)},
      cfg_{cfg} {
  const StorageNode& sv = server_->node();
  {
    LruCacheLayer::Config cache;
    cache.name = "nfs/server-cache";
    cache.capacity = static_cast<Bytes>(static_cast<double>(sv.memoryBytes) *
                                        cfg.server.pageCacheFraction);
    cache.memRate = cfg.server.memRate;
    // Hits are served from server RAM at network speed, over the route the
    // rpc layer resolved.
    cache.hitCost = LruCacheLayer::HitCost::kRoute;
    cache.net = &fabric.network();
    cache.hitCountsCacheHit = true;
    cache.missCountsCacheMiss = true;

    WriteBehindLayer::Config wb;
    wb.name = "nfs/write-behind";
    wb.dirtyLimit =
        static_cast<Bytes>(static_cast<double>(sv.memoryBytes) * cfg.server.dirtyFraction);
    wb.memRate = cfg.server.memRate;

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<LruCacheLayer>(cache));
    layers.push_back(std::make_unique<WriteBehindLayer>(sim, *sv.disk, wb));
    layers.push_back(std::make_unique<DeviceLayer>(*sv.disk, "nfs/device"));
    serverStack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  }

  clientStacks_.reserve(nodes_.size());
  std::vector<LayerStack*> stackPtrs;
  for (const auto& n : nodes_) {
    LruCacheLayer::Config cache;
    cache.name = "nfs/client-cache";
    cache.capacity = static_cast<Bytes>(static_cast<double>(n.memoryBytes) *
                                        cfg.clientCacheFraction);
    cache.memRate = cfg.memRate;
    // Client page cache hit: revalidation is a single GETATTR round trip.
    cache.hitLatency = [this, &fabric, nic = n.nic](const Op&) {
      return cfg_.rpcLatency + fabric.oneWayLatency(nic, server_->node().nic);
    };
    cache.hitCountsCacheHit = true;
    cache.hitCountsLocalRead = true;
    cache.missCountsRemoteRead = true;

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<LruCacheLayer>(cache));
    layers.push_back(std::make_unique<NfsRpcLayer>(fabric, *server_, *serverStack_, n.nic,
                                                   cfg.rpcLatency));
    clientStacks_.push_back(std::make_unique<LayerStack>(sim, metrics_, std::move(layers)));
    stackPtrs.push_back(clientStacks_.back().get());
  }
  setNodeStacks(std::move(stackPtrs));
}

NfsFs::NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
             StorageNode serverNode)
    : NfsFs{sim, fabric, std::move(workers), std::move(serverNode), Config{}} {}

sim::Task<void> NfsFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return clientStacks_[static_cast<std::size_t>(nodeIdx)]->write(nodeIdx, file, size);
}

sim::Task<void> NfsFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  return clientStacks_[static_cast<std::size_t>(nodeIdx)]->read(nodeIdx, file, size);
}

void NfsFs::onNodeFail(int nodeIdx, const std::vector<sim::FileId>& lost) {
  (void)lost;
  LayerStack& client = *clientStacks_.at(static_cast<std::size_t>(nodeIdx));
  for (std::size_t i = 0; i < client.depth(); ++i) {
    if (auto* cache = dynamic_cast<LruCacheLayer*>(client.layer(i))) cache->cache().clear();
  }
}

}  // namespace wfs::storage
