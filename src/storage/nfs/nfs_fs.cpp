#include "storage/nfs/nfs_fs.hpp"

#include "storage/base/lru_cache.hpp"

namespace wfs::storage {

NfsFs::NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
             StorageNode serverNode, const Config& cfg)
    : StorageSystem{std::move(workers)},
      sim_{&sim},
      fabric_{&fabric},
      server_{std::make_unique<NfsServer>(sim, fabric.network(), std::move(serverNode),
                                          cfg.server)},
      cfg_{cfg} {
  clientCache_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    clientCache_.push_back(std::make_unique<LruCache>(static_cast<Bytes>(
        static_cast<double>(n.memoryBytes) * cfg.clientCacheFraction)));
  }
}

sim::Task<void> NfsFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  net::Nic* client = node(nodeIdx).nic;
  net::Nic* serverNic = server_->node().nic;

  // CREATE/OPEN round trip plus server CPU.
  co_await sim_->delay(cfg_.rpcLatency + fabric_->oneWayLatency(client, serverNic));
  co_await server_->serveOp();
  // Data crosses the network into server memory; `async` means the reply
  // does not wait for the disk, but a full dirty buffer blocks admission.
  server_->streamStarted(size);
  net::Path wirePath = fabric_->path(client, serverNic);
  wirePath.push_back(net::Hop{&server_->backplane(), 1.0});
  co_await fabric_->network().transfer(std::move(wirePath), size);
  server_->streamFinished(size);
  co_await server_->writeBack().write(size);
  server_->pageCache().put(path, size);
  // The writer's own page cache also holds the data it just wrote.
  clientCache_[static_cast<std::size_t>(nodeIdx)]->put(path, size);
}

sim::Task<void> NfsFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  metrics_.bytesRead += meta.size;
  net::Nic* client = node(nodeIdx).nic;
  net::Nic* serverNic = server_->node().nic;

  // Client page cache hit: revalidation is a single GETATTR round trip.
  if (clientCache_[static_cast<std::size_t>(nodeIdx)]->touch(path)) {
    ++metrics_.cacheHits;
    ++metrics_.localReads;
    co_await sim_->delay(cfg_.rpcLatency + fabric_->oneWayLatency(client, serverNic));
    co_await sim_->delay(memCopyTime(meta.size, cfg_.memRate));
    co_return;
  }
  ++metrics_.remoteReads;

  // LOOKUP/GETATTR round trip plus server CPU.
  co_await sim_->delay(cfg_.rpcLatency + fabric_->oneWayLatency(client, serverNic));
  co_await server_->serveOp();

  server_->streamStarted(meta.size);
  if (server_->pageCache().touch(path)) {
    ++metrics_.cacheHits;
    // Served from server RAM at network speed.
    net::Path p = fabric_->path(serverNic, client);
    p.push_back(net::Hop{&server_->backplane(), 1.0});
    co_await fabric_->network().transfer(std::move(p), meta.size);
  } else {
    ++metrics_.cacheMisses;
    // Disk read pipelined with the network transfer (one streaming flow).
    net::Path p = fabric_->path(serverNic, client);
    p.push_back(net::Hop{&server_->backplane(), 1.0});
    co_await server_->node().disk->read(meta.size, std::move(p));
    server_->pageCache().put(path, meta.size);
  }
  server_->streamFinished(meta.size);
  clientCache_[static_cast<std::size_t>(nodeIdx)]->put(path, meta.size);
}

void NfsFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);  // on the server's disk, cold cache
}

void NfsFs::discard(int nodeIdx, const std::string& path) {
  clientCache_[static_cast<std::size_t>(nodeIdx)]->erase(path);
  server_->pageCache().erase(path);
}

Bytes NfsFs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path)) return 0;
  return clientCache_[static_cast<std::size_t>(nodeIdx)]->contains(path)
             ? catalog_.lookup(path).size
             : 0;
}

NfsFs::NfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> workers,
             StorageNode serverNode)
    : NfsFs{sim, fabric, std::move(workers), std::move(serverNode), Config{}} {}

}  // namespace wfs::storage
