#pragma once

#include "simcore/resource.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::storage {

/// Server half of the NFS option: one dedicated node (m1.xlarge in the
/// paper — chosen for its 16 GB of RAM, §IV.B) exporting its RAID array
/// with `async` and `noatime`.
///
/// Holds what is genuinely server-machine state — the nfsd thread pool,
/// the backplane capacity and the large-stream interference model; the
/// server's page cache and dirty-buffer write-behind live in NfsFs's
/// server-side LayerStack.
class NfsServer {
 public:
  struct Config {
    /// nfsd thread pool (Linux default of 8).
    int threads = 8;
    /// Server CPU per RPC (lookup/getattr/read/write issue).
    sim::Duration opService = sim::Duration::micros(150);
    /// Page cache share of server RAM (a dedicated file server caches
    /// aggressively).
    double pageCacheFraction = 0.8;
    /// Dirty-buffer share of server RAM; large because of `async`.
    double dirtyFraction = 0.5;
    Rate memRate = GBps(1);

    /// Large-stream interference. The paper measured a repeatable NFS
    /// regression from 2 to 4 Broadband nodes that no parameter change
    /// fixed (§V.C); we attribute it to concurrent large sequential
    /// streams defeating server readahead and batching. Service efficiency
    /// is 1/(1 + alpha * excess / threads) with excess = max(0,
    /// largeStreams - threads/2), floored at `efficiencyFloor`; a beefier
    /// server (more nfsd threads) tolerates more streams, and small-file
    /// workloads (Montage) never trigger it.
    Bytes largeStreamBytes = 128_MB;
    double interferenceAlpha = 4.0;
    double efficiencyFloor = 0.20;
  };

  NfsServer(sim::Simulator& sim, net::FlowNetwork& net, StorageNode node, const Config& cfg);

  /// Occupies one nfsd thread for the fixed op service time.
  [[nodiscard]] sim::Task<void> serveOp();

  /// All served data passes through this capacity; its rate degrades while
  /// many large streams are active (see Config).
  [[nodiscard]] net::Capacity& backplane() { return backplane_; }

  /// RAII-style accounting of an active data stream of `size` bytes.
  void streamStarted(Bytes size);
  void streamFinished(Bytes size);

  [[nodiscard]] StorageNode& node() { return node_; }
  [[nodiscard]] Rate memRate() const { return cfg_.memRate; }
  [[nodiscard]] int activeLargeStreams() const { return largeStreams_; }

 private:
  void updateBackplane();

  sim::Simulator* sim_;
  StorageNode node_;
  Config cfg_;
  sim::Resource threads_;
  net::Capacity backplane_;
  Rate nominalBackplane_;
  int largeStreams_ = 0;
};

}  // namespace wfs::storage
