#include "storage/nfs/nfs_server.hpp"

#include <algorithm>

namespace wfs::storage {

NfsServer::NfsServer(sim::Simulator& sim, net::FlowNetwork& net, StorageNode node,
                     const Config& cfg)
    : sim_{&sim},
      node_{std::move(node)},
      cfg_{cfg},
      threads_{sim, cfg.threads, "nfsd"},
      // Full-duplex internal capacity: reads and writes each ride their own
      // NIC direction, so the nominal backplane is 2x the link rate.
      backplane_{net, node_.nic != nullptr ? 2.0 * node_.nic->tx().rate() : GBps(2),
                 node_.host + ".nfs-backplane"},
      nominalBackplane_{backplane_.rate()} {}

sim::Task<void> NfsServer::serveOp() {
  auto thread = co_await threads_.scoped(1);
  co_await sim_->delay(cfg_.opService);
}

void NfsServer::streamStarted(Bytes size) {
  if (size >= cfg_.largeStreamBytes) {
    ++largeStreams_;
    updateBackplane();
  }
}

void NfsServer::streamFinished(Bytes size) {
  if (size >= cfg_.largeStreamBytes) {
    --largeStreams_;
    updateBackplane();
  }
}

void NfsServer::updateBackplane() {
  // Readahead interference sets in once large streams outnumber half the
  // nfsd pool; a bigger server (more threads) both raises the knee and
  // flattens the slope.
  const int excess = std::max(0, largeStreams_ - cfg_.threads / 2);
  const double eff = std::max(
      cfg_.efficiencyFloor,
      1.0 / (1.0 + cfg_.interferenceAlpha * excess / static_cast<double>(cfg_.threads)));
  backplane_.setRate(nominalBackplane_ * eff);
}

}  // namespace wfs::storage
