#pragma once

#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::storage {

/// The PVFS option (paper §IV.D): a parallel file system striping file data
/// across every node; each node is both client and I/O server, and metadata
/// is distributed across all nodes.
///
/// The model matches the 2.6.3 release the authors had to fall back to:
/// no small-file optimizations, so every file create performs a metadata
/// round trip plus a serialized datafile handshake with *each* I/O server,
/// and every transfer is synchronous to the server disks (no client or
/// server caching layer) — the mechanism behind PVFS's poor Montage and
/// Broadband results (Figs 2, 4).
class PvfsFs : public StorageSystem {
 public:
  struct Config {
    /// Stripe unit (PVFS default 64 KiB).
    Bytes stripeSize = 64_KiB;
    /// Metadata RPC to the (hashed) metadata server.
    sim::Duration metaRpc = sim::Duration::micros(600);
    /// Per-I/O-server handshake when creating the datafiles of a new file;
    /// serialized in 2.6.x — the small-file killer.
    sim::Duration datafileHandshake = sim::Duration::micros(500);
    /// Request setup per server per transfer.
    sim::Duration ioRequestOverhead = sim::Duration::micros(300);
    /// Flow-control window: each server serves a file as a sequence of
    /// requests of this size, and with dozens of clients interleaving,
    /// every request repositions the disk (2.6.x did no server-side
    /// request coalescing). This is the small-file killer's other half:
    /// a 3 MB Montage file becomes two dozen seek-bound 128 KiB accesses.
    Bytes requestSize = 128_KiB;
  };

  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
         const Config& cfg);
  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "pvfs"; }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;

 private:
  /// Servers touched by a file of `size` bytes (round-robin striping).
  [[nodiscard]] int serversFor(Bytes size) const;
  [[nodiscard]] sim::Task<void> stripedTransfer(int clientIdx, Bytes size, bool isWrite);

  sim::Simulator* sim_;
  net::Fabric* fabric_;
  Config cfg_;
};

}  // namespace wfs::storage
