#pragma once

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/erasure_layer.hpp"
#include "storage/stack/layer_stack.hpp"

namespace wfs::storage {

/// The PVFS option (paper §IV.D): a parallel file system striping file data
/// across every node; each node is both client and I/O server, and metadata
/// is distributed across all nodes.
///
/// The model matches the 2.6.3 release the authors had to fall back to:
/// no small-file optimizations, so every file create performs a metadata
/// round trip plus a serialized datafile handshake with *each* I/O server,
/// and every transfer is synchronous to the server disks (no client or
/// server caching layer) — the mechanism behind PVFS's poor Montage and
/// Broadband results (Figs 2, 4).
///
/// Stack (shared): pvfs/meta -> cluster/stripe,
/// or pvfs/meta -> cluster/ec when an erasure geometry is configured.
class PvfsFs : public StorageSystem {
 public:
  struct Config {
    /// Stripe unit (PVFS default 64 KiB).
    Bytes stripeSize = 64_KiB;
    /// Metadata RPC to the (hashed) metadata server.
    sim::Duration metaRpc = sim::Duration::micros(600);
    /// Per-I/O-server handshake when creating the datafiles of a new file;
    /// serialized in 2.6.x — the small-file killer.
    sim::Duration datafileHandshake = sim::Duration::micros(500);
    /// Request setup per server per transfer.
    sim::Duration ioRequestOverhead = sim::Duration::micros(300);
    /// Flow-control window: each server serves a file as a sequence of
    /// requests of this size, and with dozens of clients interleaving,
    /// every request repositions the disk (2.6.x did no server-side
    /// request coalescing). This is the small-file killer's other half:
    /// a 3 MB Montage file becomes two dozen seek-bound 128 KiB accesses.
    Bytes requestSize = 128_KiB;
    /// Stripe+parity erasure geometry. ecK == 0 keeps the paper's plain
    /// full-width striping (byte-identical to before); ecK >= 1 with
    /// ecM >= 1 swaps cluster/stripe for cluster/ec, which writes k data +
    /// m parity fragments to k+m rotated servers and reconstructs reads
    /// from any k of them.
    int ecK = 0;
    int ecM = 0;
  };

  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
         const Config& cfg);
  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "pvfs"; }

  [[nodiscard]] int ecK() const { return cfg_.ecK; }
  [[nodiscard]] int ecM() const { return cfg_.ecM; }
  /// The shared dispersal translator; nullptr under plain striping.
  [[nodiscard]] const ErasureLayer* erasure() const { return ec_; }

  /// Self-heal of a replacement I/O server: rebuilds its missing fragments
  /// from the surviving k-of-n, in catalog path order. No-op under plain
  /// striping (nothing survives to rebuild from).
  [[nodiscard]] sim::Task<void> healNode(int node) override;

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// Plain striping spreads every file across every I/O server with no
  /// redundancy: one node crash loses the whole namespace — matching the
  /// operational fragility that forced the paper's authors off PVFS 2.8.
  /// With erasure coding a file dies only when the crashing server drops
  /// it below k live fragments.
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override;
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override;
  void onNodeRestore(int node) override;

 private:
  Config cfg_;
  std::unique_ptr<LayerStack> stack_;
  ErasureLayer* ec_ = nullptr;  // owned by stack_, set iff ecK > 0
};

}  // namespace wfs::storage
