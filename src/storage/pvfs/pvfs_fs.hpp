#pragma once

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/layer_stack.hpp"

namespace wfs::storage {

/// The PVFS option (paper §IV.D): a parallel file system striping file data
/// across every node; each node is both client and I/O server, and metadata
/// is distributed across all nodes.
///
/// The model matches the 2.6.3 release the authors had to fall back to:
/// no small-file optimizations, so every file create performs a metadata
/// round trip plus a serialized datafile handshake with *each* I/O server,
/// and every transfer is synchronous to the server disks (no client or
/// server caching layer) — the mechanism behind PVFS's poor Montage and
/// Broadband results (Figs 2, 4).
///
/// Stack (shared): pvfs/meta -> cluster/stripe.
class PvfsFs : public StorageSystem {
 public:
  struct Config {
    /// Stripe unit (PVFS default 64 KiB).
    Bytes stripeSize = 64_KiB;
    /// Metadata RPC to the (hashed) metadata server.
    sim::Duration metaRpc = sim::Duration::micros(600);
    /// Per-I/O-server handshake when creating the datafiles of a new file;
    /// serialized in 2.6.x — the small-file killer.
    sim::Duration datafileHandshake = sim::Duration::micros(500);
    /// Request setup per server per transfer.
    sim::Duration ioRequestOverhead = sim::Duration::micros(300);
    /// Flow-control window: each server serves a file as a sequence of
    /// requests of this size, and with dozens of clients interleaving,
    /// every request repositions the disk (2.6.x did no server-side
    /// request coalescing). This is the small-file killer's other half:
    /// a 3 MB Montage file becomes two dozen seek-bound 128 KiB accesses.
    Bytes requestSize = 128_KiB;
  };

  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
         const Config& cfg);
  PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes);

  [[nodiscard]] std::string name() const override { return "pvfs"; }

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// Every file is striped across every I/O server with no redundancy: one
  /// node crash loses the whole namespace — matching the operational
  /// fragility that forced the paper's authors off PVFS 2.8.
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override {
    (void)node;
    (void)file;
    (void)meta;
    return true;
  }

 private:
  Config cfg_;
  std::unique_ptr<LayerStack> stack_;
};

}  // namespace wfs::storage
