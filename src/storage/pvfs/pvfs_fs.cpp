#include "storage/pvfs/pvfs_fs.hpp"

#include <algorithm>

#include "storage/base/path.hpp"

namespace wfs::storage {

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
               const Config& cfg)
    : StorageSystem{std::move(nodes)}, sim_{&sim}, fabric_{&fabric}, cfg_{cfg} {}

int PvfsFs::serversFor(Bytes size) const {
  const Bytes stripes = std::max<Bytes>(1, (size + cfg_.stripeSize - 1) / cfg_.stripeSize);
  return static_cast<int>(std::min<Bytes>(nodeCount(), stripes));
}

sim::Task<void> PvfsFs::stripedTransfer(int clientIdx, Bytes size, bool isWrite) {
  const int k = serversFor(size);
  const Bytes chunk = size / k;
  const Bytes last = size - chunk * (k - 1);
  

  std::vector<sim::Task<void>> parts;
  parts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const Bytes part = (i == k - 1) ? last : chunk;
    if (part <= 0) continue;
    auto serverIo = [](PvfsFs& fs, int server, int clientNode, Bytes bytes,
                       bool wr) -> sim::Task<void> {
      StorageNode& sv = fs.node(server);
      net::Nic* cli = fs.node(clientNode).nic;
      co_await fs.sim_->delay(fs.cfg_.ioRequestOverhead +
                              fs.fabric_->oneWayLatency(cli, sv.nic));
      // Flow-controlled requests, serial per server: each repositions the
      // disk because concurrent clients interleave between requests. The
      // server's datafile is contiguous, so chunk initialization is paid
      // once per file, not once per request.
      const Bytes base = wr ? sv.disk->allocate(bytes) : 0;
      Bytes done = 0;
      while (done < bytes) {
        const Bytes req = std::min(bytes - done, fs.cfg_.requestSize);
        if (wr) {
          // Client -> server NIC -> synchronous disk write, pipelined flow.
          co_await sv.disk->writeAt(base + done, req, fs.fabric_->path(cli, sv.nic));
        } else {
          // Disk read -> server NIC -> client, pipelined flow.
          co_await sv.disk->read(req, fs.fabric_->path(sv.nic, cli));
        }
        done += req;
      }
    };
    parts.push_back(serverIo(*this, i, clientIdx, part, isWrite));
  }
  co_await sim::allOf(fabric_->network().simulator(), std::move(parts));
}

sim::Task<void> PvfsFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  // Metadata create on the hashed metadata server.
  co_await sim_->delay(cfg_.metaRpc);
  // 2.6.x datafile creation: one serialized handshake per I/O server,
  // regardless of file size.
  for (int i = 0; i < nodeCount(); ++i) {
    co_await sim_->delay(cfg_.datafileHandshake);
  }
  co_await stripedTransfer(nodeIdx, size, /*isWrite=*/true);
}

sim::Task<void> PvfsFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  ++metrics_.remoteReads;  // stripes always reach other servers
  metrics_.bytesRead += meta.size;
  co_await sim_->delay(cfg_.metaRpc);
  co_await stripedTransfer(nodeIdx, meta.size, /*isWrite=*/false);
}

void PvfsFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
}

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : PvfsFs{sim, fabric, std::move(nodes), Config{}} {}

}  // namespace wfs::storage
