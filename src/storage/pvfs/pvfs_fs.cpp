#include "storage/pvfs/pvfs_fs.hpp"

#include "storage/stack/stripe_layer.hpp"

namespace wfs::storage {
namespace {

/// PVFS 2.6.x metadata path: a metadata RPC per op, plus — on create — one
/// serialized datafile handshake per I/O server regardless of file size.
class PvfsMetaLayer final : public IoLayer {
 public:
  PvfsMetaLayer(sim::Duration metaRpc, sim::Duration datafileHandshake, int servers)
      : metaRpc_{metaRpc}, datafileHandshake_{datafileHandshake}, servers_{servers} {}

  [[nodiscard]] std::string name() const override { return "pvfs/meta"; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    // Metadata create/lookup on the hashed metadata server.
    co_await sim_->delay(metaRpc_);
    if (isWriteLike(op.kind)) {
      // 2.6.x datafile creation: one serialized handshake per I/O server.
      for (int i = 0; i < servers_; ++i) {
        co_await sim_->delay(datafileHandshake_);
      }
    }
    auto below = forward(op);
    co_await std::move(below);
  }

 private:
  sim::Duration metaRpc_;
  sim::Duration datafileHandshake_;
  int servers_;
};

}  // namespace

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
               const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, cfg_{cfg} {
  std::vector<const StorageNode*> servers;
  servers.reserve(nodes_.size());
  for (const auto& n : nodes_) servers.push_back(&n);

  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(
      std::make_unique<PvfsMetaLayer>(cfg.metaRpc, cfg.datafileHandshake, nodeCount()));
  if (cfg.ecK > 0) {
    ErasureLayer::Config ec;
    ec.k = cfg.ecK;
    ec.m = cfg.ecM;
    ec.ioRequestOverhead = cfg.ioRequestOverhead;
    ec.requestSize = cfg.requestSize;
    auto disperse = std::make_unique<ErasureLayer>(fabric, std::move(servers), ec);
    ec_ = disperse.get();
    layers.push_back(std::move(disperse));
  } else {
    StripeLayer::Config stripe;
    stripe.stripeSize = cfg.stripeSize;
    stripe.ioRequestOverhead = cfg.ioRequestOverhead;
    stripe.requestSize = cfg.requestSize;
    layers.push_back(std::make_unique<StripeLayer>(fabric, std::move(servers), stripe));
  }
  stack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  setNodeStacks(std::vector<LayerStack*>(nodes_.size(), stack_.get()));
}

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : PvfsFs{sim, fabric, std::move(nodes), Config{}} {}

sim::Task<void> PvfsFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return stack_->write(nodeIdx, file, size);
}

sim::Task<void> PvfsFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  ++metrics_.remoteReads;  // stripes always reach other servers
  return stack_->read(nodeIdx, file, size);
}

bool PvfsFs::losesDataOnCrash(int nodeIdx, sim::FileId file, const FileMeta& meta) const {
  (void)meta;
  if (ec_ != nullptr) return ec_->losesFile(file, nodeIdx);
  (void)file;
  return true;
}

void PvfsFs::onNodeFail(int nodeIdx, const std::vector<sim::FileId>& lost) {
  (void)lost;
  if (ec_ != nullptr) ec_->dropServer(nodeIdx);
}

void PvfsFs::onNodeRestore(int nodeIdx) {
  // The replacement server rejoins with empty media: writable again, but
  // its fragments are gone until healNode() rebuilds them.
  if (ec_ != nullptr) ec_->reviveServer(nodeIdx);
}

sim::Task<void> PvfsFs::healNode(int nodeIdx) {
  if (ec_ == nullptr) co_return;  // plain striping: nothing survives to rebuild from
  // Catalog path order = the recovery-sweep order, so rebuild replays
  // identically everywhere.
  std::vector<std::pair<sim::FileId, Bytes>> candidates;
  for (const sim::FileId id : catalog_.sortedIds()) {
    const FileMeta& meta = *catalog_.tryLookup(id);
    if (meta.lost || meta.discarded) continue;
    candidates.emplace_back(id, meta.size);
  }
  auto pass = ec_->heal(nodeIdx, std::move(candidates));
  co_await std::move(pass);
}

}  // namespace wfs::storage
