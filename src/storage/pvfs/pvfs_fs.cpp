#include "storage/pvfs/pvfs_fs.hpp"

#include "storage/stack/stripe_layer.hpp"

namespace wfs::storage {
namespace {

/// PVFS 2.6.x metadata path: a metadata RPC per op, plus — on create — one
/// serialized datafile handshake per I/O server regardless of file size.
class PvfsMetaLayer final : public IoLayer {
 public:
  PvfsMetaLayer(sim::Duration metaRpc, sim::Duration datafileHandshake, int servers)
      : metaRpc_{metaRpc}, datafileHandshake_{datafileHandshake}, servers_{servers} {}

  [[nodiscard]] std::string name() const override { return "pvfs/meta"; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override {
    // Metadata create/lookup on the hashed metadata server.
    co_await sim_->delay(metaRpc_);
    if (isWriteLike(op.kind)) {
      // 2.6.x datafile creation: one serialized handshake per I/O server.
      for (int i = 0; i < servers_; ++i) {
        co_await sim_->delay(datafileHandshake_);
      }
    }
    auto below = forward(op);
    co_await std::move(below);
  }

 private:
  sim::Duration metaRpc_;
  sim::Duration datafileHandshake_;
  int servers_;
};

}  // namespace

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
               const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, cfg_{cfg} {
  std::vector<const StorageNode*> servers;
  servers.reserve(nodes_.size());
  for (const auto& n : nodes_) servers.push_back(&n);

  StripeLayer::Config stripe;
  stripe.stripeSize = cfg.stripeSize;
  stripe.ioRequestOverhead = cfg.ioRequestOverhead;
  stripe.requestSize = cfg.requestSize;

  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(
      std::make_unique<PvfsMetaLayer>(cfg.metaRpc, cfg.datafileHandshake, nodeCount()));
  layers.push_back(std::make_unique<StripeLayer>(fabric, std::move(servers), stripe));
  stack_ = std::make_unique<LayerStack>(sim, metrics_, std::move(layers));
  setNodeStacks(std::vector<LayerStack*>(nodes_.size(), stack_.get()));
}

PvfsFs::PvfsFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes)
    : PvfsFs{sim, fabric, std::move(nodes), Config{}} {}

sim::Task<void> PvfsFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return stack_->write(nodeIdx, file, size);
}

sim::Task<void> PvfsFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  ++metrics_.remoteReads;  // stripes always reach other servers
  return stack_->read(nodeIdx, file, size);
}

}  // namespace wfs::storage
