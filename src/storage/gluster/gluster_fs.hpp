#pragma once

#include <memory>
#include <vector>

#include "storage/base/storage_system.hpp"
#include "storage/gluster/layouts.hpp"
#include "storage/gluster/translator.hpp"
#include "storage/gluster/xlator.hpp"

namespace wfs::storage {

enum class GlusterMode { kNufa, kDistribute };

/// The GlusterFS option (paper §IV.C): every node is both client and
/// server; each exports a local brick merged into one volume. Each client
/// mounts the volume through a translator stack —
///
///   performance/io-cache  ->  cluster/dht (nufa | distribute)  ->  bricks
///
/// — and the paper's two configurations differ only in the placement
/// layout the dht translator uses.
class GlusterFs : public StorageSystem {
 public:
  struct Config {
    PosixBrick::Config brick{};
    /// Per-file lookup RPC to the owning brick (DHT hash is local math;
    /// the latency covers the open/stat exchange).
    sim::Duration lookupLatency = sim::Duration::micros(300);
    /// performance/io-cache translator capacity per client (the 2010-era
    /// default was small; reads mostly rely on brick page caches).
    Bytes ioCacheBytes = 64_MiB;
    Rate memRate = GBps(1);
  };

  GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
            GlusterMode mode, const Config& cfg);
  GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
            GlusterMode mode);

  [[nodiscard]] std::string name() const override {
    return mode_ == GlusterMode::kNufa ? "gluster-nufa" : "gluster-dist";
  }
  [[nodiscard]] sim::Task<void> write(int node, std::string path, Bytes size) override;
  [[nodiscard]] sim::Task<void> read(int node, std::string path) override;
  void preload(const std::string& path, Bytes size) override;
  void discard(int node, const std::string& path) override;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const override;

  [[nodiscard]] GlusterMode mode() const { return mode_; }
  [[nodiscard]] const LayoutPolicy& layout() const { return *layout_; }
  /// The translator stack a client mounts (top layer first).
  [[nodiscard]] XlatorStack& clientStack(int node) {
    return *stacks_.at(static_cast<std::size_t>(node));
  }

 private:
  [[nodiscard]] IoCacheXlator& ioCache(int node) const {
    return static_cast<IoCacheXlator&>(
        *stacks_.at(static_cast<std::size_t>(node))->layer(0));
  }

  sim::Simulator* sim_;
  net::Fabric* fabric_;
  GlusterMode mode_;
  Config cfg_;
  std::unique_ptr<LayoutPolicy> layout_;
  std::vector<std::unique_ptr<PosixBrick>> bricks_;
  std::vector<std::unique_ptr<XlatorStack>> stacks_;
};

}  // namespace wfs::storage
