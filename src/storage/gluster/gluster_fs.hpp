#pragma once

#include <memory>
#include <vector>

#include "storage/base/storage_system.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/layouts.hpp"
#include "storage/stack/replica_layer.hpp"

namespace wfs::storage {

enum class GlusterMode { kNufa, kDistribute };

/// The GlusterFS option (paper §IV.C): every node is both client and
/// server; each exports a local brick merged into one volume. Each client
/// mounts the volume through a translator stack —
///
///   performance/io-cache  ->  cluster/dht (nufa | distribute)  ->  bricks
///
/// — and the paper's two configurations differ only in the placement
/// layout the dht translator uses. The bricks themselves are stacks too:
/// brick/page-cache -> brick/write-behind -> brick/device (storage/posix
/// with the kernel page cache and async write-back behind it).
class GlusterFs : public StorageSystem {
 public:
  struct Config {
    /// Brick-side sizing (storage/posix + kernel caches).
    double brickPageCacheFraction = 0.4;
    double brickDirtyFraction = 0.2;
    Rate brickMemRate = GBps(1);
    /// Per-file lookup RPC to the owning brick (DHT hash is local math;
    /// the latency covers the open/stat exchange).
    sim::Duration lookupLatency = sim::Duration::micros(300);
    /// performance/io-cache translator capacity per client (the 2010-era
    /// default was small; reads mostly rely on brick page caches).
    Bytes ioCacheBytes = 64_MiB;
    Rate memRate = GBps(1);
    /// AFR replica count: 1 keeps the paper's unreplicated volumes
    /// (cluster/dht routing, byte-identical to before); N > 1 swaps the
    /// placement translator for cluster/afr, which fans every write out to
    /// the N consecutive bricks starting at the layout's choice.
    int replicas = 1;
  };

  GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
            GlusterMode mode, const Config& cfg);
  GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
            GlusterMode mode);

  [[nodiscard]] std::string name() const override {
    return mode_ == GlusterMode::kNufa ? "gluster-nufa" : "gluster-dist";
  }

  [[nodiscard]] GlusterMode mode() const { return mode_; }
  [[nodiscard]] const LayoutPolicy& layout() const { return *layout_; }
  /// The translator stack a client mounts (top layer first).
  [[nodiscard]] LayerStack& clientStack(int node) {
    return *clientStacks_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] int replicas() const { return cfg_.replicas; }
  /// Shared AFR volume state; nullptr when replicas == 1.
  [[nodiscard]] const ReplicaState* replicaState() const { return replicaState_.get(); }

  /// Self-heal of a replacement brick: re-replicates every under-replicated
  /// non-lost file onto it, in catalog path order, through the brick stacks
  /// and the shared flow network.
  [[nodiscard]] sim::Task<void> healNode(int node) override;

 protected:
  [[nodiscard]] sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) override;
  [[nodiscard]] sim::Task<void> doRead(int node, sim::FileId file, Bytes size) override;

  /// Unreplicated: a file dies with the brick the layout placed it on.
  /// Replicated: it dies only when the crashing brick held its last live
  /// copy (surviving copies keep it readable, degraded, until healed).
  [[nodiscard]] bool losesDataOnCrash(int node, sim::FileId file,
                                      const FileMeta& meta) const override;
  void onNodeFail(int node, const std::vector<sim::FileId>& lost) override;
  void onNodeRestore(int node) override;

 private:
  GlusterMode mode_;
  Config cfg_;
  std::unique_ptr<LayoutPolicy> layout_;
  std::unique_ptr<ReplicaState> replicaState_;  // set iff replicas > 1
  std::vector<std::unique_ptr<LayerStack>> brickStacks_;
  std::vector<std::unique_ptr<LayerStack>> clientStacks_;
  std::vector<ReplicaLayer*> afrLayers_;  // per client, set iff replicas > 1
};

}  // namespace wfs::storage
