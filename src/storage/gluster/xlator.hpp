#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "simcore/task.hpp"
#include "storage/base/metrics.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/gluster/layouts.hpp"
#include "storage/gluster/translator.hpp"

namespace wfs::storage {

/// One whole-file operation descending a translator stack.
struct FileOp {
  int client = -1;   // worker node issuing the call
  std::string path;  // logical name
  Bytes size = 0;
};

/// GlusterFS translator (paper §IV.C): "components ... that can be composed
/// to create novel file system configurations. All translators support a
/// common API and can be stacked on top of each other in layers. The
/// translator at each layer can decide to service the call, or pass it to a
/// lower-level translator."
class Xlator {
 public:
  virtual ~Xlator() = default;

  [[nodiscard]] virtual sim::Task<void> read(FileOp op) = 0;
  [[nodiscard]] virtual sim::Task<void> write(FileOp op) = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  void setNext(Xlator* next) { next_ = next; }
  [[nodiscard]] Xlator* next() const { return next_; }

 protected:
  Xlator* next_ = nullptr;
};

/// performance/io-cache: serves repeated reads from a small client-side
/// cache; passes misses (and all writes) down, caching on the way back up.
class IoCacheXlator final : public Xlator {
 public:
  IoCacheXlator(sim::Simulator& sim, Bytes capacity, Rate memRate, StorageMetrics& metrics)
      : sim_{&sim}, cache_{capacity}, memRate_{memRate}, metrics_{&metrics} {}

  [[nodiscard]] sim::Task<void> read(FileOp op) override;
  [[nodiscard]] sim::Task<void> write(FileOp op) override;
  [[nodiscard]] std::string name() const override { return "performance/io-cache"; }

  void evict(const std::string& path) { cache_.erase(path); }
  [[nodiscard]] bool cached(const std::string& path) const { return cache_.contains(path); }

 private:
  sim::Simulator* sim_;
  LruCache cache_;
  Rate memRate_;
  StorageMetrics* metrics_;
};

/// cluster/distribute (or nufa): routes each file to its brick by the
/// layout policy; remote bricks cost a lookup RPC and, for writes, the
/// payload transfer (protocol/client + protocol/server in one hop).
class DhtXlator final : public Xlator {
 public:
  DhtXlator(sim::Simulator& sim, net::Fabric& fabric, LayoutPolicy& layout,
            std::vector<PosixBrick*> bricks, std::vector<const StorageNode*> nodes,
            sim::Duration lookupLatency, StorageMetrics& metrics)
      : sim_{&sim},
        fabric_{&fabric},
        layout_{&layout},
        bricks_{std::move(bricks)},
        nodes_{std::move(nodes)},
        lookupLatency_{lookupLatency},
        metrics_{&metrics} {}

  [[nodiscard]] sim::Task<void> read(FileOp op) override;
  [[nodiscard]] sim::Task<void> write(FileOp op) override;
  [[nodiscard]] std::string name() const override { return "cluster/dht"; }

 private:
  sim::Simulator* sim_;
  net::Fabric* fabric_;
  LayoutPolicy* layout_;
  std::vector<PosixBrick*> bricks_;
  std::vector<const StorageNode*> nodes_;
  sim::Duration lookupLatency_;
  StorageMetrics* metrics_;
};

/// A client's view of the volume: translators chained top to bottom.
class XlatorStack {
 public:
  /// Composes the stack; `layers` is ordered top-first and must be
  /// non-empty. Ownership of the layers moves into the stack.
  explicit XlatorStack(std::vector<std::unique_ptr<Xlator>> layers);

  [[nodiscard]] sim::Task<void> read(FileOp op) { return top_->read(std::move(op)); }
  [[nodiscard]] sim::Task<void> write(FileOp op) { return top_->write(std::move(op)); }

  /// Layer lookup for tests and cache maintenance.
  [[nodiscard]] Xlator* layer(std::size_t i) { return layers_.at(i).get(); }
  [[nodiscard]] std::size_t depth() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Xlator>> layers_;
  Xlator* top_;
};

}  // namespace wfs::storage
