#include "storage/gluster/translator.hpp"

namespace wfs::storage {

PosixBrick::PosixBrick(sim::Simulator& sim, const StorageNode& node, const Config& cfg)
    : sim_{&sim},
      node_{&node},
      cfg_{cfg},
      pageCache_{static_cast<Bytes>(static_cast<double>(node.memoryBytes) *
                                    cfg.pageCacheFraction)} {
  WriteBackCache::Config wb;
  wb.dirtyLimit = static_cast<Bytes>(static_cast<double>(node.memoryBytes) * cfg.dirtyFraction);
  wb.memRate = cfg.memRate;
  wb_ = std::make_unique<WriteBackCache>(sim, *node.disk, wb);
}

sim::Task<void> PosixBrick::read(const std::string& key, Bytes size, net::Fabric& fabric,
                                 net::Nic* client) {
  const bool local = (client == node_->nic);
  if (pageCache_.touch(key)) {
    if (local) {
      co_await sim_->delay(memCopyTime(size, cfg_.memRate));
    } else {
      co_await fabric.network().transfer(fabric.path(node_->nic, client), size);
    }
    co_return;
  }
  // Disk service pipelined with the network leg (empty path when local).
  co_await node_->disk->read(size, fabric.path(node_->nic, client));
  pageCache_.put(key, size);
}

sim::Task<void> PosixBrick::write(const std::string& key, Bytes size) {
  co_await wb_->write(size);
  pageCache_.put(key, size);
}

}  // namespace wfs::storage
