#pragma once

#include <memory>
#include <string>

#include "net/fabric.hpp"
#include "storage/base/lru_cache.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/base/wb_cache.hpp"

namespace wfs::storage {

/// GlusterFS composes file systems from stackable translators (paper §IV.C).
/// This model keeps the three that matter for workflow I/O:
///
///  * storage/posix  — PosixBrick below: the brick's on-disk store with the
///    kernel page cache and write-back buffer behind it;
///  * performance/io-cache + write-behind — client-side read cache and
///    asynchronous write absorption, folded into GlusterFs;
///  * protocol/client+server — the RPC hop and streaming data path taken
///    when the brick is remote, expressed here as the extra flow hops the
///    PosixBrick operations accept.
class PosixBrick {
 public:
  struct Config {
    double pageCacheFraction = 0.4;
    double dirtyFraction = 0.2;
    Rate memRate = GBps(1);
  };

  PosixBrick(sim::Simulator& sim, const StorageNode& node, const Config& cfg);

  /// Serves `key` to `client` (may be this brick's own node). Page-cache
  /// hits ship from RAM; misses stream disk -> network as one flow.
  [[nodiscard]] sim::Task<void> read(const std::string& key, Bytes size, net::Fabric& fabric,
                                     net::Nic* client);

  /// Stores `key`; the payload has already reached this node. Lands in the
  /// write-back buffer (GlusterFS write-behind + kernel async writes).
  [[nodiscard]] sim::Task<void> write(const std::string& key, Bytes size);

  /// Registers pre-staged data as resident on disk (cold cache).
  void adopt(const std::string& key) { (void)key; }

  /// Drops `key` from the brick's page cache (file deleted).
  void evict(const std::string& key) { pageCache_.erase(key); }

  [[nodiscard]] const StorageNode& node() const { return *node_; }
  [[nodiscard]] bool pageCached(const std::string& key) const {
    return pageCache_.contains(key);
  }

 private:
  sim::Simulator* sim_;
  const StorageNode* node_;
  Config cfg_;
  LruCache pageCache_;
  std::unique_ptr<WriteBackCache> wb_;
};

}  // namespace wfs::storage
