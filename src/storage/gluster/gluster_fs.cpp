#include "storage/gluster/gluster_fs.hpp"

namespace wfs::storage {

GlusterFs::GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
                     GlusterMode mode, const Config& cfg)
    : StorageSystem{std::move(nodes)}, sim_{&sim}, fabric_{&fabric}, mode_{mode}, cfg_{cfg} {
  const int n = nodeCount();
  layout_ = (mode == GlusterMode::kNufa)
                ? std::unique_ptr<LayoutPolicy>{std::make_unique<NufaLayout>(n)}
                : std::unique_ptr<LayoutPolicy>{std::make_unique<DistributeLayout>(n)};
  bricks_.reserve(static_cast<std::size_t>(n));
  for (const auto& nd : nodes_) {
    bricks_.push_back(std::make_unique<PosixBrick>(sim, nd, cfg.brick));
  }
  // Every client mounts the volume through its own translator stack.
  std::vector<PosixBrick*> brickPtrs;
  std::vector<const StorageNode*> nodePtrs;
  for (int i = 0; i < n; ++i) {
    brickPtrs.push_back(bricks_[static_cast<std::size_t>(i)].get());
    nodePtrs.push_back(&node(i));
  }
  stacks_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<std::unique_ptr<Xlator>> layers;
    layers.push_back(
        std::make_unique<IoCacheXlator>(sim, cfg.ioCacheBytes, cfg.memRate, metrics_));
    layers.push_back(std::make_unique<DhtXlator>(sim, fabric, *layout_, brickPtrs, nodePtrs,
                                                 cfg.lookupLatency, metrics_));
    stacks_.push_back(std::make_unique<XlatorStack>(std::move(layers)));
  }
}

sim::Task<void> GlusterFs::write(int nodeIdx, std::string path, Bytes size) {
  catalog_.create(path, size, nodeIdx);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  // Materialize the call before awaiting: GCC 12 double-destroys
  // non-trivial temporaries inside co_await operands.
  auto op = clientStack(nodeIdx).write(FileOp{nodeIdx, std::move(path), size});
  co_await std::move(op);
}

sim::Task<void> GlusterFs::read(int nodeIdx, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  ++metrics_.readOps;
  metrics_.bytesRead += meta.size;
  auto op = clientStack(nodeIdx).read(FileOp{nodeIdx, std::move(path), meta.size});
  co_await std::move(op);
}

void GlusterFs::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  const int owner = layout_->place(path, -1);
  bricks_[static_cast<std::size_t>(owner)]->adopt(path);
}

void GlusterFs::discard(int nodeIdx, const std::string& path) {
  ioCache(nodeIdx).evict(path);
  bricks_[static_cast<std::size_t>(layout_->locate(path))]->evict(path);
}

Bytes GlusterFs::localityHint(int nodeIdx, const std::string& path) const {
  if (!catalog_.exists(path)) return 0;
  if (ioCache(nodeIdx).cached(path) || layout_->locate(path) == nodeIdx) {
    return catalog_.lookup(path).size;
  }
  return 0;
}

GlusterFs::GlusterFs(sim::Simulator& sim, net::Fabric& fabric,
                     std::vector<StorageNode> nodes, GlusterMode mode)
    : GlusterFs{sim, fabric, std::move(nodes), mode, Config{}} {}

}  // namespace wfs::storage
