#include "storage/gluster/gluster_fs.hpp"

#include <stdexcept>

#include "storage/stack/device_layer.hpp"
#include "storage/stack/lru_cache_layer.hpp"
#include "storage/stack/node_stack.hpp"
#include "storage/stack/placement_layer.hpp"
#include "storage/stack/write_behind_layer.hpp"

namespace wfs::storage {

GlusterFs::GlusterFs(sim::Simulator& sim, net::Fabric& fabric, std::vector<StorageNode> nodes,
                     GlusterMode mode, const Config& cfg)
    : StorageSystem{sim, std::move(nodes)}, mode_{mode}, cfg_{cfg} {
  const int n = nodeCount();
  layout_ = (mode == GlusterMode::kNufa)
                ? std::unique_ptr<LayoutPolicy>{std::make_unique<NufaLayout>(n, sim.files())}
                : std::unique_ptr<LayoutPolicy>{
                      std::make_unique<DistributeLayout>(n, sim.files())};

  // storage/posix bricks: the on-disk store with the kernel page cache and
  // write-back buffer behind it.
  std::vector<LayerStack*> brickPtrs;
  std::vector<const StorageNode*> nodePtrs;
  brickStacks_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const StorageNode& nd = node(i);
    nodePtrs.push_back(&nd);

    LruCacheLayer::Config cache;
    cache.name = "brick/page-cache";
    cache.capacity = static_cast<Bytes>(static_cast<double>(nd.memoryBytes) *
                                        cfg.brickPageCacheFraction);
    cache.memRate = cfg.brickMemRate;
    // Page-cache hits ship from RAM over the resolved route (a memory copy
    // when the client is the brick's own node).
    cache.hitCost = LruCacheLayer::HitCost::kRoute;
    cache.net = &fabric.network();

    WriteBehindLayer::Config wb;
    wb.name = "brick/write-behind";
    wb.dirtyLimit =
        static_cast<Bytes>(static_cast<double>(nd.memoryBytes) * cfg.brickDirtyFraction);
    wb.memRate = cfg.brickMemRate;

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<LruCacheLayer>(cache));
    layers.push_back(std::make_unique<WriteBehindLayer>(sim, *nd.disk, wb));
    layers.push_back(std::make_unique<DeviceLayer>(*nd.disk, "brick/device"));
    brickStacks_.push_back(std::make_unique<LayerStack>(sim, metrics_, std::move(layers)));
    brickPtrs.push_back(brickStacks_.back().get());
  }

  if (cfg.replicas > 1) {
    replicaState_ = std::make_unique<ReplicaState>(n, cfg.replicas, *layout_);
  }

  // Every client mounts the volume through its own translator stack.
  clientStacks_.reserve(static_cast<std::size_t>(n));
  std::vector<LayerStack*> stackPtrs;
  for (int i = 0; i < n; ++i) {
    LruCacheLayer::Config ioCache;
    ioCache.name = "performance/io-cache";
    ioCache.capacity = cfg.ioCacheBytes;
    ioCache.memRate = cfg.memRate;
    ioCache.hitCountsCacheHit = true;
    ioCache.hitCountsLocalRead = true;
    ioCache.missCountsCacheMiss = true;

    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<LruCacheLayer>(ioCache));
    if (replicaState_ != nullptr) {
      ReplicaLayer::Config afr;
      afr.lookupLatency = cfg.lookupLatency;
      auto replica = std::make_unique<ReplicaLayer>(fabric, *replicaState_, nodePtrs, afr);
      replica->setTargets(brickPtrs);
      afrLayers_.push_back(replica.get());
      layers.push_back(std::move(replica));
    } else {
      PlacementLayer::Config dht;
      dht.lookupLatency = cfg.lookupLatency;
      auto placement = std::make_unique<PlacementLayer>(fabric, *layout_, nodePtrs, dht);
      placement->setTargets(brickPtrs);
      layers.push_back(std::move(placement));
    }
    clientStacks_.push_back(std::make_unique<LayerStack>(sim, metrics_, std::move(layers)));
    stackPtrs.push_back(clientStacks_.back().get());
  }
  setNodeStacks(std::move(stackPtrs));
}

GlusterFs::GlusterFs(sim::Simulator& sim, net::Fabric& fabric,
                     std::vector<StorageNode> nodes, GlusterMode mode)
    : GlusterFs{sim, fabric, std::move(nodes), mode, Config{}} {}

sim::Task<void> GlusterFs::doWrite(int nodeIdx, sim::FileId file, Bytes size) {
  return clientStack(nodeIdx).write(nodeIdx, file, size);
}

sim::Task<void> GlusterFs::doRead(int nodeIdx, sim::FileId file, Bytes size) {
  return clientStack(nodeIdx).read(nodeIdx, file, size);
}

bool GlusterFs::losesDataOnCrash(int nodeIdx, sim::FileId file, const FileMeta& meta) const {
  (void)meta;
  if (replicaState_ != nullptr) {
    // Replicated volume: the file dies only with its last live copy. The
    // sweep runs before onNodeFail, so the crashing child is excluded here.
    return replicaState_->hasCopy(file, nodeIdx) &&
           replicaState_->liveCopiesExcluding(file, nodeIdx) == 0;
  }
  try {
    return layout_->locate(file) == nodeIdx;
  } catch (const std::out_of_range&) {
    return false;  // never placed on any brick — nothing to lose
  }
}

void GlusterFs::onNodeFail(int nodeIdx, const std::vector<sim::FileId>& lost) {
  // The brick's page cache and unflushed write-behind data die with the VM.
  wipeStackCaches(*brickStacks_.at(static_cast<std::size_t>(nodeIdx)));
  if (replicaState_ != nullptr) replicaState_->dropChild(nodeIdx);
  // Every client's io-cache copy of a lost file is stale (the recomputed
  // file may land on a different brick with different bytes).
  for (auto& client : clientStacks_) {
    if (auto* ioCache = dynamic_cast<LruCacheLayer*>(client->find("performance/io-cache"))) {
      for (sim::FileId f : lost) ioCache->evict(f);
    }
  }
}

void GlusterFs::onNodeRestore(int nodeIdx) {
  // The replacement brick re-joins empty: it is a write target again, but
  // holds no copies until healNode() re-replicates them.
  if (replicaState_ != nullptr) replicaState_->reviveChild(nodeIdx);
}

sim::Task<void> GlusterFs::healNode(int nodeIdx) {
  if (replicaState_ == nullptr) co_return;  // unreplicated: nothing to heal
  // Snapshot the namespace in catalog path order (the recovery-sweep order,
  // so heal replays identically everywhere); files written after the
  // snapshot see the revived child and replicate normally.
  std::vector<std::pair<sim::FileId, Bytes>> candidates;
  for (const sim::FileId id : catalog_.sortedIds()) {
    const FileMeta& meta = *catalog_.tryLookup(id);
    if (meta.lost || meta.discarded) continue;
    candidates.emplace_back(id, meta.size);
  }
  auto pass = afrLayers_.at(static_cast<std::size_t>(nodeIdx))
                  ->heal(nodeIdx, std::move(candidates));
  co_await std::move(pass);
}

}  // namespace wfs::storage
