#include "storage/gluster/xlator.hpp"

#include <cassert>

namespace wfs::storage {

sim::Task<void> IoCacheXlator::read(FileOp op) {
  if (cache_.touch(op.path)) {
    ++metrics_->cacheHits;
    ++metrics_->localReads;
    co_await sim_->delay(memCopyTime(op.size, memRate_));
    co_return;
  }
  ++metrics_->cacheMisses;
  assert(next_ != nullptr);
  const std::string path = op.path;
  const Bytes size = op.size;
  co_await next_->read(std::move(op));
  cache_.put(path, size);
}

sim::Task<void> IoCacheXlator::write(FileOp op) {
  assert(next_ != nullptr);
  const std::string path = op.path;
  const Bytes size = op.size;
  co_await next_->write(std::move(op));
  cache_.put(path, size);
}

sim::Task<void> DhtXlator::read(FileOp op) {
  const int owner = layout_->locate(op.path);
  net::Nic* client = nodes_.at(static_cast<std::size_t>(op.client))->nic;
  net::Nic* ownerNic = nodes_.at(static_cast<std::size_t>(owner))->nic;
  if (owner == op.client) {
    ++metrics_->localReads;
  } else {
    ++metrics_->remoteReads;
    co_await sim_->delay(lookupLatency_ + fabric_->oneWayLatency(client, ownerNic));
  }
  co_await bricks_.at(static_cast<std::size_t>(owner))->read(op.path, op.size, *fabric_,
                                                             client);
}

sim::Task<void> DhtXlator::write(FileOp op) {
  const int owner = layout_->place(op.path, op.client);
  net::Nic* client = nodes_.at(static_cast<std::size_t>(op.client))->nic;
  net::Nic* ownerNic = nodes_.at(static_cast<std::size_t>(owner))->nic;
  if (owner != op.client) {
    // protocol/client hop: the payload crosses the network to the brick.
    co_await sim_->delay(lookupLatency_ + fabric_->oneWayLatency(client, ownerNic));
    co_await fabric_->network().transfer(fabric_->path(client, ownerNic), op.size);
  }
  co_await bricks_.at(static_cast<std::size_t>(owner))->write(op.path, op.size);
}

XlatorStack::XlatorStack(std::vector<std::unique_ptr<Xlator>> layers)
    : layers_{std::move(layers)} {
  assert(!layers_.empty());
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    layers_[i]->setNext(layers_[i + 1].get());
  }
  top_ = layers_.front().get();
}

}  // namespace wfs::storage
