#include "storage/stack/stripe_layer.hpp"

#include <algorithm>

namespace wfs::storage {

int StripeLayer::serversFor(Bytes size) const {
  const Bytes stripes = std::max<Bytes>(1, (size + cfg_.stripeSize - 1) / cfg_.stripeSize);
  return static_cast<int>(
      std::min<Bytes>(static_cast<Bytes>(servers_.size()), stripes));
}

sim::Task<void> StripeLayer::serverIo(int server, int clientNode, Bytes bytes, bool wr) {
  const StorageNode& sv = *servers_.at(static_cast<std::size_t>(server));
  net::Nic* cli = servers_.at(static_cast<std::size_t>(clientNode))->nic;
  co_await sim_->delay(cfg_.ioRequestOverhead + fabric_->oneWayLatency(cli, sv.nic));
  // Flow-controlled requests, serial per server: each repositions the
  // disk because concurrent clients interleave between requests. The
  // server's datafile is contiguous, so chunk initialization is paid
  // once per file, not once per request.
  const Bytes base = wr ? sv.disk->allocate(bytes) : 0;
  Bytes done = 0;
  while (done < bytes) {
    const Bytes req = std::min(bytes - done, cfg_.requestSize);
    if (wr) {
      // Client -> server NIC -> synchronous disk write, pipelined flow.
      co_await sv.disk->writeAt(base + done, req, fabric_->path(cli, sv.nic));
    } else {
      // Disk read -> server NIC -> client, pipelined flow.
      co_await sv.disk->read(req, fabric_->path(sv.nic, cli));
    }
    done += req;
  }
}

sim::Task<void> StripeLayer::process(Op& op) {
  const bool wr = isWriteLike(op.kind);
  const int k = serversFor(op.size);
  const Bytes chunk = op.size / k;
  const Bytes last = op.size - chunk * (k - 1);

  std::vector<sim::Task<void>> parts;
  parts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const Bytes part = (i == k - 1) ? last : chunk;
    if (part <= 0) continue;
    if (op.kind == OpKind::kRead && op.node >= 0) {
      auto& io = metrics_->nodeIo(op.node);
      (i == op.node ? io.fromDisk : io.fromNetwork) += part;
    }
    parts.push_back(serverIo(i, op.node, part, wr));
  }
  co_await sim::allOf(*sim_, std::move(parts));
}

}  // namespace wfs::storage
