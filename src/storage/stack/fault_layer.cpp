#include "storage/stack/fault_layer.hpp"

#include "storage/base/errors.hpp"

namespace wfs::storage {

double FaultLayer::outageEnd(double now) const {
  for (const auto& [start, end] : cfg_.outages) {
    if (now >= start && now < end) return end;
  }
  return now;
}

sim::Task<void> FaultLayer::process(Op& op) {
  if (!cfg_.outages.empty()) {
    const double now = sim_->now().asSeconds();
    const double resume = outageEnd(now);
    if (resume > now) {
      ++ledger().outageStalls;
      ledger().queueSeconds += resume - now;
      co_await sim_->delay(sim::Duration::fromSeconds(resume - now));
    }
  }
  if (cfg_.opFaultProb > 0.0 && rng_.nextDouble() < cfg_.opFaultProb) {
    ++ledger().faultsInjected;
    throw StorageFaultError("storage/fault: injected fault on " + sim_->files().name(op.file) + " (node " +
                            std::to_string(op.node) + ")");
  }
  auto below = forward(op);
  co_await std::move(below);
}

}  // namespace wfs::storage
