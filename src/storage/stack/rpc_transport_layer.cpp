#include "storage/stack/rpc_transport_layer.hpp"

namespace wfs::storage {

sim::Task<void> RpcTransportLayer::process(Op& op) {
  if (cfg_.onIssue) cfg_.onIssue(op);
  if (cfg_.latency) co_await sim_->delay(cfg_.latency(op));
  if (cfg_.transferPayload) {
    if (op.kind == OpKind::kRead && cfg_.readsFromNetwork && op.node >= 0) {
      metrics_->nodeIo(op.node).fromNetwork += op.size;
    }
    net::Path path = cfg_.route ? cfg_.route(op) : net::Path{};
    auto flow = cfg_.net->transfer(std::move(path), op.size);
    co_await std::move(flow);
  }
  if (cfg_.forwardAfter) {
    auto below = forward(op);
    co_await std::move(below);
  }
}

}  // namespace wfs::storage
