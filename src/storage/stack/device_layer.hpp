#pragma once

#include <string>
#include <utility>

#include "blk/disk.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// Terminal layer over a block store (GlusterFS storage/posix): reads and
/// writes hit the device, streaming over the op's route (disk -> network
/// as one pipelined flow) when a routing layer above set one.
class DeviceLayer final : public IoLayer {
 public:
  explicit DeviceLayer(blk::BlockStore& disk, std::string name = "storage/device")
      : disk_{&disk}, name_{std::move(name)} {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  blk::BlockStore* disk_;
  std::string name_;
};

}  // namespace wfs::storage
