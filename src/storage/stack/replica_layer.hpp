#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/io_layer.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/layouts.hpp"

namespace wfs::storage {

/// Shared replica-set bookkeeping of an AFR volume, owned by the backend and
/// referenced by every client's ReplicaLayer instance: which children are up,
/// and which replica slots of each file actually hold a copy. A file's
/// replica set is the R consecutive bricks starting at the brick its layout
/// chose: {primary, primary+1, ..., primary+R-1} (mod brick count) — the
/// standard way a replicated DHT derives subvolume groups from one placement
/// decision, so replicas=1 degenerates to the plain layout.
class ReplicaState {
 public:
  ReplicaState(int bricks, int replicas, LayoutPolicy& layout);

  [[nodiscard]] int replicas() const { return replicas_; }
  [[nodiscard]] int bricks() const { return bricks_; }

  /// Child node of replica slot `slot` for a file whose primary is known.
  [[nodiscard]] int childOf(sim::FileId file, int slot) const;
  /// Replica slot `node` occupies for `file`, or -1 if outside the set (or
  /// the file was never placed).
  [[nodiscard]] int slotOf(sim::FileId file, int node) const;

  /// Resolves (and on first write records) the file's primary via the
  /// layout, then returns the full replica set.
  [[nodiscard]] std::vector<int> replicaSetForWrite(sim::FileId file, int creator);
  /// Pre-staged data: placed by the layout with creator -1, every slot
  /// populated (input staging is free and complete, mirroring preload()).
  void notePreload(sim::FileId file);

  /// A copy of `file` landed on replica slot `slot`.
  void noteCopy(sim::FileId file, int slot);
  /// Does `node` hold a copy of `file`?
  [[nodiscard]] bool hasCopy(sim::FileId file, int node) const;
  /// Live (child up AND copy present) replicas of `file`, not counting
  /// `excludeNode` — the failNode() sweep asks this *before* onNodeFail has
  /// marked the crashing child down.
  [[nodiscard]] int liveCopiesExcluding(sim::FileId file, int excludeNode) const;

  [[nodiscard]] bool childUp(int node) const {
    return childUp_.at(static_cast<std::size_t>(node)) != 0;
  }
  /// Crash-stop of a child: it is down and every copy it held is gone.
  void dropChild(int node);
  /// Replacement VM re-joined; its brick is empty until healed.
  void reviveChild(int node);

  /// Deterministic read-child selection: the reader's own brick when it is
  /// in the set and live, else the file's hashed preference, else the first
  /// live slot. Sets `degraded` when the preferred copy was unavailable.
  /// Returns -1 when no live copy exists.
  [[nodiscard]] int readChild(sim::FileId file, int reader, bool& degraded) const;

  /// First live copy other than `node` a self-heal can replicate from; -1
  /// if none.
  [[nodiscard]] int healSource(sim::FileId file, int node) const;

 private:
  int bricks_;
  int replicas_;
  LayoutPolicy* layout_;
  std::vector<char> childUp_;          // by node
  std::vector<int> primary_;           // dense by FileId; -1 = never placed
  std::vector<std::uint32_t> copies_;  // dense by FileId; bit j = slot j holds a copy

  void ensure(sim::FileId file);
  [[nodiscard]] int primaryOf(sim::FileId file) const;
};

/// cluster/afr (GlusterFS Automatic File Replication, the architecture the
/// paper's backend came from): synchronous client-side N-way replication.
/// Writes fan out to every live child of the file's replica set in parallel
/// (remote children pay the lookup RPC and the payload transfer); reads pick
/// one deterministic child, preferring a local live copy and falling back —
/// counted as a degraded read — when the preferred child is down or unhealed.
/// heal() re-replicates one file onto a replacement child through the
/// ordinary brick stacks and flow network, so self-heal traffic competes
/// with workflow I/O.
class ReplicaLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "cluster/afr";
    /// Per-file lookup RPC to a remote child (same meaning as
    /// PlacementLayer's).
    sim::Duration lookupLatency = sim::Duration::micros(300);
  };

  ReplicaLayer(net::Fabric& fabric, ReplicaState& state,
               std::vector<const StorageNode*> nodes, Config cfg)
      : cfg_{std::move(cfg)}, fabric_{&fabric}, state_{&state}, nodes_{std::move(nodes)} {}

  /// Per-child brick substacks, indexed by node.
  void setTargets(std::vector<LayerStack*> targets) { targets_ = std::move(targets); }

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    return state_->childUp(node) && state_->hasCopy(file, node) ? size : 0;
  }

  /// Background self-heal of a replacement child: every under-replicated
  /// file in `candidates` (id, size — emitted in catalog path order) whose
  /// set contains `node` is copied from its first live replica, over the
  /// network, into the child's brick stack.
  [[nodiscard]] sim::Task<void> heal(int node,
                                     std::vector<std::pair<sim::FileId, Bytes>> candidates);

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;
  void handle(Op& op) override;

 private:
  [[nodiscard]] sim::Task<void> writeChild(Op op, int child);
  [[nodiscard]] net::Nic* nicOf(int node) const {
    return nodes_.at(static_cast<std::size_t>(node))->nic;
  }

  Config cfg_;
  net::Fabric* fabric_;
  ReplicaState* state_;
  std::vector<const StorageNode*> nodes_;
  std::vector<LayerStack*> targets_;
};

}  // namespace wfs::storage
