#include "storage/stack/retry_layer.hpp"

#include <algorithm>

#include "storage/base/errors.hpp"

namespace wfs::storage {

sim::Task<void> RetryLayer::process(Op& op) {
  for (int attempt = 0;; ++attempt) {
    // IoLayer::submit restores op.parentClock only on the success path; a
    // throwing subtree leaves it aimed at a frame that dies with the
    // propagating exception, so save and re-aim it ourselves.
    double* const parentClock = op.parentClock;
    bool faulted = false;
    try {
      auto below = forward(op);
      co_await std::move(below);
    } catch (const StorageFaultError&) {
      op.parentClock = parentClock;
      if (attempt + 1 >= cfg_.maxAttempts) {
        ++ledger().faultsExhausted;
        throw;
      }
      ++ledger().faultsRetried;
      faulted = true;
    }
    if (!faulted) co_return;
    const double backoff = std::min(
        cfg_.backoffSeconds * static_cast<double>(1ULL << attempt), cfg_.maxBackoffSeconds);
    co_await sim_->delay(sim::Duration::fromSeconds(backoff));
  }
}

}  // namespace wfs::storage
