#include "storage/stack/write_behind_layer.hpp"

#include <algorithm>

namespace wfs::storage {

sim::Task<void> WriteBehindLayer::process(Op& op) {
  if (op.kind == OpKind::kRead) {
    auto below = forward(op);
    co_await std::move(below);
    co_return;
  }
  auto landed = absorb(op.size);
  co_await std::move(landed);
}

sim::Task<void> WriteBehindLayer::absorb(Bytes size) {
  if (size > 0) pendingFiles_.push_back(size);
  Bytes left = size;
  while (left > 0) {
    const Bytes room = cfg_.dirtyLimit - dirty_;
    const Bytes admit = std::min(left, room);
    if (admit > 0) {
      dirty_ += admit;
      left -= admit;
      ensureFlusher();
      // Memory-speed landing of the admitted portion.
      co_await wbSim_->delay(
          sim::Duration::fromSeconds(static_cast<double>(admit) / cfg_.memRate));
    } else {
      ++stalls_;
      const double stallStart = wbSim_->now().asSeconds();
      co_await spaceFreed_.wait();
      if (metrics_ != nullptr) {
        ledger().queueSeconds += wbSim_->now().asSeconds() - stallStart;
      }
    }
  }
}

sim::Task<void> WriteBehindLayer::drain() {
  while (dirty_ > 0) co_await allClean_.wait();
}

void WriteBehindLayer::dropDirty() {
  if (dirty_ == 0 && pendingFiles_.empty()) return;
  dirty_ = 0;
  pendingFiles_.clear();
  spaceFreed_.fire();
  allClean_.fire();
}

void WriteBehindLayer::ensureFlusher() {
  if (flusherRunning_) return;
  flusherRunning_ = true;
  wbSim_->spawn(flusherLoop());
}

sim::Task<void> WriteBehindLayer::flusherLoop() {
  while (dirty_ > 0) {
    // Write back at most one file (or flushChunk of a big one) per device
    // operation, so small files each pay the positioning cost.
    Bytes chunk = pendingFiles_.empty() ? dirty_ : pendingFiles_.front();
    chunk = std::min({chunk, dirty_, cfg_.flushChunk});
    co_await backing_->write(chunk);
    // dropDirty() may have zeroed the buffer while this chunk was in
    // flight on the device; don't let the counter go negative.
    dirty_ -= std::min(chunk, dirty_);
    if (!pendingFiles_.empty()) {
      if (pendingFiles_.front() <= chunk) {
        pendingFiles_.pop_front();
      } else {
        pendingFiles_.front() -= chunk;
      }
    }
    spaceFreed_.fire();
  }
  flusherRunning_ = false;
  allClean_.fire();
}

}  // namespace wfs::storage
