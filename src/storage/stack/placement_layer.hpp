#pragma once

#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/io_layer.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/layouts.hpp"

namespace wfs::storage {

/// Routing layer over a LayoutPolicy (GlusterFS cluster/dht-or-nufa,
/// XtreemFS OSD selection): resolves the op's owner node, optionally pays
/// the lookup RPC and remote-write payload transfer, then descends into the
/// owner's substack — or, with no targets configured, forwards to the next
/// layer with `op.owner` resolved for it (resolve-only form).
class PlacementLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "cluster/dht";
    /// Per-file lookup RPC to the owning node when it is remote; paired
    /// with the fabric's one-way latency. Disabled when `remoteLookup` is
    /// false (XtreemFS folds all latency into its own transport).
    sim::Duration lookupLatency = sim::Duration::micros(300);
    bool remoteLookup = true;
    /// Reads count localReads/remoteReads in the legacy metrics.
    bool countLocalRemote = true;
    /// Remote writes move the payload to the owner before descending
    /// (protocol/client hop).
    bool remoteWritePayload = true;
    /// Reads descend with op.route = path(owner -> client), so the serving
    /// layer streams straight back to the requester.
    bool routeReadsFromOwner = true;
    /// locality(): owning the file on-node counts as full locality.
    bool localityFromOwner = true;
  };

  PlacementLayer(net::Fabric& fabric, LayoutPolicy& layout,
                 std::vector<const StorageNode*> nodes, Config cfg)
      : cfg_{std::move(cfg)}, fabric_{&fabric}, layout_{&layout}, nodes_{std::move(nodes)} {}

  /// Per-owner substacks (e.g. one brick stack per node). When empty, ops
  /// forward to the next layer instead.
  void setTargets(std::vector<LayerStack*> targets) { targets_ = std::move(targets); }

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    if (cfg_.localityFromOwner && layout_->locate(file) == node) return size;
    return 0;
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;
  void handle(Op& op) override;

 private:
  [[nodiscard]] sim::Task<void> descend(Op& op);

  Config cfg_;
  net::Fabric* fabric_;
  LayoutPolicy* layout_;
  std::vector<const StorageNode*> nodes_;
  std::vector<LayerStack*> targets_;
};

}  // namespace wfs::storage
