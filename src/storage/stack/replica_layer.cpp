#include "storage/stack/replica_layer.hpp"

#include <stdexcept>

namespace wfs::storage {

ReplicaState::ReplicaState(int bricks, int replicas, LayoutPolicy& layout)
    : bricks_{bricks}, replicas_{replicas}, layout_{&layout} {
  childUp_.assign(static_cast<std::size_t>(bricks), 1);
}

void ReplicaState::ensure(sim::FileId file) {
  if (primary_.size() <= file.index()) {
    primary_.resize(file.index() + 1, -1);
    copies_.resize(file.index() + 1, 0);
  }
}

int ReplicaState::primaryOf(sim::FileId file) const {
  if (!file.valid() || file.index() >= primary_.size()) return -1;
  return primary_[file.index()];
}

int ReplicaState::childOf(sim::FileId file, int slot) const {
  const int primary = primaryOf(file);
  return primary < 0 ? -1 : (primary + slot) % bricks_;
}

int ReplicaState::slotOf(sim::FileId file, int node) const {
  const int primary = primaryOf(file);
  if (primary < 0) return -1;
  const int slot = (node - primary + bricks_) % bricks_;
  return slot < replicas_ ? slot : -1;
}

std::vector<int> ReplicaState::replicaSetForWrite(sim::FileId file, int creator) {
  ensure(file);
  if (primary_[file.index()] < 0) primary_[file.index()] = layout_->place(file, creator);
  std::vector<int> set(static_cast<std::size_t>(replicas_));
  for (int j = 0; j < replicas_; ++j) set[static_cast<std::size_t>(j)] = childOf(file, j);
  return set;
}

void ReplicaState::notePreload(sim::FileId file) {
  ensure(file);
  if (primary_[file.index()] < 0) primary_[file.index()] = layout_->place(file, -1);
  copies_[file.index()] = (std::uint32_t{1} << replicas_) - 1;
}

void ReplicaState::noteCopy(sim::FileId file, int slot) {
  ensure(file);
  copies_[file.index()] |= std::uint32_t{1} << slot;
}

bool ReplicaState::hasCopy(sim::FileId file, int node) const {
  const int slot = slotOf(file, node);
  if (slot < 0) return false;
  return (copies_[file.index()] >> slot & 1U) != 0;
}

int ReplicaState::liveCopiesExcluding(sim::FileId file, int excludeNode) const {
  if (primaryOf(file) < 0) return 0;
  int live = 0;
  for (int j = 0; j < replicas_; ++j) {
    const int child = childOf(file, j);
    if (child == excludeNode || !childUp(child)) continue;
    if ((copies_[file.index()] >> j & 1U) != 0) ++live;
  }
  return live;
}

void ReplicaState::dropChild(int node) {
  childUp_.at(static_cast<std::size_t>(node)) = 0;
  for (std::size_t i = 0; i < primary_.size(); ++i) {
    if (primary_[i] == -1 || copies_[i] == 0) continue;
    const int slot = (node - primary_[i] + bricks_) % bricks_;
    if (slot < replicas_) copies_[i] &= ~(std::uint32_t{1} << slot);
  }
}

void ReplicaState::reviveChild(int node) {
  childUp_.at(static_cast<std::size_t>(node)) = 1;
}

int ReplicaState::readChild(sim::FileId file, int reader, bool& degraded) const {
  degraded = false;
  if (primaryOf(file) < 0) return -1;
  auto live = [this, file](int slot) {
    const int child = childOf(file, slot);
    return childUp(child) && (copies_[file.index()] >> slot & 1U) != 0;
  };
  // Preferred child: the reader's own brick when in the set, else the
  // file's hashed slot — same spread a DHT read-child hash gives.
  int preferred = slotOf(file, reader);
  if (preferred < 0) preferred = static_cast<int>(file.index()) % replicas_;
  if (live(preferred)) return childOf(file, preferred);
  for (int j = 0; j < replicas_; ++j) {
    if (!live(j)) continue;
    degraded = true;
    return childOf(file, j);
  }
  return -1;
}

int ReplicaState::healSource(sim::FileId file, int node) const {
  if (primaryOf(file) < 0) return -1;
  for (int j = 0; j < replicas_; ++j) {
    const int child = childOf(file, j);
    if (child == node || !childUp(child)) continue;
    if ((copies_[file.index()] >> j & 1U) != 0) return child;
  }
  return -1;
}

sim::Task<void> ReplicaLayer::writeChild(Op op, int child) {
  // Each fan-out leg owns its Op copy; the parent clock stays with the
  // entry frame (parallel legs would double-book time-below otherwise).
  op.parentClock = nullptr;
  op.owner = child;
  if (child != op.node) {
    net::Nic* client = nicOf(op.node);
    co_await sim_->delay(cfg_.lookupLatency + fabric_->oneWayLatency(client, nicOf(child)));
    // protocol/client hop: the payload crosses the network to the child.
    auto flow = fabric_->network().transfer(fabric_->path(client, nicOf(child)), op.size);
    co_await std::move(flow);
  }
  op.route = {};  // payload is at the child now
  auto below = targets_.at(static_cast<std::size_t>(child))->submit(op);
  co_await std::move(below);
}

sim::Task<void> ReplicaLayer::process(Op& op) {
  if (op.kind == OpKind::kRead) {
    bool degraded = false;
    const int child = state_->readChild(op.file, op.node, degraded);
    if (child < 0) {
      throw std::runtime_error(
          "cluster/afr: no live replica of '" + sim_->files().name(op.file) + "' (replicas=" +
          std::to_string(state_->replicas()) +
          "): losses exceeded the redundancy budget; recompute or re-stage the file");
    }
    LayerMetrics& lm = ledger();
    if (degraded) ++lm.degradedReads;
    if (lm.childReads.size() < nodes_.size()) lm.childReads.resize(nodes_.size());
    ++lm.childReads[static_cast<std::size_t>(child)];
    op.owner = child;
    net::Nic* client = nicOf(op.node);
    if (child == op.node) {
      ++metrics_->localReads;
    } else {
      ++metrics_->remoteReads;
      co_await sim_->delay(cfg_.lookupLatency + fabric_->oneWayLatency(client, nicOf(child)));
    }
    op.route = fabric_->path(nicOf(child), client);
    auto below = targets_.at(static_cast<std::size_t>(child))->submit(op);
    co_await std::move(below);
    co_return;
  }

  // Write/scratch: synchronous fan-out to every live child of the set. A
  // down child is skipped — the file is born under-replicated and the
  // self-heal pass completes it once the replacement brick re-joins.
  const std::vector<int> set = state_->replicaSetForWrite(op.file, op.node);
  std::vector<sim::Task<void>> legs;
  legs.reserve(set.size());
  for (int j = 0; j < static_cast<int>(set.size()); ++j) {
    const int child = set[static_cast<std::size_t>(j)];
    if (!state_->childUp(child)) continue;
    state_->noteCopy(op.file, j);
    legs.push_back(writeChild(op, child));
  }
  if (legs.empty()) {
    throw std::runtime_error("cluster/afr: no live child to write '" +
                             sim_->files().name(op.file) + "' (replicas=" +
                             std::to_string(state_->replicas()) + ", all children down)");
  }
  co_await sim::allOf(*sim_, std::move(legs));
}

void ReplicaLayer::handle(Op& op) {
  if (op.kind == OpKind::kPreload) {
    state_->notePreload(op.file);
  }
  // Control ops visit every child of the set that could hold a copy, so
  // brick caches seed (preload) and drop (discard) coherently.
  for (int j = 0; j < state_->replicas(); ++j) {
    const int child = state_->childOf(op.file, j);
    if (child < 0) continue;
    Op childOp = op;
    childOp.owner = child;
    childOp.parentClock = nullptr;
    targets_.at(static_cast<std::size_t>(child))->control(childOp);
  }
}

sim::Task<void> ReplicaLayer::heal(int node,
                                   std::vector<std::pair<sim::FileId, Bytes>> candidates) {
  for (const auto& [file, size] : candidates) {
    if (!state_->childUp(node)) co_return;  // crashed again mid-heal
    if (state_->slotOf(file, node) < 0 || state_->hasCopy(file, node)) continue;
    const int src = state_->healSource(file, node);
    if (src < 0) continue;  // no live copy left to replicate from
    // Read the source brick's copy across the wire to the replacement
    // child — ordinary brick I/O on a shared flow network, so heal traffic
    // competes with workflow reads and writes.
    Op rd;
    rd.kind = OpKind::kRead;
    rd.node = node;
    rd.file = file;
    rd.size = size;
    rd.owner = src;
    rd.route = fabric_->path(nicOf(src), nicOf(node));
    auto pull = targets_.at(static_cast<std::size_t>(src))->submit(rd);
    co_await std::move(pull);
    // Land the copy through the replacement brick's own stack.
    Op wr;
    wr.kind = OpKind::kWrite;
    wr.node = node;
    wr.file = file;
    wr.size = size;
    wr.owner = node;
    auto push = targets_.at(static_cast<std::size_t>(node))->submit(wr);
    co_await std::move(push);
    state_->noteCopy(file, state_->slotOf(file, node));
    LayerMetrics& lm = ledger();
    lm.healBytes += size;
    ++lm.healedFiles;
  }
}

}  // namespace wfs::storage
