#pragma once

#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// Terminal striping layer (PVFS, paper §IV.D): file data is spread over
/// every server in `stripeSize` units and moved as flow-controlled
/// `requestSize` requests, serial per server, parallel across servers.
/// Each request repositions the disk (2.6.x did no server-side request
/// coalescing) — the small-file killer's other half.
class StripeLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "cluster/stripe";
    /// Stripe unit (PVFS default 64 KiB).
    Bytes stripeSize = 64_KiB;
    /// Request setup per server per transfer.
    sim::Duration ioRequestOverhead = sim::Duration::micros(300);
    /// Flow-control window per request.
    Bytes requestSize = 128_KiB;
  };

  StripeLayer(net::Fabric& fabric, std::vector<const StorageNode*> servers, Config cfg)
      : cfg_{std::move(cfg)}, fabric_{&fabric}, servers_{std::move(servers)} {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  /// Servers touched by a file of `size` bytes (round-robin striping).
  [[nodiscard]] int serversFor(Bytes size) const;

  /// Stripes always reach other servers.
  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  [[nodiscard]] sim::Task<void> serverIo(int server, int clientNode, Bytes bytes, bool wr);

  Config cfg_;
  net::Fabric* fabric_;
  std::vector<const StorageNode*> servers_;
};

}  // namespace wfs::storage
