#include "storage/stack/lru_cache_layer.hpp"

namespace wfs::storage {

sim::Task<void> LruCacheLayer::process(Op& op) {
  if (op.kind == OpKind::kRead) {
    if (cache_.touch(op.file)) {
      ++ledger().cacheHits;
      if (cfg_.hitCountsCacheHit) ++metrics_->cacheHits;
      if (cfg_.hitCountsLocalRead) ++metrics_->localReads;
      if (cfg_.hitLatency) co_await sim_->delay(cfg_.hitLatency(op));
      switch (cfg_.hitCost) {
        case HitCost::kMemCopy:
          if (op.node >= 0) metrics_->nodeIo(op.node).fromCache += op.size;
          co_await sim_->delay(memCopyTime(op.size, cfg_.memRate));
          break;
        case HitCost::kRoute:
          if (op.node >= 0) metrics_->nodeIo(op.node).fromCache += op.size;
          if (op.route.empty()) {
            co_await sim_->delay(memCopyTime(op.size, cfg_.memRate));
          } else {
            // Served from this tier's RAM at wire speed.
            auto flow = cfg_.net->transfer(op.route, op.size);
            co_await std::move(flow);
          }
          break;
        case HitCost::kFree:
          // Residency-only cache: a lower layer serves the payload.
          break;
      }
      co_return;
    }
    ++ledger().cacheMisses;
    if (cfg_.missCountsCacheMiss) ++metrics_->cacheMisses;
    if (cfg_.missCountsRemoteRead) ++metrics_->remoteReads;
    auto below = forward(op);
    co_await std::move(below);
    cache_.put(op.file, op.size);
    co_return;
  }
  // Write/scratch: the data this layer just saw is cached either side of
  // the descent, matching each legacy backend's put ordering (ordering
  // matters: concurrent ops on the same stack observe eviction state).
  if (cfg_.putBeforeForwardOnWrite) {
    cache_.put(op.file, op.size);
    auto below = forward(op);
    co_await std::move(below);
  } else {
    auto below = forward(op);
    co_await std::move(below);
    cache_.put(op.file, op.size);
  }
}

void LruCacheLayer::handle(Op& op) {
  if (op.kind == OpKind::kDiscard) cache_.erase(op.file);
  IoLayer::handle(op);
}

}  // namespace wfs::storage
