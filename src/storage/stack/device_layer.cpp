#include "storage/stack/device_layer.hpp"

namespace wfs::storage {

sim::Task<void> DeviceLayer::process(Op& op) {
  if (op.kind == OpKind::kRead) {
    if (op.node >= 0) metrics_->nodeIo(op.node).fromDisk += op.size;
    auto io = disk_->read(op.size, op.route);
    co_await std::move(io);
  } else {
    auto io = disk_->write(op.size, op.route);
    co_await std::move(io);
  }
}

}  // namespace wfs::storage
