#include "storage/stack/node_stack.hpp"

#include <vector>

#include "storage/stack/device_layer.hpp"
#include "storage/stack/write_behind_layer.hpp"

namespace wfs::storage {

std::unique_ptr<LayerStack> makeNodeStack(sim::Simulator& sim, StorageMetrics& metrics,
                                          const StorageNode& node, const NodeStackConfig& cfg,
                                          const std::string& prefix) {
  LruCacheLayer::Config cache;
  cache.name = prefix + "/page-cache";
  cache.capacity =
      static_cast<Bytes>(static_cast<double>(node.memoryBytes) * cfg.pageCacheFraction);
  cache.memRate = cfg.memRate;

  WriteBehindLayer::Config wb;
  wb.name = prefix + "/write-behind";
  wb.dirtyLimit =
      static_cast<Bytes>(static_cast<double>(node.memoryBytes) * cfg.dirtyFraction);
  wb.memRate = cfg.memRate;

  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(std::make_unique<LruCacheLayer>(cache));
  layers.push_back(std::make_unique<WriteBehindLayer>(sim, *node.disk, wb));
  layers.push_back(std::make_unique<DeviceLayer>(*node.disk, prefix + "/device"));
  return std::make_unique<LayerStack>(sim, metrics, std::move(layers));
}

LruCacheLayer& pageCacheOf(LayerStack& stack) {
  // Scan rather than index: an armed fault/retry pair may sit above the
  // cache layer.
  for (std::size_t i = 0; i < stack.depth(); ++i) {
    if (auto* cache = dynamic_cast<LruCacheLayer*>(stack.layer(i))) return *cache;
  }
  throw std::logic_error("pageCacheOf: stack has no LruCacheLayer");
}

void wipeStackCaches(LayerStack& stack) {
  for (std::size_t i = 0; i < stack.depth(); ++i) {
    IoLayer* layer = stack.layer(i);
    if (auto* cache = dynamic_cast<LruCacheLayer*>(layer)) {
      cache->cache().clear();
    } else if (auto* wb = dynamic_cast<WriteBehindLayer*>(layer)) {
      wb->dropDirty();
    }
  }
}

}  // namespace wfs::storage
