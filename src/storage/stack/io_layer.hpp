#pragma once

#include <string>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/base/metrics.hpp"
#include "storage/stack/op.hpp"

namespace wfs::storage {

/// One layer of a composable storage pipeline — the repo-wide form of a
/// GlusterFS translator (paper §IV.C): "components ... that can be composed
/// to create novel file system configurations. All translators support a
/// common API and can be stacked on top of each other in layers. The
/// translator at each layer can decide to service the call, or pass it to a
/// lower-level translator."
///
/// Layers are wired into a LayerStack, which assigns each one its simulator,
/// the owning backend's StorageMetrics, a ledger slot (shared across layers
/// of the same name, so per-node stacks aggregate), and its `next` pointer.
class IoLayer {
 public:
  IoLayer() = default;
  virtual ~IoLayer() = default;
  IoLayer(const IoLayer&) = delete;
  IoLayer& operator=(const IoLayer&) = delete;

  /// Ledger key; layers sharing a name share a LayerMetrics slot.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Entry point for timed ops (read/write/scratch): records the op in this
  /// layer's ledger, then runs process(). Non-virtual so instrumentation
  /// cannot be skipped by a subclass.
  [[nodiscard]] sim::Task<void> submit(Op& op);

  /// Entry point for synchronous control ops (discard/preload): records,
  /// then runs handle().
  void control(Op& op);

  /// Bytes of `file` that `node` could serve without network traffic; the
  /// default asks the next layer. Layers that sit on the far side of a wire
  /// (transports) override this to return 0.
  [[nodiscard]] virtual Bytes locality(int node, sim::FileId file, Bytes size) const {
    return next_ != nullptr ? next_->locality(node, file, size) : 0;
  }

  [[nodiscard]] IoLayer* next() const { return next_; }

  /// Wires the layer into a stack (called by LayerStack).
  void attach(sim::Simulator& sim, StorageMetrics& metrics, IoLayer* next);

 protected:
  /// The layer's behavior for timed ops: service the call, forward it, or
  /// both. `op` outlives the coroutine (owned by the stack-entry frame).
  [[nodiscard]] virtual sim::Task<void> process(Op& op) = 0;

  /// The layer's behavior for control ops; default passes the op down.
  virtual void handle(Op& op) {
    if (next_ != nullptr) next_->control(op);
  }

  /// Hands the op to the next layer's submit(); requires a next layer.
  [[nodiscard]] sim::Task<void> forward(Op& op);

  /// Called after attach() wired sim/metrics/next.
  virtual void onAttach() {}

  [[nodiscard]] LayerMetrics& ledger() const { return metrics_->layers[ledgerSlot_]; }

  sim::Simulator* sim_ = nullptr;
  StorageMetrics* metrics_ = nullptr;
  IoLayer* next_ = nullptr;

 private:
  void record(const Op& op);

  std::size_t ledgerSlot_ = 0;
};

}  // namespace wfs::storage
