#include "storage/stack/layouts.hpp"

#include <stdexcept>

namespace wfs::storage {

int DistributeLayout::place(sim::FileId file, int creator) {
  (void)creator;
  return locate(file);
}

int DistributeLayout::locate(sim::FileId file) const {
  return static_cast<int>(files_->hash(file) % static_cast<std::uint64_t>(bricks_));
}

int NufaLayout::place(sim::FileId file, int creator) {
  // Pre-staged inputs (creator == -1) are spread by hash, as copying a data
  // set into the volume from one mount point would otherwise pile every
  // input onto a single brick.
  const int brick =
      creator >= 0
          ? creator
          : static_cast<int>(files_->hash(file) % static_cast<std::uint64_t>(bricks_));
  // Assignment, not insert-once: a file recomputed after a brick loss lands
  // on the brick of whichever node re-created it.
  if (placement_.size() <= file.index()) placement_.resize(file.index() + 1, -1);
  placement_[file.index()] = brick;
  return brick;
}

int NufaLayout::locate(sim::FileId file) const {
  if (!file.valid() || file.index() >= placement_.size() || placement_[file.index()] < 0) {
    throw std::out_of_range("layout/nufa: unknown file: " +
                            (file.valid() ? files_->name(file) : "<unknown>"));
  }
  return placement_[file.index()];
}

}  // namespace wfs::storage
