#include "storage/stack/layouts.hpp"

#include <stdexcept>

#include "storage/base/path.hpp"

namespace wfs::storage {

int DistributeLayout::place(const std::string& path, int creator) {
  (void)creator;
  return locate(path);
}

int DistributeLayout::locate(const std::string& path) const {
  return static_cast<int>(pathHash(path) % static_cast<std::uint64_t>(bricks_));
}

int NufaLayout::place(const std::string& path, int creator) {
  // Pre-staged inputs (creator == -1) are spread by hash, as copying a data
  // set into the volume from one mount point would otherwise pile every
  // input onto a single brick.
  const int brick = creator >= 0
                        ? creator
                        : static_cast<int>(pathHash(path) % static_cast<std::uint64_t>(bricks_));
  // Assignment, not emplace: a file recomputed after a brick loss lands on
  // the brick of whichever node re-created it.
  placement_[path] = brick;
  return brick;
}

int NufaLayout::locate(const std::string& path) const {
  auto it = placement_.find(path);
  if (it == placement_.end()) {
    throw std::out_of_range("nufa layout: unknown file: " + path);
  }
  return it->second;
}

}  // namespace wfs::storage
