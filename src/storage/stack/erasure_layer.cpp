#include "storage/stack/erasure_layer.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfs::storage {

ErasureLayer::ErasureLayer(net::Fabric& fabric, std::vector<const StorageNode*> servers,
                           Config cfg)
    : cfg_{std::move(cfg)}, fabric_{&fabric}, servers_{std::move(servers)} {
  serverUp_.assign(servers_.size(), 1);
}

void ErasureLayer::ensure(sim::FileId file) {
  if (fragments_.size() <= file.index()) fragments_.resize(file.index() + 1, 0);
}

int ErasureLayer::serverOf(sim::FileId file, int slot) const {
  // Rotate the fragment row by file identity so every server carries an
  // equal share of parity (interning order is deterministic, so placement
  // is too).
  const int n = static_cast<int>(servers_.size());
  return static_cast<int>((file.index() + static_cast<std::uint32_t>(slot)) %
                          static_cast<std::uint32_t>(n));
}

bool ErasureLayer::hasFragment(sim::FileId file, int node) const {
  if (!file.valid() || file.index() >= fragments_.size()) return false;
  for (int j = 0; j < width(); ++j) {
    if (serverOf(file, j) != node) continue;
    if ((fragments_[file.index()] >> j & 1U) != 0) return true;
  }
  return false;
}

int ErasureLayer::liveFragmentsExcluding(sim::FileId file, int excludeNode) const {
  if (!file.valid() || file.index() >= fragments_.size()) return 0;
  int live = 0;
  for (int j = 0; j < width(); ++j) {
    const int sv = serverOf(file, j);
    if (sv == excludeNode || !serverUp(sv)) continue;
    if ((fragments_[file.index()] >> j & 1U) != 0) ++live;
  }
  return live;
}

void ErasureLayer::dropServer(int node) {
  serverUp_.at(static_cast<std::size_t>(node)) = 0;
  for (std::size_t i = 0; i < fragments_.size(); ++i) {
    if (fragments_[i] == 0) continue;
    const sim::FileId file{static_cast<std::uint32_t>(i)};
    for (int j = 0; j < width(); ++j) {
      if (serverOf(file, j) == node) fragments_[i] &= ~(std::uint32_t{1} << j);
    }
  }
}

void ErasureLayer::reviveServer(int node) {
  serverUp_.at(static_cast<std::size_t>(node)) = 1;
}

sim::Task<void> ErasureLayer::serverIo(int server, int clientNode, Bytes bytes, bool wr) {
  const StorageNode& sv = *servers_.at(static_cast<std::size_t>(server));
  net::Nic* cli = servers_.at(static_cast<std::size_t>(clientNode))->nic;
  co_await sim_->delay(cfg_.ioRequestOverhead + fabric_->oneWayLatency(cli, sv.nic));
  // Flow-controlled requests, serial per server: each repositions the disk
  // because concurrent clients interleave between requests (PVFS 2.6.x did
  // no server-side request coalescing).
  const Bytes base = wr ? sv.disk->allocate(bytes) : 0;
  Bytes done = 0;
  while (done < bytes) {
    const Bytes req = std::min(bytes - done, cfg_.requestSize);
    if (wr) {
      co_await sv.disk->writeAt(base + done, req, fabric_->path(cli, sv.nic));
    } else {
      co_await sv.disk->read(req, fabric_->path(sv.nic, cli));
    }
    done += req;
  }
}

sim::Task<void> ErasureLayer::process(Op& op) {
  const Bytes frag = fragmentBytes(op.size);
  if (isWriteLike(op.kind)) {
    ensure(op.file);
    std::vector<sim::Task<void>> parts;
    parts.reserve(static_cast<std::size_t>(width()));
    int liveSlots = 0;
    for (int j = 0; j < width(); ++j) {
      const int sv = serverOf(op.file, j);
      // A down server's fragment is skipped — the file is born degraded and
      // heal() completes it once the replacement re-joins.
      if (!serverUp(sv)) continue;
      fragments_[op.file.index()] |= std::uint32_t{1} << j;
      ++liveSlots;
      parts.push_back(serverIo(sv, op.node, frag, /*wr=*/true));
    }
    if (liveSlots < cfg_.k) {
      throw std::runtime_error(
          "cluster/ec: only " + std::to_string(liveSlots) + " live servers for '" +
          sim_->files().name(op.file) + "' (k=" + std::to_string(cfg_.k) +
          "+m=" + std::to_string(cfg_.m) + "): cannot store a reconstructable stripe");
    }
    co_await sim::allOf(*sim_, std::move(parts));
    co_return;
  }

  // Read: any k live fragments reconstruct the file; data fragments are
  // preferred, each dead one substituted by a parity fragment.
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(cfg_.k));
  int parityUsed = 0;
  const bool known = op.file.valid() && op.file.index() < fragments_.size();
  for (int pass = 0; pass < 2 && static_cast<int>(chosen.size()) < cfg_.k; ++pass) {
    const int lo = pass == 0 ? 0 : cfg_.k;
    const int hi = pass == 0 ? cfg_.k : width();
    for (int j = lo; j < hi && static_cast<int>(chosen.size()) < cfg_.k; ++j) {
      const int sv = serverOf(op.file, j);
      if (!known || !serverUp(sv) || (fragments_[op.file.index()] >> j & 1U) == 0) continue;
      if (pass == 1) ++parityUsed;
      chosen.push_back(j);
    }
  }
  if (static_cast<int>(chosen.size()) < cfg_.k) {
    throw std::runtime_error(
        "cluster/ec: only " + std::to_string(chosen.size()) + " of k=" +
        std::to_string(cfg_.k) + " fragments of '" + sim_->files().name(op.file) +
        "' are live (m=" + std::to_string(cfg_.m) +
        " parity exhausted): losses exceeded the redundancy budget; recompute or "
        "re-stage the file");
  }
  LayerMetrics& lm = ledger();
  if (parityUsed > 0) {
    ++lm.reconstructions;
    ++lm.degradedReads;
  }
  std::vector<sim::Task<void>> parts;
  parts.reserve(chosen.size());
  for (const int j : chosen) {
    const int sv = serverOf(op.file, j);
    if (op.node >= 0) {
      auto& io = metrics_->nodeIo(op.node);
      (sv == op.node ? io.fromDisk : io.fromNetwork) += frag;
    }
    parts.push_back(serverIo(sv, op.node, frag, /*wr=*/false));
  }
  co_await sim::allOf(*sim_, std::move(parts));
}

void ErasureLayer::handle(Op& op) {
  if (op.kind == OpKind::kPreload) {
    // Pre-staged input: every fragment of the stripe is present (staging is
    // free and complete, mirroring preload()).
    ensure(op.file);
    fragments_[op.file.index()] = (std::uint32_t{1} << width()) - 1;
  }
  IoLayer::handle(op);
}

sim::Task<void> ErasureLayer::heal(int node,
                                   std::vector<std::pair<sim::FileId, Bytes>> candidates) {
  for (const auto& [file, size] : candidates) {
    if (!serverUp(node)) co_return;  // crashed again mid-heal
    if (!file.valid() || file.index() >= fragments_.size()) continue;
    const Bytes frag = fragmentBytes(size);
    for (int j = 0; j < width(); ++j) {
      if (serverOf(file, j) != node) continue;
      if ((fragments_[file.index()] >> j & 1U) != 0) continue;
      // Re-encode from any k live fragments: pull them across the wire to
      // the replacement server (competing with workflow I/O), then write
      // the rebuilt fragment to its disk.
      std::vector<int> sources;
      for (int s = 0; s < width() && static_cast<int>(sources.size()) < cfg_.k; ++s) {
        const int sv = serverOf(file, s);
        if (sv == node || !serverUp(sv)) continue;
        if ((fragments_[file.index()] >> s & 1U) != 0) sources.push_back(sv);
      }
      if (static_cast<int>(sources.size()) < cfg_.k) continue;  // unreconstructable
      std::vector<sim::Task<void>> pulls;
      pulls.reserve(sources.size());
      for (const int sv : sources) pulls.push_back(serverIo(sv, node, frag, /*wr=*/false));
      co_await sim::allOf(*sim_, std::move(pulls));
      auto push = serverIo(node, node, frag, /*wr=*/true);
      co_await std::move(push);
      fragments_[file.index()] |= std::uint32_t{1} << j;
      LayerMetrics& lm = ledger();
      lm.healBytes += frag;
      ++lm.healedFiles;
    }
  }
}

}  // namespace wfs::storage
