#pragma once

#include <string>

#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// Exponential-backoff retry policy over a faulting subtree (normally the
/// FaultLayer directly below). Each timed op gets `maxAttempts` tries; a
/// StorageFaultError from below is swallowed, the op waits
/// `backoffSeconds * 2^attempt` (capped), and is re-driven. When the budget
/// runs out the last fault is re-thrown to the caller — DagmanEngine then
/// treats it like a failed task attempt and spends a DAGMan retry.
///
/// Ledger: `faultsRetried` counts re-driven ops, `faultsExhausted` counts
/// ops whose budget ran out.
class RetryLayer final : public IoLayer {
 public:
  struct Config {
    /// Total tries per op (>= 1); 1 disables retrying.
    int maxAttempts = 4;
    /// Base of the exponential backoff between tries.
    double backoffSeconds = 0.5;
    double maxBackoffSeconds = 30.0;
  };

  explicit RetryLayer(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] std::string name() const override { return "fault/retry"; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  Config cfg_;
};

}  // namespace wfs::storage
