#pragma once

#include <memory>
#include <string>

#include "storage/base/storage_system.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/lru_cache_layer.hpp"

namespace wfs::storage {

/// Sizing of the canonical node-local stack (page cache over the RAID
/// array plus a dirty-page write-back buffer) — the local-disk view a node
/// has of its own data. Shared by the local-disk option, the S3 option's
/// staging disk, and p2p scratch space.
struct NodeStackConfig {
  /// Page cache bytes, as a fraction of node RAM.
  double pageCacheFraction = 0.42;
  /// Dirty limit, as a fraction of node RAM (Linux dirty_ratio ~ 0.2-0.4;
  /// workflow nodes mostly do I/O, so the effective share is higher).
  double dirtyFraction = 0.2;
  Rate memRate = GBps(1);
};

/// Builds `prefix`/page-cache -> `prefix`/write-behind -> `prefix`/device
/// over the node's disk.
[[nodiscard]] std::unique_ptr<LayerStack> makeNodeStack(sim::Simulator& sim,
                                                        StorageMetrics& metrics,
                                                        const StorageNode& node,
                                                        const NodeStackConfig& cfg,
                                                        const std::string& prefix = "node");

/// The page-cache layer of a stack whose top layer is an LruCacheLayer
/// (true for makeNodeStack products).
[[nodiscard]] LruCacheLayer& pageCacheOf(LayerStack& stack);

/// Drops every volatile byte a stack's layers hold — LRU cache contents and
/// unflushed write-behind data. What a crash-stop power loss destroys on the
/// node that owned the stack.
void wipeStackCaches(LayerStack& stack);

}  // namespace wfs::storage
