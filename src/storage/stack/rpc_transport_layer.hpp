#pragma once

#include <functional>
#include <string>
#include <utility>

#include "net/flow_network.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// Generic request/response transport: per-op accounting hook, fixed
/// pre-payload latency, then the payload as one flow over a caller-supplied
/// path (EBS volume service, simple RPC services). Terminal by default;
/// set `forwardAfter` for transports that front a deeper stack.
class RpcTransportLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "protocol/rpc";
    /// Request accounting, called before any simulated time passes.
    std::function<void(const Op&)> onIssue;
    /// Fixed pre-payload latency per op (issue/request round trip).
    std::function<sim::Duration(const Op&)> latency;
    /// Builds the payload flow path for the op.
    std::function<net::Path(const Op&)> route;
    net::FlowNetwork* net = nullptr;
    bool transferPayload = true;
    bool forwardAfter = false;
    /// Payload reads crossed a wire (per-node fromNetwork attribution).
    bool readsFromNetwork = true;
  };

  explicit RpcTransportLayer(Config cfg) : cfg_{std::move(cfg)} {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  /// The wire starts here: nothing below is local to any node.
  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  Config cfg_;
};

}  // namespace wfs::storage
