#include "storage/stack/placement_layer.hpp"

namespace wfs::storage {

sim::Task<void> PlacementLayer::descend(Op& op) {
  if (!targets_.empty()) {
    return targets_.at(static_cast<std::size_t>(op.owner))->submit(op);
  }
  return forward(op);
}

sim::Task<void> PlacementLayer::process(Op& op) {
  net::Nic* client = nodes_.at(static_cast<std::size_t>(op.node))->nic;
  if (op.kind == OpKind::kRead) {
    const int owner = layout_->locate(op.file);
    op.owner = owner;
    net::Nic* ownerNic = nodes_.at(static_cast<std::size_t>(owner))->nic;
    if (owner == op.node) {
      if (cfg_.countLocalRemote) ++metrics_->localReads;
    } else {
      if (cfg_.countLocalRemote) ++metrics_->remoteReads;
      if (cfg_.remoteLookup) {
        co_await sim_->delay(cfg_.lookupLatency + fabric_->oneWayLatency(client, ownerNic));
      }
    }
    if (cfg_.routeReadsFromOwner) op.route = fabric_->path(ownerNic, client);
    auto below = descend(op);
    co_await std::move(below);
    co_return;
  }
  // Write/scratch.
  const int owner = layout_->place(op.file, op.node);
  op.owner = owner;
  net::Nic* ownerNic = nodes_.at(static_cast<std::size_t>(owner))->nic;
  if (owner != op.node) {
    if (cfg_.remoteLookup) {
      co_await sim_->delay(cfg_.lookupLatency + fabric_->oneWayLatency(client, ownerNic));
    }
    if (cfg_.remoteWritePayload) {
      // protocol/client hop: the payload crosses the network to the owner.
      auto flow = fabric_->network().transfer(fabric_->path(client, ownerNic), op.size);
      co_await std::move(flow);
    }
  }
  op.route = {};  // payload is at the owner now
  auto below = descend(op);
  co_await std::move(below);
}

void PlacementLayer::handle(Op& op) {
  const int owner = op.kind == OpKind::kPreload ? layout_->place(op.file, /*creator=*/-1)
                                                : layout_->locate(op.file);
  op.owner = owner;
  if (!targets_.empty()) {
    targets_.at(static_cast<std::size_t>(owner))->control(op);
    return;
  }
  IoLayer::handle(op);
}

}  // namespace wfs::storage
