#pragma once

#include <string>
#include <utility>
#include <vector>

#include "simcore/rng.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// Deterministic per-op fault injector for any LayerStack composition.
///
/// Sits near the top of a stack (normally directly under a RetryLayer) and
/// models two failure classes from the paper's operational record (PVFS 2.8
/// "could not run without crashes or loss of data", §V):
///   - op faults: each timed op independently errors with `opFaultProb`,
///     drawn from the layer's own seeded Rng — never from wall clock — so a
///     sweep is bit-identical at any `--jobs` level;
///   - service outages: timed ops that arrive inside an outage window stall
///     until the window closes (an unresponsive NFS/PVFS/Gluster daemon),
///     booking the wait as queueSeconds.
///
/// Ledger: `faultsInjected` counts ops errored here, `outageStalls` counts
/// ops that hit a window. With `opFaultProb == 0` and no windows the layer
/// never draws from its Rng and adds no events: a provable no-op.
class FaultLayer final : public IoLayer {
 public:
  struct Config {
    /// Probability that a timed op (read/write/scratch) errors.
    double opFaultProb = 0.0;
    /// Outage windows [startSeconds, endSeconds), non-overlapping.
    std::vector<std::pair<double, double>> outages;
  };

  FaultLayer(Config cfg, sim::Rng rng) : cfg_{std::move(cfg)}, rng_{rng} {}

  [[nodiscard]] std::string name() const override { return "fault/inject"; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  [[nodiscard]] double outageEnd(double now) const;

  Config cfg_;
  sim::Rng rng_;
};

}  // namespace wfs::storage
