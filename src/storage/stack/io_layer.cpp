#include "storage/stack/io_layer.hpp"

#include <cassert>

namespace wfs::storage {

const char* toString(OpKind kind) {
  switch (kind) {
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kScratch: return "scratch";
    case OpKind::kDiscard: return "discard";
    case OpKind::kPreload: return "preload";
  }
  return "?";
}

void IoLayer::attach(sim::Simulator& sim, StorageMetrics& metrics, IoLayer* next) {
  sim_ = &sim;
  metrics_ = &metrics;
  next_ = next;
  ledgerSlot_ = metrics.layerSlot(name());
  onAttach();
}

void IoLayer::record(const Op& op) {
  LayerMetrics& lm = ledger();
  switch (op.kind) {
    case OpKind::kRead:
      ++lm.readOps;
      lm.bytesRead += op.size;
      break;
    case OpKind::kWrite:
      ++lm.writeOps;
      lm.bytesWritten += op.size;
      break;
    case OpKind::kScratch:
      ++lm.scratchOps;
      lm.bytesWritten += op.size;
      break;
    case OpKind::kDiscard: ++lm.discardOps; break;
    case OpKind::kPreload: ++lm.preloadOps; break;
  }
}

sim::Task<void> IoLayer::submit(Op& op) {
  record(op);
  const double start = sim_->now().asSeconds();
  double below = 0.0;
  double* parent = op.parentClock;
  op.parentClock = &below;
  // Materialize the call before awaiting: GCC 12 double-destroys
  // non-trivial temporaries inside co_await operands.
  auto body = process(op);
  co_await std::move(body);
  op.parentClock = parent;
  const double dt = sim_->now().asSeconds() - start;
  LayerMetrics& lm = ledger();
  lm.busySeconds += dt;
  lm.selfSeconds += dt - below;
  if (parent != nullptr) *parent += dt;
}

void IoLayer::control(Op& op) {
  record(op);
  handle(op);
}

sim::Task<void> IoLayer::forward(Op& op) {
  assert(next_ != nullptr);
  return next_->submit(op);
}

}  // namespace wfs::storage
