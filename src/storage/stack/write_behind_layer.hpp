#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "blk/disk.hpp"
#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// OS-style write-back (dirty-page) buffer as a stack layer: writes and
/// scratch ops are absorbed into memory at `memRate` until the dirty limit
/// is hit, then block on the background flusher; reads pass through to the
/// layer below (the device). This is the mechanism behind Linux local
/// writes, the NFS `async` export option, and the GlusterFS write-behind
/// translator (paper §IV.B): a 16 GB m1.xlarge NFS server can buffer far
/// more dirty data than a 7 GB worker, which is why NFS beat the local
/// disk for Montage on one node.
///
/// The flusher writes straight to the backing block store (not through the
/// stack): background writeback competes for the device with foreground
/// reads via the device's own service model.
class WriteBehindLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "performance/write-behind";
    /// Maximum dirty bytes held in RAM (Linux dirty_ratio x RAM).
    Bytes dirtyLimit = 1_GB;
    /// Rate at which user data lands in page cache (memcpy + syscall).
    Rate memRate = GBps(1);
    /// Flush granularity.
    Bytes flushChunk = 64_MB;
  };

  WriteBehindLayer(sim::Simulator& sim, blk::BlockStore& backing, Config cfg)
      : cfg_{std::move(cfg)}, wbSim_{&sim}, backing_{&backing}, spaceFreed_{sim},
        allClean_{sim} {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  /// Completes once every dirty byte has reached the block store.
  [[nodiscard]] sim::Task<void> drain();

  /// Crash-stop power loss: every unflushed dirty byte is gone. Waiters
  /// stalled on the dirty limit are released (their data "lands" on a
  /// device that no longer remembers it); a mid-write flusher finds nothing
  /// left to do.
  void dropDirty();

  [[nodiscard]] Bytes dirty() const { return dirty_; }
  [[nodiscard]] std::uint64_t stallCount() const { return stalls_; }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;

 private:
  [[nodiscard]] sim::Task<void> absorb(Bytes size);
  [[nodiscard]] sim::Task<void> flusherLoop();
  void ensureFlusher();

  Config cfg_;
  sim::Simulator* wbSim_;  // available from construction (pre-attach)
  blk::BlockStore* backing_;
  Bytes dirty_ = 0;
  bool flusherRunning_ = false;
  std::uint64_t stalls_ = 0;
  sim::Broadcast spaceFreed_;
  sim::Broadcast allClean_;
  /// Sizes of the files whose dirty pages are queued, in write order: the
  /// flusher writes back file-by-file, paying the device's per-operation
  /// cost for each — with thousands of small workflow files this seek load
  /// is a real share of the paper's "local disk contention".
  std::deque<Bytes> pendingFiles_;
};

}  // namespace wfs::storage
