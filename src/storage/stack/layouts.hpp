#pragma once

#include <string>
#include <vector>

#include "simcore/file_id.hpp"

namespace wfs::storage {

/// File-placement policy of a GlusterFS volume (paper §IV.C). Files are
/// write-once, so locate() is stable after place().
class LayoutPolicy {
 public:
  virtual ~LayoutPolicy() = default;

  /// Chooses the brick for a new file. `creator` is the writing node, or
  /// -1 for pre-staged input data.
  virtual int place(sim::FileId file, int creator) = 0;

  /// Brick currently holding `file`.
  [[nodiscard]] virtual int locate(sim::FileId file) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// cluster/distribute: DHT placement by path hash — uniform spread of reads
/// and writes across the virtual cluster. Uses the intern table's cached
/// FNV-1a hash (identical to storage::pathHash), so placement is unchanged
/// by interning and never re-scans the name's bytes.
class DistributeLayout final : public LayoutPolicy {
 public:
  DistributeLayout(int bricks, const sim::FileIdTable& files)
      : bricks_{bricks}, files_{&files} {}
  int place(sim::FileId file, int creator) override;
  [[nodiscard]] int locate(sim::FileId file) const override;
  [[nodiscard]] std::string name() const override { return "distribute"; }

 private:
  int bricks_;
  const sim::FileIdTable* files_;
};

/// cluster/nufa: non-uniform file access — new files are written to the
/// creating node's own brick, so chained transformations (Broadband's
/// mini-workflows) find their intermediates locally.
class NufaLayout final : public LayoutPolicy {
 public:
  NufaLayout(int bricks, const sim::FileIdTable& files) : bricks_{bricks}, files_{&files} {}
  int place(sim::FileId file, int creator) override;
  [[nodiscard]] int locate(sim::FileId file) const override;
  [[nodiscard]] std::string name() const override { return "nufa"; }

 private:
  int bricks_;
  const sim::FileIdTable* files_;
  std::vector<int> placement_;  // dense by FileId; -1 = never placed
};

}  // namespace wfs::storage
