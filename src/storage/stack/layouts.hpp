#pragma once

#include <string>
#include <unordered_map>

namespace wfs::storage {

/// File-placement policy of a GlusterFS volume (paper §IV.C). Files are
/// write-once, so locate() is stable after place().
class LayoutPolicy {
 public:
  virtual ~LayoutPolicy() = default;

  /// Chooses the brick for a new file. `creator` is the writing node, or
  /// -1 for pre-staged input data.
  virtual int place(const std::string& path, int creator) = 0;

  /// Brick currently holding `path`.
  [[nodiscard]] virtual int locate(const std::string& path) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// cluster/distribute: DHT placement by path hash — uniform spread of reads
/// and writes across the virtual cluster.
class DistributeLayout final : public LayoutPolicy {
 public:
  explicit DistributeLayout(int bricks) : bricks_{bricks} {}
  int place(const std::string& path, int creator) override;
  [[nodiscard]] int locate(const std::string& path) const override;
  [[nodiscard]] std::string name() const override { return "distribute"; }

 private:
  int bricks_;
};

/// cluster/nufa: non-uniform file access — new files are written to the
/// creating node's own brick, so chained transformations (Broadband's
/// mini-workflows) find their intermediates locally.
class NufaLayout final : public LayoutPolicy {
 public:
  explicit NufaLayout(int bricks) : bricks_{bricks} {}
  int place(const std::string& path, int creator) override;
  [[nodiscard]] int locate(const std::string& path) const override;
  [[nodiscard]] std::string name() const override { return "nufa"; }

 private:
  int bricks_;
  std::unordered_map<std::string, int> placement_;
};

}  // namespace wfs::storage
