#pragma once

#include <functional>
#include <string>
#include <utility>

#include "storage/base/lru_cache.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// A byte-capacity LRU cache as a stack layer — the one mechanism behind
/// the GlusterFS io-cache translator, node/NFS-server/brick page caches,
/// the NFS client cache and the S3 whole-file cache; the Config picks the
/// hit cost model and which legacy StorageMetrics counters each outcome
/// feeds (they must match what the pre-stack backends counted, since fig2's
/// cache_hit_rate is derived from them).
///
/// Reads: hit serves at this layer (optional `hitLatency`, then the hit
/// cost); miss forwards, then caches on the way back up. Writes/scratch:
/// forward, then cache (or cache first with `putBeforeForwardOnWrite`, for
/// caches that must be warm while the layer below re-reads the data — the
/// S3 wrapper). Discard control evicts; preload control passes through
/// (pre-staged data is cold, §III.C).
class LruCacheLayer : public IoLayer {
 public:
  /// How a hit is served: a memory copy at `memRate`; a flow over the op's
  /// route (falling back to a memory copy when the route is empty, i.e. the
  /// requester is local); or free (the layer only tracks residency — the
  /// S3 whole-file cache, where a lower staging layer pays the actual read).
  enum class HitCost { kMemCopy, kRoute, kFree };

  struct Config {
    std::string name = "performance/page-cache";
    Bytes capacity = 0;
    Rate memRate = GBps(1);
    HitCost hitCost = HitCost::kMemCopy;
    /// Required for HitCost::kRoute.
    net::FlowNetwork* net = nullptr;
    /// Client-observed delay before a hit is served (NFS GETATTR
    /// revalidation round trip).
    std::function<sim::Duration(const Op&)> hitLatency;
    bool putBeforeForwardOnWrite = false;
    // Legacy StorageMetrics wiring (behavior-preservation contract).
    bool hitCountsCacheHit = false;
    bool hitCountsLocalRead = false;
    bool missCountsCacheMiss = false;
    bool missCountsRemoteRead = false;
  };

  explicit LruCacheLayer(Config cfg) : cfg_{std::move(cfg)}, cache_{cfg_.capacity} {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  [[nodiscard]] bool cached(sim::FileId file) const { return cache_.contains(file); }
  void evict(sim::FileId file) { cache_.erase(file); }
  [[nodiscard]] LruCache& cache() { return cache_; }
  [[nodiscard]] const LruCache& cache() const { return cache_; }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    if (cache_.contains(file)) return size;
    return next_ != nullptr ? next_->locality(node, file, size) : 0;
  }

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;
  void handle(Op& op) override;

 private:
  Config cfg_;
  LruCache cache_;
};

}  // namespace wfs::storage
