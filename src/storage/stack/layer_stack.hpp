#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// An ordered composition of IoLayers (top first), the client's view of a
/// storage volume. Owns the layers, wires their `next` pointers, and hands
/// each its simulator, metrics sink and ledger slot.
class LayerStack {
 public:
  /// `layers` is top-first and must be non-empty.
  LayerStack(sim::Simulator& sim, StorageMetrics& metrics,
             std::vector<std::unique_ptr<IoLayer>> layers);
  /// Prepend `layer` as the new top of the stack (used to arm fault
  /// injection on an already-wired composition).
  void pushFront(std::unique_ptr<IoLayer> layer);
  LayerStack(const LayerStack&) = delete;
  LayerStack& operator=(const LayerStack&) = delete;

  /// Timed entry with a caller-owned Op (for layers nesting sub-stacks).
  [[nodiscard]] sim::Task<void> submit(Op& op) { return top_->submit(op); }
  /// Control entry with a caller-owned Op.
  void control(Op& op) { top_->control(op); }

  /// Convenience entries that own the Op for the duration of the call.
  [[nodiscard]] sim::Task<void> read(int node, sim::FileId file, Bytes size);
  [[nodiscard]] sim::Task<void> write(int node, sim::FileId file, Bytes size);
  /// A write of intra-job temporary data (ledgered as scratch).
  [[nodiscard]] sim::Task<void> scratchWrite(int node, sim::FileId file, Bytes size);
  void discard(int node, sim::FileId file);
  void preload(sim::FileId file, Bytes size);

  /// String conveniences (tests, examples): intern through the simulator's
  /// table, then take the id path.
  [[nodiscard]] sim::Task<void> read(int node, const std::string& path, Bytes size) {
    return read(node, sim_->files().intern(path), size);
  }
  [[nodiscard]] sim::Task<void> write(int node, const std::string& path, Bytes size) {
    return write(node, sim_->files().intern(path), size);
  }
  [[nodiscard]] sim::Task<void> scratchWrite(int node, const std::string& path, Bytes size) {
    return scratchWrite(node, sim_->files().intern(path), size);
  }
  void discard(int node, const std::string& path) {
    discard(node, sim_->files().intern(path));
  }
  void preload(const std::string& path, Bytes size) {
    preload(sim_->files().intern(path), size);
  }

  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const {
    return top_->locality(node, file, size);
  }

  [[nodiscard]] IoLayer* layer(std::size_t i) { return layers_.at(i).get(); }
  [[nodiscard]] const IoLayer* layer(std::size_t i) const { return layers_.at(i).get(); }
  /// First layer with the given ledger name, or nullptr.
  [[nodiscard]] IoLayer* find(std::string_view name);
  [[nodiscard]] std::size_t depth() const { return layers_.size(); }

 private:
  [[nodiscard]] sim::Task<void> run(Op op);

  sim::Simulator* sim_;
  StorageMetrics* metrics_;
  std::vector<std::unique_ptr<IoLayer>> layers_;
  IoLayer* top_;
};

}  // namespace wfs::storage
