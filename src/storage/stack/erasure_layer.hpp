#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/io_layer.hpp"

namespace wfs::storage {

/// cluster/ec (GlusterFS disperse / stripe+parity): every file is cut into
/// k data fragments of ceil(size/k) bytes plus m parity fragments of the
/// same size, one fragment per server, rotated by file identity so parity
/// load spreads. Any k live fragments reconstruct a read; a read that had to
/// substitute parity for a dead data fragment counts a reconstruction.
/// Fragment I/O uses the PVFS request model (per-server setup latency,
/// flow-controlled requestSize chunks, serial per server, parallel across
/// servers), so geometry changes — not transport changes — explain the
/// numbers against cluster/stripe.
class ErasureLayer final : public IoLayer {
 public:
  struct Config {
    std::string name = "cluster/ec";
    int k = 2;
    int m = 1;
    /// Request setup per server per transfer (PVFS ioRequestOverhead).
    sim::Duration ioRequestOverhead = sim::Duration::micros(300);
    /// Flow-control window per request.
    Bytes requestSize = 128_KiB;
  };

  ErasureLayer(net::Fabric& fabric, std::vector<const StorageNode*> servers, Config cfg);

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  [[nodiscard]] int k() const { return cfg_.k; }
  [[nodiscard]] int m() const { return cfg_.m; }

  /// Fragments always reach other servers.
  [[nodiscard]] Bytes locality(int node, sim::FileId file, Bytes size) const override {
    (void)node;
    (void)file;
    (void)size;
    return 0;
  }

  /// Server of fragment slot `slot` (0..k+m-1) for `file`.
  [[nodiscard]] int serverOf(sim::FileId file, int slot) const;
  /// Does `node` hold a live-or-dead-server fragment of `file`?
  [[nodiscard]] bool hasFragment(sim::FileId file, int node) const;
  /// Fragments of `file` on live servers, not counting `excludeNode` — the
  /// failNode() sweep asks before onServerDown has run.
  [[nodiscard]] int liveFragmentsExcluding(sim::FileId file, int excludeNode) const;
  /// Crash policy hook for the owning backend: `file` is unreconstructable
  /// once the fragments surviving outside `node` drop below k.
  [[nodiscard]] bool losesFile(sim::FileId file, int node) const {
    return hasFragment(file, node) && liveFragmentsExcluding(file, node) < cfg_.k;
  }

  [[nodiscard]] bool serverUp(int node) const {
    return serverUp_.at(static_cast<std::size_t>(node)) != 0;
  }
  /// Crash-stop of a server: down, and every fragment it held is gone.
  void dropServer(int node);
  /// Replacement VM re-joined; fragments return only via heal().
  void reviveServer(int node);

  /// Background self-heal of a replacement server: for every file in
  /// `candidates` (id, size — catalog path order) missing a fragment on
  /// `node` and still holding k live fragments, read k fragments across the
  /// wire, re-encode, and write the missing fragment to the server.
  [[nodiscard]] sim::Task<void> heal(int node,
                                     std::vector<std::pair<sim::FileId, Bytes>> candidates);

 protected:
  [[nodiscard]] sim::Task<void> process(Op& op) override;
  void handle(Op& op) override;

 private:
  [[nodiscard]] sim::Task<void> serverIo(int server, int clientNode, Bytes bytes, bool wr);
  [[nodiscard]] Bytes fragmentBytes(Bytes size) const {
    return (size + static_cast<Bytes>(cfg_.k) - 1) / static_cast<Bytes>(cfg_.k);
  }
  [[nodiscard]] int width() const { return cfg_.k + cfg_.m; }
  void ensure(sim::FileId file);

  Config cfg_;
  net::Fabric* fabric_;
  std::vector<const StorageNode*> servers_;
  std::vector<char> serverUp_;             // by node
  std::vector<std::uint32_t> fragments_;   // dense by FileId; bit j = slot j present
};

}  // namespace wfs::storage
