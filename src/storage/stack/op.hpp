#pragma once

#include "net/flow_network.hpp"
#include "simcore/file_id.hpp"
#include "simcore/units.hpp"

namespace wfs::storage {

/// What a layer-stack operation does. `kScratch` is a write whose data is
/// intra-job temporary (ledgered separately from durable writes); `kDiscard`
/// and `kPreload` ride the synchronous control path (IoLayer::control).
enum class OpKind { kRead, kWrite, kScratch, kDiscard, kPreload };

[[nodiscard]] const char* toString(OpKind kind);

[[nodiscard]] constexpr bool isWriteLike(OpKind kind) {
  return kind == OpKind::kWrite || kind == OpKind::kScratch;
}

/// One whole-file operation descending a layer stack (the generalization of
/// the GlusterFS FileOp, paper §IV.C). An Op is owned by the coroutine
/// frame that entered the stack and mutated in place as layers route it.
struct Op {
  OpKind kind = OpKind::kRead;
  /// Worker node issuing the call; -1 for node-less control ops (preload).
  int node = -1;
  /// Interned file identity (Simulator::files()); layers resolve the
  /// spelling only for error messages and traces.
  sim::FileId file{};
  Bytes size = 0;
  /// Owner node resolved by a PlacementLayer; -1 until resolved.
  int owner = -1;
  /// Flow hops the payload rides below this point. Routing layers set it
  /// (e.g. server NIC -> client NIC + backplane); cache and device layers
  /// consume it to stream data as one pipelined flow.
  net::Path route{};
  /// Ledger plumbing: the enclosing layer's accumulator of time spent in
  /// layers below it (IoLayer::submit maintains the chain).
  double* parentClock = nullptr;
};

}  // namespace wfs::storage
