#include "storage/stack/layer_stack.hpp"

#include <cassert>
#include <utility>

namespace wfs::storage {

LayerStack::LayerStack(sim::Simulator& sim, StorageMetrics& metrics,
                       std::vector<std::unique_ptr<IoLayer>> layers)
    : sim_{&sim}, metrics_{&metrics}, layers_{std::move(layers)} {
  assert(!layers_.empty());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    IoLayer* next = i + 1 < layers_.size() ? layers_[i + 1].get() : nullptr;
    layers_[i]->attach(sim, metrics, next);
  }
  top_ = layers_.front().get();
}

void LayerStack::pushFront(std::unique_ptr<IoLayer> layer) {
  layer->attach(*sim_, *metrics_, top_);
  top_ = layer.get();
  layers_.insert(layers_.begin(), std::move(layer));
}

sim::Task<void> LayerStack::run(Op op) {
  // The Op lives in this frame while layers below mutate and reference it.
  auto body = top_->submit(op);
  co_await std::move(body);
}

sim::Task<void> LayerStack::read(int node, sim::FileId file, Bytes size) {
  Op op;
  op.kind = OpKind::kRead;
  op.node = node;
  op.file = file;
  op.size = size;
  return run(op);
}

sim::Task<void> LayerStack::write(int node, sim::FileId file, Bytes size) {
  Op op;
  op.kind = OpKind::kWrite;
  op.node = node;
  op.file = file;
  op.size = size;
  return run(op);
}

sim::Task<void> LayerStack::scratchWrite(int node, sim::FileId file, Bytes size) {
  Op op;
  op.kind = OpKind::kScratch;
  op.node = node;
  op.file = file;
  op.size = size;
  return run(op);
}

void LayerStack::discard(int node, sim::FileId file) {
  Op op;
  op.kind = OpKind::kDiscard;
  op.node = node;
  op.file = file;
  top_->control(op);
}

void LayerStack::preload(sim::FileId file, Bytes size) {
  Op op;
  op.kind = OpKind::kPreload;
  op.file = file;
  op.size = size;
  top_->control(op);
}

IoLayer* LayerStack::find(std::string_view name) {
  for (auto& l : layers_) {
    if (l->name() == name) return l.get();
  }
  return nullptr;
}

}  // namespace wfs::storage
