#include "storage/base/wb_cache.hpp"

#include <algorithm>

namespace wfs::storage {

WriteBackCache::WriteBackCache(sim::Simulator& sim, blk::BlockStore& backing, const Config& cfg)
    : sim_{&sim}, backing_{&backing}, cfg_{cfg}, spaceFreed_{sim}, allClean_{sim} {}

sim::Task<void> WriteBackCache::write(Bytes size) {
  if (size > 0) pendingFiles_.push_back(size);
  Bytes left = size;
  while (left > 0) {
    const Bytes room = cfg_.dirtyLimit - dirty_;
    const Bytes admit = std::min(left, room);
    if (admit > 0) {
      dirty_ += admit;
      left -= admit;
      ensureFlusher();
      // Memory-speed landing of the admitted portion.
      co_await sim_->delay(
          sim::Duration::fromSeconds(static_cast<double>(admit) / cfg_.memRate));
    } else {
      ++stalls_;
      co_await spaceFreed_.wait();
    }
  }
}

sim::Task<void> WriteBackCache::drain() {
  while (dirty_ > 0) co_await allClean_.wait();
}

void WriteBackCache::ensureFlusher() {
  if (flusherRunning_) return;
  flusherRunning_ = true;
  sim_->spawn(flusherLoop());
}

sim::Task<void> WriteBackCache::flusherLoop() {
  while (dirty_ > 0) {
    // Write back at most one file (or flushChunk of a big one) per device
    // operation, so small files each pay the positioning cost.
    Bytes chunk = pendingFiles_.empty() ? dirty_ : pendingFiles_.front();
    chunk = std::min({chunk, dirty_, cfg_.flushChunk});
    co_await backing_->write(chunk);
    dirty_ -= chunk;
    if (!pendingFiles_.empty()) {
      if (pendingFiles_.front() <= chunk) {
        pendingFiles_.pop_front();
      } else {
        pendingFiles_.front() -= chunk;
      }
    }
    spaceFreed_.fire();
  }
  flusherRunning_ = false;
  allClean_.fire();
}

}  // namespace wfs::storage
