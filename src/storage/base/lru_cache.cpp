#include "storage/base/lru_cache.hpp"

namespace wfs::storage {

void LruCache::put(const std::string& key, Bytes size) {
  if (size > capacity_) return;
  if (auto it = index_.find(key); it != index_.end()) {
    used_ -= it->second->size;
    lru_.erase(it->second);
    index_.erase(it);
  }
  evictToFit(size);
  lru_.push_front(Entry{key, size});
  index_[key] = lru_.begin();
  used_ += size;
}

bool LruCache::touch(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void LruCache::erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

void LruCache::evictToFit(Bytes need) {
  while (used_ + need > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace wfs::storage
