#include "storage/base/lru_cache.hpp"

namespace wfs::storage {

void LruCache::unlink(std::uint32_t i) {
  Node& n = nodes_[i];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
}

void LruCache::pushFront(std::uint32_t i) {
  Node& n = nodes_[i];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

void LruCache::dropEntry(std::uint32_t i) {
  used_ -= nodes_[i].size;
  unlink(i);
  nodes_[i].present = false;
  --count_;
}

void LruCache::put(sim::FileId key, Bytes size) {
  if (size > capacity_ || !key.valid()) return;
  if (nodes_.size() <= key.index()) nodes_.resize(key.index() + 1);
  const auto i = static_cast<std::uint32_t>(key.index());
  if (nodes_[i].present) dropEntry(i);
  // Evict least-recent entries until the new one fits.
  while (used_ + size > capacity_ && tail_ != kNil) {
    dropEntry(tail_);
    ++evictions_;
  }
  nodes_[i].size = size;
  nodes_[i].present = true;
  pushFront(i);
  used_ += size;
  ++count_;
}

bool LruCache::touch(sim::FileId key) {
  if (!contains(key)) return false;
  const auto i = static_cast<std::uint32_t>(key.index());
  if (head_ != i) {
    unlink(i);
    pushFront(i);
  }
  return true;
}

void LruCache::erase(sim::FileId key) {
  if (!contains(key)) return;
  dropEntry(static_cast<std::uint32_t>(key.index()));
}

void LruCache::clear() {
  while (head_ != kNil) {
    const std::uint32_t i = head_;
    unlink(i);
    nodes_[i].present = false;
  }
  count_ = 0;
  used_ = 0;
}

}  // namespace wfs::storage
