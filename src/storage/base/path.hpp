#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wfs::storage {

/// FNV-1a 64-bit hash; the stable hash used by DHT-style placement
/// (GlusterFS distribute) and PVFS metadata-server selection.
[[nodiscard]] std::uint64_t pathHash(std::string_view path);

/// Last component of a slash-separated logical file name.
[[nodiscard]] std::string_view baseName(std::string_view path);

/// Directory part (empty if none).
[[nodiscard]] std::string_view dirName(std::string_view path);

/// Joins with exactly one slash.
[[nodiscard]] std::string joinPath(std::string_view dir, std::string_view leaf);

}  // namespace wfs::storage
