#include "storage/base/storage_system.hpp"

namespace wfs::storage {

void FileCatalog::create(const std::string& path, Bytes size, int creator) {
  auto [it, inserted] = files_.emplace(path, FileMeta{size, creator});
  if (!inserted) {
    throw std::logic_error("write-once violation: file already exists: " + path);
  }
  (void)it;
  totalBytes_ += size;
}

const FileMeta& FileCatalog::lookup(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::out_of_range("no such file in storage catalog: " + path);
  }
  return it->second;
}

sim::Duration memCopyTime(Bytes size, Rate memRate) {
  return sim::Duration::fromSeconds(static_cast<double>(size) / memRate);
}

}  // namespace wfs::storage
