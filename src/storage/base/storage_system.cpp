#include "storage/base/storage_system.hpp"

#include "storage/stack/layer_stack.hpp"

namespace wfs::storage {

void FileCatalog::create(const std::string& path, Bytes size, int creator) {
  auto [it, inserted] = files_.emplace(path, FileMeta{size, creator});
  if (!inserted) {
    const FileMeta& existing = it->second;
    throw std::logic_error("write-once violation: file already exists: " + path + " (" +
                           std::to_string(existing.size) + " bytes, created by node " +
                           std::to_string(existing.creator) + "; rejected re-create from node " +
                           std::to_string(creator) + ")");
  }
  totalBytes_ += size;
}

const FileMeta& FileCatalog::lookup(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::out_of_range("no such file in storage catalog: " + path + " (catalog holds " +
                            std::to_string(files_.size()) + " files)");
  }
  return it->second;
}

sim::Task<void> StorageSystem::write(int node, std::string path, Bytes size) {
  catalog_.create(path, size, node);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  metrics_.nodeIo(node).written += size;
  // Materialize the call before awaiting: GCC 12 double-destroys
  // non-trivial temporaries inside co_await operands.
  auto body = doWrite(node, std::move(path), size);
  co_await std::move(body);
}

sim::Task<void> StorageSystem::read(int node, std::string path) {
  const Bytes size = catalog_.lookup(path).size;
  ++metrics_.readOps;
  metrics_.bytesRead += size;
  auto body = doRead(node, std::move(path), size);
  co_await std::move(body);
}

void StorageSystem::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  doPreload(path, size);
}

void StorageSystem::doPreload(const std::string& path, Bytes size) {
  if (!nodeStacks_.empty()) nodeStacks_.front()->preload(path, size);
}

void StorageSystem::discard(int node, const std::string& path) {
  if (nodeStacks_.empty()) return;
  nodeStack(node)->discard(node, path);
}

Bytes StorageSystem::localityHint(int node, const std::string& path) const {
  if (nodeStacks_.empty() || !catalog_.exists(path)) return 0;
  return nodeStacks_.at(static_cast<std::size_t>(node))
      ->locality(node, path, catalog_.lookup(path).size);
}

sim::Duration memCopyTime(Bytes size, Rate memRate) {
  return sim::Duration::fromSeconds(static_cast<double>(size) / memRate);
}

}  // namespace wfs::storage
