#include "storage/base/storage_system.hpp"

#include <algorithm>
#include <memory>

#include "simcore/rng.hpp"
#include "storage/stack/fault_layer.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/retry_layer.hpp"

namespace wfs::storage {

void FileCatalog::create(sim::FileId id, Bytes size, int creator, bool scratch) {
  if (entries_.size() <= id.index()) entries_.resize(id.index() + 1);
  Entry& e = entries_[id.index()];
  if (e.present) {
    FileMeta& existing = e.meta;
    // Recovery reuses names: a crash-lost file is recomputed under its own
    // LFN, and a retried attempt regenerates its discarded scratch files.
    const bool reusable = existing.lost || (existing.scratch && existing.discarded);
    if (!reusable) {
      throw std::logic_error("storage/catalog: write-once violation, file already exists: " +
                             names_->name(id) + " (" + std::to_string(existing.size) +
                             " bytes, created by node " + std::to_string(existing.creator) +
                             "; rejected re-create from node " + std::to_string(creator) + ")");
    }
    totalBytes_ -= existing.size;
    existing = FileMeta{size, creator, scratch};
  } else {
    e.present = true;
    e.meta = FileMeta{size, creator, scratch};
    ++count_;
  }
  totalBytes_ += size;
}

const FileMeta& FileCatalog::lookup(sim::FileId id) const {
  if (!exists(id)) {
    const std::string shown = id.valid() && names_ != nullptr ? names_->name(id) : "<unknown>";
    throw std::out_of_range("storage/catalog: no such file: " + shown + " (catalog holds " +
                            std::to_string(count_) + " files)");
  }
  return entries_[id.index()].meta;
}

void FileCatalog::markDiscarded(sim::FileId id) {
  if (exists(id)) metaFor(id).discarded = true;
}

void FileCatalog::markLost(sim::FileId id) {
  if (exists(id)) metaFor(id).lost = true;
}

void FileCatalog::clearLost(sim::FileId id) {
  if (exists(id)) metaFor(id).lost = false;
}

std::vector<sim::FileId> FileCatalog::sortedIds() const {
  std::vector<sim::FileId> ids;
  ids.reserve(count_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].present) ids.push_back(sim::FileId{static_cast<std::uint32_t>(i)});
  }
  std::sort(ids.begin(), ids.end(), [this](sim::FileId a, sim::FileId b) {
    return names_->name(a) < names_->name(b);
  });
  return ids;
}

sim::Task<void> StorageSystem::write(int node, sim::FileId file, Bytes size) {
  catalog_.create(file, size, node);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  metrics_.nodeIo(node).written += size;
  // Materialize the call before awaiting: GCC 12 double-destroys
  // non-trivial temporaries inside co_await operands.
  auto body = doWrite(node, file, size);
  co_await std::move(body);
}

sim::Task<void> StorageSystem::read(int node, sim::FileId file) {
  const FileMeta& meta = catalog_.lookup(file);
  if (meta.lost) {
    throw FileLostError("storage/catalog: file lost to node failure: " + files_->name(file) +
                        " (created by node " + std::to_string(meta.creator) + ")");
  }
  const Bytes size = meta.size;
  ++metrics_.readOps;
  metrics_.bytesRead += size;
  auto body = doRead(node, file, size);
  co_await std::move(body);
}

sim::Task<void> StorageSystem::scratchRoundTrip(int node, sim::FileId file, Bytes size) {
  // Same counters and same doWrite/doRead event sequence as write()+read(),
  // but the entry is flagged scratch so a retried attempt can re-create it
  // after its discard.
  catalog_.create(file, size, node, /*scratch=*/true);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  metrics_.nodeIo(node).written += size;
  auto wr = doWrite(node, file, size);
  co_await std::move(wr);
  // A crash may have taken the data between the write landing and this
  // re-read (a remote brick, a stripe server): surface the loss exactly as
  // read() would, so the attempt aborts and regenerates the temporary
  // instead of silently reading a file the catalog says is gone. Without
  // this check the entry stayed lost+discarded forever and the loss was
  // never acted on.
  if (catalog_.lookup(file).lost) {
    throw FileLostError("storage/catalog: file lost to node failure: " + files_->name(file) +
                        " (scratch re-read on node " + std::to_string(node) + ")");
  }
  ++metrics_.readOps;
  metrics_.bytesRead += size;
  auto rd = doRead(node, file, size);
  co_await std::move(rd);
}

void StorageSystem::preload(sim::FileId file, Bytes size) {
  catalog_.create(file, size, /*creator=*/-1);
  doPreload(file, size);
}

void StorageSystem::doPreload(sim::FileId file, Bytes size) {
  if (!nodeStacks_.empty()) nodeStacks_.front()->preload(file, size);
}

void StorageSystem::discard(int node, sim::FileId file) {
  catalog_.markDiscarded(file);
  doDiscard(node, file);
}

void StorageSystem::doDiscard(int node, sim::FileId file) {
  if (nodeStacks_.empty()) return;
  nodeStack(node)->discard(node, file);
}

bool StorageSystem::available(sim::FileId file) const {
  if (!catalog_.exists(file)) return false;
  return !catalog_.lookup(file).lost;
}

std::vector<sim::FileId> StorageSystem::failNode(int node) {
  std::vector<sim::FileId> lost;
  // sortedIds() spells out the catalog in path order, so losses are emitted
  // sorted by name and recovery replays identically everywhere.
  for (const sim::FileId id : catalog_.sortedIds()) {
    const FileMeta& fileMeta = *catalog_.tryLookup(id);
    if (fileMeta.lost || fileMeta.discarded) continue;
    if (losesDataOnCrash(node, id, fileMeta)) lost.push_back(id);
  }
  for (const sim::FileId id : lost) catalog_.markLost(id);
  onNodeFail(node, lost);
  return lost;
}

int StorageSystem::restoreNode(int node) {
  onNodeRestore(node);
  std::vector<sim::FileId> restage;
  for (const sim::FileId id : catalog_.sortedIds()) {
    const FileMeta& fileMeta = *catalog_.tryLookup(id);
    if (fileMeta.lost && fileMeta.creator == -1) restage.push_back(id);
  }
  for (const sim::FileId id : restage) {
    catalog_.clearLost(id);
    doPreload(id, catalog_.lookup(id).size);
  }
  return static_cast<int>(restage.size());
}

sim::Task<void> StorageSystem::healNode(int node) {
  (void)node;
  co_return;
}

void StorageSystem::armFaults(const FaultArming& arming) {
  std::vector<LayerStack*> unique;
  for (LayerStack* s : nodeStacks_) {
    if (s != nullptr && std::find(unique.begin(), unique.end(), s) == unique.end()) {
      unique.push_back(s);
    }
  }
  sim::Rng seeder{arming.seed};
  for (LayerStack* s : unique) {
    FaultLayer::Config fault;
    fault.opFaultProb = arming.opFaultProb;
    fault.outages = arming.outages;
    s->pushFront(std::make_unique<FaultLayer>(fault, seeder.fork()));
    RetryLayer::Config retry;
    retry.maxAttempts = arming.maxOpAttempts;
    retry.backoffSeconds = arming.retryBackoffSeconds;
    s->pushFront(std::make_unique<RetryLayer>(retry));
  }
}

Bytes StorageSystem::localityHint(int node, sim::FileId file) const {
  if (nodeStacks_.empty() || !catalog_.exists(file)) return 0;
  return nodeStacks_.at(static_cast<std::size_t>(node))
      ->locality(node, file, catalog_.lookup(file).size);
}

sim::Duration memCopyTime(Bytes size, Rate memRate) {
  return sim::Duration::fromSeconds(static_cast<double>(size) / memRate);
}

}  // namespace wfs::storage
