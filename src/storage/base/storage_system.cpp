#include "storage/base/storage_system.hpp"

#include <algorithm>
#include <memory>

#include "simcore/rng.hpp"
#include "storage/stack/fault_layer.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/retry_layer.hpp"

namespace wfs::storage {

void FileCatalog::create(const std::string& path, Bytes size, int creator, bool scratch) {
  auto [it, inserted] = files_.emplace(path, FileMeta{size, creator, scratch});
  if (!inserted) {
    FileMeta& existing = it->second;
    // Recovery reuses names: a crash-lost file is recomputed under its own
    // LFN, and a retried attempt regenerates its discarded scratch files.
    const bool reusable = existing.lost || (existing.scratch && existing.discarded);
    if (!reusable) {
      throw std::logic_error("write-once violation: file already exists: " + path + " (" +
                             std::to_string(existing.size) + " bytes, created by node " +
                             std::to_string(existing.creator) +
                             "; rejected re-create from node " + std::to_string(creator) + ")");
    }
    totalBytes_ -= existing.size;
    existing = FileMeta{size, creator, scratch};
  }
  totalBytes_ += size;
}

const FileMeta& FileCatalog::lookup(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::out_of_range("no such file in storage catalog: " + path + " (catalog holds " +
                            std::to_string(files_.size()) + " files)");
  }
  return it->second;
}

void FileCatalog::markDiscarded(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) it->second.discarded = true;
}

void FileCatalog::markLost(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) it->second.lost = true;
}

void FileCatalog::clearLost(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) it->second.lost = false;
}

sim::Task<void> StorageSystem::write(int node, std::string path, Bytes size) {
  catalog_.create(path, size, node);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  metrics_.nodeIo(node).written += size;
  // Materialize the call before awaiting: GCC 12 double-destroys
  // non-trivial temporaries inside co_await operands.
  auto body = doWrite(node, std::move(path), size);
  co_await std::move(body);
}

sim::Task<void> StorageSystem::read(int node, std::string path) {
  const FileMeta& meta = catalog_.lookup(path);
  if (meta.lost) {
    throw FileLostError("file lost to node failure: " + path + " (created by node " +
                        std::to_string(meta.creator) + ")");
  }
  const Bytes size = meta.size;
  ++metrics_.readOps;
  metrics_.bytesRead += size;
  auto body = doRead(node, std::move(path), size);
  co_await std::move(body);
}

sim::Task<void> StorageSystem::scratchRoundTrip(int node, std::string path, Bytes size) {
  // Same counters and same doWrite/doRead event sequence as write()+read(),
  // but the entry is flagged scratch so a retried attempt can re-create it
  // after its discard.
  catalog_.create(path, size, node, /*scratch=*/true);
  ++metrics_.writeOps;
  metrics_.bytesWritten += size;
  metrics_.nodeIo(node).written += size;
  auto wr = doWrite(node, path, size);
  co_await std::move(wr);
  ++metrics_.readOps;
  metrics_.bytesRead += size;
  auto rd = doRead(node, std::move(path), size);
  co_await std::move(rd);
}

void StorageSystem::preload(const std::string& path, Bytes size) {
  catalog_.create(path, size, /*creator=*/-1);
  doPreload(path, size);
}

void StorageSystem::doPreload(const std::string& path, Bytes size) {
  if (!nodeStacks_.empty()) nodeStacks_.front()->preload(path, size);
}

void StorageSystem::discard(int node, const std::string& path) {
  catalog_.markDiscarded(path);
  doDiscard(node, path);
}

void StorageSystem::doDiscard(int node, const std::string& path) {
  if (nodeStacks_.empty()) return;
  nodeStack(node)->discard(node, path);
}

bool StorageSystem::available(const std::string& path) const {
  if (!catalog_.exists(path)) return false;
  return !catalog_.lookup(path).lost;
}

const FileMeta* StorageSystem::meta(const std::string& path) const {
  auto it = catalog_.entries().find(path);
  return it == catalog_.entries().end() ? nullptr : &it->second;
}

std::vector<std::string> StorageSystem::failNode(int node) {
  std::vector<std::string> lost;
  // The catalog is an ordered map, so this sweep emits losses in sorted
  // path order by construction and recovery replays identically everywhere.
  for (const auto& [path, fileMeta] : catalog_.entries()) {
    if (fileMeta.lost || fileMeta.discarded) continue;
    if (losesDataOnCrash(node, path, fileMeta)) lost.push_back(path);
  }
  for (const auto& p : lost) catalog_.markLost(p);
  onNodeFail(node, lost);
  return lost;
}

int StorageSystem::restoreNode(int node) {
  onNodeRestore(node);
  std::vector<std::string> restage;
  for (const auto& [path, fileMeta] : catalog_.entries()) {
    if (fileMeta.lost && fileMeta.creator == -1) restage.push_back(path);
  }
  for (const auto& p : restage) {
    catalog_.clearLost(p);
    doPreload(p, catalog_.lookup(p).size);
  }
  return static_cast<int>(restage.size());
}

void StorageSystem::armFaults(const FaultArming& arming) {
  std::vector<LayerStack*> unique;
  for (LayerStack* s : nodeStacks_) {
    if (s != nullptr && std::find(unique.begin(), unique.end(), s) == unique.end()) {
      unique.push_back(s);
    }
  }
  sim::Rng seeder{arming.seed};
  for (LayerStack* s : unique) {
    FaultLayer::Config fault;
    fault.opFaultProb = arming.opFaultProb;
    fault.outages = arming.outages;
    s->pushFront(std::make_unique<FaultLayer>(fault, seeder.fork()));
    RetryLayer::Config retry;
    retry.maxAttempts = arming.maxOpAttempts;
    retry.backoffSeconds = arming.retryBackoffSeconds;
    s->pushFront(std::make_unique<RetryLayer>(retry));
  }
}

Bytes StorageSystem::localityHint(int node, const std::string& path) const {
  if (nodeStacks_.empty() || !catalog_.exists(path)) return 0;
  return nodeStacks_.at(static_cast<std::size_t>(node))
      ->locality(node, path, catalog_.lookup(path).size);
}

sim::Duration memCopyTime(Bytes size, Rate memRate) {
  return sim::Duration::fromSeconds(static_cast<double>(size) / memRate);
}

}  // namespace wfs::storage
