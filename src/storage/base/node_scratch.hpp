#pragma once

#include <memory>
#include <string>

#include "storage/base/lru_cache.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/base/wb_cache.hpp"

namespace wfs::storage {

/// The local-disk view a single node has of its own data: a kernel page
/// cache over the RAID array plus a dirty-page write-back buffer.
///
/// Shared by the local-disk option (the whole storage system) and by the
/// S3 option (every GET/PUT stages through the node's scratch disk).
class NodeScratch {
 public:
  struct Config {
    /// Page cache bytes, as a fraction of node RAM.
    double pageCacheFraction = 0.42;
    /// Dirty limit, as a fraction of node RAM (Linux dirty_ratio ~ 0.2-0.4;
    /// workflow nodes mostly do I/O, so the effective share is higher).
    double dirtyFraction = 0.2;
    Rate memRate = GBps(1);
  };

  NodeScratch(sim::Simulator& sim, const StorageNode& node, const Config& cfg);

  /// Program-visible whole-file read: page cache hit at memory speed,
  /// otherwise disk read (then cached).
  [[nodiscard]] sim::Task<void> read(const std::string& key, Bytes size);

  /// Program-visible whole-file write: lands in the dirty buffer (blocking
  /// on the flusher only when the buffer is full) and becomes page-cached.
  [[nodiscard]] sim::Task<void> write(const std::string& key, Bytes size);

  [[nodiscard]] bool cached(const std::string& key) const { return pageCache_.contains(key); }
  [[nodiscard]] LruCache& pageCache() { return pageCache_; }
  [[nodiscard]] WriteBackCache& writeBack() { return *wb_; }
  [[nodiscard]] std::uint64_t cacheHits() const { return hits_; }
  [[nodiscard]] std::uint64_t cacheMisses() const { return misses_; }

 private:
  sim::Simulator* sim_;
  const StorageNode* node_;
  Config cfg_;
  LruCache pageCache_;
  std::unique_ptr<WriteBackCache> wb_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wfs::storage
