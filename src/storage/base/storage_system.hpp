#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "blk/disk.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "simcore/file_id.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/base/errors.hpp"
#include "storage/base/metrics.hpp"

namespace wfs::storage {

class LayerStack;

/// What a storage system needs to know about each host of the virtual
/// cluster (provided by cloud::Vm).
struct StorageNode {
  std::string host;
  net::Nic* nic = nullptr;
  blk::BlockStore* disk = nullptr;
  Bytes memoryBytes = 0;
};

/// Metadata for one logical file held by a storage system.
struct FileMeta {
  Bytes size = 0;
  /// Node index that created the file; -1 for pre-staged input data.
  int creator = -1;
  /// Intra-job temporary (registered by scratchRoundTrip, deleted by the
  /// job via discard before the attempt ends).
  bool scratch = false;
  /// The owning job deleted its temporary; caches were told to drop it.
  bool discarded = false;
  /// Every copy died with a crashed node; reads throw FileLostError until
  /// the file is recomputed or re-staged.
  bool lost = false;
};

/// Write-once namespace shared by every backend.
///
/// All three paper applications obey strict write-once semantics (§IV.A);
/// the catalog enforces it — an update-in-place is a simulation bug, since
/// the S3 cache and the NUFA placement map both rely on immutability. Two
/// deliberate exceptions keep recovery sound without weakening the check:
/// a `lost` entry may be re-created (recompute-on-loss writes the same LFN
/// again) and a `scratch && discarded` entry may be re-created (a retried
/// attempt regenerates its temporaries under their original names).
class FileCatalog {
 public:
  /// Binds the intern table used to spell file names in error messages and
  /// the sorted recovery sweeps. Must be called before any mutation.
  void bind(const sim::FileIdTable& names) { names_ = &names; }

  void create(sim::FileId id, Bytes size, int creator, bool scratch = false);
  [[nodiscard]] const FileMeta& lookup(sim::FileId id) const;
  [[nodiscard]] bool exists(sim::FileId id) const {
    return id.valid() && id.index() < entries_.size() && entries_[id.index()].present;
  }
  [[nodiscard]] std::size_t fileCount() const { return count_; }
  [[nodiscard]] Bytes totalBytes() const { return totalBytes_; }

  /// Flag transitions used by discard and crash recovery; all are no-ops on
  /// files the catalog doesn't hold.
  void markDiscarded(sim::FileId id);
  void markLost(sim::FileId id);
  void clearLost(sim::FileId id);

  /// Catalog entry, or nullptr if absent.
  [[nodiscard]] const FileMeta* tryLookup(sim::FileId id) const {
    return exists(id) ? &entries_[id.index()].meta : nullptr;
  }

  /// All cataloged ids sorted by path name — the reproducible order the
  /// failNode()/restoreNode() recovery sweeps emit (cold path; the hot
  /// lookups above are O(1) dense-vector indexing).
  [[nodiscard]] std::vector<sim::FileId> sortedIds() const;

 private:
  struct Entry {
    FileMeta meta{};
    bool present = false;
  };
  FileMeta& metaFor(sim::FileId id) { return entries_[id.index()].meta; }

  const sim::FileIdTable* names_ = nullptr;
  std::vector<Entry> entries_;  // dense, indexed by FileId
  std::size_t count_ = 0;
  Bytes totalBytes_ = 0;
};

/// Parameters for arming fault injection on a backend's client stacks (see
/// StorageSystem::armFaults): a RetryLayer/FaultLayer pair is prepended to
/// each distinct node stack.
struct FaultArming {
  std::uint64_t seed = 1;
  double opFaultProb = 0.0;
  /// Service-outage windows [startSeconds, endSeconds).
  std::vector<std::pair<double, double>> outages;
  int maxOpAttempts = 4;
  double retryBackoffSeconds = 0.5;
};

/// A data-sharing option for the virtual cluster: the five systems of the
/// paper (local, S3, NFS, GlusterFS x2, PVFS) plus XtreemFS implement this.
///
/// I/O is whole-file and node-relative: workflow tasks on worker `node`
/// read inputs before computing and write outputs after, exactly as the
/// Pegasus-launched executables do through POSIX (or through the S3 client
/// wrapper).
///
/// The base owns the cross-backend invariants — catalog bookkeeping,
/// write-once enforcement, the shared op/byte counters — and each backend
/// supplies only its LayerStack composition plus the doWrite/doRead hooks
/// that enter it.
class StorageSystem {
 public:
  /// `sim` owns the path intern table every file name resolves through.
  StorageSystem(sim::Simulator& sim, std::vector<StorageNode> nodes)
      : nodes_{std::move(nodes)}, files_{&sim.files()} {
    catalog_.bind(*files_);
  }
  virtual ~StorageSystem() = default;
  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The simulation world's intern table. String overloads below intern
  /// through it; id overloads are the allocation-free hot path.
  [[nodiscard]] sim::FileIdTable& files() const { return *files_; }

  /// Creates `file` of `size` bytes from worker `node`: catalog entry,
  /// shared counters, then the backend's doWrite().
  [[nodiscard]] sim::Task<void> write(int node, sim::FileId file, Bytes size);
  [[nodiscard]] sim::Task<void> write(int node, const std::string& path, Bytes size) {
    return write(node, files_->intern(path), size);
  }

  /// Reads the whole of `file` at worker `node`.
  [[nodiscard]] sim::Task<void> read(int node, sim::FileId file);
  [[nodiscard]] sim::Task<void> read(int node, const std::string& path) {
    return read(node, files_->intern(path));
  }

  /// Registers pre-staged input data with zero simulated cost. The paper
  /// excludes input staging time from every experiment (§III.C); data is
  /// placed as the system's own layout would place it.
  void preload(sim::FileId file, Bytes size);
  void preload(const std::string& path, Bytes size) { preload(files_->intern(path), size); }

  /// Intra-job scratch round trip: a job writes `file` and immediately
  /// re-reads it (the next executable of a chained transformation). On a
  /// mounted shared file system this is an ordinary write + read; the S3
  /// client wrapper keeps scratch entirely on the node's local disk.
  [[nodiscard]] virtual sim::Task<void> scratchRoundTrip(int node, sim::FileId file,
                                                         Bytes size);
  [[nodiscard]] sim::Task<void> scratchRoundTrip(int node, const std::string& path,
                                                 Bytes size) {
    return scratchRoundTrip(node, files_->intern(path), size);
  }

  /// Drops `file` from any caches (the job deleted its temporary file).
  /// The catalog entry stays, flagged discarded: only a retried attempt may
  /// reuse the name. Marks the catalog, then the backend's doDiscard().
  void discard(int node, sim::FileId file);
  void discard(int node, const std::string& path) { discard(node, files_->intern(path)); }

  /// Bytes of `file` that `node` could serve without network traffic;
  /// the data-aware scheduler ranks candidate nodes with this. Default asks
  /// the node's stack.
  [[nodiscard]] virtual Bytes localityHint(int node, sim::FileId file) const;
  [[nodiscard]] Bytes localityHint(int node, const std::string& path) const {
    return localityHint(node, files_->intern(path));
  }

  [[nodiscard]] bool exists(sim::FileId file) const { return catalog_.exists(file); }
  [[nodiscard]] bool exists(const std::string& path) const {
    return catalog_.exists(files_->find(path));
  }
  [[nodiscard]] Bytes sizeOf(sim::FileId file) const { return catalog_.lookup(file).size; }
  [[nodiscard]] Bytes sizeOf(const std::string& path) const {
    return sizeOf(files_->intern(path));
  }
  /// Cataloged and readable (not crash-lost).
  [[nodiscard]] bool available(sim::FileId file) const;
  [[nodiscard]] bool available(const std::string& path) const {
    return available(files_->find(path));
  }
  /// Catalog entry for `file`, or nullptr if the catalog never saw it.
  [[nodiscard]] const FileMeta* meta(sim::FileId file) const {
    return catalog_.tryLookup(file);
  }
  [[nodiscard]] const FileMeta* meta(const std::string& path) const {
    return meta(files_->find(path));
  }

  /// Retracts an output a failed job attempt managed to write: the entry is
  /// marked lost, so no consumer reads the partial result and the retry's
  /// re-write is accepted by the write-once catalog. No-op on unknown files.
  void retractFile(sim::FileId file) { catalog_.markLost(file); }
  void retractFile(const std::string& path) { retractFile(files_->find(path)); }

  // --- Crash-stop fault surface -------------------------------------------

  /// Worker `node`'s VM terminated: everything that lived only on its local
  /// media (per the backend's losesDataOnCrash policy, including unflushed
  /// write-behind data) is marked lost. Returns the lost files, sorted by
  /// path name.
  std::vector<sim::FileId> failNode(int node);

  /// A replacement VM for `node` is up and its storage daemon re-joined.
  /// Pre-staged inputs (creator == -1) that were lost are re-staged via the
  /// backend's own placement, at zero simulated cost, mirroring preload();
  /// lost intermediates stay lost until recomputed. Returns the re-stage
  /// count.
  int restoreNode(int node);

  /// Background self-heal after restoreNode(): re-replicates whatever the
  /// replacement VM's media should hold but lost (replica copies, erasure
  /// fragments) using the backend's ordinary I/O paths, so heal traffic
  /// competes with workflow I/O on the shared flow network. Default: no
  /// redundancy, nothing to heal. Spawned (not awaited) by the fault
  /// injector.
  [[nodiscard]] virtual sim::Task<void> healNode(int node);

  /// Prepends a RetryLayer/FaultLayer pair to every distinct node stack
  /// (shared stacks are armed once). With a zero-probability, zero-outage
  /// arming the pair is a provable no-op; call at most once, before the
  /// workload runs.
  void armFaults(const FaultArming& arming);

  [[nodiscard]] const StorageMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<StorageNode>& nodes() const { return nodes_; }
  [[nodiscard]] int nodeCount() const { return static_cast<int>(nodes_.size()); }

 protected:
  /// Backend hook: move `size` bytes of the freshly cataloged `file` from
  /// worker `node` into the system.
  [[nodiscard]] virtual sim::Task<void> doWrite(int node, sim::FileId file, Bytes size) = 0;

  /// Backend hook: deliver `size` bytes of `file` to worker `node`.
  [[nodiscard]] virtual sim::Task<void> doRead(int node, sim::FileId file, Bytes size) = 0;

  /// Backend hook for preload placement; default sends a preload control op
  /// down the first node stack (the layout decides where data lands).
  virtual void doPreload(sim::FileId file, Bytes size);

  /// Backend hook behind discard(); default sends a discard control op down
  /// the node's stack.
  virtual void doDiscard(int node, sim::FileId file);

  /// Crash policy: does `file` (cataloged as `meta`) die with worker
  /// `node`? Default: nothing does — right for network-attached backends
  /// (EBS) and durable object stores (S3); local/NUFA/striped backends
  /// override.
  [[nodiscard]] virtual bool losesDataOnCrash(int node, sim::FileId file,
                                              const FileMeta& meta) const {
    (void)node;
    (void)file;
    (void)meta;
    return false;
  }

  /// Backend hook run by failNode() after the catalog sweep: wipe the
  /// node's volatile state (page caches, write-behind buffers, client
  /// caches of the `lost` files).
  virtual void onNodeFail(int node, const std::vector<sim::FileId>& lost) {
    (void)node;
    (void)lost;
  }

  /// Backend hook run by restoreNode() before inputs are re-staged.
  virtual void onNodeRestore(int node) { (void)node; }

  /// One client-side stack per node (a shared stack may be repeated); the
  /// base's default discard/localityHint route through these.
  void setNodeStacks(std::vector<LayerStack*> stacks) { nodeStacks_ = std::move(stacks); }

  [[nodiscard]] LayerStack* nodeStack(int i) const {
    return nodeStacks_.at(static_cast<std::size_t>(i));
  }

  [[nodiscard]] StorageNode& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const StorageNode& node(int i) const {
    return nodes_.at(static_cast<std::size_t>(i));
  }

  std::vector<StorageNode> nodes_;
  FileCatalog catalog_;
  StorageMetrics metrics_;

 private:
  sim::FileIdTable* files_;
  std::vector<LayerStack*> nodeStacks_;
};

/// Memory-copy time for cache-served data (page cache hit, dirty buffer).
[[nodiscard]] sim::Duration memCopyTime(Bytes size, Rate memRate = GBps(1));

}  // namespace wfs::storage
