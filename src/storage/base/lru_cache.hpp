#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "simcore/units.hpp"

namespace wfs::storage {

/// Byte-capacity LRU of named objects (whole files or page runs).
///
/// Backs the S3 client whole-file cache, NFS server page cache, the
/// GlusterFS io-cache translator, and node page caches.
class LruCache {
 public:
  explicit LruCache(Bytes capacity) : capacity_{capacity} {}

  /// Inserts (or refreshes) an entry, evicting LRU entries to fit. Objects
  /// larger than the whole capacity are not cached.
  void put(const std::string& key, Bytes size);

  /// True if present; refreshes recency.
  bool touch(const std::string& key);

  /// Presence without recency update.
  [[nodiscard]] bool contains(const std::string& key) const {
    return index_.contains(key);
  }

  void erase(const std::string& key);
  void clear();

  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] std::size_t entryCount() const { return index_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::string key;
    Bytes size;
  };
  void evictToFit(Bytes need);

  Bytes capacity_;
  Bytes used_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace wfs::storage
