#pragma once

#include <cstdint>
#include <vector>

#include "simcore/file_id.hpp"
#include "simcore/units.hpp"

namespace wfs::storage {

/// Byte-capacity LRU of interned files (whole files or page runs).
///
/// Backs the S3 client whole-file cache, NFS server page cache, the
/// GlusterFS io-cache translator, and node page caches.
///
/// Keys are dense FileIds, so residency checks and recency updates are O(1)
/// vector indexing with an intrusive doubly-linked recency list — no
/// hashing or allocation per operation on the hot path.
class LruCache {
 public:
  explicit LruCache(Bytes capacity) : capacity_{capacity} {}

  /// Inserts (or refreshes) an entry, evicting LRU entries to fit. Objects
  /// larger than the whole capacity are not cached.
  void put(sim::FileId key, Bytes size);

  /// True if present; refreshes recency.
  bool touch(sim::FileId key);

  /// Presence without recency update.
  [[nodiscard]] bool contains(sim::FileId key) const {
    return key.valid() && key.index() < nodes_.size() && nodes_[key.index()].present;
  }

  void erase(sim::FileId key);
  void clear();

  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] std::size_t entryCount() const { return count_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  struct Node {
    Bytes size = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    bool present = false;
  };

  void unlink(std::uint32_t i);
  void pushFront(std::uint32_t i);
  void dropEntry(std::uint32_t i);

  Bytes capacity_;
  Bytes used_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t count_ = 0;
  std::uint32_t head_ = kNil;  // most recent
  std::uint32_t tail_ = kNil;  // least recent
  std::vector<Node> nodes_;    // dense, indexed by FileId
};

}  // namespace wfs::storage
