#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/units.hpp"

namespace wfs::storage {

/// Per-layer ledger slot of the composable I/O pipeline (storage/stack).
///
/// Every IoLayer::submit/control records the op here before processing, and
/// submit additionally books wall-clock: `busySeconds` is inclusive (this
/// layer plus everything below it), `selfSeconds` is exclusive (inclusive
/// minus the time spent in layers this one forwarded into), and
/// `queueSeconds` is time spent blocked on admission (dirty-limit stalls).
struct LayerMetrics {
  std::string name;
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  std::uint64_t scratchOps = 0;
  std::uint64_t discardOps = 0;
  std::uint64_t preloadOps = 0;
  Bytes bytesRead = 0;
  Bytes bytesWritten = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  double busySeconds = 0.0;
  double selfSeconds = 0.0;
  double queueSeconds = 0.0;

  /// Fault-injection ledger (zero unless a FaultLayer/RetryLayer pair is
  /// armed on the stack): ops errored by the injector, ops re-driven by the
  /// retry policy, ops whose retry budget ran out (error surfaced to the
  /// caller), and ops that stalled in a service-outage window.
  std::uint64_t faultsInjected = 0;
  std::uint64_t faultsRetried = 0;
  std::uint64_t faultsExhausted = 0;
  std::uint64_t outageStalls = 0;

  /// Redundancy ledger (zero unless a ReplicaLayer/ErasureLayer sits on the
  /// stack): reads whose preferred copy was down or unhealed, EC reads that
  /// substituted parity for a dead data fragment, and the files/bytes the
  /// background self-heal re-replicated onto replacement nodes.
  std::uint64_t degradedReads = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t healedFiles = 0;
  Bytes healBytes = 0;
  /// Replica reads served per child node (AFR read-child accounting);
  /// empty unless a ReplicaLayer served reads.
  std::vector<std::uint64_t> childReads;
};

/// Where a node's read bytes were served from. The serving layer attributes
/// each payload movement to the *requesting* node: cache layers that ship
/// data count `fromCache`, device/stripe layers count `fromDisk`, transport
/// layers whose payload crosses the wire count `fromNetwork`. Staged
/// backends (S3, p2p pulls) move the same logical bytes more than once, so
/// the three read columns can sum to more than `StorageMetrics::bytesRead`.
struct NodeIoMetrics {
  Bytes fromCache = 0;
  Bytes fromDisk = 0;
  Bytes fromNetwork = 0;
  Bytes written = 0;
};

/// Counters common to all storage systems; derived systems add their own
/// (e.g. S3 request counts feed the billing engine).
struct StorageMetrics {
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  Bytes bytesRead = 0;
  Bytes bytesWritten = 0;

  /// Reads served from the client node itself (local brick / cache).
  std::uint64_t localReads = 0;
  /// Reads that crossed the network.
  std::uint64_t remoteReads = 0;

  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;

  /// S3-style request accounting (zero elsewhere).
  std::uint64_t getRequests = 0;
  std::uint64_t putRequests = 0;

  /// One ledger slot per distinct layer name, in first-registration order.
  /// Per-node stacks sharing a layer name (e.g. every worker's page cache)
  /// aggregate into one slot.
  std::vector<LayerMetrics> layers;
  /// Read-source breakdown per requesting node, indexed by node.
  std::vector<NodeIoMetrics> nodes;

  /// Find-or-create the ledger slot for `name`; returns its index (stable:
  /// slots are never removed).
  [[nodiscard]] std::size_t layerSlot(const std::string& name);
  /// Per-node counters for `node`, growing the vector as needed.
  [[nodiscard]] NodeIoMetrics& nodeIo(int node);
  /// Ledger slot by name, or nullptr if no layer registered it.
  [[nodiscard]] const LayerMetrics* findLayer(std::string_view name) const;

  [[nodiscard]] double cacheHitRate() const {
    const auto total = cacheHits + cacheMisses;
    return total == 0 ? 0.0 : static_cast<double>(cacheHits) / static_cast<double>(total);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace wfs::storage
