#pragma once

#include <cstdint>
#include <string>

#include "simcore/units.hpp"

namespace wfs::storage {

/// Counters common to all storage systems; derived systems add their own
/// (e.g. S3 request counts feed the billing engine).
struct StorageMetrics {
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  Bytes bytesRead = 0;
  Bytes bytesWritten = 0;

  /// Reads served from the client node itself (local brick / cache).
  std::uint64_t localReads = 0;
  /// Reads that crossed the network.
  std::uint64_t remoteReads = 0;

  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;

  /// S3-style request accounting (zero elsewhere).
  std::uint64_t getRequests = 0;
  std::uint64_t putRequests = 0;

  [[nodiscard]] double cacheHitRate() const {
    const auto total = cacheHits + cacheMisses;
    return total == 0 ? 0.0 : static_cast<double>(cacheHits) / static_cast<double>(total);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace wfs::storage
