#pragma once

#include <stdexcept>
#include <string>

namespace wfs::storage {

/// A storage op errored out of the stack — raised by FaultLayer when the
/// injector trips, and surfaced to the caller once the RetryLayer's budget
/// (if one is armed) is exhausted. The simulated equivalent of an I/O error
/// reaching the task.
class StorageFaultError : public std::runtime_error {
 public:
  explicit StorageFaultError(const std::string& what) : std::runtime_error(what) {}
};

/// Every copy of a cataloged file was on media destroyed by a crash-stop
/// node failure; reads fail until the file is recomputed (intermediate
/// outputs) or re-staged (pre-loaded inputs, once a replacement VM is up).
class FileLostError : public std::runtime_error {
 public:
  explicit FileLostError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace wfs::storage
