#include "storage/base/metrics.hpp"

#include <cstdio>

namespace wfs::storage {

std::size_t StorageMetrics::layerSlot(const std::string& name) {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].name == name) return i;
  }
  layers.push_back(LayerMetrics{});
  layers.back().name = name;
  return layers.size() - 1;
}

NodeIoMetrics& StorageMetrics::nodeIo(int node) {
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= nodes.size()) nodes.resize(idx + 1);
  return nodes[idx];
}

const LayerMetrics* StorageMetrics::findLayer(std::string_view name) const {
  for (const auto& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

std::string StorageMetrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "reads=%llu (%.1f MB) writes=%llu (%.1f MB) local=%llu remote=%llu "
                "hit-rate=%.2f GET=%llu PUT=%llu",
                static_cast<unsigned long long>(readOps), static_cast<double>(bytesRead) / 1e6,
                static_cast<unsigned long long>(writeOps),
                static_cast<double>(bytesWritten) / 1e6,
                static_cast<unsigned long long>(localReads),
                static_cast<unsigned long long>(remoteReads), cacheHitRate(),
                static_cast<unsigned long long>(getRequests),
                static_cast<unsigned long long>(putRequests));
  return buf;
}

}  // namespace wfs::storage
