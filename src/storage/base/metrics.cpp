#include "storage/base/metrics.hpp"

#include <cstdio>

namespace wfs::storage {

std::string StorageMetrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "reads=%llu (%.1f MB) writes=%llu (%.1f MB) local=%llu remote=%llu "
                "hit-rate=%.2f GET=%llu PUT=%llu",
                static_cast<unsigned long long>(readOps), static_cast<double>(bytesRead) / 1e6,
                static_cast<unsigned long long>(writeOps),
                static_cast<double>(bytesWritten) / 1e6,
                static_cast<unsigned long long>(localReads),
                static_cast<unsigned long long>(remoteReads), cacheHitRate(),
                static_cast<unsigned long long>(getRequests),
                static_cast<unsigned long long>(putRequests));
  return buf;
}

}  // namespace wfs::storage
