#pragma once

#include <cstdint>
#include <deque>

#include "blk/disk.hpp"
#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"
#include "simcore/units.hpp"

namespace wfs::storage {

/// OS-style write-back (dirty-page) buffer in front of a block store.
///
/// Writes land in memory at `memRate` until the dirty limit is hit, then
/// block on the background flusher — the mechanism behind both Linux local
/// writes and the NFS `async` export option the paper relies on (§IV.B):
/// a 16 GB m1.xlarge NFS server can buffer far more dirty data than a 7 GB
/// worker, which is why NFS beat the local disk for Montage on one node.
class WriteBackCache {
 public:
  struct Config {
    /// Maximum dirty bytes held in RAM (Linux dirty_ratio x RAM).
    Bytes dirtyLimit = 1_GB;
    /// Rate at which user data lands in page cache (memcpy + syscall).
    Rate memRate = GBps(1);
    /// Flush granularity.
    Bytes flushChunk = 64_MB;
  };

  WriteBackCache(sim::Simulator& sim, blk::BlockStore& backing, const Config& cfg);
  WriteBackCache(const WriteBackCache&) = delete;
  WriteBackCache& operator=(const WriteBackCache&) = delete;

  /// Buffers `size` bytes, blocking whenever the dirty limit is reached.
  [[nodiscard]] sim::Task<void> write(Bytes size);

  /// Completes once every dirty byte has reached the block store.
  [[nodiscard]] sim::Task<void> drain();

  [[nodiscard]] Bytes dirty() const { return dirty_; }
  [[nodiscard]] std::uint64_t stallCount() const { return stalls_; }

 private:
  [[nodiscard]] sim::Task<void> flusherLoop();
  void ensureFlusher();

  sim::Simulator* sim_;
  blk::BlockStore* backing_;
  Config cfg_;
  Bytes dirty_ = 0;
  bool flusherRunning_ = false;
  std::uint64_t stalls_ = 0;
  sim::Broadcast spaceFreed_;
  sim::Broadcast allClean_;
  /// Sizes of the files whose dirty pages are queued, in write order: the
  /// flusher writes back file-by-file, paying the device's per-operation
  /// cost for each — with thousands of small workflow files this seek load
  /// is a real share of the paper's "local disk contention".
  std::deque<Bytes> pendingFiles_;
};

}  // namespace wfs::storage
