#include "storage/base/path.hpp"

namespace wfs::storage {

std::uint64_t pathHash(std::string_view path) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string_view baseName(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

std::string_view dirName(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? std::string_view{} : path.substr(0, pos);
}

std::string joinPath(std::string_view dir, std::string_view leaf) {
  if (dir.empty()) return std::string{leaf};
  std::string out{dir};
  if (out.back() != '/') out.push_back('/');
  out += leaf;
  return out;
}

}  // namespace wfs::storage
