#include "storage/base/node_scratch.hpp"

namespace wfs::storage {

namespace {
WriteBackCache::Config wbConfigFor(const StorageNode& node, const NodeScratch::Config& cfg) {
  WriteBackCache::Config wb;
  wb.dirtyLimit = static_cast<Bytes>(static_cast<double>(node.memoryBytes) * cfg.dirtyFraction);
  wb.memRate = cfg.memRate;
  return wb;
}
}  // namespace

NodeScratch::NodeScratch(sim::Simulator& sim, const StorageNode& node, const Config& cfg)
    : sim_{&sim},
      node_{&node},
      cfg_{cfg},
      pageCache_{static_cast<Bytes>(static_cast<double>(node.memoryBytes) *
                                    cfg.pageCacheFraction)},
      wb_{std::make_unique<WriteBackCache>(sim, *node.disk, wbConfigFor(node, cfg))} {}

sim::Task<void> NodeScratch::read(const std::string& key, Bytes size) {
  if (pageCache_.touch(key)) {
    ++hits_;
    co_await sim_->delay(memCopyTime(size, cfg_.memRate));
    co_return;
  }
  ++misses_;
  co_await node_->disk->read(size);
  pageCache_.put(key, size);
}

sim::Task<void> NodeScratch::write(const std::string& key, Bytes size) {
  co_await wb_->write(size);
  pageCache_.put(key, size);
}

}  // namespace wfs::storage
