#pragma once

#include <optional>
#include <string>

#include "net/flow_network.hpp"
#include "net/nic.hpp"
#include "simcore/task.hpp"

namespace wfs::net {

/// Datacenter fabric connecting the VMs of a virtual cluster.
///
/// Models an optional aggregate core capacity (oversubscription) on top of
/// per-NIC limits, and builds flow paths / RPC exchanges between hosts.
/// Same-host transfers bypass the network entirely (loopback).
class Fabric {
 public:
  struct Config {
    /// Aggregate core bandwidth; 0 disables the core stage (EC2-class
    /// fabrics are rarely the bottleneck below ~16 nodes).
    Rate coreRate = 0;
    /// One-way propagation/software latency added per message on top of the
    /// NIC latencies.
    sim::Duration hopLatency = sim::Duration::micros(150);
  };

  Fabric(FlowNetwork& net, const Config& cfg);

  [[nodiscard]] FlowNetwork& network() { return *net_; }

  /// Flow path for a src -> dst bulk transfer. Empty when src == dst.
  [[nodiscard]] Path path(Nic* src, Nic* dst) const;

  /// One-way latency for a message src -> dst (zero for loopback).
  [[nodiscard]] sim::Duration oneWayLatency(const Nic* src, const Nic* dst) const;

  /// Sends `bytes` from src to dst: one-way latency, then a bandwidth flow.
  [[nodiscard]] sim::Task<void> send(Nic* src, Nic* dst, Bytes bytes);

  /// Request/response exchange: request latency+flow, then response
  /// latency+flow; `serviceTime` is spent at the responder in between.
  [[nodiscard]] sim::Task<void> rpc(Nic* src, Nic* dst, Bytes request, Bytes response,
                                    sim::Duration serviceTime = sim::Duration::zero());

 private:
  FlowNetwork* net_;
  std::optional<Capacity> core_;
  sim::Duration hopLatency_;
};

}  // namespace wfs::net
