#pragma once

#include <coroutine>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "simcore/arena.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace wfs::net {

class FlowNetwork;

/// A shared bottleneck: NIC direction, fabric stage, or disk service.
///
/// Capacities are registered with one FlowNetwork; flows traverse a path of
/// capacities and receive a weighted max–min fair share of each. The object
/// is a stable handle — the hot per-capacity state (rate, load, residual,
/// service integral, epoch mark) lives in the network's struct-of-arrays
/// slabs, keyed by the registration index, so settle passes walk contiguous
/// memory instead of chasing one heap object per capacity.
class Capacity {
 public:
  Capacity(FlowNetwork& net, Rate rate, std::string name = {});
  Capacity(const Capacity&) = delete;
  Capacity& operator=(const Capacity&) = delete;
  ~Capacity();

  [[nodiscard]] Rate rate() const;
  /// Changing the rate re-shares the flows sharing a component with this
  /// capacity (used for degraded modes).
  void setRate(Rate r);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Integral of in-use rate over time, in bytes; divide by elapsed seconds
  /// times rate() for average utilization. Acts as a settle barrier: any
  /// batched same-instant reshare is applied before the value is read.
  [[nodiscard]] double serviceBytes() const;

 private:
  friend class FlowNetwork;
  FlowNetwork* net_;
  std::uint32_t idx_;
  std::string name_;
};

/// One hop of a flow's path. `weight` scales how much of the capacity each
/// flow-byte consumes: e.g. an uninitialized-extent disk write with a 5x
/// first-write penalty uses weight 5 on the disk capacity but weight 1 on
/// the NICs it also traverses.
struct Hop {
  Capacity* cap;
  double weight = 1.0;
};

/// Flow path with inline storage for the common case. Every real topology
/// in the repo builds 1-4 hops (nic tx -> core -> nic rx, plus at most a
/// device/controller stage), and a path is built per transfer on the hot
/// path — inline storage keeps that completely allocation-free, falling
/// back to the heap only for synthetic deep paths.
class Path {
 public:
  Path() noexcept = default;
  Path(std::initializer_list<Hop> hops) {
    for (const Hop& h : hops) push_back(h);
  }
  Path(const Path& other) { copyFrom(other); }
  Path(Path&& other) noexcept { moveFrom(other); }
  Path& operator=(const Path& other) {
    if (this != &other) {
      reset();
      copyFrom(other);
    }
    return *this;
  }
  Path& operator=(Path&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  ~Path() { delete[] heap_; }

  void push_back(const Hop& h) {
    if (size_ == cap_) grow();
    data()[size_++] = h;
  }
  void clear() noexcept { size_ = 0; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] Hop& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const Hop& operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] Hop* begin() noexcept { return data(); }
  [[nodiscard]] Hop* end() noexcept { return data() + size_; }
  [[nodiscard]] const Hop* begin() const noexcept { return data(); }
  [[nodiscard]] const Hop* end() const noexcept { return data() + size_; }
  [[nodiscard]] Hop& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const Hop& back() const noexcept { return data()[size_ - 1]; }

 private:
  static constexpr std::uint32_t kInline = 4;

  [[nodiscard]] Hop* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const Hop* data() const noexcept { return heap_ != nullptr ? heap_ : inline_; }

  void reset() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    size_ = 0;
    cap_ = kInline;
  }
  void copyFrom(const Path& other) {
    if (other.size_ > kInline) {
      heap_ = new Hop[other.size_];
      cap_ = other.size_;
    }
    Hop* d = data();
    const Hop* s = other.data();
    for (std::uint32_t i = 0; i < other.size_; ++i) d[i] = s[i];
    size_ = other.size_;
  }
  void moveFrom(Path& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      other.heap_ = nullptr;
    } else {
      for (std::uint32_t i = 0; i < other.size_; ++i) inline_[i] = other.inline_[i];
    }
    size_ = other.size_;
    other.size_ = 0;
    other.cap_ = kInline;
  }
  void grow() {
    const std::uint32_t ncap = cap_ * 2;
    Hop* n = new Hop[ncap];
    const Hop* s = data();
    for (std::uint32_t i = 0; i < size_; ++i) n[i] = s[i];
    delete[] heap_;
    heap_ = n;
    cap_ = ncap;
  }

  Hop inline_[kInline] = {};
  Hop* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
};

/// Flow-level network/IO model with weighted progressive-filling (max–min)
/// bandwidth sharing.
///
/// Each active flow gets rate r_f such that for every capacity c,
/// sum_f(r_f * w_{f,c}) <= C_c, rates are max–min fair, and at least one
/// capacity on every flow's path is saturated (work conservation).
///
/// Rates are recomputed whenever a flow starts, finishes, or a capacity
/// changes — but only within the connected component of the touched
/// capacities (two capacities are connected when some active flow traverses
/// both). Flows in unrelated components provably keep bit-identical rates,
/// so a simulation with many independent transfers settles each event in
/// time proportional to the touched component, not the whole network.
///
/// Touches within one simulated instant are additionally *coalesced*: the
/// epoch seeds accumulate and a single component-union recompute runs at
/// batch end (a zero-delay flush event, or the explicit flushSettles()
/// barrier). Because the fill is memoryless in the surviving flow set and
/// progress integration happens before any same-instant mutation, the
/// batched recompute is bit-identical to the per-touch sequence — a
/// property the per-touch mode (setCoalesce(false)) exists to cross-check.
/// Set `WFS_SETTLE_VERIFY=1` (or call setVerifySettle) to cross-check every
/// incremental recompute against a full global recompute, bit for bit.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Moves `bytes` through `path`; completes when fully serviced. A flow
  /// with an empty path completes after one scheduling round (no bottleneck
  /// modeled). Zero-byte transfers complete after one scheduling round.
  [[nodiscard]] sim::Task<void> transfer(Path path, Bytes bytes);

  [[nodiscard]] std::size_t activeFlows() const { return order_.size(); }
  [[nodiscard]] std::uint64_t completedFlows() const { return completedFlows_; }
  [[nodiscard]] double totalBytesMoved() const { return totalBytes_; }

  /// Settle barrier: applies any touches batched within the current instant
  /// (component-union recompute + completion rescheduling) immediately.
  /// No-op when nothing is pending. Readers of rates or service integrals
  /// go through this; the zero-delay flush event makes it automatic before
  /// simulated time can advance.
  void flushSettles();

  /// Same-instant settle coalescing (default on; WFS_SETTLE_COALESCE=0
  /// disables). Per-touch mode recomputes at every touch exactly as the
  /// pre-batching engine did — kept as the oracle for the equivalence
  /// property test.
  void setCoalesce(bool on);
  [[nodiscard]] bool coalesce() const { return coalesce_; }

  /// Rate-change epsilon fast-path (WFS_SETTLE_EPS, default 0 = exact):
  /// a batch consisting solely of capacity rate changes, each within a
  /// relative `eps` of the previous rate, skips the recompute and lets
  /// flows keep their current rates. With eps = 0 the condition never
  /// holds (setRate ignores no-op changes), so the default engine is
  /// exact; WFS_SETTLE_VERIFY forces eps back to 0.
  void setSettleEpsilon(double eps);
  [[nodiscard]] double settleEpsilon() const { return settleEps_; }

  /// Debug cross-check: after every incremental reshare, recompute all
  /// rates globally and require bit-identical results (throws
  /// std::logic_error on divergence). Also enabled by the WFS_SETTLE_VERIFY
  /// environment variable.
  void setVerifySettle(bool on);
  [[nodiscard]] bool verifySettle() const { return verifySettle_; }

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  // --- settle statistics (regression hooks for tests and benches) ---------
  /// Progressive-filling recomputes actually executed.
  [[nodiscard]] std::uint64_t fillCount() const { return fillCount_; }
  /// Touches recorded (flow add/finish, capacity rate change).
  [[nodiscard]] std::uint64_t settleTouches() const { return settleTouches_; }
  /// Batches whose recompute was skipped by the epsilon fast-path.
  [[nodiscard]] std::uint64_t fastPathSkips() const { return fastPathSkips_; }

 private:
  friend class Capacity;

  template <typename T>
  using AVec = std::vector<T, sim::ArenaAllocator<T>>;

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  // Capacity registration (called by the Capacity handle).
  [[nodiscard]] std::uint32_t registerCap(Rate rate);
  void unregisterCap(std::uint32_t idx);
  void setCapRate(std::uint32_t idx, Rate r);

  void addFlow(const Path& path, double bytes, std::coroutine_handle<> waiter);

  /// Advances all flow progress to now() using the current rates.
  void settle();
  /// Opens a reshare batch if none is pending: bumps the epoch so seedCap()
  /// calls accumulate into one component-union recompute.
  void openBatch();
  /// Marks capacity `idx` as touched this epoch and records it as a BFS
  /// seed (idempotent).
  void seedCap(std::uint32_t idx) {
    if (capMark_[idx] == epoch_) return;
    capMark_[idx] = epoch_;
    seedCaps_.push_back(idx);
  }
  /// Records a touch: per-touch mode recomputes immediately; coalesced mode
  /// arms the zero-delay flush event.
  void noteTouched(bool structural);
  /// Closes the seed set over path-sharing, recomputes max–min rates for
  /// exactly those flows, and reschedules the next completion.
  void reshareTouched();
  /// Weighted progressive filling over an explicit (capacity, flow) subset.
  /// Both lists must be closed under path-sharing and listed in
  /// registration/admission order for deterministic tie-breaking.
  void fill(const AVec<std::uint32_t>& caps, const AVec<std::uint32_t>& flows);
  /// Recomputes everything globally and throws if any rate or used-rate
  /// differs from the incremental result by even one bit.
  void verifyAgainstGlobal();
  void completeFinishedFlows();
  void scheduleNextCompletion();

  sim::Simulator* sim_;

  // --- flow slab (struct-of-arrays, indexed by slot) -----------------------
  // `order_` lists the active slots in admission order — the canonical
  // iteration order every recompute and resume sequence follows. The settle
  // and fill loops touch only the dense double arrays.
  AVec<double> flowRemaining_;
  AVec<double> flowRate_;
  AVec<std::uint64_t> flowMark_;  ///< component-walk epoch stamps
  AVec<std::uint64_t> flowSeq_;   ///< admission sequence (sort key)
  AVec<std::coroutine_handle<>> flowWaiter_;
  AVec<std::uint32_t> flowHopBegin_;
  AVec<std::uint32_t> flowHopCount_;
  AVec<std::uint32_t> flowHopRoom_;  ///< hop capacity of the slot's range
  AVec<std::uint32_t> hopCap_;       ///< flat hop storage: capacity index
  AVec<double> hopWeight_;           ///< flat hop storage: per-byte weight
  // Intrusive per-capacity incidence lists over the hop slab: every active
  // hop is linked into its capacity's chain (O(1) link/unlink), so the
  // component walk visits exactly the flows sharing a touched capacity
  // instead of scanning every active flow per closure pass.
  AVec<std::uint32_t> hopSlot_;  ///< hop index -> owning flow slot
  AVec<std::uint32_t> hopNext_;
  AVec<std::uint32_t> hopPrev_;
  AVec<std::uint32_t> order_;
  AVec<std::uint32_t> freeSlots_;

  // --- capacity slab (struct-of-arrays, indexed by registration slot) ------
  AVec<double> capRate_;
  AVec<double> capService_;
  AVec<double> capResidual_;
  AVec<double> capLoad_;
  AVec<double> capUsed_;
  AVec<std::uint64_t> capMark_;
  AVec<std::uint64_t> capSeq_;    ///< registration sequence (sort key)
  AVec<std::uint32_t> capHead_;   ///< first hop in the capacity's chain
  AVec<std::uint32_t> capOrder_;  ///< live capacities in registration order
  AVec<std::uint32_t> capFree_;

  sim::SimTime lastSettle_{};
  sim::EventId pendingEvent_{};
  bool eventPending_ = false;
  bool verifySettle_ = false;
  bool coalesce_ = true;
  bool dirty_ = false;          ///< touches accumulated this instant
  bool flushScheduled_ = false;
  bool batchStructural_ = false;  ///< batch added/removed a flow
  double settleEps_ = 0.0;
  std::uint64_t completedFlows_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t flowSeqGen_ = 0;
  std::uint64_t capSeqGen_ = 0;
  double totalBytes_ = 0.0;
  std::uint64_t fillCount_ = 0;
  std::uint64_t settleTouches_ = 0;
  std::uint64_t fastPathSkips_ = 0;

  // Reused component-walk scratch (kept across events to avoid churn).
  // seedCaps_ doubles as the BFS worklist: seeds accumulate over a batch,
  // then reshareTouched() appends the closure behind them.
  AVec<std::uint32_t> seedCaps_;
  AVec<std::uint32_t> compCaps_;
  AVec<std::uint32_t> compFlows_;
  AVec<std::uint32_t> unfrozen_;
  struct RateTouch {
    std::uint32_t idx;
    double oldRate;
  };
  AVec<RateTouch> batchRateTouches_;
};

}  // namespace wfs::net
