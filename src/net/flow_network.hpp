#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace wfs::net {

class FlowNetwork;

/// A shared bottleneck: NIC direction, fabric stage, or disk service.
///
/// Capacities are registered with one FlowNetwork; flows traverse a path of
/// capacities and receive a weighted max–min fair share of each.
class Capacity {
 public:
  Capacity(FlowNetwork& net, Rate rate, std::string name = {});
  Capacity(const Capacity&) = delete;
  Capacity& operator=(const Capacity&) = delete;
  ~Capacity();

  [[nodiscard]] Rate rate() const { return rate_; }
  /// Changing the rate re-shares the flows sharing a component with this
  /// capacity (used for degraded modes).
  void setRate(Rate r);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Integral of in-use rate over time, in bytes; divide by elapsed seconds
  /// times rate() for average utilization.
  [[nodiscard]] double serviceBytes() const { return serviceBytes_; }

 private:
  friend class FlowNetwork;
  FlowNetwork* net_;
  Rate rate_;
  std::string name_;
  double serviceBytes_ = 0.0;

  // Scratch used during recompute/settle.
  double residual_ = 0.0;
  double load_ = 0.0;
  double usedRate_ = 0.0;
  std::uint64_t mark_ = 0;  ///< component-walk epoch stamp
};

/// One hop of a flow's path. `weight` scales how much of the capacity each
/// flow-byte consumes: e.g. an uninitialized-extent disk write with a 5x
/// first-write penalty uses weight 5 on the disk capacity but weight 1 on
/// the NICs it also traverses.
struct Hop {
  Capacity* cap;
  double weight = 1.0;
};

using Path = std::vector<Hop>;

/// Flow-level network/IO model with weighted progressive-filling (max–min)
/// bandwidth sharing.
///
/// Each active flow gets rate r_f such that for every capacity c,
/// sum_f(r_f * w_{f,c}) <= C_c, rates are max–min fair, and at least one
/// capacity on every flow's path is saturated (work conservation).
///
/// Rates are recomputed whenever a flow starts, finishes, or a capacity
/// changes — but only within the connected component of the touched
/// capacities (two capacities are connected when some active flow traverses
/// both). Flows in unrelated components provably keep bit-identical rates,
/// so a simulation with many independent transfers settles each event in
/// time proportional to the touched component, not the whole network. Set
/// `WFS_SETTLE_VERIFY=1` (or call setVerifySettle) to cross-check every
/// incremental recompute against a full global recompute, bit for bit.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Moves `bytes` through `path`; completes when fully serviced. A flow
  /// with an empty path completes after one scheduling round (no bottleneck
  /// modeled). Zero-byte transfers complete after one scheduling round.
  [[nodiscard]] sim::Task<void> transfer(Path path, Bytes bytes);

  [[nodiscard]] std::size_t activeFlows() const { return order_.size(); }
  [[nodiscard]] std::uint64_t completedFlows() const { return completedFlows_; }
  [[nodiscard]] double totalBytesMoved() const { return totalBytes_; }

  /// Debug cross-check: after every incremental reshare, recompute all
  /// rates globally and require bit-identical results (throws
  /// std::logic_error on divergence). Also enabled by the WFS_SETTLE_VERIFY
  /// environment variable.
  void setVerifySettle(bool on) { verifySettle_ = on; }
  [[nodiscard]] bool verifySettle() const { return verifySettle_; }

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

 private:
  friend class Capacity;

  struct Flow {
    Path path;
    double remaining = 0.0;
    double rate = 0.0;
    std::coroutine_handle<> waiter{};
    std::uint64_t mark = 0;  ///< component-walk epoch stamp
  };

  void addFlow(Path path, double bytes, std::coroutine_handle<> waiter);

  /// Advances all flow progress to now() using the current rates.
  void settle();
  /// Begins a touched-component recompute: bumps the epoch and clears the
  /// seed set. Follow with seedCap() for each touched capacity, then
  /// reshareTouched().
  void beginReshare();
  /// Marks `c` as touched this epoch (idempotent).
  void seedCap(Capacity* c);
  /// Closes the seed set over path-sharing, recomputes max–min rates for
  /// exactly those flows, and reschedules the next completion.
  void reshareTouched();
  /// Weighted progressive filling over an explicit (capacity, flow) subset.
  /// Both lists must be closed under path-sharing and listed in
  /// registration/admission order for deterministic tie-breaking.
  void fill(const std::vector<Capacity*>& caps, const std::vector<Flow*>& flows);
  /// Recomputes everything globally and throws if any rate or used-rate
  /// differs from the incremental result by even one bit.
  void verifyAgainstGlobal();
  void completeFinishedFlows();
  void scheduleNextCompletion();

  sim::Simulator* sim_;
  // Flows live in a slab of reusable slots; `order_` lists the active slots
  // in admission order (the canonical iteration order every recompute and
  // resume sequence follows). Contiguous walks, no per-flow allocation.
  std::vector<Flow> slab_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> freeSlots_;
  std::vector<Capacity*> capacities_;
  sim::SimTime lastSettle_{};
  sim::EventId pendingEvent_{};
  bool eventPending_ = false;
  bool verifySettle_ = false;
  std::uint64_t completedFlows_ = 0;
  std::uint64_t epoch_ = 0;
  double totalBytes_ = 0.0;

  // Reused component-walk scratch (kept across events to avoid churn).
  std::vector<Capacity*> compCaps_;
  std::vector<Flow*> compFlows_;
  std::vector<Flow*> unfrozen_;
};

}  // namespace wfs::net
