#pragma once

#include <coroutine>
#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace wfs::net {

class FlowNetwork;

/// A shared bottleneck: NIC direction, fabric stage, or disk service.
///
/// Capacities are registered with one FlowNetwork; flows traverse a path of
/// capacities and receive a weighted max–min fair share of each.
class Capacity {
 public:
  Capacity(FlowNetwork& net, Rate rate, std::string name = {});
  Capacity(const Capacity&) = delete;
  Capacity& operator=(const Capacity&) = delete;
  ~Capacity();

  [[nodiscard]] Rate rate() const { return rate_; }
  /// Changing the rate re-shares all active flows (used for degraded modes).
  void setRate(Rate r);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Integral of in-use rate over time, in bytes; divide by elapsed seconds
  /// times rate() for average utilization.
  [[nodiscard]] double serviceBytes() const { return serviceBytes_; }

 private:
  friend class FlowNetwork;
  FlowNetwork* net_;
  Rate rate_;
  std::string name_;
  double serviceBytes_ = 0.0;

  // Scratch used during recompute/settle.
  double residual_ = 0.0;
  double load_ = 0.0;
  double usedRate_ = 0.0;
};

/// One hop of a flow's path. `weight` scales how much of the capacity each
/// flow-byte consumes: e.g. an uninitialized-extent disk write with a 5x
/// first-write penalty uses weight 5 on the disk capacity but weight 1 on
/// the NICs it also traverses.
struct Hop {
  Capacity* cap;
  double weight = 1.0;
};

using Path = std::vector<Hop>;

/// Flow-level network/IO model with weighted progressive-filling (max–min)
/// bandwidth sharing.
///
/// Each active flow gets rate r_f such that for every capacity c,
/// sum_f(r_f * w_{f,c}) <= C_c, rates are max–min fair, and at least one
/// capacity on every flow's path is saturated (work conservation). Rates are
/// recomputed whenever a flow starts, finishes, or a capacity changes.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim) : sim_{&sim} {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Moves `bytes` through `path`; completes when fully serviced. A flow
  /// with an empty path completes after one scheduling round (no bottleneck
  /// modeled). Zero-byte transfers complete after one scheduling round.
  [[nodiscard]] sim::Task<void> transfer(Path path, Bytes bytes);

  [[nodiscard]] std::size_t activeFlows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t completedFlows() const { return completedFlows_; }
  [[nodiscard]] double totalBytesMoved() const { return totalBytes_; }

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

 private:
  friend class Capacity;

  struct Flow {
    Path path;
    double remaining;
    double rate = 0.0;
    std::coroutine_handle<> waiter{};
  };
  using FlowIt = std::list<Flow>::iterator;

  void addFlow(Path path, double bytes, std::coroutine_handle<> waiter);
  void onCapacityChanged();

  /// Advances all flow progress to now() using the current rates.
  void settle();
  /// Recomputes max–min rates and reschedules the next completion event.
  void reshare();
  void completeFinishedFlows();
  void scheduleNextCompletion();

  sim::Simulator* sim_;
  std::list<Flow> flows_;
  std::vector<Capacity*> capacities_;
  sim::SimTime lastSettle_{};
  sim::EventId pendingEvent_{};
  bool eventPending_ = false;
  std::uint64_t completedFlows_ = 0;
  double totalBytes_ = 0.0;
};

}  // namespace wfs::net
