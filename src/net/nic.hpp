#pragma once

#include <string>

#include "net/flow_network.hpp"
#include "simcore/time.hpp"

namespace wfs::net {

/// Full-duplex network interface of one VM: independent transmit and
/// receive capacities plus a fixed one-way latency contribution.
class Nic {
 public:
  Nic(FlowNetwork& net, Rate txRate, Rate rxRate, sim::Duration latency,
      const std::string& host)
      : tx_{net, txRate, host + ".tx"}, rx_{net, rxRate, host + ".rx"}, latency_{latency} {}

  [[nodiscard]] Capacity& tx() { return tx_; }
  [[nodiscard]] Capacity& rx() { return rx_; }
  [[nodiscard]] sim::Duration latency() const { return latency_; }

 private:
  Capacity tx_;
  Capacity rx_;
  sim::Duration latency_;
};

}  // namespace wfs::net
