#include "net/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace wfs::net {

namespace {
/// Flows below this many remaining bytes are complete (absorbs rounding).
constexpr double kDoneEps = 0.5;
/// Floor on assigned rates; prevents a stalled simulation if progressive
/// filling hits an exactly-saturated capacity (degenerate tie).
constexpr double kMinRate = 1e-3;
/// Loads below this are floating-point residue from subtracting frozen
/// flows' weights, not real demand (legitimate weights are > 1e-9).
constexpr double kLoadEps = 1e-12;
}  // namespace

Capacity::Capacity(FlowNetwork& net, Rate rate, std::string name)
    : net_{&net}, rate_{rate}, name_{std::move(name)} {
  assert(rate > 0);
  net_->capacities_.push_back(this);
}

Capacity::~Capacity() {
  auto& caps = net_->capacities_;
  caps.erase(std::remove(caps.begin(), caps.end(), this), caps.end());
}

void Capacity::setRate(Rate r) {
  assert(r > 0);
  if (r == rate_) return;
  net_->settle();
  rate_ = r;
  net_->reshare();
}

sim::Task<void> FlowNetwork::transfer(Path path, Bytes bytes) {
  // The awaiter is trivially destructible on purpose: it borrows the path
  // from the coroutine frame instead of owning it (avoids a GCC 12 issue
  // with non-trivial awaiter temporaries).
  struct Awaiter {
    FlowNetwork* net;
    Path* path;
    double bytes;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      net->addFlow(std::move(*path), bytes, h);
    }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{this, &path, static_cast<double>(bytes)};
}

void FlowNetwork::addFlow(Path path, double bytes, std::coroutine_handle<> waiter) {
  totalBytes_ += bytes;
  if (bytes <= kDoneEps || path.empty()) {
    // Nothing to bottleneck on: complete on the next scheduling round.
    ++completedFlows_;
    sim_->schedule(sim::Duration::zero(), [waiter] { waiter.resume(); });
    return;
  }
  settle();
  flows_.push_back(Flow{std::move(path), bytes, 0.0, waiter});
  reshare();
}

void FlowNetwork::settle() {
  const sim::SimTime now = sim_->now();
  const double dt = (now - lastSettle_).asSeconds();
  lastSettle_ = now;
  if (dt <= 0.0) return;
  for (auto& f : flows_) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  for (Capacity* c : capacities_) {
    c->serviceBytes_ += c->usedRate_ * dt;
  }
}

void FlowNetwork::reshare() {
  // Weighted progressive filling. All unfrozen flows rise at a common fill
  // level phi; the capacity with the smallest residual_/load_ saturates
  // first and freezes its flows at that level.
  for (Capacity* c : capacities_) {
    c->residual_ = c->rate_;
    c->load_ = 0.0;
    c->usedRate_ = 0.0;
  }
  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& f : flows_) {
    unfrozen.push_back(&f);
    for (const Hop& hop : f.path) hop.cap->load_ += hop.weight;
  }

  while (!unfrozen.empty()) {
    Capacity* bottleneck = nullptr;
    double phi = std::numeric_limits<double>::infinity();
    for (Capacity* c : capacities_) {
      if (c->load_ <= kLoadEps) continue;
      const double cPhi = std::max(c->residual_, 0.0) / c->load_;
      if (cPhi < phi) {
        phi = cPhi;
        bottleneck = c;
      }
    }
    assert(bottleneck != nullptr && "every flow has a non-empty path");
    phi = std::max(phi, 0.0);

    // Freeze every unfrozen flow passing through the bottleneck.
    auto isThrough = [bottleneck](const Flow* f) {
      for (const Hop& hop : f->path) {
        if (hop.cap == bottleneck) return true;
      }
      return false;
    };
    bool frozeAny = false;
    for (auto it = unfrozen.begin(); it != unfrozen.end();) {
      Flow* f = *it;
      if (!isThrough(f)) {
        ++it;
        continue;
      }
      f->rate = std::max(phi, kMinRate);
      for (const Hop& hop : f->path) {
        hop.cap->residual_ -= phi * hop.weight;
        hop.cap->load_ -= hop.weight;
        hop.cap->usedRate_ += f->rate * hop.weight;
      }
      it = unfrozen.erase(it);
      frozeAny = true;
    }
    if (!frozeAny) {
      // Defensive: the bottleneck's load was pure residue after all; zero
      // it so the next iteration picks a real one instead of spinning.
      bottleneck->load_ = 0.0;
    }
  }
  scheduleNextCompletion();
}

void FlowNetwork::scheduleNextCompletion() {
  if (eventPending_) {
    sim_->cancel(pendingEvent_);
    eventPending_ = false;
  }
  if (flows_.empty()) return;
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_) {
    soonest = std::min(soonest, f.remaining / f.rate);
  }
  // fromSeconds rounds up, so the event lands at-or-after true completion.
  pendingEvent_ = sim_->schedule(sim::Duration::fromSeconds(soonest), [this] {
    eventPending_ = false;
    settle();
    completeFinishedFlows();
    reshare();
  });
  eventPending_ = true;
}

void FlowNetwork::completeFinishedFlows() {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kDoneEps) {
      ++completedFlows_;
      sim_->schedule(sim::Duration::zero(), [h = it->waiter] { h.resume(); });
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wfs::net
