#include "net/flow_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "prof/zone.hpp"

namespace wfs::net {

namespace {
/// Flows below this many remaining bytes are complete (absorbs rounding).
constexpr double kDoneEps = 0.5;
/// Floor on assigned rates; prevents a stalled simulation if progressive
/// filling hits an exactly-saturated capacity (degenerate tie).
constexpr double kMinRate = 1e-3;
/// Loads below this are floating-point residue from subtracting frozen
/// flows' weights, not real demand (legitimate weights are > 1e-9).
constexpr double kLoadEps = 1e-12;
[[nodiscard]] bool envTruthy(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}
}  // namespace

Capacity::Capacity(FlowNetwork& net, Rate rate, std::string name)
    : net_{&net}, idx_{net.registerCap(rate)}, name_{std::move(name)} {}

Capacity::~Capacity() { net_->unregisterCap(idx_); }

Rate Capacity::rate() const { return net_->capRate_[idx_]; }

void Capacity::setRate(Rate r) { net_->setCapRate(idx_, r); }

double Capacity::serviceBytes() const {
  // Settle barrier: a coalesced batch may still be pending at this instant;
  // apply it, then bring the service integrals up to now(). (The pending
  // reshare only changes rates from this instant forward, so the order of
  // the two calls does not affect the integral.)
  net_->flushSettles();
  net_->settle();
  return net_->capService_[idx_];
}

FlowNetwork::FlowNetwork(sim::Simulator& sim)
    : sim_{&sim},
      flowRemaining_{sim::ArenaAllocator<double>{&sim.arena()}},
      flowRate_{sim::ArenaAllocator<double>{&sim.arena()}},
      flowMark_{sim::ArenaAllocator<std::uint64_t>{&sim.arena()}},
      flowSeq_{sim::ArenaAllocator<std::uint64_t>{&sim.arena()}},
      flowWaiter_{sim::ArenaAllocator<std::coroutine_handle<>>{&sim.arena()}},
      flowHopBegin_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      flowHopCount_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      flowHopRoom_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      hopCap_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      hopWeight_{sim::ArenaAllocator<double>{&sim.arena()}},
      hopSlot_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      hopNext_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      hopPrev_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      order_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      freeSlots_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      capRate_{sim::ArenaAllocator<double>{&sim.arena()}},
      capService_{sim::ArenaAllocator<double>{&sim.arena()}},
      capResidual_{sim::ArenaAllocator<double>{&sim.arena()}},
      capLoad_{sim::ArenaAllocator<double>{&sim.arena()}},
      capUsed_{sim::ArenaAllocator<double>{&sim.arena()}},
      capMark_{sim::ArenaAllocator<std::uint64_t>{&sim.arena()}},
      capSeq_{sim::ArenaAllocator<std::uint64_t>{&sim.arena()}},
      capHead_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      capOrder_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      capFree_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      seedCaps_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      compCaps_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      compFlows_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      unfrozen_{sim::ArenaAllocator<std::uint32_t>{&sim.arena()}},
      batchRateTouches_{sim::ArenaAllocator<RateTouch>{&sim.arena()}} {
  verifySettle_ = envTruthy("WFS_SETTLE_VERIFY");
  const char* co = std::getenv("WFS_SETTLE_COALESCE");
  if (co != nullptr && co[0] == '0' && co[1] == '\0') coalesce_ = false;
  const char* eps = std::getenv("WFS_SETTLE_EPS");
  if (eps != nullptr && eps[0] != '\0') settleEps_ = std::max(0.0, std::atof(eps));
}

std::uint32_t FlowNetwork::registerCap(Rate rate) {
  assert(rate > 0);
  std::uint32_t idx;
  if (capFree_.empty()) {
    idx = static_cast<std::uint32_t>(capRate_.size());
    capRate_.push_back(rate);
    capService_.push_back(0.0);
    capResidual_.push_back(0.0);
    capLoad_.push_back(0.0);
    capUsed_.push_back(0.0);
    capMark_.push_back(0);
    capSeq_.push_back(0);
    capHead_.push_back(kInvalidIndex);
  } else {
    idx = capFree_.back();
    capFree_.pop_back();
    capRate_[idx] = rate;
    capService_[idx] = 0.0;
    capResidual_[idx] = 0.0;
    capLoad_[idx] = 0.0;
    capUsed_[idx] = 0.0;
    capMark_[idx] = 0;
    capHead_[idx] = kInvalidIndex;
  }
  capSeq_[idx] = ++capSeqGen_;
  capOrder_.push_back(idx);
  return idx;
}

void FlowNetwork::unregisterCap(std::uint32_t idx) {
  capOrder_.erase(std::remove(capOrder_.begin(), capOrder_.end(), idx), capOrder_.end());
  capFree_.push_back(idx);
}

void FlowNetwork::setCoalesce(bool on) {
  // Apply any pending batch before switching modes so both modes start
  // from settled state; a stale flush event fires as a no-op.
  if (!on) flushSettles();
  coalesce_ = on;
}

void FlowNetwork::setSettleEpsilon(double eps) { settleEps_ = std::max(0.0, eps); }

void FlowNetwork::setVerifySettle(bool on) { verifySettle_ = on; }

sim::Task<void> FlowNetwork::transfer(Path path, Bytes bytes) {
  // The awaiter is trivially destructible on purpose: it borrows the path
  // from the coroutine frame instead of owning it (avoids a GCC 12 issue
  // with non-trivial awaiter temporaries).
  struct Awaiter {
    FlowNetwork* net;
    Path* path;
    double bytes;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { net->addFlow(*path, bytes, h); }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{this, &path, static_cast<double>(bytes)};
}

// wfslint: hot-begin(flow-settle) addFlow/settle/batch/reshare/fill run on
// every transfer start and completion; the struct-of-arrays slabs, epoch
// marks and reused scratch vectors exist so nothing here heap-allocates in
// steady state (the arena absorbs the slab growth itself).
void FlowNetwork::addFlow(const Path& path, double bytes, std::coroutine_handle<> waiter) {
  totalBytes_ += bytes;
  if (bytes <= kDoneEps || path.empty()) {
    // Nothing to bottleneck on: complete on the next scheduling round.
    ++completedFlows_;
    sim_->schedule(sim::Duration::zero(), [waiter] { waiter.resume(); });
    return;
  }
  settle();
  const auto nh = static_cast<std::uint32_t>(path.size());
  std::uint32_t slot;
  if (freeSlots_.empty()) {
    slot = static_cast<std::uint32_t>(flowRemaining_.size());
    flowRemaining_.push_back(0.0);
    flowRate_.push_back(0.0);
    flowMark_.push_back(0);
    flowSeq_.push_back(0);
    flowWaiter_.emplace_back();
    flowHopBegin_.push_back(0);
    flowHopCount_.push_back(0);
    flowHopRoom_.push_back(0);
  } else {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  }
  // Hop ranges live in one flat array; a recycled slot keeps its old range
  // when the new path fits (steady-state transfers reuse without growing).
  if (nh > flowHopRoom_[slot]) {
    flowHopBegin_[slot] = static_cast<std::uint32_t>(hopCap_.size());
    flowHopRoom_[slot] = nh;
    hopCap_.resize(hopCap_.size() + nh);
    hopWeight_.resize(hopWeight_.size() + nh);
    hopSlot_.resize(hopCap_.size());
    hopNext_.resize(hopCap_.size());
    hopPrev_.resize(hopCap_.size());
  }
  const std::uint32_t hb = flowHopBegin_[slot];
  flowHopCount_[slot] = nh;
  for (std::uint32_t i = 0; i < nh; ++i) {
    const std::uint32_t h = hb + i;
    const std::uint32_t c = path[i].cap->idx_;
    hopCap_[h] = c;
    hopWeight_[h] = path[i].weight;
    // Link the hop at the head of its capacity's incidence chain.
    hopSlot_[h] = slot;
    hopPrev_[h] = kInvalidIndex;
    hopNext_[h] = capHead_[c];
    if (capHead_[c] != kInvalidIndex) hopPrev_[capHead_[c]] = h;
    capHead_[c] = h;
  }
  flowRemaining_[slot] = bytes;
  flowRate_[slot] = 0.0;
  flowWaiter_[slot] = waiter;
  flowMark_[slot] = 0;
  flowSeq_[slot] = ++flowSeqGen_;
  order_.push_back(slot);
  openBatch();
  for (std::uint32_t i = 0; i < nh; ++i) seedCap(hopCap_[hb + i]);
  noteTouched(true);
}

void FlowNetwork::setCapRate(std::uint32_t idx, Rate r) {
  assert(r > 0);
  if (r == capRate_[idx]) return;
  settle();
  openBatch();
  batchRateTouches_.push_back({idx, capRate_[idx]});
  capRate_[idx] = r;
  seedCap(idx);
  noteTouched(false);
}

void FlowNetwork::settle() {
  const sim::SimTime now = sim_->now();
  const double dt = (now - lastSettle_).asSeconds();
  lastSettle_ = now;
  if (dt <= 0.0) return;
  WFPROF_ZONE("net/settle");
  for (const std::uint32_t s : order_) {
    flowRemaining_[s] = std::max(0.0, flowRemaining_[s] - flowRate_[s] * dt);
  }
  for (const std::uint32_t c : capOrder_) {
    capService_[c] += capUsed_[c] * dt;
  }
}

void FlowNetwork::openBatch() {
  if (dirty_) return;  // joins the batch already open at this instant
  dirty_ = true;
  batchStructural_ = false;
  batchRateTouches_.clear();
  seedCaps_.clear();
  ++epoch_;
}

void FlowNetwork::noteTouched(bool structural) {
  ++settleTouches_;
  if (structural) batchStructural_ = true;
  if (!coalesce_) {
    // Per-touch oracle mode: recompute immediately, exactly like the
    // pre-batching engine (one epoch per touch).
    flushSettles();
    return;
  }
  if (!flushScheduled_) {
    // One zero-delay event per batch; it runs after every same-instant
    // touch (later seq) and before simulated time can advance. A barrier
    // call may have flushed already by then — the event no-ops on clean.
    flushScheduled_ = true;
    sim_->schedule(sim::Duration::zero(), [this] {
      flushScheduled_ = false;
      flushSettles();
    });
  }
}

void FlowNetwork::flushSettles() {
  if (!dirty_) return;
  dirty_ = false;
  const double eps = verifySettle_ ? 0.0 : settleEps_;
  if (!batchStructural_ && eps > 0.0) {
    // Rate-only batch: when every change stayed within the relative
    // epsilon, keep current flow rates (and the pending completion event,
    // which remains valid for unchanged rates). The next structural touch
    // recomputes exactly.
    bool withinEps = true;
    for (const RateTouch& t : batchRateTouches_) {
      if (std::fabs(capRate_[t.idx] - t.oldRate) > eps * t.oldRate) {
        withinEps = false;
        break;
      }
    }
    if (withinEps) {
      ++fastPathSkips_;
      return;
    }
  }
  reshareTouched();
}

void FlowNetwork::reshareTouched() {
  WFPROF_ZONE("net/reshare");
  // Close the seed set under path-sharing with a worklist walk over the
  // per-capacity incidence chains: a flow joins the component when any
  // capacity on its path is marked, then marks (and enqueues) the rest of
  // its path. Cost is proportional to the component's hop count, not the
  // number of active flows — a settle in one transfer's corner of a large
  // simulation no longer scans everything. The set is the exact connected
  // component; fill() over it is bit-identical to a global recompute on
  // the untouched remainder (disjoint components don't interact).
  compFlows_.clear();
  for (std::size_t i = 0; i < seedCaps_.size(); ++i) {
    const std::uint32_t c = seedCaps_[i];
    for (std::uint32_t h = capHead_[c]; h != kInvalidIndex; h = hopNext_[h]) {
      const std::uint32_t s = hopSlot_[h];
      if (flowMark_[s] == epoch_) continue;
      flowMark_[s] = epoch_;
      compFlows_.push_back(s);
      const std::uint32_t hb = flowHopBegin_[s];
      const std::uint32_t he = hb + flowHopCount_[s];
      for (std::uint32_t k = hb; k < he; ++k) {
        const std::uint32_t c2 = hopCap_[k];
        if (capMark_[c2] != epoch_) {
          capMark_[c2] = epoch_;
          seedCaps_.push_back(c2);
        }
      }
    }
  }
  // Restore canonical order — progressive filling freezes flows in
  // iteration order and floating-point accumulation is order-sensitive:
  // the component-restricted recompute must replay exactly the operation
  // sequence the global algorithm would apply to this component, so flows
  // go in admission order and capacities in registration order. Two
  // routes produce that exact subsequence (sequence numbers increase
  // strictly along order_/capOrder_): sorting the component by per-slot
  // sequence number, or filtering the canonical list by epoch mark. Sort
  // when the component is a sliver of the active set (many independent
  // transfers), filter when it is most of it (one shared bottleneck, the
  // NFS/S3 server case) — the linear scan is cheaper than k·log k there.
  if (compFlows_.size() * 4 >= order_.size()) {
    compFlows_.clear();
    for (const std::uint32_t s : order_) {
      if (flowMark_[s] == epoch_) compFlows_.push_back(s);
    }
  } else {
    std::sort(compFlows_.begin(), compFlows_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return flowSeq_[a] < flowSeq_[b]; });
  }
  // seedCaps_ is exactly the marked set (every capMark_ stamp pushes), minus
  // any slot recycled by an unregister/register pair inside the batch —
  // re-registration resets the mark, and the filter drops those.
  compCaps_.clear();
  if (seedCaps_.size() * 4 >= capOrder_.size()) {
    for (const std::uint32_t c : capOrder_) {
      if (capMark_[c] == epoch_) compCaps_.push_back(c);
    }
  } else {
    for (const std::uint32_t c : seedCaps_) {
      if (capMark_[c] == epoch_) compCaps_.push_back(c);
    }
    std::sort(compCaps_.begin(), compCaps_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return capSeq_[a] < capSeq_[b]; });
  }
  fill(compCaps_, compFlows_);
  if (verifySettle_) verifyAgainstGlobal();
  scheduleNextCompletion();
}

void FlowNetwork::fill(const AVec<std::uint32_t>& caps, const AVec<std::uint32_t>& flows) {
  WFPROF_ZONE("net/fill");
  ++fillCount_;
  // Weighted progressive filling. All unfrozen flows rise at a common fill
  // level phi; the capacity with the smallest residual/load saturates
  // first and freezes its flows at that level. `caps`/`flows` must be
  // closed under path-sharing: every capacity on an unfrozen flow's path
  // is in `caps`.
  for (const std::uint32_t c : caps) {
    capResidual_[c] = capRate_[c];
    capLoad_[c] = 0.0;
    capUsed_[c] = 0.0;
  }
  unfrozen_.assign(flows.begin(), flows.end());
  for (const std::uint32_t s : unfrozen_) {
    const std::uint32_t hb = flowHopBegin_[s];
    const std::uint32_t he = hb + flowHopCount_[s];
    for (std::uint32_t h = hb; h < he; ++h) capLoad_[hopCap_[h]] += hopWeight_[h];
  }

  while (!unfrozen_.empty()) {
    std::uint32_t bottleneck = kInvalidIndex;
    double phi = std::numeric_limits<double>::infinity();
    for (const std::uint32_t c : caps) {
      if (capLoad_[c] <= kLoadEps) continue;
      const double cPhi = std::max(capResidual_[c], 0.0) / capLoad_[c];
      if (cPhi < phi) {
        phi = cPhi;
        bottleneck = c;
      }
    }
    assert(bottleneck != kInvalidIndex && "every flow has a non-empty, closed path");
    phi = std::max(phi, 0.0);

    // Freeze every unfrozen flow passing through the bottleneck. One
    // in-place compacting pass: frozen flows' capacity updates happen in
    // encounter order and survivors keep their relative order, exactly the
    // operation sequence the erase-based loop produced — without its
    // quadratic element shifting.
    std::size_t out = 0;
    bool frozeAny = false;
    for (const std::uint32_t s : unfrozen_) {
      const std::uint32_t hb = flowHopBegin_[s];
      const std::uint32_t he = hb + flowHopCount_[s];
      bool through = false;
      for (std::uint32_t h = hb; h < he; ++h) {
        if (hopCap_[h] == bottleneck) {
          through = true;
          break;
        }
      }
      if (!through) {
        unfrozen_[out++] = s;
        continue;
      }
      const double r = std::max(phi, kMinRate);
      flowRate_[s] = r;
      for (std::uint32_t h = hb; h < he; ++h) {
        const std::uint32_t c = hopCap_[h];
        const double w = hopWeight_[h];
        capResidual_[c] -= phi * w;
        capLoad_[c] -= w;
        capUsed_[c] += r * w;
      }
      frozeAny = true;
    }
    unfrozen_.resize(out);
    if (!frozeAny) {
      // Defensive: the bottleneck's load was pure residue after all; zero
      // it so the next iteration picks a real one instead of spinning.
      capLoad_[bottleneck] = 0.0;
    }
  }
}
// wfslint: hot-end

void FlowNetwork::verifyAgainstGlobal() {
  // Bit-pattern snapshots (not ==) so the check is exact and wfslint-clean.
  std::vector<std::uint64_t> flowBits;
  flowBits.reserve(order_.size());
  for (const std::uint32_t s : order_) {
    flowBits.push_back(std::bit_cast<std::uint64_t>(flowRate_[s]));
  }
  std::vector<std::uint64_t> capBits;
  capBits.reserve(capOrder_.size());
  for (const std::uint32_t c : capOrder_) {
    capBits.push_back(std::bit_cast<std::uint64_t>(capUsed_[c]));
  }

  fill(capOrder_, order_);

  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(flowRate_[order_[i]]) != flowBits[i]) {
      throw std::logic_error(
          "WFS_SETTLE_VERIFY: incremental reshare diverged from global on flow #" +
          std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < capOrder_.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(capUsed_[capOrder_[i]]) != capBits[i]) {
      throw std::logic_error(
          "WFS_SETTLE_VERIFY: incremental reshare diverged from global on capacity #" +
          std::to_string(i));
    }
  }
}

// wfslint: hot-begin(flow-completion) fires once per transfer completion.
void FlowNetwork::scheduleNextCompletion() {
  WFPROF_ZONE("net/schedule-completion");
  if (eventPending_) {
    sim_->cancel(pendingEvent_);
    eventPending_ = false;
  }
  if (order_.empty()) return;
  double soonest = std::numeric_limits<double>::infinity();
  for (const std::uint32_t s : order_) {
    soonest = std::min(soonest, flowRemaining_[s] / flowRate_[s]);
  }
  // fromSeconds rounds up, so the event lands at-or-after true completion.
  pendingEvent_ = sim_->schedule(sim::Duration::fromSeconds(soonest), [this] {
    eventPending_ = false;
    settle();
    openBatch();
    completeFinishedFlows();
    noteTouched(true);
  });
  eventPending_ = true;
}

void FlowNetwork::completeFinishedFlows() {
  WFPROF_ZONE("net/complete-flows");
  // Single compacting pass keeps order_ in admission order and resumes
  // completions in that same deterministic order.
  std::size_t out = 0;
  for (const std::uint32_t slot : order_) {
    if (flowRemaining_[slot] <= kDoneEps) {
      ++completedFlows_;
      const std::uint32_t hb = flowHopBegin_[slot];
      const std::uint32_t he = hb + flowHopCount_[slot];
      for (std::uint32_t h = hb; h < he; ++h) {
        seedCap(hopCap_[h]);
        // Unlink from the capacity's incidence chain (the slot's hop range
        // is reused by the next flow admitted into it).
        const std::uint32_t p = hopPrev_[h];
        const std::uint32_t n = hopNext_[h];
        if (p != kInvalidIndex) {
          hopNext_[p] = n;
        } else {
          capHead_[hopCap_[h]] = n;
        }
        if (n != kInvalidIndex) hopPrev_[n] = p;
      }
      sim_->schedule(sim::Duration::zero(), [h = flowWaiter_[slot]] { h.resume(); });
      freeSlots_.push_back(slot);
    } else {
      order_[out++] = slot;
    }
  }
  order_.resize(out);
}
// wfslint: hot-end

}  // namespace wfs::net
