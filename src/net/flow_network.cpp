#include "net/flow_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace wfs::net {

namespace {
/// Flows below this many remaining bytes are complete (absorbs rounding).
constexpr double kDoneEps = 0.5;
/// Floor on assigned rates; prevents a stalled simulation if progressive
/// filling hits an exactly-saturated capacity (degenerate tie).
constexpr double kMinRate = 1e-3;
/// Loads below this are floating-point residue from subtracting frozen
/// flows' weights, not real demand (legitimate weights are > 1e-9).
constexpr double kLoadEps = 1e-12;
/// Component closure is abandoned for a full recompute after this many
/// passes; real topologies are star-shaped and converge in two or three.
constexpr int kMaxClosurePasses = 8;
}  // namespace

Capacity::Capacity(FlowNetwork& net, Rate rate, std::string name)
    : net_{&net}, rate_{rate}, name_{std::move(name)} {
  assert(rate > 0);
  net_->capacities_.push_back(this);
}

Capacity::~Capacity() {
  auto& caps = net_->capacities_;
  caps.erase(std::remove(caps.begin(), caps.end(), this), caps.end());
}

void Capacity::setRate(Rate r) {
  assert(r > 0);
  if (r == rate_) return;
  net_->settle();
  rate_ = r;
  net_->beginReshare();
  net_->seedCap(this);
  net_->reshareTouched();
}

FlowNetwork::FlowNetwork(sim::Simulator& sim) : sim_{&sim} {
  const char* env = std::getenv("WFS_SETTLE_VERIFY");
  verifySettle_ = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

sim::Task<void> FlowNetwork::transfer(Path path, Bytes bytes) {
  // The awaiter is trivially destructible on purpose: it borrows the path
  // from the coroutine frame instead of owning it (avoids a GCC 12 issue
  // with non-trivial awaiter temporaries).
  struct Awaiter {
    FlowNetwork* net;
    Path* path;
    double bytes;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      net->addFlow(std::move(*path), bytes, h);
    }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{this, &path, static_cast<double>(bytes)};
}

// wfslint: hot-begin(flow-settle) addFlow/settle/reshare/fill run on every
// transfer start and completion; the slab, epoch marks and reused scratch
// vectors exist so nothing here heap-allocates in steady state.
void FlowNetwork::addFlow(Path path, double bytes, std::coroutine_handle<> waiter) {
  totalBytes_ += bytes;
  if (bytes <= kDoneEps || path.empty()) {
    // Nothing to bottleneck on: complete on the next scheduling round.
    ++completedFlows_;
    sim_->schedule(sim::Duration::zero(), [waiter] { waiter.resume(); });
    return;
  }
  settle();
  std::uint32_t slot;
  if (freeSlots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  }
  Flow& f = slab_[slot];
  f.path = std::move(path);  // reuses the retired path's heap block
  f.remaining = bytes;
  f.rate = 0.0;
  f.waiter = waiter;
  f.mark = 0;
  order_.push_back(slot);
  beginReshare();
  for (const Hop& hop : f.path) seedCap(hop.cap);
  reshareTouched();
}

void FlowNetwork::settle() {
  const sim::SimTime now = sim_->now();
  const double dt = (now - lastSettle_).asSeconds();
  lastSettle_ = now;
  if (dt <= 0.0) return;
  for (const std::uint32_t slot : order_) {
    Flow& f = slab_[slot];
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  for (Capacity* c : capacities_) {
    c->serviceBytes_ += c->usedRate_ * dt;
  }
}

void FlowNetwork::beginReshare() { ++epoch_; }

void FlowNetwork::seedCap(Capacity* c) { c->mark_ = epoch_; }

void FlowNetwork::reshareTouched() {
  // Close the seed set under path-sharing: a flow joins the component when
  // any capacity on its path is marked, then marks the rest of its path.
  // Cluster topologies are star-shaped around shared fabric/disk
  // capacities, so this converges in two or three passes (one when the
  // component turns out to be everything, the common case); pathological
  // chains fall back to the (always-correct) full recompute.
  compFlows_.clear();
  int passes = 0;
  bool grew = true;
  while (grew && compFlows_.size() < order_.size()) {
    grew = false;
    if (++passes > kMaxClosurePasses) {
      compFlows_.clear();
      for (const std::uint32_t slot : order_) {
        Flow& f = slab_[slot];
        f.mark = epoch_;
        compFlows_.push_back(&f);
        for (const Hop& hop : f.path) hop.cap->mark_ = epoch_;
      }
      break;
    }
    for (const std::uint32_t slot : order_) {
      Flow& f = slab_[slot];
      if (f.mark == epoch_) continue;
      bool touched = false;
      for (const Hop& hop : f.path) {
        if (hop.cap->mark_ == epoch_) {
          touched = true;
          break;
        }
      }
      if (!touched) continue;
      f.mark = epoch_;
      compFlows_.push_back(&f);
      for (const Hop& hop : f.path) {
        if (hop.cap->mark_ != epoch_) {
          hop.cap->mark_ = epoch_;
          grew = true;
        }
      }
    }
  }
  // compFlows_ was appended to across passes, so restore admission order —
  // progressive filling freezes flows in iteration order and floating-point
  // accumulation is order-sensitive: the component-restricted recompute
  // must replay exactly the operation sequence the global algorithm would
  // apply to this component. Single-pass closures are already sorted.
  if (passes > 1) {
    compFlows_.clear();
    for (const std::uint32_t slot : order_) {
      Flow& f = slab_[slot];
      if (f.mark == epoch_) compFlows_.push_back(&f);
    }
  }
  compCaps_.clear();
  for (Capacity* c : capacities_) {
    if (c->mark_ == epoch_) compCaps_.push_back(c);
  }
  fill(compCaps_, compFlows_);
  if (verifySettle_) verifyAgainstGlobal();
  scheduleNextCompletion();
}

void FlowNetwork::fill(const std::vector<Capacity*>& caps,
                       const std::vector<Flow*>& flows) {
  // Weighted progressive filling. All unfrozen flows rise at a common fill
  // level phi; the capacity with the smallest residual_/load_ saturates
  // first and freezes its flows at that level. `caps`/`flows` must be
  // closed under path-sharing: every capacity on an unfrozen flow's path
  // is in `caps`.
  for (Capacity* c : caps) {
    c->residual_ = c->rate_;
    c->load_ = 0.0;
    c->usedRate_ = 0.0;
  }
  unfrozen_.assign(flows.begin(), flows.end());
  for (const Flow* f : unfrozen_) {
    for (const Hop& hop : f->path) hop.cap->load_ += hop.weight;
  }

  while (!unfrozen_.empty()) {
    Capacity* bottleneck = nullptr;
    double phi = std::numeric_limits<double>::infinity();
    for (Capacity* c : caps) {
      if (c->load_ <= kLoadEps) continue;
      const double cPhi = std::max(c->residual_, 0.0) / c->load_;
      if (cPhi < phi) {
        phi = cPhi;
        bottleneck = c;
      }
    }
    assert(bottleneck != nullptr && "every flow has a non-empty, closed path");
    phi = std::max(phi, 0.0);

    // Freeze every unfrozen flow passing through the bottleneck.
    auto isThrough = [bottleneck](const Flow* f) {
      for (const Hop& hop : f->path) {
        if (hop.cap == bottleneck) return true;
      }
      return false;
    };
    bool frozeAny = false;
    for (auto it = unfrozen_.begin(); it != unfrozen_.end();) {
      Flow* f = *it;
      if (!isThrough(f)) {
        ++it;
        continue;
      }
      f->rate = std::max(phi, kMinRate);
      for (const Hop& hop : f->path) {
        hop.cap->residual_ -= phi * hop.weight;
        hop.cap->load_ -= hop.weight;
        hop.cap->usedRate_ += f->rate * hop.weight;
      }
      it = unfrozen_.erase(it);
      frozeAny = true;
    }
    if (!frozeAny) {
      // Defensive: the bottleneck's load was pure residue after all; zero
      // it so the next iteration picks a real one instead of spinning.
      bottleneck->load_ = 0.0;
    }
  }
}
// wfslint: hot-end

void FlowNetwork::verifyAgainstGlobal() {
  // Bit-pattern snapshots (not ==) so the check is exact and wfslint-clean.
  std::vector<std::uint64_t> flowBits;
  flowBits.reserve(order_.size());
  std::vector<Flow*> all;
  all.reserve(order_.size());
  for (const std::uint32_t slot : order_) {
    flowBits.push_back(std::bit_cast<std::uint64_t>(slab_[slot].rate));
    all.push_back(&slab_[slot]);
  }
  std::vector<std::uint64_t> capBits;
  capBits.reserve(capacities_.size());
  for (const Capacity* c : capacities_) {
    capBits.push_back(std::bit_cast<std::uint64_t>(c->usedRate_));
  }

  fill(capacities_, all);

  for (std::size_t i = 0; i < all.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(all[i]->rate) != flowBits[i]) {
      throw std::logic_error(
          "WFS_SETTLE_VERIFY: incremental reshare diverged from global on flow #" +
          std::to_string(i));
    }
  }
  std::size_t i = 0;
  for (const Capacity* c : capacities_) {
    if (std::bit_cast<std::uint64_t>(c->usedRate_) != capBits[i]) {
      throw std::logic_error(
          "WFS_SETTLE_VERIFY: incremental reshare diverged from global on capacity '" +
          c->name_ + "'");
    }
    ++i;
  }
}

// wfslint: hot-begin(flow-completion) fires once per transfer completion.
void FlowNetwork::scheduleNextCompletion() {
  if (eventPending_) {
    sim_->cancel(pendingEvent_);
    eventPending_ = false;
  }
  if (order_.empty()) return;
  double soonest = std::numeric_limits<double>::infinity();
  for (const std::uint32_t slot : order_) {
    const Flow& f = slab_[slot];
    soonest = std::min(soonest, f.remaining / f.rate);
  }
  // fromSeconds rounds up, so the event lands at-or-after true completion.
  pendingEvent_ = sim_->schedule(sim::Duration::fromSeconds(soonest), [this] {
    eventPending_ = false;
    settle();
    beginReshare();
    completeFinishedFlows();
    reshareTouched();
  });
  eventPending_ = true;
}

void FlowNetwork::completeFinishedFlows() {
  // Single compacting pass keeps order_ in admission order and resumes
  // completions in that same deterministic order.
  std::size_t out = 0;
  for (const std::uint32_t slot : order_) {
    Flow& f = slab_[slot];
    if (f.remaining <= kDoneEps) {
      ++completedFlows_;
      for (const Hop& hop : f.path) seedCap(hop.cap);
      sim_->schedule(sim::Duration::zero(), [h = f.waiter] { h.resume(); });
      freeSlots_.push_back(slot);
    } else {
      order_[out++] = slot;
    }
  }
  order_.resize(out);
}
// wfslint: hot-end

}  // namespace wfs::net
