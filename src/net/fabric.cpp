#include "net/fabric.hpp"

namespace wfs::net {

Fabric::Fabric(FlowNetwork& net, const Config& cfg) : net_{&net}, hopLatency_{cfg.hopLatency} {
  if (cfg.coreRate > 0) core_.emplace(net, cfg.coreRate, "fabric.core");
}

Path Fabric::path(Nic* src, Nic* dst) const {
  if (src == dst) return {};  // loopback: memory-speed, not modeled
  Path p;
  if (src != nullptr) p.push_back(Hop{&src->tx(), 1.0});
  if (core_) p.push_back(Hop{const_cast<Capacity*>(&*core_), 1.0});
  if (dst != nullptr) p.push_back(Hop{&dst->rx(), 1.0});
  return p;
}

sim::Duration Fabric::oneWayLatency(const Nic* src, const Nic* dst) const {
  if (src == dst) return sim::Duration::zero();
  sim::Duration d = hopLatency_;
  if (src != nullptr) d += src->latency();
  if (dst != nullptr) d += dst->latency();
  return d;
}

sim::Task<void> Fabric::send(Nic* src, Nic* dst, Bytes bytes) {
  if (src == dst) co_return;  // loopback
  co_await net_->simulator().delay(oneWayLatency(src, dst));
  co_await net_->transfer(path(src, dst), bytes);
}

sim::Task<void> Fabric::rpc(Nic* src, Nic* dst, Bytes request, Bytes response,
                            sim::Duration serviceTime) {
  co_await send(src, dst, request);
  if (serviceTime > sim::Duration::zero()) {
    co_await net_->simulator().delay(serviceTime);
  }
  co_await send(dst, src, response);
}

}  // namespace wfs::net
