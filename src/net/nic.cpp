#include "net/nic.hpp"

// Header-only for now; translation unit kept so the target layout matches
// the module inventory and future out-of-line additions have a home.
