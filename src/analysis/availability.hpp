#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/fabric/fabric.hpp"
#include "analysis/sweep.hpp"

namespace wfs::analysis {

/// One backend of the availability sweep: a fault-free baseline run paired
/// with a twin that crash-stops one worker mid-run and recovers.
struct AvailabilityCell {
  SweepCellResult clean;
  SweepCellResult faulted;
  /// Where the crash was injected (workflow-relative seconds; a fraction of
  /// the clean makespan) and on which worker.
  double crashAtSeconds = 0.0;
  int crashNode = 0;
};

/// Availability sweep: for every backend, run the cell clean, then re-run it
/// with a deterministic crash-stop of one worker at `crashFrac` of the clean
/// makespan (plus any rate-driven faults from `faults`), and report the
/// makespan/cost inflation recovery paid. Both phases fan out through
/// SweepRunner, so results are byte-identical for any thread count.
struct AvailabilityOptions {
  App app = App::kMontage;
  double appScale = 0.02;
  /// Worker count for shared backends; node-attached backends run with 1
  /// and two-brick backends with at least 2.
  int nodes = 4;
  std::uint64_t seed = 42;
  /// Crash time as a fraction of the clean makespan, in (0, 1).
  double crashFrac = 0.5;
  /// Which worker to kill.
  int crashNode = 0;
  /// Redundancy knobs forwarded to every backend config (see
  /// ExperimentConfig): replicas > 1 restricts the sweep to GlusterFS
  /// backends, ecK > 0 to PVFS.
  int replicas = 1;
  int ecK = 0;
  int ecM = 0;
  int threads = 0;
  /// Extra fault machinery for the faulted phase (op faults, outages, retry
  /// policy, fault seed). `enabled`/`explicitCrashes` are set internally.
  fault::Spec faults;
  std::vector<StorageKind> backends = {
      StorageKind::kLocal,       StorageKind::kS3,
      StorageKind::kNfs,         StorageKind::kGlusterNufa,
      StorageKind::kGlusterDist, StorageKind::kPvfs,
  };
};

[[nodiscard]] std::vector<AvailabilityCell> runAvailabilitySweep(
    const AvailabilityOptions& opt);

/// The clean-phase config the sweep builds for one backend (also the base
/// of the backend's fabric cell identity).
[[nodiscard]] ExperimentConfig availabilityCleanConfig(const AvailabilityOptions& opt,
                                                       StorageKind kind);

/// Runs one backend's clean + crash-twin pair (both phases serial within
/// the call; backends fan out across the pool).
[[nodiscard]] AvailabilityCell runAvailabilityCell(const AvailabilityOptions& opt,
                                                   StorageKind kind);

/// One backend as a single-line JSON object (no trailing newline) — the
/// unit availabilityJsonl, the sweep fabric checkpoint and the result
/// cache all share.
[[nodiscard]] std::string availabilityCellJson(const AvailabilityCell& cell);

/// One backend as a fabric cell: identity covers the clean config, the
/// crash parameters and the fault spec, so any knob change re-simulates.
[[nodiscard]] fabric::FabricCell availabilityFabricCell(const AvailabilityOptions& opt,
                                                        StorageKind kind);

/// One line per backend, fixed key order and number formatting (same
/// byte-determinism contract as sweepJsonl).
[[nodiscard]] std::string availabilityJsonl(const std::vector<AvailabilityCell>& cells);

}  // namespace wfs::analysis
