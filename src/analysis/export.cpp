#include "analysis/export.hpp"

#include <algorithm>
#include <cstdio>

namespace wfs::analysis {

namespace {
std::string escapeDot(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string jsonString(const std::string& s) {
  std::string out = "\"";
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

/// Shortest round-trippable decimal; %.17g digits beyond what's needed
/// would still be deterministic but make the files unreadable.
std::string jsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}
}  // namespace

std::string toDot(const wf::Dag& dag, const std::string& graphName) {
  std::string out = "digraph \"" + escapeDot(graphName) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  char buf[256];
  for (wf::JobId id = 0; id < dag.jobCount(); ++id) {
    const auto& j = dag.job(id);
    std::snprintf(buf, sizeof buf, "  j%d [label=\"%s\\n%.1fs cpu\"];\n", id,
                  escapeDot(j.name).c_str(), j.cpuSeconds);
    out += buf;
  }
  for (wf::JobId id = 0; id < dag.jobCount(); ++id) {
    for (const wf::JobId c : dag.children(id)) {
      std::snprintf(buf, sizeof buf, "  j%d -> j%d;\n", id, c);
      out += buf;
    }
  }
  out += "}\n";
  return out;
}

std::string traceCsv(const prof::WfProf& prof) {
  std::string out =
      "job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem\n";
  char buf[320];
  for (const auto& t : prof.traces()) {
    std::snprintf(buf, sizeof buf, "%d,%s,%d,%.3f,%.3f,%.3f,%.3f,%lld,%lld,%lld\n", t.jobId,
                  t.transformation.c_str(), t.node, t.startSeconds, t.endSeconds,
                  t.cpuSeconds, t.ioSeconds, static_cast<long long>(t.bytesRead),
                  static_cast<long long>(t.bytesWritten),
                  static_cast<long long>(t.peakMemory));
    out += buf;
  }
  return out;
}

std::string ganttCsv(const prof::WfProf& prof) {
  std::vector<const prof::TaskTrace*> rows;
  rows.reserve(prof.traces().size());
  for (const auto& t : prof.traces()) rows.push_back(&t);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->node != b->node) return a->node < b->node;
    return a->startSeconds < b->startSeconds;
  });
  std::string out = "node,start,end,job,transformation\n";
  char buf[256];
  for (const auto* t : rows) {
    std::snprintf(buf, sizeof buf, "%d,%.3f,%.3f,%d,%s\n", t->node, t->startSeconds,
                  t->endSeconds, t->jobId, t->transformation.c_str());
    out += buf;
  }
  return out;
}

std::string cellJson(const SweepCellResult& cell) {
  const ExperimentConfig& cfg = cell.config;
  std::string out = "{";
  auto field = [&out](const char* key, std::string value) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += key;
    out += "\":";
    out += value;
  };
  // Built-in cells keep their historical "app" spelling so the reference
  // JSONL stays byte-identical; the new sources add their own keys.
  if (cfg.source == WorkflowSource::kBuiltinApp) {
    field("app", jsonString(toString(cfg.app)));
  } else {
    field("app", jsonString(toString(cfg.source)));
    if (cfg.source == WorkflowSource::kImportedTrace) {
      field("workflow_file", jsonString(cfg.workflowFile));
    } else {
      field("synth_spec", jsonString(cfg.synthSpec));
    }
  }
  field("storage", jsonString(toString(cfg.storage)));
  field("nodes", std::to_string(cfg.workerNodes));
  field("worker_type", jsonString(cfg.workerType));
  if (cfg.storage == StorageKind::kNfs) field("nfs_server", jsonString(cfg.nfsServerType));
  field("scale", jsonNumber(cfg.appScale));
  field("seed", std::to_string(cfg.seed));
  field("cluster_factor", std::to_string(cfg.clusterFactor));
  field("data_aware", cfg.dataAwareScheduling ? "true" : "false");
  field("first_write_penalty", cfg.firstWritePenalty ? "true" : "false");
  if (!cell.ok) {
    field("error", jsonString(cell.error));
    return out + "}";
  }
  const ExperimentResult& r = cell.result;
  field("workflow", jsonString(r.workflowName));
  field("tasks", std::to_string(r.tasks));
  field("makespan_s", jsonNumber(r.makespanSeconds));
  field("cost_hourly", jsonNumber(r.cost.totalHourly()));
  field("cost_per_second", jsonNumber(r.cost.totalPerSecond()));
  field("s3_request_cost", jsonNumber(r.cost.s3RequestCost));
  field("read_ops", std::to_string(r.storageMetrics.readOps));
  field("write_ops", std::to_string(r.storageMetrics.writeOps));
  field("bytes_read", std::to_string(r.storageMetrics.bytesRead));
  field("bytes_written", std::to_string(r.storageMetrics.bytesWritten));
  field("cache_hit_rate", jsonNumber(r.storageMetrics.cacheHitRate()));
  field("io_level", jsonString(prof::toString(r.profile.ioLevel)));
  field("mem_level", jsonString(prof::toString(r.profile.memoryLevel)));
  field("cpu_level", jsonString(prof::toString(r.profile.cpuLevel)));
  // Fault keys appear only for fault-enabled cells, so zero-fault sweeps
  // stay byte-identical to the pre-fault reference outputs.
  if (r.fault.enabled) {
    field("failed", r.fault.failed ? "true" : "false");
    field("retries", std::to_string(r.fault.retries));
    field("crashes", std::to_string(r.fault.crashes));
    field("crash_aborts", std::to_string(r.fault.crashAborts));
    field("lost_files", std::to_string(r.fault.lostFiles));
    field("recomputed_jobs", std::to_string(r.fault.recomputedJobs));
    field("replacement_vms", std::to_string(r.fault.replacementVms));
    field("restaged_inputs", std::to_string(r.fault.restagedInputs));
    field("rescue_jobs", std::to_string(r.fault.rescueJobs));
    field("op_faults_injected", std::to_string(r.fault.opFaultsInjected));
    field("op_faults_retried", std::to_string(r.fault.opFaultsRetried));
    field("op_faults_exhausted", std::to_string(r.fault.opFaultsExhausted));
    field("outage_stalls", std::to_string(r.fault.outageStalls));
  }
  // Redundancy keys likewise appear only for replicated / erasure-coded
  // cells — the default grids carry neither, keeping reference outputs
  // byte-identical.
  if (r.redundancy.enabled) {
    if (cfg.replicas > 1) field("replicas", std::to_string(cfg.replicas));
    if (cfg.ecK > 0) {
      field("ec_k", std::to_string(cfg.ecK));
      field("ec_m", std::to_string(cfg.ecM));
    }
    field("degraded_reads", std::to_string(r.redundancy.degradedReads));
    field("reconstructions", std::to_string(r.redundancy.reconstructions));
    field("healed_files", std::to_string(r.redundancy.healedFiles));
    field("heal_bytes", std::to_string(r.redundancy.healBytes));
  }
  return out + "}";
}

std::string sweepJsonl(const std::vector<SweepCellResult>& cells) {
  std::string out;
  for (const auto& c : cells) {
    out += cellJson(c);
    out += "\n";
  }
  return out;
}

std::string metricsJsonl(const SweepCellResult& cell) {
  if (!cell.ok) return "";
  const ExperimentConfig& cfg = cell.config;
  std::string out;
  auto field = [](std::string& line, const char* key, std::string value) {
    if (line.size() > 1) line += ",";
    line += "\"";
    line += key;
    line += "\":";
    line += value;
  };
  auto cellKeys = [&cfg, &field](std::string& line) {
    field(line, "app",
          jsonString(cfg.source == WorkflowSource::kBuiltinApp ? toString(cfg.app)
                                                               : toString(cfg.source)));
    field(line, "storage", jsonString(toString(cfg.storage)));
    field(line, "nodes", std::to_string(cfg.workerNodes));
    field(line, "scale", jsonNumber(cfg.appScale));
    field(line, "seed", std::to_string(cfg.seed));
  };
  const storage::StorageMetrics& m = cell.result.storageMetrics;
  for (const storage::LayerMetrics& lm : m.layers) {
    std::string line = "{";
    cellKeys(line);
    field(line, "layer", jsonString(lm.name));
    field(line, "read_ops", std::to_string(lm.readOps));
    field(line, "write_ops", std::to_string(lm.writeOps));
    field(line, "scratch_ops", std::to_string(lm.scratchOps));
    field(line, "discard_ops", std::to_string(lm.discardOps));
    field(line, "preload_ops", std::to_string(lm.preloadOps));
    field(line, "bytes_read", std::to_string(lm.bytesRead));
    field(line, "bytes_written", std::to_string(lm.bytesWritten));
    field(line, "cache_hits", std::to_string(lm.cacheHits));
    field(line, "cache_misses", std::to_string(lm.cacheMisses));
    field(line, "busy_s", jsonNumber(lm.busySeconds));
    field(line, "self_s", jsonNumber(lm.selfSeconds));
    field(line, "queue_s", jsonNumber(lm.queueSeconds));
    field(line, "faults_injected", std::to_string(lm.faultsInjected));
    field(line, "faults_retried", std::to_string(lm.faultsRetried));
    field(line, "faults_exhausted", std::to_string(lm.faultsExhausted));
    field(line, "outage_stalls", std::to_string(lm.outageStalls));
    field(line, "degraded_reads", std::to_string(lm.degradedReads));
    field(line, "reconstructions", std::to_string(lm.reconstructions));
    field(line, "healed_files", std::to_string(lm.healedFiles));
    field(line, "heal_bytes", std::to_string(lm.healBytes));
    if (!lm.childReads.empty()) {
      std::string arr = "[";
      for (std::size_t c = 0; c < lm.childReads.size(); ++c) {
        if (c > 0) arr += ",";
        arr += std::to_string(lm.childReads[c]);
      }
      arr += "]";
      field(line, "child_reads", arr);
    }
    out += line + "}\n";
  }
  for (std::size_t n = 0; n < m.nodes.size(); ++n) {
    const storage::NodeIoMetrics& io = m.nodes[n];
    std::string line = "{";
    cellKeys(line);
    field(line, "node", std::to_string(n));
    field(line, "from_cache_bytes", std::to_string(io.fromCache));
    field(line, "from_disk_bytes", std::to_string(io.fromDisk));
    field(line, "from_network_bytes", std::to_string(io.fromNetwork));
    field(line, "bytes_written", std::to_string(io.written));
    out += line + "}\n";
  }
  return out;
}

std::string sweepMetricsJsonl(const std::vector<SweepCellResult>& cells) {
  std::string out;
  for (const auto& c : cells) out += metricsJsonl(c);
  return out;
}

}  // namespace wfs::analysis
