#include "analysis/export.hpp"

#include <algorithm>
#include <cstdio>

namespace wfs::analysis {

namespace {
std::string escapeDot(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string toDot(const wf::Dag& dag, const std::string& graphName) {
  std::string out = "digraph \"" + escapeDot(graphName) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  char buf[256];
  for (wf::JobId id = 0; id < dag.jobCount(); ++id) {
    const auto& j = dag.job(id);
    std::snprintf(buf, sizeof buf, "  j%d [label=\"%s\\n%.1fs cpu\"];\n", id,
                  escapeDot(j.name).c_str(), j.cpuSeconds);
    out += buf;
  }
  for (wf::JobId id = 0; id < dag.jobCount(); ++id) {
    for (const wf::JobId c : dag.children(id)) {
      std::snprintf(buf, sizeof buf, "  j%d -> j%d;\n", id, c);
      out += buf;
    }
  }
  out += "}\n";
  return out;
}

std::string traceCsv(const prof::WfProf& prof) {
  std::string out =
      "job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem\n";
  char buf[320];
  for (const auto& t : prof.traces()) {
    std::snprintf(buf, sizeof buf, "%d,%s,%d,%.3f,%.3f,%.3f,%.3f,%lld,%lld,%lld\n", t.jobId,
                  t.transformation.c_str(), t.node, t.startSeconds, t.endSeconds,
                  t.cpuSeconds, t.ioSeconds, static_cast<long long>(t.bytesRead),
                  static_cast<long long>(t.bytesWritten),
                  static_cast<long long>(t.peakMemory));
    out += buf;
  }
  return out;
}

std::string ganttCsv(const prof::WfProf& prof) {
  std::vector<const prof::TaskTrace*> rows;
  rows.reserve(prof.traces().size());
  for (const auto& t : prof.traces()) rows.push_back(&t);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->node != b->node) return a->node < b->node;
    return a->startSeconds < b->startSeconds;
  });
  std::string out = "node,start,end,job,transformation\n";
  char buf[256];
  for (const auto* t : rows) {
    std::snprintf(buf, sizeof buf, "%d,%.3f,%.3f,%d,%s\n", t->node, t->startSeconds,
                  t->endSeconds, t->jobId, t->transformation.c_str());
    out += buf;
  }
  return out;
}

}  // namespace wfs::analysis
