#include "analysis/experiment.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

// The builtin-app registry is the one sanctioned up-layer edge: experiment
// dispatch must name the concrete apps until a registration hook exists
// (ROADMAP: app plug-in registry).
#include "apps/broadband.hpp"   // wfslint: allow(L-layering) builtin-app registry, see above
#include "apps/epigenome.hpp"  // wfslint: allow(L-layering) builtin-app registry, see above
#include "apps/montage.hpp"    // wfslint: allow(L-layering) builtin-app registry, see above
#include "cloud/context_broker.hpp"
#include "cloud/provisioner.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "simcore/rng.hpp"
#include "storage/ebs/ebs_fs.hpp"
#include "storage/gluster/gluster_fs.hpp"
#include "storage/local/local_fs.hpp"
#include "storage/nfs/nfs_fs.hpp"
#include "storage/p2p/p2p_fs.hpp"
#include "storage/pvfs/pvfs_fs.hpp"
#include "storage/s3/s3_fs.hpp"
#include "storage/xtreemfs/xtreem_fs.hpp"
#include "wf/engine.hpp"
#include "wf/import/wfcommons.hpp"
#include "wf/planner.hpp"
#include "wf/synth/generate.hpp"

namespace wfs::analysis {

const char* toString(App app) {
  switch (app) {
    case App::kMontage: return "montage";
    case App::kBroadband: return "broadband";
    case App::kEpigenome: return "epigenome";
  }
  return "?";
}

const char* toString(WorkflowSource source) {
  switch (source) {
    case WorkflowSource::kBuiltinApp: return "app";
    case WorkflowSource::kImportedTrace: return "workflow";
    case WorkflowSource::kSynthetic: return "synth";
  }
  return "?";
}

const char* toString(StorageKind kind) {
  switch (kind) {
    case StorageKind::kLocal: return "local";
    case StorageKind::kS3: return "s3";
    case StorageKind::kNfs: return "nfs";
    case StorageKind::kGlusterNufa: return "gluster-nufa";
    case StorageKind::kGlusterDist: return "gluster-dist";
    case StorageKind::kPvfs: return "pvfs";
    case StorageKind::kXtreemFs: return "xtreemfs";
    case StorageKind::kP2p: return "p2p";
    case StorageKind::kEbs: return "ebs";
  }
  return "?";
}

namespace {

wf::AbstractWorkflow makeApp(App app, double scale, sim::Rng& rng,
                             wf::TransformationCatalog& tc) {
  switch (app) {
    case App::kMontage: {
      apps::registerMontageTransformations(tc);
      apps::MontageConfig cfg;
      cfg.scale = scale;
      return apps::makeMontage(cfg, rng);
    }
    case App::kBroadband: {
      apps::registerBroadbandTransformations(tc);
      apps::BroadbandConfig cfg;
      cfg.scale = scale;
      return apps::makeBroadband(cfg, rng);
    }
    case App::kEpigenome: {
      apps::registerEpigenomeTransformations(tc);
      apps::EpigenomeConfig cfg;
      cfg.scale = scale;
      return apps::makeEpigenome(cfg, rng);
    }
  }
  throw std::logic_error("analysis/experiment: unknown app");
}

/// Source dispatch: every path yields an AbstractWorkflow plus a fully
/// populated transformation catalog (the Planner rejects any job whose
/// transformation the catalog doesn't know).
wf::AbstractWorkflow makeWorkflow(const ExperimentConfig& cfg, sim::Rng& rng,
                                  wf::TransformationCatalog& tc) {
  switch (cfg.source) {
    case WorkflowSource::kBuiltinApp:
      return makeApp(cfg.app, cfg.appScale, rng, tc);
    case WorkflowSource::kImportedTrace: {
      wf::AbstractWorkflow awf = wf::import::importWfCommonsFile(cfg.workflowFile);
      wf::registerWorkflowTransformations(awf, tc);
      return awf;
    }
    case WorkflowSource::kSynthetic: {
      const wf::synth::SynthSpec spec = wf::synth::SynthSpec::parse(cfg.synthSpec);
      wf::synth::registerSynthTransformations(tc);
      return wf::synth::makeSynthetic(spec, rng);
    }
  }
  throw std::logic_error("analysis/experiment: unknown workflow source");
}

}  // namespace

ExperimentResult runExperiment(const ExperimentConfig& cfg) {
  if (cfg.workerNodes < 1) throw std::invalid_argument("analysis/experiment: workerNodes must be >= 1");
  if (cfg.source != WorkflowSource::kBuiltinApp && std::fabs(cfg.appScale - 1.0) > 0.0) {
    throw std::invalid_argument(
        "analysis/experiment: appScale applies only to built-in apps; imported/synthetic workflows fix "
        "their own size");
  }
  if ((cfg.storage == StorageKind::kLocal || cfg.storage == StorageKind::kEbs) &&
      cfg.workerNodes != 1) {
    throw std::invalid_argument("analysis/experiment: node-attached storage cannot share files across nodes");
  }
  const bool needsTwo = cfg.storage == StorageKind::kGlusterNufa ||
                        cfg.storage == StorageKind::kGlusterDist ||
                        cfg.storage == StorageKind::kPvfs;
  if (needsTwo && cfg.workerNodes < 2) {
    throw std::invalid_argument("analysis/experiment: GlusterFS/PVFS need at least two nodes (paper §V)");
  }
  const bool isGluster = cfg.storage == StorageKind::kGlusterNufa ||
                         cfg.storage == StorageKind::kGlusterDist;
  if (cfg.replicas < 1) throw std::invalid_argument("analysis/experiment: replicas must be >= 1");
  if (cfg.replicas > 1 && !isGluster) {
    throw std::invalid_argument("analysis/experiment: replication requires a GlusterFS backend");
  }
  if (cfg.replicas > cfg.workerNodes) {
    throw std::invalid_argument("analysis/experiment: replicas cannot exceed the brick count (worker nodes)");
  }
  if (cfg.ecK < 0 || cfg.ecM < 0 || (cfg.ecK > 0) != (cfg.ecM > 0)) {
    throw std::invalid_argument("analysis/experiment: erasure geometry needs k >= 1 and m >= 1");
  }
  if (cfg.ecK > 0 && cfg.storage != StorageKind::kPvfs) {
    throw std::invalid_argument("analysis/experiment: erasure coding requires the PVFS backend (striping)");
  }
  if (cfg.ecK > 0 && cfg.ecK + cfg.ecM > cfg.workerNodes) {
    throw std::invalid_argument("analysis/experiment: erasure stripe width k+m cannot exceed the I/O server count");
  }
  if (cfg.replicas > 1 && cfg.ecK > 0) {
    throw std::invalid_argument("analysis/experiment: replication and erasure coding are mutually exclusive");
  }

  sim::Simulator sim;
  sim.trace().enable(cfg.trace);
  net::FlowNetwork net{sim};
  net::Fabric fabric{net, net::Fabric::Config{}};
  sim::Rng rng{cfg.seed};

  // --- Cloud: provision the virtual cluster -------------------------------
  cloud::BillingEngine billing;
  cloud::Provisioner::Config provCfg;
  if (!cfg.firstWritePenalty) {
    provCfg.vmOptions.disk.firstWriteRate = provCfg.vmOptions.disk.writeRate;
  }
  cloud::Provisioner prov{sim, net, billing, provCfg};
  cloud::VirtualCluster cluster;
  for (int i = 0; i < cfg.workerNodes; ++i) {
    cluster.workers.push_back(prov.request(cfg.workerType, "worker" + std::to_string(i)));
  }
  if (cfg.storage == StorageKind::kNfs) {
    cluster.auxiliary = prov.request(cfg.nfsServerType, "nfs-server");
  }
  cloud::ContextBroker broker{sim, prov};

  // --- Storage system ------------------------------------------------------
  std::vector<storage::StorageNode> nodes = cluster.workerNodes();
  std::unique_ptr<storage::StorageSystem> store;
  switch (cfg.storage) {
    case StorageKind::kLocal:
      store = std::make_unique<storage::LocalFs>(sim, nodes);
      break;
    case StorageKind::kS3:
      store = std::make_unique<storage::S3Fs>(sim, net, nodes);
      break;
    case StorageKind::kNfs: {
      storage::NfsFs::Config nfsCfg;
      // nfsd concurrency (and the interference knee) scales with the
      // server's cores: m1.xlarge 4, m2.4xlarge 8 (paper §V.C variant).
      nfsCfg.server.threads = cluster.auxiliary->type().cores;
      store = std::make_unique<storage::NfsFs>(sim, fabric, nodes,
                                               cluster.auxiliary->storageNode(), nfsCfg);
      break;
    }
    case StorageKind::kGlusterNufa:
    case StorageKind::kGlusterDist: {
      storage::GlusterFs::Config glCfg;
      glCfg.replicas = cfg.replicas;
      store = std::make_unique<storage::GlusterFs>(
          sim, fabric, nodes,
          cfg.storage == StorageKind::kGlusterNufa ? storage::GlusterMode::kNufa
                                                   : storage::GlusterMode::kDistribute,
          glCfg);
      break;
    }
    case StorageKind::kPvfs: {
      storage::PvfsFs::Config pvCfg;
      pvCfg.ecK = cfg.ecK;
      pvCfg.ecM = cfg.ecM;
      store = std::make_unique<storage::PvfsFs>(sim, fabric, nodes, pvCfg);
      break;
    }
    case StorageKind::kXtreemFs:
      store = std::make_unique<storage::XtreemFs>(sim, fabric, nodes);
      break;
    case StorageKind::kP2p:
      store = std::make_unique<storage::P2pFs>(sim, fabric, nodes);
      break;
    case StorageKind::kEbs:
      store = std::make_unique<storage::EbsFs>(sim, net, nodes);
      break;
  }

  // --- Faults: materialize the schedule and arm the storage stacks --------
  const fault::FaultPlan plan = cfg.faults.materialize(cfg.workerNodes);
  const bool faultsOn = cfg.faults.active() && !plan.empty();
  if (faultsOn) {
    storage::FaultArming arming;
    arming.seed = cfg.faults.seed;
    arming.opFaultProb = plan.opFaultProb;
    arming.outages = plan.outageWindows();
    arming.maxOpAttempts = cfg.faults.maxOpRetries;
    arming.retryBackoffSeconds = cfg.faults.retryBackoffSeconds;
    store->armFaults(arming);
  }

  // --- Plan the workflow ---------------------------------------------------
  wf::TransformationCatalog tc;
  sim::Rng appRng = rng.fork();
  wf::AbstractWorkflow abstract = makeWorkflow(cfg, appRng, tc);
  wf::ReplicaCatalog rc;
  for (const auto& f : abstract.externalInputs) {
    rc.registerReplica(f.lfn, store->name());
  }
  wf::SiteCatalog site;
  site.workerNodes = cfg.workerNodes;
  site.coresPerNode = cluster.workers.front()->type().cores;
  site.memoryPerNode = cluster.workers.front()->type().memory;
  site.storageSystem = store->name();
  wf::Planner planner{tc, rc, site};
  wf::Planner::Options planOpt;
  planOpt.clusterFactor = cfg.clusterFactor;
  // Consuming plan: moves the 10^5-task DAG instead of deep-copying it;
  // `abstract` is spent past this point.
  wf::ExecutableWorkflow exec = planner.plan(std::move(abstract), planOpt);

  // Pre-stage input data (not timed; §III.C).
  for (const auto& f : exec.externalInputs) {
    store->preload(f.lfn, f.size);
  }

  // --- Execute -------------------------------------------------------------
  std::vector<int> slots;
  std::vector<sim::Resource*> memories;
  for (auto& vm : cluster.workers) {
    slots.push_back(vm->type().cores);
    memories.push_back(&vm->memory());
  }
  wf::Scheduler scheduler{sim, slots,
                          cfg.dataAwareScheduling ? wf::Scheduler::Policy::kDataAware
                                                  : wf::Scheduler::Policy::kFifo,
                          store.get()};
  prof::WfProf prof;
  wf::DagmanEngine::Options engineOpt;
  engineOpt.coreSpeed = cluster.workers.front()->type().coreSpeed;
  wf::DagmanEngine engine{sim, exec, *store, scheduler, memories, &prof, engineOpt};

  std::unique_ptr<fault::FaultInjector> injector;
  if (faultsOn && !plan.crashes.empty()) {
    fault::FaultInjector::Config injCfg;
    injCfg.bootMinSeconds = provCfg.bootMin.asSeconds();
    injCfg.bootMaxSeconds = provCfg.bootMax.asSeconds();
    injCfg.seed = cfg.faults.seed + 1;  // distinct stream from the FaultLayer rngs
    injector = std::make_unique<fault::FaultInjector>(sim, plan, engine, scheduler,
                                                      *store, injCfg);
  }

  sim.spawn([](cloud::ContextBroker& cb, cloud::VirtualCluster& vc, sim::Rng& r,
               wf::DagmanEngine& eng, fault::FaultInjector* inj,
               sim::Simulator& s) -> sim::Task<void> {
    co_await cb.deploy(vc, r);
    // The injector's clock starts with the workflow, so crash times line up
    // with makespan-relative fractions.
    if (inj != nullptr) s.spawn(inj->run());
    co_await eng.execute();
  }(broker, cluster, rng, engine, injector.get(), sim));
  sim.run();

  const bool gaveUp = cfg.faults.active() && engine.failed();
  if (engine.completedJobs() != exec.dag.jobCount() && !gaveUp) {
    throw std::logic_error("analysis/experiment: workflow did not complete: " +
                           std::to_string(engine.completedJobs()) + "/" +
                           std::to_string(exec.dag.jobCount()));
  }

  // --- Cost ----------------------------------------------------------------
  // The paper's cost analysis charges the workflow's runtime (makespan) on
  // every provisioned instance, plus S3 request/storage fees.
  const double makespan = engine.makespan().asSeconds();
  const auto start = sim::SimTime::origin();
  const auto end = start + sim::Duration::fromSeconds(makespan);
  for (std::size_t w = 0; w < cluster.workers.size(); ++w) {
    auto& vm = cluster.workers[w];
    // A crashed worker's meter stops at the crash and the replacement's
    // starts there (Amazon bills the partial hour of each instance, rounded
    // up), so every crash splits the billing interval.
    std::vector<double> cuts;
    if (injector != nullptr) {
      for (const auto& [node, at] : injector->report().crashTimes) {
        if (node == static_cast<int>(w) && at > 0.0 && at < makespan) cuts.push_back(at);
      }
    }
    double prev = 0.0;
    for (const double cut : cuts) {
      billing.recordInstance(vm->type(), start + sim::Duration::fromSeconds(prev),
                             start + sim::Duration::fromSeconds(cut));
      prev = cut;
    }
    billing.recordInstance(vm->type(), start + sim::Duration::fromSeconds(prev), end);
  }
  if (cluster.auxiliary) {
    billing.recordInstance(cluster.auxiliary->type(), start, end);
  }
  if (cfg.storage == StorageKind::kS3) {
    auto& s3 = static_cast<storage::S3Fs&>(*store);
    billing.recordS3Requests(s3.objectStore().putCount(), s3.objectStore().getCount());
    billing.recordS3Storage(s3.objectStore().bytesStored(), makespan);
  }
  if (cfg.storage == StorageKind::kEbs) {
    billing.recordExtraFee(static_cast<storage::EbsFs&>(*store).ioRequestCost());
  }

  ExperimentResult res;
  res.makespanSeconds = makespan;
  res.cost = billing.report();
  res.storageMetrics = store->metrics();
  res.profile = prof.profile();
  res.tasks = exec.dag.jobCount();
  res.storageName = store->name();
  res.workflowName = exec.name;
  // Ledger counters are published by accumulating into the zero-initialized
  // result (D7: the outcome structs are monotone everywhere, including here).
  res.fault.enabled = cfg.faults.active();
  if (res.fault.enabled) {
    res.fault.failed = engine.failed();
    res.fault.retries += engine.retryCount();
    res.fault.crashAborts += engine.crashAborts();
    res.fault.recomputedJobs += engine.recomputedJobs();
    res.fault.rescueJobs += engine.failed() ? engine.rescueDag().size() : 0;
    if (injector != nullptr) {
      const fault::InjectionReport& rep = injector->report();
      res.fault.crashes += rep.crashes;
      res.fault.lostFiles += rep.lostFiles;
      res.fault.replacementVms += rep.replacementVms;
      res.fault.restagedInputs += rep.restagedInputs;
    }
    if (const auto* fl = store->metrics().findLayer("fault/inject")) {
      res.fault.opFaultsInjected += fl->faultsInjected;
      res.fault.outageStalls += fl->outageStalls;
    }
    if (const auto* rl = store->metrics().findLayer("fault/retry")) {
      res.fault.opFaultsRetried += rl->faultsRetried;
      res.fault.opFaultsExhausted += rl->faultsExhausted;
    }
  }
  res.redundancy.enabled = cfg.replicas > 1 || cfg.ecK > 0;
  if (res.redundancy.enabled) {
    const char* layerName = cfg.replicas > 1 ? "cluster/afr" : "cluster/ec";
    if (const auto* red = store->metrics().findLayer(layerName)) {
      res.redundancy.degradedReads += red->degradedReads;
      res.redundancy.reconstructions += red->reconstructions;
      res.redundancy.healedFiles += red->healedFiles;
      res.redundancy.healBytes += red->healBytes;
    }
  }
  return res;
}

}  // namespace wfs::analysis
