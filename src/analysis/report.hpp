#pragma once

#include <string>
#include <vector>

namespace wfs::analysis {

/// One plotted line of a paper figure: a storage system's value (runtime or
/// cost) per cluster size. A NaN point means "not run" (e.g. GlusterFS on
/// one node).
struct Series {
  std::string label;
  std::vector<double> values;  // aligned with the x-axis labels
};

/// Renders a fixed-width text table, one row per series — the textual
/// equivalent of the paper's bar charts.
[[nodiscard]] std::string renderTable(const std::string& title,
                                      const std::vector<std::string>& xLabels,
                                      const std::vector<Series>& series,
                                      const std::string& unit);

/// Same data as CSV (header: system,x0,x1,...).
[[nodiscard]] std::string renderCsv(const std::vector<std::string>& xLabels,
                                    const std::vector<Series>& series);

}  // namespace wfs::analysis
