#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "simcore/stats.hpp"

namespace wfs::analysis {

/// Aggregate of repeated runs of one experiment cell under different seeds
/// (the paper reports repeated experiments for the NFS regression; this is
/// the general tool).
struct RepeatedResult {
  sim::OnlineStats makespan;
  sim::OnlineStats costHourly;
  sim::OnlineStats costPerSecond;
  std::vector<ExperimentResult> runs;
};

/// Runs `cfg` once per seed and aggregates. Workload structure is resampled
/// per seed (task runtime/file-size jitter), so the spread reflects
/// workload variability, not nondeterminism — identical seed lists always
/// reproduce identical aggregates.
///
/// Runs fan out over a SweepRunner pool (`jobs` threads, <= 0 = hardware
/// concurrency); aggregation is in seed-list order regardless of which
/// worker finishes first, so the result is independent of `jobs`.
/// Throws if any seed's run fails.
[[nodiscard]] RepeatedResult repeatExperiment(ExperimentConfig cfg,
                                              const std::vector<std::uint64_t>& seeds,
                                              int jobs = 1);

/// The per-seed grid repeatExperiment runs: `cfg` with each seed in list
/// order. A repeat is just a seed-axis sweep, which is how the CLI feeds
/// it through the sweep fabric (sharding/resume/cache for free).
[[nodiscard]] std::vector<ExperimentConfig> repeatGrid(ExperimentConfig cfg,
                                                       const std::vector<std::uint64_t>& seeds);

/// Aggregate of repeat cells that came back as JSONL lines (from the
/// fabric: freshly simulated, cache hits and resumed cells are
/// indistinguishable by construction). Line order is seed-list order.
/// Throws std::runtime_error on an error line, quoting the cell's message.
struct RepeatLineAggregate {
  sim::OnlineStats makespan;
  sim::OnlineStats costHourly;
  sim::OnlineStats costPerSecond;
};
[[nodiscard]] RepeatLineAggregate aggregateRepeatLines(const std::vector<std::string>& lines);

}  // namespace wfs::analysis
