#include "analysis/report.hpp"

#include <cmath>
#include <cstdio>

namespace wfs::analysis {

std::string renderTable(const std::string& title, const std::vector<std::string>& xLabels,
                        const std::vector<Series>& series, const std::string& unit) {
  std::string out;
  out += title + " [" + unit + "]\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "  %-14s", "system");
  out += buf;
  for (const auto& x : xLabels) {
    std::snprintf(buf, sizeof buf, " %12s", x.c_str());
    out += buf;
  }
  out += "\n";
  for (const auto& s : series) {
    std::snprintf(buf, sizeof buf, "  %-14s", s.label.c_str());
    out += buf;
    for (double v : s.values) {
      if (std::isnan(v)) {
        std::snprintf(buf, sizeof buf, " %12s", "-");
      } else if (v >= 100.0) {
        std::snprintf(buf, sizeof buf, " %12.0f", v);
      } else {
        std::snprintf(buf, sizeof buf, " %12.2f", v);
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string renderCsv(const std::vector<std::string>& xLabels,
                      const std::vector<Series>& series) {
  std::string out = "system";
  for (const auto& x : xLabels) out += "," + x;
  out += "\n";
  char buf[64];
  for (const auto& s : series) {
    out += s.label;
    for (double v : s.values) {
      if (std::isnan(v)) {
        out += ",";
      } else {
        std::snprintf(buf, sizeof buf, ",%.3f", v);
        out += buf;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace wfs::analysis
