#include "analysis/repeat.hpp"

#include <stdexcept>
#include <utility>

#include "analysis/fabric/fabric.hpp"
#include "analysis/sweep.hpp"

namespace wfs::analysis {

std::vector<ExperimentConfig> repeatGrid(ExperimentConfig cfg,
                                         const std::vector<std::uint64_t>& seeds) {
  std::vector<ExperimentConfig> cells;
  cells.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    cfg.seed = seed;
    cells.push_back(cfg);
  }
  return cells;
}

RepeatLineAggregate aggregateRepeatLines(const std::vector<std::string>& lines) {
  RepeatLineAggregate agg;
  for (const std::string& line : lines) {
    if (const auto err = fabric::lineStringField(line, "error")) {
      throw std::runtime_error("analysis/repeat: cell failed: " + *err);
    }
    const auto makespan = fabric::lineNumberField(line, "makespan_s");
    const auto hourly = fabric::lineNumberField(line, "cost_hourly");
    const auto perSecond = fabric::lineNumberField(line, "cost_per_second");
    if (!makespan || !hourly || !perSecond) {
      throw std::runtime_error("analysis/repeat: cell line is missing result fields: " + line);
    }
    agg.makespan.add(*makespan);
    agg.costHourly.add(*hourly);
    agg.costPerSecond.add(*perSecond);
  }
  return agg;
}

RepeatedResult repeatExperiment(ExperimentConfig cfg,
                                const std::vector<std::uint64_t>& seeds, int jobs) {
  std::vector<ExperimentConfig> cells = repeatGrid(std::move(cfg), seeds);

  SweepRunner::Options opt;
  opt.threads = jobs;
  std::vector<SweepCellResult> ran = SweepRunner{opt}.run(std::move(cells));

  RepeatedResult out;
  out.runs.reserve(ran.size());
  for (SweepCellResult& cell : ran) {
    if (!cell.ok) {
      throw std::runtime_error("analysis/repeat: cell " + cell.label() + " failed: " + cell.error);
    }
    out.makespan.add(cell.result.makespanSeconds);
    out.costHourly.add(cell.result.cost.totalHourly());
    out.costPerSecond.add(cell.result.cost.totalPerSecond());
    out.runs.push_back(std::move(cell.result));
  }
  return out;
}

}  // namespace wfs::analysis
