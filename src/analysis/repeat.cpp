#include "analysis/repeat.hpp"

#include <stdexcept>

#include "analysis/sweep.hpp"

namespace wfs::analysis {

RepeatedResult repeatExperiment(ExperimentConfig cfg,
                                const std::vector<std::uint64_t>& seeds, int jobs) {
  std::vector<ExperimentConfig> cells;
  cells.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    cfg.seed = seed;
    cells.push_back(cfg);
  }

  SweepRunner::Options opt;
  opt.threads = jobs;
  std::vector<SweepCellResult> ran = SweepRunner{opt}.run(std::move(cells));

  RepeatedResult out;
  out.runs.reserve(ran.size());
  for (SweepCellResult& cell : ran) {
    if (!cell.ok) {
      throw std::runtime_error("repeat cell " + cell.label() + " failed: " + cell.error);
    }
    out.makespan.add(cell.result.makespanSeconds);
    out.costHourly.add(cell.result.cost.totalHourly());
    out.costPerSecond.add(cell.result.cost.totalPerSecond());
    out.runs.push_back(std::move(cell.result));
  }
  return out;
}

}  // namespace wfs::analysis
