#include "analysis/repeat.hpp"

namespace wfs::analysis {

RepeatedResult repeatExperiment(ExperimentConfig cfg,
                                const std::vector<std::uint64_t>& seeds) {
  RepeatedResult out;
  out.runs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    cfg.seed = seed;
    ExperimentResult r = runExperiment(cfg);
    out.makespan.add(r.makespanSeconds);
    out.costHourly.add(r.cost.totalHourly());
    out.costPerSecond.add(r.cost.totalPerSecond());
    out.runs.push_back(std::move(r));
  }
  return out;
}

}  // namespace wfs::analysis
