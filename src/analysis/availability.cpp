#include "analysis/availability.hpp"

#include <algorithm>
#include <cstdio>

namespace wfs::analysis {

namespace {

int nodesFor(StorageKind kind, int requested) {
  if (kind == StorageKind::kLocal || kind == StorageKind::kEbs) return 1;
  const bool needsTwo = kind == StorageKind::kGlusterNufa ||
                        kind == StorageKind::kGlusterDist || kind == StorageKind::kPvfs;
  return needsTwo ? std::max(2, requested) : std::max(1, requested);
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

std::vector<AvailabilityCell> runAvailabilitySweep(const AvailabilityOptions& opt) {
  std::vector<ExperimentConfig> clean;
  clean.reserve(opt.backends.size());
  for (const StorageKind kind : opt.backends) {
    ExperimentConfig cfg;
    cfg.app = opt.app;
    cfg.appScale = opt.appScale;
    cfg.storage = kind;
    cfg.workerNodes = nodesFor(kind, opt.nodes);
    cfg.seed = opt.seed;
    clean.push_back(cfg);
  }

  SweepRunner runner{SweepRunner::Options{.threads = opt.threads, .progress = {}}};
  std::vector<SweepCellResult> cleanResults = runner.run(clean);

  std::vector<AvailabilityCell> cells(cleanResults.size());
  std::vector<ExperimentConfig> faulted;
  std::vector<std::size_t> faultedIdx;  // cells index per faulted config
  for (std::size_t i = 0; i < cleanResults.size(); ++i) {
    cells[i].clean = cleanResults[i];
    if (!cleanResults[i].ok) continue;
    ExperimentConfig cfg = cleanResults[i].config;
    cfg.faults = opt.faults;
    cfg.faults.enabled = true;
    const int crashNode =
        std::clamp(opt.crashNode, 0, cfg.workerNodes - 1);
    const double crashAt = opt.crashFrac * cleanResults[i].result.makespanSeconds;
    cfg.faults.explicitCrashes.push_back(fault::NodeCrash{crashAt, crashNode});
    cells[i].crashAtSeconds = crashAt;
    cells[i].crashNode = crashNode;
    faulted.push_back(cfg);
    faultedIdx.push_back(i);
  }

  std::vector<SweepCellResult> faultedResults = runner.run(faulted);
  for (std::size_t k = 0; k < faultedResults.size(); ++k) {
    cells[faultedIdx[k]].faulted = faultedResults[k];
  }
  return cells;
}

std::string availabilityJsonl(const std::vector<AvailabilityCell>& cells) {
  std::string out;
  for (const AvailabilityCell& c : cells) {
    const ExperimentConfig& cfg = c.clean.config;
    std::string line = "{";
    auto field = [&line](const char* key, std::string value) {
      if (line.size() > 1) line += ",";
      line += "\"";
      line += key;
      line += "\":";
      line += value;
    };
    field("app", std::string("\"") + toString(cfg.app) + "\"");
    field("storage", std::string("\"") + toString(cfg.storage) + "\"");
    field("nodes", std::to_string(cfg.workerNodes));
    field("scale", num(cfg.appScale));
    field("seed", std::to_string(cfg.seed));
    if (!c.clean.ok) {
      field("error", std::string("\"") + c.clean.error + "\"");
      out += line + "}\n";
      continue;
    }
    if (!c.faulted.ok) {
      field("error", std::string("\"") + c.faulted.error + "\"");
      out += line + "}\n";
      continue;
    }
    const ExperimentResult& base = c.clean.result;
    const ExperimentResult& hurt = c.faulted.result;
    const FaultOutcome& f = hurt.fault;
    field("crash_node", std::to_string(c.crashNode));
    field("crash_at_s", num(c.crashAtSeconds));
    field("clean_makespan_s", num(base.makespanSeconds));
    field("faulted_makespan_s", num(hurt.makespanSeconds));
    field("makespan_inflation",
          num(base.makespanSeconds > 0 ? hurt.makespanSeconds / base.makespanSeconds : 0));
    field("clean_cost", num(base.cost.totalHourly()));
    field("faulted_cost", num(hurt.cost.totalHourly()));
    field("cost_inflation",
          num(base.cost.totalHourly() > 0 ? hurt.cost.totalHourly() / base.cost.totalHourly()
                                          : 0));
    field("failed", f.failed ? "true" : "false");
    field("crashes", std::to_string(f.crashes));
    field("crash_aborts", std::to_string(f.crashAborts));
    field("lost_files", std::to_string(f.lostFiles));
    field("recomputed_jobs", std::to_string(f.recomputedJobs));
    field("replacement_vms", std::to_string(f.replacementVms));
    field("restaged_inputs", std::to_string(f.restagedInputs));
    field("retries", std::to_string(f.retries));
    field("op_faults_injected", std::to_string(f.opFaultsInjected));
    field("op_faults_retried", std::to_string(f.opFaultsRetried));
    field("op_faults_exhausted", std::to_string(f.opFaultsExhausted));
    field("outage_stalls", std::to_string(f.outageStalls));
    out += line + "}\n";
  }
  return out;
}

}  // namespace wfs::analysis
