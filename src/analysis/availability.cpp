#include "analysis/availability.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/fabric/cellid.hpp"
#include "storage/base/path.hpp"

namespace wfs::analysis {

namespace {

int nodesFor(StorageKind kind, int requested) {
  if (kind == StorageKind::kLocal || kind == StorageKind::kEbs) return 1;
  const bool needsTwo = kind == StorageKind::kGlusterNufa ||
                        kind == StorageKind::kGlusterDist || kind == StorageKind::kPvfs;
  return needsTwo ? std::max(2, requested) : std::max(1, requested);
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void runPhase(SweepCellResult& slot) {
  try {
    slot.result = runExperiment(slot.config);
    slot.ok = true;
  } catch (const std::exception& e) {
    slot.error = e.what();
  } catch (...) {
    slot.error = "unknown error";
  }
}

}  // namespace

ExperimentConfig availabilityCleanConfig(const AvailabilityOptions& opt, StorageKind kind) {
  ExperimentConfig cfg;
  cfg.app = opt.app;
  cfg.appScale = opt.appScale;
  cfg.storage = kind;
  cfg.workerNodes = nodesFor(kind, opt.nodes);
  cfg.seed = opt.seed;
  cfg.replicas = opt.replicas;
  cfg.ecK = opt.ecK;
  cfg.ecM = opt.ecM;
  return cfg;
}

AvailabilityCell runAvailabilityCell(const AvailabilityOptions& opt, StorageKind kind) {
  AvailabilityCell cell;
  cell.clean.config = availabilityCleanConfig(opt, kind);
  runPhase(cell.clean);
  if (!cell.clean.ok) return cell;

  ExperimentConfig cfg = cell.clean.config;
  cfg.faults = opt.faults;
  cfg.faults.enabled = true;
  const int crashNode = std::clamp(opt.crashNode, 0, cfg.workerNodes - 1);
  const double crashAt = opt.crashFrac * cell.clean.result.makespanSeconds;
  cfg.faults.explicitCrashes.push_back(fault::NodeCrash{crashAt, crashNode});
  cell.crashAtSeconds = crashAt;
  cell.crashNode = crashNode;
  cell.faulted.config = cfg;
  runPhase(cell.faulted);
  return cell;
}

std::vector<AvailabilityCell> runAvailabilitySweep(const AvailabilityOptions& opt) {
  std::vector<AvailabilityCell> cells(opt.backends.size());
  SweepRunner runner{SweepRunner::Options{.threads = opt.threads, .progress = {}}};
  runner.runIndexed(opt.backends.size(), [&](std::size_t i) {
    cells[i] = runAvailabilityCell(opt, opt.backends[i]);
  });
  return cells;
}

fabric::FabricCell availabilityFabricCell(const AvailabilityOptions& opt, StorageKind kind) {
  const ExperimentConfig clean = availabilityCleanConfig(opt, kind);
  fabric::FabricCell cell;
  // The crash twin's exact schedule depends on the clean makespan, which is
  // itself a pure function of the clean config — so (clean config, crash
  // parameters, fault spec) fully names the pair.
  std::string canonical = "avail-v1|";
  canonical += fabric::canonicalConfig(clean);
  canonical += "|crash_frac=" + num(opt.crashFrac);
  canonical += "|crash_node=" + std::to_string(opt.crashNode);
  canonical += '|';
  canonical += fabric::canonicalFaultSpec(opt.faults);
  cell.hexHash = fabric::hashHex(storage::pathHash(canonical));
  cell.label = std::string("avail/") + toString(kind) + "/" +
               std::to_string(clean.workerNodes) + "n/seed" + std::to_string(clean.seed);
  cell.run = [opt, kind]() {
    const AvailabilityCell ran = runAvailabilityCell(opt, kind);
    fabric::CellOutput out;
    out.line = availabilityCellJson(ran);
    out.cacheable = ran.clean.ok && ran.faulted.ok;
    return out;
  };
  return cell;
}

std::string availabilityCellJson(const AvailabilityCell& c) {
  const ExperimentConfig& cfg = c.clean.config;
  std::string line = "{";
  auto field = [&line](const char* key, std::string value) {
    if (line.size() > 1) line += ",";
    line += "\"";
    line += key;
    line += "\":";
    line += value;
  };
  field("app", std::string("\"") + toString(cfg.app) + "\"");
  field("storage", std::string("\"") + toString(cfg.storage) + "\"");
  field("nodes", std::to_string(cfg.workerNodes));
  field("scale", num(cfg.appScale));
  field("seed", std::to_string(cfg.seed));
  if (!c.clean.ok) {
    field("error", std::string("\"") + c.clean.error + "\"");
    return line + "}";
  }
  if (!c.faulted.ok) {
    field("error", std::string("\"") + c.faulted.error + "\"");
    return line + "}";
  }
  const ExperimentResult& base = c.clean.result;
  const ExperimentResult& hurt = c.faulted.result;
  const FaultOutcome& f = hurt.fault;
  field("crash_node", std::to_string(c.crashNode));
  field("crash_at_s", num(c.crashAtSeconds));
  field("clean_makespan_s", num(base.makespanSeconds));
  field("faulted_makespan_s", num(hurt.makespanSeconds));
  field("makespan_inflation",
        num(base.makespanSeconds > 0 ? hurt.makespanSeconds / base.makespanSeconds : 0));
  field("clean_cost", num(base.cost.totalHourly()));
  field("faulted_cost", num(hurt.cost.totalHourly()));
  field("cost_inflation",
        num(base.cost.totalHourly() > 0 ? hurt.cost.totalHourly() / base.cost.totalHourly()
                                        : 0));
  field("failed", f.failed ? "true" : "false");
  field("crashes", std::to_string(f.crashes));
  field("crash_aborts", std::to_string(f.crashAborts));
  field("lost_files", std::to_string(f.lostFiles));
  field("recomputed_jobs", std::to_string(f.recomputedJobs));
  field("replacement_vms", std::to_string(f.replacementVms));
  field("restaged_inputs", std::to_string(f.restagedInputs));
  field("retries", std::to_string(f.retries));
  field("op_faults_injected", std::to_string(f.opFaultsInjected));
  field("op_faults_retried", std::to_string(f.opFaultsRetried));
  field("op_faults_exhausted", std::to_string(f.opFaultsExhausted));
  field("outage_stalls", std::to_string(f.outageStalls));
  if (cfg.replicas > 1) field("replicas", std::to_string(cfg.replicas));
  if (cfg.ecK > 0) {
    field("ec_k", std::to_string(cfg.ecK));
    field("ec_m", std::to_string(cfg.ecM));
  }
  field("degraded_reads", std::to_string(hurt.redundancy.degradedReads));
  field("reconstructions", std::to_string(hurt.redundancy.reconstructions));
  field("healed_files", std::to_string(hurt.redundancy.healedFiles));
  field("heal_bytes", std::to_string(hurt.redundancy.healBytes));
  return line + "}";
}

std::string availabilityJsonl(const std::vector<AvailabilityCell>& cells) {
  std::string out;
  for (const AvailabilityCell& c : cells) {
    out += availabilityCellJson(c);
    out += "\n";
  }
  return out;
}

}  // namespace wfs::analysis
