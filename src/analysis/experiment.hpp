#pragma once

#include <cstdint>
#include <string>

#include "cloud/billing.hpp"
#include "fault/plan.hpp"
#include "prof/wfprof.hpp"
#include "storage/base/metrics.hpp"

namespace wfs::analysis {

enum class App { kMontage, kBroadband, kEpigenome };

/// Where the workflow DAG comes from: one of the paper's three built-in
/// applications, a WfCommons trace on disk, or the synthetic generator
/// (docs/WORKFLOWS.md covers the latter two).
enum class WorkflowSource { kBuiltinApp, kImportedTrace, kSynthetic };
enum class StorageKind {
  kLocal,
  kS3,
  kNfs,
  kGlusterNufa,
  kGlusterDist,
  kPvfs,
  kXtreemFs,
  /// Direct node-to-node transfers — the paper's stated future work (§VIII).
  kP2p,
  /// EBS-volume node storage (extension: no first-write penalty, I/O fees).
  kEbs,
};

[[nodiscard]] const char* toString(App app);
[[nodiscard]] const char* toString(StorageKind kind);
[[nodiscard]] const char* toString(WorkflowSource source);

/// One cell of the paper's experiment matrix: application x storage system
/// x cluster size (Figs 2-7), plus the ablation knobs from DESIGN.md §3.
///
/// Cell identity: fabric/cellid.cpp canonically serializes every field for
/// config hashing (checkpoints, shard manifests, the result cache) and
/// destructures this struct with structured bindings, so ADDING OR
/// REMOVING A FIELD BREAKS THAT BUILD until the serializer is updated —
/// by design: a new knob must never be silently absent from cell identity.
struct ExperimentConfig {
  App app = App::kMontage;
  /// kBuiltinApp runs `app`; kImportedTrace parses `workflowFile`;
  /// kSynthetic generates `synthSpec`. The non-builtin sources fix their
  /// own workload size, so they require appScale == 1.0.
  WorkflowSource source = WorkflowSource::kBuiltinApp;
  std::string workflowFile;  // WfCommons JSON trace path (kImportedTrace)
  std::string synthSpec;     // canonical SPEC string (kSynthetic)
  StorageKind storage = StorageKind::kLocal;
  int workerNodes = 1;
  std::string workerType = "c1.xlarge";
  /// NFS server instance type (§IV.B uses m1.xlarge; §V.C tries m2.4xlarge).
  std::string nfsServerType = "m1.xlarge";
  /// Paper setup is locality-blind (§IV.A); true enables the conjectured
  /// data-aware scheduler (ablation A2).
  bool dataAwareScheduling = false;
  /// false disables the ephemeral-disk first-write penalty (ablation A1).
  bool firstWritePenalty = true;
  /// Pegasus horizontal clustering factor (1 = paper setup).
  int clusterFactor = 1;
  /// Scales workload size for affordable runs; 1.0 = published workload.
  double appScale = 1.0;
  std::uint64_t seed = 42;
  /// Enables the run's simulator-local event trace (stderr). Leave off in
  /// parallel sweeps: each cell's lines are internally ordered but cells
  /// interleave on the shared stream.
  bool trace = false;
  /// AFR-style replica count for the GlusterFS backends; 1 = the paper's
  /// unreplicated volumes, N > 1 fans every write to N bricks and reads
  /// survive N-1 brick losses. Rejected for other backends.
  int replicas = 1;
  /// Stripe+parity erasure geometry for the PVFS backend: k data + m
  /// parity fragments, any k reconstruct a read. 0+0 = the paper's plain
  /// full-width striping. Rejected for other backends.
  int ecK = 0;
  int ecM = 0;
  /// Fault injection (crash-stop nodes, storage-op faults, outages);
  /// inactive by default — the zero-fault path is event-identical to a
  /// build without the fault subsystem.
  fault::Spec faults;
};

/// What fault injection did to one run; all-zero when faults are off.
struct FaultOutcome {
  bool enabled = false;
  /// Some job exhausted its DAGMan retry budget; the run did not complete.
  bool failed = false;
  std::uint64_t retries = 0;
  std::uint64_t crashes = 0;
  std::uint64_t crashAborts = 0;
  std::uint64_t lostFiles = 0;
  std::uint64_t recomputedJobs = 0;
  std::uint64_t replacementVms = 0;
  std::uint64_t restagedInputs = 0;
  std::uint64_t rescueJobs = 0;
  std::uint64_t opFaultsInjected = 0;
  std::uint64_t opFaultsRetried = 0;
  std::uint64_t opFaultsExhausted = 0;
  std::uint64_t outageStalls = 0;
};

/// What the redundancy tier did during one run; all-zero when the run had
/// no replication or erasure coding configured.
struct RedundancyOutcome {
  bool enabled = false;
  std::uint64_t degradedReads = 0;    // reads served off a non-preferred child / via parity
  std::uint64_t reconstructions = 0;  // erasure reads that decoded through parity
  std::uint64_t healedFiles = 0;      // files re-replicated / rebuilt by self-heal
  Bytes healBytes = 0;                // bytes moved by self-heal passes
};

struct ExperimentResult {
  double makespanSeconds = 0.0;
  cloud::CostReport cost;
  storage::StorageMetrics storageMetrics;
  prof::AppProfile profile;
  int tasks = 0;
  std::string storageName;
  std::string workflowName;
  FaultOutcome fault;
  RedundancyOutcome redundancy;
};

/// Builds the full simulated world (cloud, network, storage, WMS), runs the
/// workflow, and returns makespan + cost + profile. Deterministic in `seed`.
[[nodiscard]] ExperimentResult runExperiment(const ExperimentConfig& cfg);

}  // namespace wfs::analysis
