#include "analysis/sweep.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

namespace wfs::analysis {

std::string SweepCellResult::label() const {
  const char* head = config.source == WorkflowSource::kBuiltinApp ? toString(config.app)
                                                                  : toString(config.source);
  return std::string(head) + "/" + toString(config.storage) + "/" +
         std::to_string(config.workerNodes) + "n/seed" + std::to_string(config.seed);
}

namespace {

/// One worker's queue of cell indices. The owner pops from the front;
/// thieves steal from the back, so stolen cells are the ones the owner
/// would have reached last.
struct WorkQueue {
  std::mutex m;
  std::deque<std::size_t> q;

  bool popFront(std::size_t& out) {
    std::lock_guard lk{m};
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }
  bool stealBack(std::size_t& out) {
    std::lock_guard lk{m};
    if (q.empty()) return false;
    out = q.back();
    q.pop_back();
    return true;
  }
};

void runCell(SweepCellResult& slot) {
  try {
    slot.result = runExperiment(slot.config);
    slot.ok = true;
  } catch (const std::exception& e) {
    slot.error = e.what();
  } catch (...) {
    slot.error = "unknown error";
  }
}

}  // namespace

int SweepRunner::resolveThreads(std::size_t cells) const {
  std::size_t n = opt_.threads > 0 ? static_cast<std::size_t>(opt_.threads)
                                   : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(std::clamp<std::size_t>(cells, 1, n));
}

void SweepRunner::runIndexed(std::size_t count,
                             const std::function<void(std::size_t)>& task) const {
  if (count == 0) return;
  const int workers = resolveThreads(count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  // Deal cells round-robin: the expensive large-node-count cells sit next
  // to each other in a typical grid, and round-robin spreads them across
  // workers; stealing mops up whatever imbalance remains.
  std::vector<WorkQueue> queues(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < count; ++i) {
    queues[i % static_cast<std::size_t>(workers)].q.push_back(i);
  }

  auto work = [&](int self) {
    std::size_t idx = 0;
    for (;;) {
      bool have = queues[static_cast<std::size_t>(self)].popFront(idx);
      for (int off = 1; off < workers && !have; ++off) {
        have = queues[static_cast<std::size_t>((self + off) % workers)].stealBack(idx);
      }
      // Cells are only ever removed from the queues, so one empty scan
      // means this worker is permanently out of work.
      if (!have) return;
      task(idx);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(work, w);
  for (auto& t : pool) t.join();
}

std::vector<SweepCellResult> SweepRunner::run(std::vector<ExperimentConfig> cells) const {
  std::vector<SweepCellResult> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) results[i].config = std::move(cells[i]);
  if (results.empty()) return results;

  std::mutex progressMutex;
  std::size_t done = 0;
  runIndexed(results.size(), [&](std::size_t idx) {
    runCell(results[idx]);
    if (opt_.progress) {
      std::lock_guard lk{progressMutex};
      opt_.progress(++done, results.size(), results[idx]);
    }
  });
  return results;
}

}  // namespace wfs::analysis
