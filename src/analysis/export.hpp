#pragma once

#include <string>

#include "prof/wfprof.hpp"
#include "wf/dag.hpp"

namespace wfs::analysis {

/// Graphviz rendering of a workflow DAG: one node per job (labelled with
/// transformation and CPU demand), one edge per dependency. Suitable for
/// `dot -Tsvg` on the scaled-down workflows; the full Montage graph is
/// legal DOT but unreadable.
[[nodiscard]] std::string toDot(const wf::Dag& dag, const std::string& graphName);

/// Per-task execution trace as CSV (kickstart-record style):
/// job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem.
[[nodiscard]] std::string traceCsv(const prof::WfProf& prof);

/// Host utilization Gantt as CSV rows (node,start,end,job,transformation),
/// sorted by node then start time — loadable into any plotting tool.
[[nodiscard]] std::string ganttCsv(const prof::WfProf& prof);

}  // namespace wfs::analysis
