#pragma once

#include <string>

#include "analysis/sweep.hpp"
#include "prof/wfprof.hpp"
#include "wf/dag.hpp"

namespace wfs::analysis {

/// Graphviz rendering of a workflow DAG: one node per job (labelled with
/// transformation and CPU demand), one edge per dependency. Suitable for
/// `dot -Tsvg` on the scaled-down workflows; the full Montage graph is
/// legal DOT but unreadable.
[[nodiscard]] std::string toDot(const wf::Dag& dag, const std::string& graphName);

/// Per-task execution trace as CSV (kickstart-record style):
/// job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem.
[[nodiscard]] std::string traceCsv(const prof::WfProf& prof);

/// Host utilization Gantt as CSV rows (node,start,end,job,transformation),
/// sorted by node then start time — loadable into any plotting tool.
[[nodiscard]] std::string ganttCsv(const prof::WfProf& prof);

/// One sweep cell as a single-line JSON object (no trailing newline).
/// Key order and number formatting are fixed, so equal results serialize
/// to equal bytes — the basis of the cross-thread-count determinism checks
/// and of diffing sweep outputs across PRs. Failed cells carry an "error"
/// key instead of the result keys.
[[nodiscard]] std::string cellJson(const SweepCellResult& cell);

/// Whole sweep as JSONL: one cellJson line per cell, in grid order,
/// each line newline-terminated.
[[nodiscard]] std::string sweepJsonl(const std::vector<SweepCellResult>& cells);

/// Per-layer ledger and per-node read-source breakdown of one cell as
/// JSONL (newline-terminated lines; empty for failed cells). Layer lines
/// carry a "layer" key, node lines a "node" key; key order and number
/// formatting are fixed so equal runs serialize to equal bytes, making the
/// ledger diffable the same way the sweep JSONL is.
[[nodiscard]] std::string metricsJsonl(const SweepCellResult& cell);

/// metricsJsonl over every cell, in grid order.
[[nodiscard]] std::string sweepMetricsJsonl(const std::vector<SweepCellResult>& cells);

}  // namespace wfs::analysis
