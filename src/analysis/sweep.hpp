#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"

namespace wfs::analysis {

/// Outcome of one grid cell. Cells that throw (e.g. an invalid
/// storage/node-count combination) are recorded in place rather than
/// aborting the sweep, so a grid's result vector always has one entry per
/// input cell, in input order.
struct SweepCellResult {
  ExperimentConfig config;
  bool ok = false;
  std::string error;        // set when !ok
  ExperimentResult result;  // valid when ok

  [[nodiscard]] std::string label() const;
};

/// Work-stealing thread-pool executor for experiment grids.
///
/// The paper's result set (Figs 2–7, Table I) is a grid of independent
/// deterministic simulations — app × storage × nodes × seed. SweepRunner
/// fans a grid out over worker threads, one fully isolated Simulator per
/// cell, and merges results by cell index.
///
/// Invariants (see docs/ARCHITECTURE.md "Parallelism & isolation"):
///  * each cell builds its own Simulator, RNG, storage and cloud world on
///    the worker thread that claimed it — no mutable state is shared
///    between cells;
///  * results land in the slot of their input index, so the merged vector
///    (and anything rendered from it, e.g. sweepJsonl) is bit-identical
///    for any thread count, including 1.
class SweepRunner {
 public:
  /// Called after each finished cell, serialized by an internal mutex, so
  /// it may freely write to stderr or mutate caller state.
  using Progress =
      std::function<void(std::size_t done, std::size_t total, const SweepCellResult& cell)>;

  struct Options {
    /// Worker threads; <= 0 means std::thread::hardware_concurrency().
    int threads = 0;
    Progress progress;
  };

  SweepRunner() = default;
  explicit SweepRunner(Options opt) : opt_{std::move(opt)} {}

  /// Runs every cell and returns one result per cell, in input order.
  [[nodiscard]] std::vector<SweepCellResult> run(std::vector<ExperimentConfig> cells) const;

  /// The generic work-stealing core: executes `task(k)` once for every
  /// k in [0, count) across the resolved worker count. Tasks must be
  /// independent; `task` is called concurrently and must do its own
  /// serialization for shared state (run() and the sweep fabric both wrap
  /// it with a completion mutex). Round-robin dealing + back-stealing, the
  /// same schedule run() has always used.
  void runIndexed(std::size_t count, const std::function<void(std::size_t)>& task) const;

  /// The worker count `run` would use for a grid of `cells` cells.
  [[nodiscard]] int resolveThreads(std::size_t cells) const;

 private:
  Options opt_;
};

}  // namespace wfs::analysis
