#include "analysis/fabric/fabric.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "analysis/export.hpp"
#include "analysis/fabric/cache.hpp"
#include "analysis/fabric/cellid.hpp"
#include "analysis/sweep.hpp"
#include "storage/base/path.hpp"

namespace wfs::analysis::fabric {

const char* toString(CellSource source) {
  switch (source) {
    case CellSource::kSimulated: return "simulated";
    case CellSource::kCacheHit: return "cache";
    case CellSource::kResumed: return "resumed";
  }
  return "?";
}

std::uint64_t gridFingerprint(const std::vector<FabricCell>& cells) {
  std::string joined;
  joined.reserve(cells.size() * 17);
  for (const FabricCell& c : cells) {
    joined += c.hexHash;
    joined += '\n';
  }
  return storage::pathHash(joined);
}

FabricOutput runFabric(const std::vector<FabricCell>& cells, const FabricOptions& opt) {
  if (opt.shardCount < 1 || opt.shardIndex < 0 || opt.shardIndex >= opt.shardCount) {
    throw std::logic_error("fabric: shard spec out of range: " +
                           std::to_string(opt.shardIndex) + "/" +
                           std::to_string(opt.shardCount));
  }

  FabricOutput out;
  out.gridHash = gridFingerprint(cells);
  out.stats.gridCells = cells.size();

  // This shard's cells, ascending grid index — the output order, fixed
  // before anything runs.
  for (std::size_t i = static_cast<std::size_t>(opt.shardIndex); i < cells.size();
       i += static_cast<std::size_t>(opt.shardCount)) {
    FabricRecord rec;
    rec.index = i;
    rec.hexHash = cells[i].hexHash;
    out.records.push_back(std::move(rec));
  }
  out.stats.shardCells = out.records.size();

  // Fold in the checkpoint: a record is trusted only if its index belongs
  // to this shard of this grid AND its hash matches the cell it claims to
  // be — anything else means the checkpoint came from a different grid,
  // shard spec or config version, and silently mixing it in would corrupt
  // the output.
  std::size_t resumedCount = 0;
  if (opt.resume && !opt.checkpoint.empty()) {
    for (PartRecord& rec : PartsLog::load(opt.checkpoint)) {
      if (rec.index >= cells.size() ||
          rec.index % static_cast<std::size_t>(opt.shardCount) !=
              static_cast<std::size_t>(opt.shardIndex)) {
        throw std::runtime_error(
            "fabric: checkpoint " + opt.checkpoint + " does not match this run (cell index " +
            std::to_string(rec.index) + " is outside shard " +
            std::to_string(opt.shardIndex) + "/" + std::to_string(opt.shardCount) +
            " of a " + std::to_string(cells.size()) +
            "-cell grid); delete it or rerun with the original grid and --shard");
      }
      if (rec.hexHash != cells[rec.index].hexHash) {
        throw std::runtime_error(
            "fabric: checkpoint " + opt.checkpoint + " was written for a different grid: cell " +
            std::to_string(rec.index) + " has config hash " + cells[rec.index].hexHash +
            " but the checkpoint recorded " + rec.hexHash +
            "; delete the checkpoint or rerun the original configuration");
      }
      FabricRecord& slot =
          out.records[(rec.index - static_cast<std::size_t>(opt.shardIndex)) /
                      static_cast<std::size_t>(opt.shardCount)];
      if (!slot.line.empty()) continue;  // duplicate record: first one wins
      slot.line = std::move(rec.line);
      slot.source = CellSource::kResumed;
      ++resumedCount;
    }
  }
  out.stats.resumed = resumedCount;

  // The checkpoint log: truncated on fresh runs, appended to on resume
  // (the resumed records are already on disk).
  std::optional<PartsLog> parts;
  if (!opt.checkpoint.empty()) parts.emplace(opt.checkpoint, /*truncate=*/!opt.resume);

  std::optional<ResultCache> cache;
  if (!opt.cacheDir.empty()) cache.emplace(opt.cacheDir);

  std::mutex completionMutex;
  std::size_t done = 0;

  // Announce resumed cells first so `done/shardCells` ticks over the whole
  // shard, not just the freshly-run remainder.
  if (opt.progress) {
    for (const FabricRecord& rec : out.records) {
      if (rec.source != CellSource::kResumed) continue;
      opt.progress(++done, out.stats.shardCells, cells[rec.index], CellSource::kResumed,
                   out.stats);
    }
  } else {
    done = resumedCount;
  }

  std::vector<std::size_t> pending;  // slots in out.records still to run
  for (std::size_t s = 0; s < out.records.size(); ++s) {
    if (out.records[s].source != CellSource::kResumed || out.records[s].line.empty()) {
      pending.push_back(s);
    }
  }

  SweepRunner::Options runnerOpt;
  runnerOpt.threads = opt.threads;
  SweepRunner runner{runnerOpt};
  runner.runIndexed(pending.size(), [&](std::size_t k) {
    FabricRecord& rec = out.records[pending[k]];
    const FabricCell& cell = cells[rec.index];

    CellOutput produced;
    CellSource source = CellSource::kSimulated;
    bool wasCacheMiss = false;
    if (cache) {
      if (std::optional<std::string> hit = cache->lookup(rec.hexHash)) {
        produced.line = std::move(*hit);
        produced.cacheable = false;  // already stored
        source = CellSource::kCacheHit;
      } else {
        wasCacheMiss = true;
      }
    }
    if (source == CellSource::kSimulated) {
      try {
        produced = cell.run();
      } catch (const std::exception& e) {
        produced.line = std::string("{\"error\":\"fabric cell threw: ") + e.what() + "\"}";
        produced.cacheable = false;
      } catch (...) {
        produced.line = "{\"error\":\"fabric cell threw an unknown error\"}";
        produced.cacheable = false;
      }
      if (cache && produced.cacheable) cache->store(rec.hexHash, produced.line);
    }

    std::lock_guard lk{completionMutex};
    rec.line = std::move(produced.line);
    rec.extra = std::move(produced.extra);
    rec.source = source;
    if (source == CellSource::kCacheHit) {
      ++out.stats.cacheHits;
    } else {
      ++out.stats.simulated;
      if (wasCacheMiss) ++out.stats.cacheMisses;
    }
    if (parts) parts->append(PartRecord{rec.index, rec.hexHash, rec.line});
    if (opt.progress) opt.progress(++done, out.stats.shardCells, cell, source, out.stats);
  });
  if (parts) parts->close();

  return out;
}

FabricCell experimentCell(const ExperimentConfig& cfg, bool withMetrics) {
  FabricCell cell;
  cell.hexHash = configHashHex(cfg);
  {
    SweepCellResult labelled;
    labelled.config = cfg;
    cell.label = labelled.label();
  }
  cell.run = [cfg, withMetrics]() {
    SweepCellResult result;
    result.config = cfg;
    try {
      result.result = runExperiment(cfg);
      result.ok = true;
    } catch (const std::exception& e) {
      result.error = e.what();
    } catch (...) {
      result.error = "unknown error";
    }
    CellOutput output;
    output.line = cellJson(result);
    output.cacheable = result.ok;
    if (withMetrics) output.extra = metricsJsonl(result);
    return output;
  };
  return cell;
}

namespace {

/// Finds the value start of `"key":` at field position (preceded by '{' or
/// ','). Escaped quotes inside string values keep a backslash before the
/// quote, so a value can never fake a field boundary.
std::size_t fieldValuePos(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle.append(key);
  needle += "\":";
  for (std::size_t pos = line.find(needle); pos != std::string_view::npos;
       pos = line.find(needle, pos + 1)) {
    if (pos > 0 && (line[pos - 1] == '{' || line[pos - 1] == ',')) {
      return pos + needle.size();
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<double> lineNumberField(std::string_view line, std::string_view key) {
  const std::size_t pos = fieldValuePos(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string token{line.substr(pos, line.find_first_of(",}", pos) - pos)};
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) return std::nullopt;
  return v;
}

std::optional<std::string> lineStringField(std::string_view line, std::string_view key) {
  std::size_t pos = fieldValuePos(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  if (pos >= line.size() || line[pos] != '"') return std::nullopt;
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;  // \" and \\ unescape
    out.push_back(line[pos]);
    ++pos;
  }
  return out;
}

}  // namespace wfs::analysis::fabric
