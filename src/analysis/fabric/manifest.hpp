#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace wfs::analysis::fabric {

/// One finished cell as recorded in a checkpoint (parts log) or described
/// by a fragment manifest: global grid index, cell config hash, and the
/// exact JSONL line the cell produced (no trailing newline).
struct PartRecord {
  std::size_t index = 0;
  std::string hexHash;
  std::string line;
};

/// Sidecar paths next to a sweep's `--jsonl FILE` target.
[[nodiscard]] std::string partsPath(const std::string& jsonlPath);     // FILE.parts
[[nodiscard]] std::string manifestPath(const std::string& jsonlPath);  // FILE.manifest

/// Append-only checkpoint log: one tab-separated `index<TAB>hash<TAB>line`
/// record per finished cell, flushed AND fsync'd per append so a SIGKILL
/// loses at most the record being written. cellJson escapes all control
/// characters, so the line itself can never contain a tab or newline.
///
/// Appends are not internally locked — the fabric serializes them under its
/// completion mutex.
class PartsLog {
 public:
  /// Loads a parts log, tolerating a torn final record (no trailing
  /// newline, or fewer than three fields): the torn tail is dropped, which
  /// simply re-runs that cell on resume. A missing file loads as empty.
  [[nodiscard]] static std::vector<PartRecord> load(const std::string& path);

  /// Opens for appending; `truncate` starts a fresh log (non-resume runs).
  /// Throws std::runtime_error if the file cannot be opened.
  PartsLog(const std::string& path, bool truncate);
  ~PartsLog();
  PartsLog(const PartsLog&) = delete;
  PartsLog& operator=(const PartsLog&) = delete;

  /// Appends one record and forces it to stable storage (fflush + fsync).
  void append(const PartRecord& rec);

  void close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Fragment manifest: names the grid a fragment belongs to (cell count and
/// a fingerprint over every cell hash in index order), which shard of it
/// this fragment covers, and the (index, hash) of each JSONL line in file
/// order. `wfsim merge` uses it to reassemble fragments into the
/// byte-identical single-process ordering and to refuse fragments from
/// different grids or overlapping shards.
struct ManifestInfo {
  int shardIndex = 0;
  int shardCount = 1;
  std::size_t gridCells = 0;
  std::uint64_t gridHash = 0;
  std::vector<std::pair<std::size_t, std::string>> entries;  // (index, hexHash)
};

void writeManifest(const std::string& path, const ManifestInfo& info);

/// Throws std::runtime_error (naming the path and the offending line) on a
/// missing or malformed manifest.
[[nodiscard]] ManifestInfo readManifest(const std::string& path);

}  // namespace wfs::analysis::fabric
