#pragma once

#include <cstdint>
#include <string>

#include "analysis/experiment.hpp"

namespace wfs::analysis::fabric {

/// Canonical, versioned serialization of an experiment cell's identity —
/// every ExperimentConfig field that can influence the simulation result,
/// in a fixed order with fixed number formatting, so equal configs always
/// serialize to equal bytes on every platform.
///
/// Stability contract (docs/SWEEPS.md): the string starts with a format
/// version tag (`cfg-v2`). Any change to the serialization — a new field, a
/// renamed key, different float formatting — must bump the tag, which
/// invalidates all existing hashes (and therefore result-cache entries and
/// checkpoints). The implementation destructures ExperimentConfig and
/// fault::Spec with structured bindings, so adding or removing a struct
/// field breaks the build until this serializer is updated — a new config
/// knob can never be silently omitted from cell identity.
///
/// `trace` is the one deliberate exclusion: it redirects logging and cannot
/// change a single simulated event, so a traced and an untraced run of the
/// same cell share an identity.
[[nodiscard]] std::string canonicalConfig(const ExperimentConfig& cfg);

/// Canonical serialization of a fault::Spec (embedded in canonicalConfig;
/// exposed for composite identities such as availability cells).
[[nodiscard]] std::string canonicalFaultSpec(const fault::Spec& spec);

/// FNV-1a 64-bit hash of canonicalConfig — the cell's name in checkpoint
/// manifests, shard fragments and the result cache. The seed is part of
/// the config, so two seeds of the same grid cell hash differently.
[[nodiscard]] std::uint64_t configHash(const ExperimentConfig& cfg);

/// configHash rendered as 16 lowercase hex digits (the on-disk spelling).
[[nodiscard]] std::string configHashHex(const ExperimentConfig& cfg);

/// 16-lowercase-hex-digit rendering of any 64-bit cell/grid hash.
[[nodiscard]] std::string hashHex(std::uint64_t h);

}  // namespace wfs::analysis::fabric
