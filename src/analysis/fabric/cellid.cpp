#include "analysis/fabric/cellid.hpp"

#include <cstdio>

#include "storage/base/path.hpp"

namespace wfs::analysis::fabric {

namespace {

/// Exact round-trippable decimal for identity purposes. %.17g guarantees
/// distinct doubles serialize to distinct text (unlike the JSONL exporter's
/// human-oriented %.10g).
void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void appendField(std::string& out, const char* key, const std::string& value) {
  out += '|';
  out += key;
  out += '=';
  out += value;
}

void appendField(std::string& out, const char* key, const char* value) {
  out += '|';
  out += key;
  out += '=';
  out += value;
}

void appendField(std::string& out, const char* key, double value) {
  out += '|';
  out += key;
  out += '=';
  appendNumber(out, value);
}

void appendField(std::string& out, const char* key, std::uint64_t value) {
  appendField(out, key, std::to_string(value));
}

void appendField(std::string& out, const char* key, int value) {
  appendField(out, key, std::to_string(value));
}

void appendField(std::string& out, const char* key, bool value) {
  appendField(out, key, value ? "1" : "0");
}

}  // namespace

std::string canonicalFaultSpec(const fault::Spec& spec) {
  // Exhaustiveness guard: destructuring names every member, so a new
  // fault::Spec field fails to compile here until it is serialized below
  // (or deliberately excluded with a comment).
  const auto& [enabled, seed, crashRatePerNodeHour, opFaultProb, outageRatePerHour,
               outageMeanSeconds, horizonSeconds, explicitCrashes, explicitOutages,
               maxOpRetries, retryBackoffSeconds] = spec;

  std::string out = "faults-v1";
  appendField(out, "on", enabled);
  appendField(out, "seed", seed);
  appendField(out, "crash_rate", crashRatePerNodeHour);
  appendField(out, "op_prob", opFaultProb);
  appendField(out, "outage_rate", outageRatePerHour);
  appendField(out, "outage_mean", outageMeanSeconds);
  appendField(out, "horizon", horizonSeconds);
  out += "|crashes=";
  for (const fault::NodeCrash& c : explicitCrashes) {
    appendNumber(out, c.atSeconds);
    out += ':';
    out += std::to_string(c.node);
    out += ';';
  }
  out += "|outages=";
  for (const fault::Outage& o : explicitOutages) {
    appendNumber(out, o.startSeconds);
    out += ':';
    appendNumber(out, o.endSeconds);
    out += ';';
  }
  appendField(out, "retries", maxOpRetries);
  appendField(out, "backoff", retryBackoffSeconds);
  return out;
}

std::string canonicalConfig(const ExperimentConfig& cfg) {
  // Exhaustiveness guard (see header): a new ExperimentConfig field breaks
  // this binding until the serializer decides its fate.
  const auto& [app, source, workflowFile, synthSpec, storage, workerNodes, workerType,
               nfsServerType, dataAwareScheduling, firstWritePenalty, clusterFactor,
               appScale, seed, trace, replicas, ecK, ecM, faults] = cfg;
  (void)trace;  // deliberate exclusion: logging only, cannot affect results

  std::string out = "cfg-v2";
  appendField(out, "app", toString(app));
  appendField(out, "source", toString(source));
  appendField(out, "workflow", workflowFile);
  appendField(out, "synth", synthSpec);
  appendField(out, "storage", toString(storage));
  appendField(out, "nodes", workerNodes);
  appendField(out, "worker", workerType);
  appendField(out, "nfs_server", nfsServerType);
  appendField(out, "data_aware", dataAwareScheduling);
  appendField(out, "first_write_penalty", firstWritePenalty);
  appendField(out, "cluster", clusterFactor);
  appendField(out, "scale", appScale);
  appendField(out, "seed", seed);
  appendField(out, "replicas", replicas);
  appendField(out, "ec_k", ecK);
  appendField(out, "ec_m", ecM);
  appendField(out, "faults", canonicalFaultSpec(faults));
  return out;
}

std::uint64_t configHash(const ExperimentConfig& cfg) {
  return storage::pathHash(canonicalConfig(cfg));
}

std::string hashHex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string configHashHex(const ExperimentConfig& cfg) { return hashHex(configHash(cfg)); }

}  // namespace wfs::analysis::fabric
