#include "analysis/fabric/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace wfs::analysis::fabric {

namespace fs = std::filesystem;

const char* ResultCache::salt() {
  // Manual code-version salt: bump when simulation behavior changes in any
  // way that can alter a cell's result line (the byte-identity CI gates are
  // the tripwire that a bump was forgotten). docs/SWEEPS.md documents the
  // bump rule.
  // v2: faulted runs changed — scratch round trips now surface mid-trip
  // losses (FileLostError) instead of silently reading a lost file.
  return "wfs-results-v2";
}

ResultCache::ResultCache(std::string root) : root_{std::move(root)} {
  saltDir_ = root_ + "/" + salt();
  std::error_code ec;
  fs::create_directories(saltDir_, ec);
  if (ec) {
    throw std::runtime_error("fabric/cache: cannot create cache directory " + saltDir_ + ": " +
                             ec.message());
  }
}

std::string ResultCache::entryPath(std::string_view hexHash) const {
  std::string p = saltDir_;
  p += '/';
  p.append(hexHash.substr(0, 2));
  p += '/';
  p.append(hexHash);
  p += ".json";
  return p;
}

std::optional<std::string> ResultCache::lookup(std::string_view hexHash) const {
  std::FILE* f = std::fopen(entryPath(hexHash).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string line;
  char buf[4096];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    line.append(buf, n);
  }
  std::fclose(f);
  // Entries are written without a trailing newline; tolerate one anyway so
  // a hand-edited entry doesn't corrupt the merged JSONL.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
  if (line.empty()) return std::nullopt;  // torn or empty entry: treat as miss
  return line;
}

void ResultCache::store(std::string_view hexHash, std::string_view line) const {
  const std::string path = entryPath(hexHash);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return;  // cache is best-effort; the sweep result is already safe
  // Atomic install: a unique temp name per writer (pid + in-process
  // counter), then rename. Concurrent shards sharing the cache at worst
  // race to install identical bytes.
  static std::atomic<unsigned> storeCounter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(storeCounter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return;
  }
  fs::rename(tmp, path, ec);
  if (ec) std::remove(tmp.c_str());
}

}  // namespace wfs::analysis::fabric
