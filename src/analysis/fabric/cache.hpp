#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace wfs::analysis::fabric {

/// On-disk content-addressed store of finished cell lines, keyed by the
/// cell's config hash (which covers the seed) under a code-version salt.
///
/// Layout: `<root>/<salt>/<hh>/<hash>.json` where `hh` is the first two hex
/// digits of the 16-digit cell hash (fan-out so 10^5-cell sweeps don't put
/// every entry in one directory). Each entry holds exactly the JSONL line
/// the sweep would have produced, so a cache hit is byte-identical to a
/// fresh simulation by construction.
///
/// The salt names the simulation behavior version: bump kCacheSalt whenever
/// a change can alter any cell's result (new storage model, engine fix, …),
/// and every stale entry is orphaned instead of served. Stores are atomic
/// (temp file + rename), so shards on the same host may share a cache
/// directory; at worst two writers race to install the same bytes.
class ResultCache {
 public:
  /// Opens (and creates, including parents) `<root>/<salt>/`.
  /// Throws std::runtime_error if the directory cannot be created.
  explicit ResultCache(std::string root);

  /// The stored line for this cell hash, or nullopt on a miss.
  [[nodiscard]] std::optional<std::string> lookup(std::string_view hexHash) const;

  /// Installs `line` (one cellJson line, no trailing newline) for the hash.
  void store(std::string_view hexHash, std::string_view line) const;

  [[nodiscard]] const std::string& root() const { return root_; }

  /// The code-version salt folded into every entry path.
  [[nodiscard]] static const char* salt();

 private:
  [[nodiscard]] std::string entryPath(std::string_view hexHash) const;

  std::string root_;     // as given
  std::string saltDir_;  // <root>/<salt>
};

}  // namespace wfs::analysis::fabric
