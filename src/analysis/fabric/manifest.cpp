#include "analysis/fabric/manifest.hpp"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace wfs::analysis::fabric {

namespace {

constexpr const char* kManifestMagic = "# wfsim fragment manifest v1";

/// Reads a whole file; returns false if it cannot be opened.
bool slurp(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) out.append(buf, n);
  std::fclose(f);
  return true;
}

std::size_t parseIndex(const std::string& where, const std::string& token) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size()) {
    throw std::runtime_error(where + ": malformed cell index '" + token + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string partsPath(const std::string& jsonlPath) { return jsonlPath + ".parts"; }
std::string manifestPath(const std::string& jsonlPath) { return jsonlPath + ".manifest"; }

std::vector<PartRecord> PartsLog::load(const std::string& path) {
  std::string text;
  std::vector<PartRecord> records;
  if (!slurp(path, text)) return records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: record without newline
    const std::string_view line{text.data() + pos, eol - pos};
    pos = eol + 1;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 = tab1 == std::string_view::npos
                                 ? std::string_view::npos
                                 : line.find('\t', tab1 + 1);
    if (tab2 == std::string_view::npos) continue;  // torn or foreign line: skip
    PartRecord rec;
    char* end = nullptr;
    const std::string idx{line.substr(0, tab1)};
    rec.index = static_cast<std::size_t>(std::strtoull(idx.c_str(), &end, 10));
    if (idx.empty() || end != idx.c_str() + idx.size()) continue;
    rec.hexHash = std::string(line.substr(tab1 + 1, tab2 - tab1 - 1));
    rec.line = std::string(line.substr(tab2 + 1));
    if (rec.hexHash.empty() || rec.line.empty()) continue;
    records.push_back(std::move(rec));
  }
  return records;
}

PartsLog::PartsLog(const std::string& path, bool truncate) : path_{path} {
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("fabric/manifest: cannot open checkpoint " + path + " for writing");
  }
}

PartsLog::~PartsLog() { close(); }

void PartsLog::append(const PartRecord& rec) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "%zu\t%s\t%s\n", rec.index, rec.hexHash.c_str(), rec.line.c_str());
  std::fflush(file_);
  ::fsync(::fileno(file_));
}

void PartsLog::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void writeManifest(const std::string& path, const ManifestInfo& info) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("fabric/manifest: cannot open manifest " + path + " for writing");
  std::fprintf(f, "%s\n", kManifestMagic);
  std::fprintf(f, "grid %zu %016llx\n", info.gridCells,
               static_cast<unsigned long long>(info.gridHash));
  std::fprintf(f, "shard %d/%d\n", info.shardIndex, info.shardCount);
  for (const auto& [index, hash] : info.entries) {
    std::fprintf(f, "cell %zu %s\n", index, hash.c_str());
  }
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
}

ManifestInfo readManifest(const std::string& path) {
  std::string text;
  if (!slurp(path, text)) {
    throw std::runtime_error("fabric/manifest: cannot read manifest " + path +
                             " (fragments must sit next to their .manifest sidecar)");
  }
  ManifestInfo info;
  std::size_t pos = 0;
  int lineNo = 0;
  bool sawGrid = false;
  bool sawShard = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineNo;
    if (lineNo == 1) {
      if (line != kManifestMagic) {
        throw std::runtime_error(path + ": not a wfsim fragment manifest (bad header '" +
                                 line + "')");
      }
      continue;
    }
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string kind = line.substr(0, sp);
    const std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);
    if (kind == "grid") {
      const std::size_t sp2 = rest.find(' ');
      if (sp2 == std::string::npos) {
        throw std::runtime_error(path + ": malformed grid line '" + line + "'");
      }
      info.gridCells = parseIndex(path, rest.substr(0, sp2));
      char* end = nullptr;
      const std::string hex = rest.substr(sp2 + 1);
      info.gridHash = std::strtoull(hex.c_str(), &end, 16);
      if (hex.empty() || end != hex.c_str() + hex.size()) {
        throw std::runtime_error(path + ": malformed grid hash '" + hex + "'");
      }
      sawGrid = true;
    } else if (kind == "shard") {
      const std::size_t slash = rest.find('/');
      if (slash == std::string::npos) {
        throw std::runtime_error(path + ": malformed shard line '" + line + "'");
      }
      info.shardIndex = static_cast<int>(parseIndex(path, rest.substr(0, slash)));
      info.shardCount = static_cast<int>(parseIndex(path, rest.substr(slash + 1)));
      sawShard = true;
    } else if (kind == "cell") {
      const std::size_t sp2 = rest.find(' ');
      if (sp2 == std::string::npos) {
        throw std::runtime_error(path + ": malformed cell line '" + line + "'");
      }
      info.entries.emplace_back(parseIndex(path, rest.substr(0, sp2)), rest.substr(sp2 + 1));
    } else {
      throw std::runtime_error(path + ": unknown manifest line '" + line + "'");
    }
  }
  if (!sawGrid || !sawShard) {
    throw std::runtime_error(path + ": manifest is missing its grid/shard header");
  }
  return info;
}

}  // namespace wfs::analysis::fabric
