#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/fabric/manifest.hpp"

namespace wfs::analysis::fabric {

/// How a cell's line was obtained.
enum class CellSource { kSimulated, kCacheHit, kResumed };

[[nodiscard]] const char* toString(CellSource source);

/// What one cell's runner hands back: the finished JSONL line (no trailing
/// newline) plus whether it may enter the result cache (failed cells and
/// cells with side outputs stay out) and any extra per-cell output that
/// rides along uncached and uncheckpointed (e.g. the --metrics ledger).
struct CellOutput {
  std::string line;
  bool cacheable = true;
  std::string extra;
};

/// One cell of a fabric grid: a stable identity (config hash) plus a
/// closure that produces the cell's line. The closure runs on a worker
/// thread and must be self-contained (one isolated simulator per cell —
/// the same contract SweepRunner has always enforced).
struct FabricCell {
  std::string hexHash;
  std::string label;
  std::function<CellOutput()> run;
};

/// One finished cell with provenance, in ascending grid-index order.
struct FabricRecord {
  std::size_t index = 0;
  std::string hexHash;
  std::string line;
  std::string extra;
  CellSource source = CellSource::kSimulated;
};

struct FabricStats {
  std::size_t gridCells = 0;   // full grid, before shard filtering
  std::size_t shardCells = 0;  // cells this invocation owns
  std::size_t simulated = 0;
  std::size_t cacheHits = 0;
  std::size_t cacheMisses = 0;  // lookups that fell through to simulation
  std::size_t resumed = 0;
};

struct FabricOptions {
  /// Worker threads; <= 0 means hardware concurrency (SweepRunner rules).
  int threads = 0;
  /// This invocation owns grid cells with index % shardCount == shardIndex.
  int shardIndex = 0;
  int shardCount = 1;
  /// Skip cells already present (with matching hashes) in the checkpoint.
  bool resume = false;
  /// Result-cache directory; empty disables the cache.
  std::string cacheDir;
  /// Checkpoint (parts log) path; empty disables checkpointing.
  std::string checkpoint;
  /// Serialized per-finished-cell callback (progress line printing).
  std::function<void(std::size_t done, std::size_t shardCells, const FabricCell& cell,
                     CellSource source, const FabricStats& soFar)>
      progress;
};

struct FabricOutput {
  std::vector<FabricRecord> records;  // this shard's cells, ascending index
  FabricStats stats;
  /// FNV-1a over every cell hash of the FULL grid in index order — the
  /// grid fingerprint fragments carry so merge can refuse cross-grid mixes.
  std::uint64_t gridHash = 0;
};

/// Deterministic fingerprint over a grid's cell hashes (index order).
[[nodiscard]] std::uint64_t gridFingerprint(const std::vector<FabricCell>& cells);

/// Executes a cell grid through shard filtering, checkpoint resume, the
/// result cache and the work-stealing pool, streaming every completion to
/// the fsync'd parts log. The records of a shard are byte-identical to the
/// corresponding slice of a single-process, single-thread run: identity
/// and ordering come from the grid index, never from completion order or
/// from where a line was obtained.
///
/// Throws std::runtime_error if the checkpoint belongs to a different grid
/// or shard spec (hash mismatch / foreign indices) — a stale checkpoint
/// must never be silently folded into fresh results.
[[nodiscard]] FabricOutput runFabric(const std::vector<FabricCell>& cells,
                                     const FabricOptions& opt);

/// Wraps one ExperimentConfig as a fabric cell: identity from
/// cellid::configHash, line from runExperiment + cellJson. Failed cells
/// produce their usual "error" line and are not cached.
[[nodiscard]] FabricCell experimentCell(const ExperimentConfig& cfg, bool withMetrics = false);

/// Flat single-line JSON field access for the fixed-key-order lines the
/// exporters emit (cellJson / availabilityJsonl). Returns nullopt when the
/// key is absent. Keys match whole fields only (`"key":`), never inside
/// string values of other keys.
[[nodiscard]] std::optional<double> lineNumberField(std::string_view line,
                                                    std::string_view key);
[[nodiscard]] std::optional<std::string> lineStringField(std::string_view line,
                                                         std::string_view key);

}  // namespace wfs::analysis::fabric
