// Quickstart: run one paper experiment cell and print what the paper would
// report for it — makespan, cost under both charging models, and the
// storage-layer behaviour behind them.
//
//   ./examples/quickstart [app] [storage] [nodes] [scale]
//   e.g. ./examples/quickstart montage gluster-nufa 4 0.2

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "wfcloudsim.hpp"

namespace {

wfs::analysis::App parseApp(const std::string& s) {
  using wfs::analysis::App;
  if (s == "montage") return App::kMontage;
  if (s == "broadband") return App::kBroadband;
  if (s == "epigenome") return App::kEpigenome;
  throw std::invalid_argument("unknown app: " + s + " (montage|broadband|epigenome)");
}

wfs::analysis::StorageKind parseStorage(const std::string& s) {
  using wfs::analysis::StorageKind;
  for (const StorageKind k :
       {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs}) {
    if (s == wfs::analysis::toString(k)) return k;
  }
  throw std::invalid_argument("unknown storage system: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  wfs::analysis::ExperimentConfig cfg;
  cfg.app = argc > 1 ? parseApp(argv[1]) : wfs::analysis::App::kMontage;
  cfg.storage = argc > 2 ? parseStorage(argv[2]) : wfs::analysis::StorageKind::kGlusterNufa;
  cfg.workerNodes = argc > 3 ? std::atoi(argv[3]) : 2;
  cfg.appScale = argc > 4 ? std::atof(argv[4]) : 0.1;

  std::printf("wfcloudsim quickstart: %s on %s, %d x c1.xlarge (scale %.2f)\n",
              toString(cfg.app), toString(cfg.storage), cfg.workerNodes, cfg.appScale);

  const auto r = wfs::analysis::runExperiment(cfg);

  std::printf("\nworkflow   : %s (%d tasks)\n", r.workflowName.c_str(), r.tasks);
  std::printf("makespan   : %.0f s (%.2f h)\n", r.makespanSeconds,
              r.makespanSeconds / 3600.0);
  std::printf("cost       : $%.2f as billed per-hour, $%.3f if billed per-second\n",
              r.cost.totalHourly(), r.cost.totalPerSecond());
  if (r.cost.s3RequestCost > 0) {
    std::printf("             of which $%.3f S3 request fees\n", r.cost.s3RequestCost);
  }
  std::printf("storage    : %s\n", r.storageMetrics.summary().c_str());
  std::printf("profile    : I/O %s, Memory %s, CPU %s (io %.0f%%, cpu %.0f%%)\n",
              toString(r.profile.ioLevel), toString(r.profile.memoryLevel),
              toString(r.profile.cpuLevel), 100 * r.profile.ioFraction,
              100 * r.profile.cpuFraction);
  return 0;
}
