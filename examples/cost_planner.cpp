// Cost planner: the paper's practical conclusion turned into a tool.
//
// §VI's guidance: provision the fewest nodes that meet the deadline, since
// adding resources only reduces cost under (rare) super-linear speedup;
// and remember that Amazon bills whole hours. Given an application and a
// deadline, this sweeps cluster sizes and storage systems, prints every
// feasible configuration, and recommends the cheapest.
//
//   ./examples/cost_planner [app] [deadline-seconds] [scale]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "wfcloudsim.hpp"

int main(int argc, char** argv) {
  using namespace wfs::analysis;
  const std::string appName = argc > 1 ? argv[1] : "montage";
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.2;
  const double deadline = argc > 2 ? std::atof(argv[2]) : 1e18;

  App app = App::kMontage;
  if (appName == "broadband") app = App::kBroadband;
  if (appName == "epigenome") app = App::kEpigenome;

  std::printf("cost planner: %s, deadline %s, scale %.2f\n\n", toString(app),
              deadline < 1e17 ? (std::to_string(static_cast<long>(deadline)) + " s").c_str()
                              : "none",
              scale);

  struct Option {
    StorageKind kind;
    int nodes;
    ExperimentResult result;
  };
  std::vector<Option> feasible;
  std::size_t bestIdx = SIZE_MAX;  // index into feasible (stable across growth)

  std::printf("%-14s %6s %10s %12s %12s %s\n", "system", "nodes", "makespan", "$/hourly",
              "$/seconds", "meets deadline");
  for (const StorageKind kind : {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs,
                                 StorageKind::kGlusterNufa, StorageKind::kGlusterDist,
                                 StorageKind::kPvfs}) {
    for (const int nodes : {1, 2, 4, 8}) {
      if (kind == StorageKind::kLocal && nodes != 1) continue;
      if ((kind == StorageKind::kGlusterNufa || kind == StorageKind::kGlusterDist ||
           kind == StorageKind::kPvfs) &&
          nodes < 2) {
        continue;
      }
      ExperimentConfig cfg;
      cfg.app = app;
      cfg.storage = kind;
      cfg.workerNodes = nodes;
      cfg.appScale = scale;
      std::fprintf(stderr, "evaluating %s x %d...\n", toString(kind), nodes);
      Option opt{kind, nodes, runExperiment(cfg)};
      const bool meets = opt.result.makespanSeconds <= deadline;
      std::printf("%-14s %6d %9.0fs %12.2f %12.3f %s\n", toString(kind), nodes,
                  opt.result.makespanSeconds, opt.result.cost.totalHourly(),
                  opt.result.cost.totalPerSecond(), meets ? "yes" : "NO");
      if (meets) {
        feasible.push_back(std::move(opt));
        if (bestIdx == SIZE_MAX ||
            feasible.back().result.cost.totalHourly() <
                feasible[bestIdx].result.cost.totalHourly()) {
          bestIdx = feasible.size() - 1;
        }
      }
    }
  }

  if (bestIdx == SIZE_MAX) {
    std::printf("\nno configuration meets the deadline; relax it or add node counts\n");
    return 1;
  }
  const Option& best = feasible[bestIdx];
  std::printf("\nrecommendation: %s on %d node(s) — $%.2f billed, %.0f s\n",
              toString(best.kind), best.nodes, best.result.cost.totalHourly(),
              best.result.makespanSeconds);
  std::printf("(paper §VI: prefer the fewest nodes that meet the required performance,\n"
              " and amortize whole-hour billing by batching workflows onto one cluster)\n");
  return 0;
}
