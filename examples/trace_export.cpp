// Trace export: run a scaled-down Epigenome on NFS, then write the
// artifacts an analyst would want: the workflow DAG as Graphviz DOT, the
// per-task kickstart-style trace as CSV, and a per-node Gantt CSV.
//
//   ./examples/trace_export [outdir] [scale]
//   dot -Tsvg outdir/epigenome.dot -o epigenome.svg

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "wfcloudsim.hpp"
#include "net/fabric.hpp"
#include "storage/nfs/nfs_fs.hpp"

int main(int argc, char** argv) {
  using namespace wfs;
  const std::string outdir = argc > 1 ? argv[1] : ".";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  sim::Simulator sim;
  net::FlowNetwork net{sim};
  net::Fabric fabric{net, net::Fabric::Config{}};
  sim::Rng rng{7};

  cloud::BillingEngine billing;
  cloud::Provisioner prov{sim, net, billing};
  cloud::VirtualCluster cluster;
  for (int i = 0; i < 2; ++i) {
    cluster.workers.push_back(prov.request("c1.xlarge", "w" + std::to_string(i)));
  }
  cluster.auxiliary = prov.request("m1.xlarge", "nfs-server");
  cloud::ContextBroker broker{sim, prov};
  storage::NfsFs fs{sim, fabric, cluster.workerNodes(), cluster.auxiliary->storageNode()};

  wf::TransformationCatalog tc;
  apps::registerEpigenomeTransformations(tc);
  apps::EpigenomeConfig appCfg;
  appCfg.scale = scale;
  sim::Rng appRng = rng.fork();
  const wf::AbstractWorkflow awf = apps::makeEpigenome(appCfg, appRng);
  wf::ReplicaCatalog rc;
  for (const auto& f : awf.externalInputs) rc.registerReplica(f.lfn, fs.name());
  wf::Planner planner{tc, rc, wf::SiteCatalog{}};
  wf::ExecutableWorkflow exec = planner.plan(awf);
  for (const auto& f : awf.externalInputs) fs.preload(f.lfn, f.size);

  std::vector<int> slots;
  std::vector<sim::Resource*> mems;
  for (auto& vm : cluster.workers) {
    slots.push_back(vm->type().cores);
    mems.push_back(&vm->memory());
  }
  wf::Scheduler sched{sim, slots, wf::Scheduler::Policy::kFifo};
  prof::WfProf wfprof;
  wf::DagmanEngine engine{sim,   exec,  fs, sched, mems, &wfprof,
                          wf::DagmanEngine::Options{}};
  sim.spawn([](cloud::ContextBroker& cb, cloud::VirtualCluster& vc, sim::Rng& r,
               wf::DagmanEngine& eng) -> sim::Task<void> {
    co_await cb.deploy(vc, r);
    co_await eng.execute();
  }(broker, cluster, rng, engine));
  sim.run();

  std::printf("ran %s: %d tasks in %.0f s on 2 nodes over NFS\n", awf.name.c_str(),
              engine.completedJobs(), engine.makespan().asSeconds());

  const std::string dotPath = outdir + "/epigenome.dot";
  const std::string tracePath = outdir + "/epigenome_trace.csv";
  const std::string ganttPath = outdir + "/epigenome_gantt.csv";
  std::ofstream{dotPath} << analysis::toDot(exec.dag, awf.name);
  std::ofstream{tracePath} << analysis::traceCsv(wfprof);
  std::ofstream{ganttPath} << analysis::ganttCsv(wfprof);
  std::printf("wrote %s (render with: dot -Tsvg)\n", dotPath.c_str());
  std::printf("wrote %s (%zu task records)\n", tracePath.c_str(), wfprof.traces().size());
  std::printf("wrote %s\n", ganttPath.c_str());
  return 0;
}
