// Storage shootout: the paper's core question for one application —
// "How should workflows share data in the cloud?" Runs every applicable
// storage system at a fixed cluster size and ranks them by makespan and by
// cost, with the storage-layer metrics that explain the ranking.
//
//   ./examples/storage_shootout [app] [nodes] [scale]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "wfcloudsim.hpp"

int main(int argc, char** argv) {
  using namespace wfs::analysis;
  const std::string appName = argc > 1 ? argv[1] : "broadband";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

  App app = App::kBroadband;
  if (appName == "montage") app = App::kMontage;
  if (appName == "epigenome") app = App::kEpigenome;

  std::printf("storage shootout: %s on %d nodes (scale %.2f)\n\n", toString(app), nodes,
              scale);

  struct Row {
    ExperimentResult result;
  };
  std::vector<Row> rows;
  for (const StorageKind kind : {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs,
                                 StorageKind::kGlusterNufa, StorageKind::kGlusterDist,
                                 StorageKind::kPvfs, StorageKind::kXtreemFs}) {
    if (kind == StorageKind::kLocal && nodes != 1) continue;
    if ((kind == StorageKind::kGlusterNufa || kind == StorageKind::kGlusterDist ||
         kind == StorageKind::kPvfs) &&
        nodes < 2) {
      continue;
    }
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.storage = kind;
    cfg.workerNodes = nodes;
    cfg.appScale = scale;
    std::fprintf(stderr, "running %s...\n", toString(kind));
    rows.push_back(Row{runExperiment(cfg)});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.result.makespanSeconds < b.result.makespanSeconds;
  });

  std::printf("%-14s %10s %10s %10s %8s %9s %9s\n", "system", "makespan", "$/hourly",
              "$/seconds", "hit-rate", "local-rd", "remote-rd");
  for (const Row& row : rows) {
    const auto& r = row.result;
    std::printf("%-14s %9.0fs %10.2f %10.3f %8.2f %9llu %9llu\n", r.storageName.c_str(),
                r.makespanSeconds, r.cost.totalHourly(), r.cost.totalPerSecond(),
                r.storageMetrics.cacheHitRate(),
                static_cast<unsigned long long>(r.storageMetrics.localReads),
                static_cast<unsigned long long>(r.storageMetrics.remoteReads));
  }
  std::printf("\nwinner: %s\n", rows.front().result.storageName.c_str());
  return 0;
}
