// Custom workflow: using the library below the experiment driver.
//
// Builds a small map-reduce style workflow by hand with the public wf API,
// provisions a virtual cluster through the cloud layer, deploys GlusterFS
// over it, plans with Pegasus-style catalogs (including horizontal
// clustering), and executes with the DAGMan engine — the same path
// runExperiment() takes, spelled out for adopters with their own
// applications.

#include <cstdio>
#include <string>
#include <vector>

#include "wfcloudsim.hpp"
#include "net/fabric.hpp"
#include "storage/gluster/gluster_fs.hpp"

int main() {
  using namespace wfs;

  // --- World ---------------------------------------------------------------
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  net::Fabric fabric{net, net::Fabric::Config{}};
  sim::Rng rng{2024};

  // --- Virtual cluster: 4 x c1.xlarge --------------------------------------
  cloud::BillingEngine billing;
  cloud::Provisioner prov{sim, net, billing};
  cloud::VirtualCluster cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.workers.push_back(prov.request("c1.xlarge", "w" + std::to_string(i)));
  }
  cloud::ContextBroker broker{sim, prov};

  // --- Shared storage: GlusterFS in NUFA mode -------------------------------
  storage::GlusterFs fs{sim, fabric, cluster.workerNodes(), storage::GlusterMode::kNufa};

  // --- Hand-built workflow: split -> 32 x analyze -> collect ---------------
  wf::AbstractWorkflow awf;
  awf.name = "custom-mapreduce";
  awf.externalInputs = {{"dataset.bin", 2_GB}};
  {
    wf::JobSpec split;
    split.name = "split";
    split.transformation = "split";
    split.cpuSeconds = 15;
    split.peakMemory = 256_MB;
    split.inputs = {{"dataset.bin", 2_GB}};
    for (int i = 0; i < 32; ++i) {
      split.outputs.push_back({"part_" + std::to_string(i), 2_GB / 32});
    }
    awf.dag.addJob(std::move(split));
  }
  for (int i = 0; i < 32; ++i) {
    wf::JobSpec j;
    j.name = "analyze_" + std::to_string(i);
    j.transformation = "analyze";
    j.cpuSeconds = 45;
    j.peakMemory = 512_MB;
    j.inputs = {{"part_" + std::to_string(i), 2_GB / 32}};
    j.outputs = {{"stats_" + std::to_string(i), 4_MB}};
    awf.dag.addJob(std::move(j));
  }
  {
    wf::JobSpec collect;
    collect.name = "collect";
    collect.transformation = "collect";
    collect.cpuSeconds = 10;
    collect.peakMemory = 512_MB;
    for (int i = 0; i < 32; ++i) {
      collect.inputs.push_back({"stats_" + std::to_string(i), 4_MB});
    }
    collect.outputs = {{"report.json", 1_MB}};
    awf.dag.addJob(std::move(collect));
  }
  awf.finalize();

  // --- Plan with catalogs (and cluster the short map tasks 4-per-job) ------
  wf::TransformationCatalog tc;
  tc.add({"split", 1.0});
  tc.add({"analyze", 1.0});
  tc.add({"collect", 1.0});
  wf::ReplicaCatalog rc;
  rc.registerReplica("dataset.bin", fs.name());
  wf::Planner planner{tc, rc, wf::SiteCatalog{}};
  wf::Planner::Options planOpt;
  planOpt.clusterFactor = 4;
  wf::ExecutableWorkflow exec = planner.plan(awf, planOpt);
  std::printf("planned %d jobs (from %d abstract tasks, clustering x%d)\n",
              exec.dag.jobCount(), awf.dag.jobCount(), planOpt.clusterFactor);

  fs.preload("dataset.bin", 2_GB);

  // --- Execute ---------------------------------------------------------------
  std::vector<int> slots;
  std::vector<sim::Resource*> memories;
  for (auto& vm : cluster.workers) {
    slots.push_back(vm->type().cores);
    memories.push_back(&vm->memory());
  }
  wf::Scheduler scheduler{sim, slots, wf::Scheduler::Policy::kFifo};
  prof::WfProf wfprof;
  wf::DagmanEngine engine{sim,    exec,    fs, scheduler, memories, &wfprof,
                          wf::DagmanEngine::Options{}};
  sim.spawn([](cloud::ContextBroker& cb, cloud::VirtualCluster& vc, sim::Rng& r,
               wf::DagmanEngine& eng) -> sim::Task<void> {
    co_await cb.deploy(vc, r);
    co_await eng.execute();
  }(broker, cluster, rng, engine));
  sim.run();

  std::printf("cluster ready at %.0f s; workflow makespan %.1f s\n",
              broker.readyAt().asSeconds(), engine.makespan().asSeconds());
  const auto profile = wfprof.profile();
  std::printf("tasks: %zu, io fraction %.0f%%, cpu fraction %.0f%%\n", profile.taskCount,
              100 * profile.ioFraction, 100 * profile.cpuFraction);
  std::printf("storage: %s\n", fs.metrics().summary().c_str());
  prov.settleBilling();
  std::printf("cost (whole session incl. boot): $%.2f billed hourly\n",
              billing.report().totalHourly());
  return 0;
}
