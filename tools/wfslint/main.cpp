// wfslint — project-specific determinism & invariant lint for wfcloudsim.
//
// Every number this repo publishes (the Fig 2–7 curves, the availability
// sweeps) is gated on byte-identical replay across --jobs 1/2/8 and across
// machines. wfslint makes the properties that gate depends on *statically*
// checked instead of discovered when the CI diff flickers:
//
//   D1-wall-clock      no ambient time/entropy reads in simulation code
//   D2-unordered-iter  no iteration over std::unordered_{map,set}
//   D3-rng-seed        RNG streams forked per concern, never literal-seeded
//   D4-float-eq        no exact float compares / unordered accumulation
//   D5-layering        no Trace::instance(), catalog mutations only inside
//                      src/storage
//   L-layering         the include graph respects the layer DAG
//                      simcore < blk/net < storage < fault < wf < cloud <
//                      analysis < apps/tools, and is cycle-free
//   D6-identity-drift  cfg-v cell identity covers every config field; the
//                      cache salt version rides every identity bump
//   D7-counter-monotonic  metrics/outcome counters only accumulate
//   D8-hot-path-alloc  no allocation inside hot-begin/hot-end regions
//   D9-error-style     throw/die() messages: one line, subsystem-prefixed
//
// It is a token/regex tier (comment- and string-aware) plus a cross-file
// pass over the include graph and the identity serializer, so it needs no
// libclang and runs in milliseconds; the generic tier (clang-tidy, -Werror)
// rides in CI next to it. File lists come from directories, explicit paths,
// or -p build/compile_commands.json. `--sarif FILE` mirrors the findings as
// SARIF 2.1.0 for CI code-scanning annotations.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "project.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "source_file.hpp"

namespace fs = std::filesystem;
using wfs::lint::Finding;
using wfs::lint::RuleContext;
using wfs::lint::SourceFile;

namespace {

struct Options {
  std::vector<std::string> inputs;
  std::string compileCommands;
  std::string root;      // repo root for display-path classification
  std::string treatAs;   // classify a single input as if at this path
  std::string sarifOut;  // mirror findings as SARIF 2.1.0 to this file
  bool allRules = false;
  bool listRules = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [path...]\n"
               "  path                 file or directory (recursed: .cpp .cc .hpp .h)\n"
               "  -p FILE              take the file list from compile_commands.json\n"
               "  --root DIR           repo root used to classify paths (default: cwd)\n"
               "  --treat-as PATH      classify the single input file as if it were at\n"
               "                       PATH relative to the root (fixture testing)\n"
               "  --all-rules          ignore the per-path rule policy (fixture testing)\n"
               "  --sarif FILE         also write the findings as SARIF 2.1.0\n"
               "  --list-rules         print the rule table and exit\n",
               argv0);
  return 2;
}

bool hasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// The fixture corpus is full of deliberate violations; directory walks skip
/// it so linting tests/ stays clean. Explicit file arguments still reach it.
bool isFixturePath(const std::string& p) {
  return p.find("tests/lint/fixtures") != std::string::npos;
}

/// Scrapes the "file" entries out of compile_commands.json. The format is
/// stable enough (CMake writes it) that a full JSON parser buys nothing.
std::vector<std::string> filesFromCompileCommands(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "wfslint: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t open = text.find('"', text.find(':', pos));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    files.push_back(text.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string displayPathFor(const std::string& file, const std::string& root) {
  std::error_code ec;
  const fs::path abs = fs::weakly_canonical(fs::path(file), ec);
  const fs::path rootAbs = fs::weakly_canonical(fs::path(root), ec);
  const std::string absStr = abs.generic_string();
  const std::string rootStr = rootAbs.generic_string();
  if (!rootStr.empty() && absStr.rfind(rootStr + "/", 0) == 0) {
    return absStr.substr(rootStr.size() + 1);
  }
  return fs::path(file).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path().generic_string();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-p" && i + 1 < argc) {
      opt.compileCommands = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--treat-as" && i + 1 < argc) {
      opt.treatAs = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      opt.sarifOut = argv[++i];
    } else if (arg == "--all-rules") {
      opt.allRules = true;
    } else if (arg == "--list-rules") {
      opt.listRules = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wfslint: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      opt.inputs.push_back(arg);
    }
  }

  if (opt.listRules) {
    for (const auto& [id, summary] : wfs::lint::ruleTable()) {
      std::printf("%-22s %s\n", id.c_str(), summary.c_str());
    }
    return 0;
  }

  // Assemble the file list: explicit files, recursed directories, then the
  // compilation database. Sorted + deduplicated so output order (and the
  // tool's own exit behaviour) is deterministic regardless of filesystem
  // enumeration order — a lint tool about determinism had better be.
  std::vector<std::string> files;
  for (const std::string& input : opt.inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input, ec)) {
        if (!entry.is_regular_file(ec) || !hasSourceExtension(entry.path())) continue;
        const std::string p = entry.path().generic_string();
        if (isFixturePath(p)) continue;
        files.push_back(p);
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::fprintf(stderr, "wfslint: no such file or directory: %s\n", input.c_str());
      return 2;
    }
  }
  if (!opt.compileCommands.empty()) {
    for (std::string& f : filesFromCompileCommands(opt.compileCommands)) {
      if (!isFixturePath(f) && hasSourceExtension(fs::path(f))) files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "wfslint: no input files\n");
    return usage(argv[0]);
  }
  if (!opt.treatAs.empty() && files.size() != 1) {
    std::fprintf(stderr, "wfslint: --treat-as needs exactly one input file\n");
    return 2;
  }

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  RuleContext ctx;
  for (const std::string& f : files) {
    const std::string display =
        !opt.treatAs.empty() ? opt.treatAs : displayPathFor(f, opt.root);
    SourceFile sf = wfs::lint::loadSource(f, display);
    if (sf.loadFailed) {
      std::fprintf(stderr, "wfslint: cannot read %s\n", f.c_str());
      return 2;
    }
    ctx.unordered.collect(sf);
    ctx.counters.collect(sf);
    sources.push_back(std::move(sf));
  }
  ctx.unordered.finalize();

  std::vector<Finding> findings;
  for (const SourceFile& sf : sources) {
    for (Finding& finding : wfs::lint::runRules(sf, ctx, opt.allRules)) {
      findings.push_back(std::move(finding));
    }
  }
  for (Finding& finding : wfs::lint::runCrossFileRules(sources)) {
    findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.ruleId != b.ruleId) return a.ruleId < b.ruleId;
    return a.message < b.message;
  });

  for (const Finding& finding : findings) {
    std::printf("%s\n", finding.format().c_str());
  }
  if (!opt.sarifOut.empty() && !wfs::lint::writeSarif(opt.sarifOut, findings)) {
    std::fprintf(stderr, "wfslint: cannot write %s\n", opt.sarifOut.c_str());
    return 2;
  }

  if (findings.empty()) {
    std::printf("wfslint: no findings (%zu files scanned)\n", files.size());
    return 0;
  }
  std::printf("wfslint: %zu finding(s) across %zu files scanned\n", findings.size(),
              files.size());
  return 1;
}
