#pragma once

#include <string>
#include <vector>

#include "source_file.hpp"

namespace wfs::lint {

/// One rule violation: `file:line: [id] message; fix: ...` on a single line
/// so CI logs and ctest PASS_REGULAR_EXPRESSION can key on the rule id.
struct Finding {
  std::string file;
  int line = 0;
  std::string ruleId;
  std::string message;
  std::string fixit;

  [[nodiscard]] std::string format() const;
};

/// Identifiers known to name unordered containers, gathered in a repo-wide
/// first pass: variables/members declared `std::unordered_{map,set}<...>`,
/// functions returning (references to) them, and `auto x = std::move(y)`
/// aliases of either. Shared across files so `catalog_.entries()` iteration
/// is caught even though the declaration lives in another header.
class UnorderedIndex {
 public:
  void collect(const SourceFile& sf);
  /// Resolves collected move-aliases against the collected names; call once
  /// after every file has been through collect().
  void finalize();
  [[nodiscard]] bool contains(const std::string& name) const;

 private:
  std::vector<std::string> names_;  // kept sorted+unique
  std::vector<std::pair<std::string, std::string>> aliases_;
  void add(std::string name);
};

/// One member-variable declaration of a struct, as parsed by
/// parseStructFields: the declared name, the (whitespace-normalized)
/// declaration text before the name, and the 1-based line it sits on.
struct StructField {
  std::string name;
  std::string type;
  int line = 0;
};

/// Token-tier parse of `struct <name> { ... }` in sf.stripped: extracts the
/// member-variable declarations (depth-1 statements with no parameter
/// list), skipping member functions. Returns false when the struct is not
/// defined in this file. `structLine` receives the definition's line.
bool parseStructFields(const SourceFile& sf, const std::string& structName,
                       std::vector<StructField>& out, int& structLine);

/// Monotone counter members of the metrics/outcome ledger structs
/// (LayerMetrics, StorageMetrics, FaultOutcome, RedundancyOutcome),
/// gathered repo-wide from the struct definitions themselves so fixtures
/// and the real tree feed the same machinery. Rule D7 flags any write to
/// these names that is not `+=`/`++` (outside a reset()).
class CounterIndex {
 public:
  void collect(const SourceFile& sf);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;  // kept sorted+unique
  void add(std::string name);
};

/// Cross-file state shared by every per-file rule pass.
struct RuleContext {
  UnorderedIndex unordered;
  CounterIndex counters;
};

/// Does suppression token `rule` cover finding id `id`? Tokens must be the
/// full rule id ("D2-unordered-iter") or the full family short name
/// ("unordered-iter"); a short name shared by several rules is ambiguous
/// and covers nothing (and is itself reported as a bad suppression).
[[nodiscard]] bool ruleTokenCovers(const std::string& rule, const std::string& id);

/// How many rule ids the token would cover; 0 = unknown, >1 = ambiguous.
[[nodiscard]] int ruleTokenCoverage(const std::string& rule);

/// True when `line` of `sf` carries a well-formed suppression for `id`.
/// Shared between the per-file rules and the cross-file tier.
[[nodiscard]] bool isSuppressed(const SourceFile& sf, int line, const std::string& id);

/// Per-file rule driver. `displayPath` (repo-relative) feeds the path
/// policy: D3/D7/D9 guard library code (src/, tools/) only — tests, benches
/// and examples legitimately pin experiment-root seeds and expected
/// counter values; D5's catalog-mutation check exempts src/storage/ and
/// tests/storage/. `allRules` (fixture mode) disables the policy.
std::vector<Finding> runRules(const SourceFile& sf, const RuleContext& ctx, bool allRules);

/// Canonical rule ids, for --list-rules, SARIF metadata and suppression
/// matching.
std::vector<std::pair<std::string, std::string>> ruleTable();

}  // namespace wfs::lint
