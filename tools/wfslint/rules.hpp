#pragma once

#include <string>
#include <vector>

#include "source_file.hpp"

namespace wfs::lint {

/// One rule violation: `file:line: [id] message; fix: ...` on a single line
/// so CI logs and ctest PASS_REGULAR_EXPRESSION can key on the rule id.
struct Finding {
  std::string file;
  int line = 0;
  std::string ruleId;
  std::string message;
  std::string fixit;

  [[nodiscard]] std::string format() const;
};

/// Identifiers known to name unordered containers, gathered in a repo-wide
/// first pass: variables/members declared `std::unordered_{map,set}<...>`,
/// functions returning (references to) them, and `auto x = std::move(y)`
/// aliases of either. Shared across files so `catalog_.entries()` iteration
/// is caught even though the declaration lives in another header.
class UnorderedIndex {
 public:
  void collect(const SourceFile& sf);
  /// Resolves collected move-aliases against the collected names; call once
  /// after every file has been through collect().
  void finalize();
  [[nodiscard]] bool contains(const std::string& name) const;

 private:
  std::vector<std::string> names_;  // kept sorted+unique
  std::vector<std::pair<std::string, std::string>> aliases_;
  void add(std::string name);
};

/// Per-file rule driver. `displayPath` (repo-relative) feeds the path
/// policy: D3 guards library code (src/, tools/) only — tests, benches and
/// examples legitimately pin experiment-root seeds; D5's catalog-mutation
/// check exempts src/storage/ and tests/storage/, its include check applies
/// inside src/simcore/. `allRules` (fixture mode) disables the policy.
std::vector<Finding> runRules(const SourceFile& sf, const UnorderedIndex& unordered,
                              bool allRules);

/// Canonical rule ids, for --list-rules and suppression matching.
std::vector<std::pair<std::string, std::string>> ruleTable();

}  // namespace wfs::lint
