#include "project.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <regex>
#include <string>

namespace wfs::lint {

namespace {

constexpr const char* kL = "L-layering";
constexpr const char* kD6 = "D6-identity-drift";

const char* kLFix =
    "invert the dependency or hoist the shared type down-layer; a deliberate "
    "exception needs `// wfslint: allow(L-layering) <reason>`";
const char* kD6Fix =
    "keep cellid.cpp's destructuring, the cfg-v string and the wfs-results-v cache "
    "salt in one commit (docs/SWEEPS.md salt-bump rule)";

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool endsWith(const std::string& s, const std::string& tail) {
  return s.size() >= tail.size() && s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

/// Matches text[open] ('(', '[' or '{') to its closing bracket, honouring
/// nesting of the three code bracket kinds. Returns npos when unbalanced.
std::size_t matchBracket(const std::string& text, std::size_t open) {
  int paren = 0;
  int square = 0;
  int brace = 0;
  const char want = text[open];
  for (std::size_t i = open; i < text.size(); ++i) {
    switch (text[i]) {
      case '(': ++paren; break;
      case ')': --paren; break;
      case '[': ++square; break;
      case ']': --square; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      default: break;
    }
    if (paren == 0 && square == 0 && brace == 0) {
      if ((want == '(' && text[i] == ')') || (want == '[' && text[i] == ']') ||
          (want == '{' && text[i] == '}')) {
        return i;
      }
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// L-layering: include graph vs. the layer DAG.
// ---------------------------------------------------------------------------

struct Layer {
  int rank = -1;
  const char* name = "";
};

/// Layer of a repo-relative file path. First match wins; unlisted paths
/// (tests/, bench/, examples/) carry no layer — they may include anything,
/// and nothing includes them.
std::optional<Layer> layerOfPath(const std::string& p) {
  static const std::pair<const char*, Layer> kTable[] = {
      {"src/simcore/", {0, "simcore"}}, {"src/blk/", {1, "blk"}},
      {"src/net/", {1, "net"}},         {"src/prof/", {1, "prof"}},
      {"src/storage/", {2, "storage"}}, {"src/fault/", {3, "fault"}},
      {"src/wf/", {4, "wf"}},           {"src/cloud/", {5, "cloud"}},
      {"src/analysis/", {6, "analysis"}}, {"src/apps/", {7, "apps"}},
      {"tools/", {7, "tools"}},         {"src/", {7, "src"}},
  };
  for (const auto& [prefix, layer] : kTable) {
    if (p.rfind(prefix, 0) == 0) return layer;
  }
  return std::nullopt;
}

/// Layer of an include target as written (targets are rooted at src/, so
/// `"wf/engine.hpp"` is the wf layer even when the header was not scanned).
/// No src/ umbrella here: a quoted target outside the layer directories
/// (`"unistd.h"`) is not project code and carries no rank.
std::optional<Layer> layerOfTarget(const std::string& t) {
  if (t == "wfcloudsim.hpp") return Layer{7, "src"};
  static const std::pair<const char*, Layer> kTable[] = {
      {"simcore/", {0, "simcore"}}, {"blk/", {1, "blk"}},
      {"net/", {1, "net"}},         {"prof/", {1, "prof"}},
      {"storage/", {2, "storage"}}, {"fault/", {3, "fault"}},
      {"wf/", {4, "wf"}},           {"cloud/", {5, "cloud"}},
      {"analysis/", {6, "analysis"}}, {"apps/", {7, "apps"}},
  };
  for (const auto& [prefix, layer] : kTable) {
    if (t.rfind(prefix, 0) == 0) return layer;
  }
  return std::nullopt;
}

/// Lexically normalizes `a/b/../c` include paths so dirname-relative
/// resolution maps onto scanned display paths.
std::string normalizePath(const std::string& p) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i <= p.size()) {
    const std::size_t j = std::min(p.find('/', i), p.size());
    const std::string part = p.substr(i, j - i);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    i = j + 1;
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out.push_back('/');
    out += part;
  }
  return out;
}

struct IncludeEdge {
  int line = 0;
  std::string target;  ///< As written between the quotes/brackets.
  bool quoted = false; ///< `"..."` (project include) vs `<...>` (system).
  int toNode = -1;     ///< Index into sources when the target was scanned.
};

/// Extracts the `#include` directives of one file. Reads the target from
/// `raw` (the lexer blanks string literals in `stripped`, include targets
/// among them) but keys on `stripped` to skip directives inside comments.
std::vector<IncludeEdge> parseIncludes(const SourceFile& sf) {
  std::vector<IncludeEdge> edges;
  static const std::regex includeRe(R"(^\s*#\s*include\s*(["<])([^">]+)([">]))");
  std::size_t lineBegin = 0;
  int line = 1;
  while (lineBegin <= sf.raw.size()) {
    std::size_t lineEnd = sf.raw.find('\n', lineBegin);
    if (lineEnd == std::string::npos) lineEnd = sf.raw.size();
    // A directive commented out wholesale leaves no '#' in stripped.
    if (lineBegin < sf.stripped.size() &&
        sf.stripped.find('#', lineBegin) < std::min(lineEnd, sf.stripped.size())) {
      const std::string rawLine = sf.raw.substr(lineBegin, lineEnd - lineBegin);
      std::smatch m;
      if (std::regex_search(rawLine, m, includeRe)) {
        edges.push_back({line, m[2].str(), m[1].str() == "\"", -1});
      }
    }
    lineBegin = lineEnd + 1;
    ++line;
  }
  return edges;
}

std::string dirnameOf(const std::string& p) {
  const std::size_t slash = p.rfind('/');
  return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

void runLayering(const std::vector<SourceFile>& sources, std::vector<Finding>& findings) {
  std::map<std::string, int> byDisplay;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    byDisplay.emplace(sources[i].displayPath, static_cast<int>(i));
  }

  std::vector<std::vector<IncludeEdge>> graph(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourceFile& sf = sources[i];
    graph[i] = parseIncludes(sf);
    for (IncludeEdge& e : graph[i]) {
      // Resolution candidates, in preprocessor order: alongside the
      // includer, then rooted at src/ (the one -I of this build), then
      // verbatim (tools/ headers addressed repo-relative).
      const std::string dir = dirnameOf(sf.displayPath);
      for (const std::string& cand :
           {normalizePath(dir.empty() ? e.target : dir + "/" + e.target),
            "src/" + e.target, e.target}) {
        const auto it = byDisplay.find(cand);
        if (it != byDisplay.end()) {
          e.toNode = it->second;
          break;
        }
      }
    }
  }

  // Direct-edge check. The layers form a total order, so a tree whose every
  // direct edge points at an equal-or-lower rank cannot reach a higher rank
  // through any chain of includes — enforcing edges enforces the DAG
  // transitively.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourceFile& sf = sources[i];
    const auto from = layerOfPath(sf.displayPath);
    if (!from) continue;
    for (const IncludeEdge& e : graph[i]) {
      if (!e.quoted && e.toNode < 0) continue;  // system header
      const auto to = e.toNode >= 0
                          ? layerOfPath(sources[static_cast<std::size_t>(e.toNode)].displayPath)
                          : layerOfTarget(e.target);
      if (!to || to->rank <= from->rank) continue;
      if (isSuppressed(sf, e.line, kL)) continue;
      findings.push_back(
          {sf.displayPath, e.line, kL,
           "layer " + std::string(from->name) + " may not include `" + e.target +
               "` (layer " + to->name +
               "): the DAG is simcore < blk/net < storage < fault < wf < cloud < "
               "analysis < apps/tools",
           kLFix});
    }
  }

  // Cycle check over the resolved part of the graph. Iterative DFS in
  // deterministic (sorted-input) order; each back edge closes a cycle and is
  // reported once, at the include that closes it.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(sources.size(), Color::kWhite);
  std::vector<int> pathNode;  // current DFS stack, for cycle reconstruction

  struct Frame {
    int node;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < sources.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{static_cast<int>(root)}};
    color[root] = Color::kGray;
    pathNode.push_back(static_cast<int>(root));
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto node = static_cast<std::size_t>(f.node);
      if (f.edge < graph[node].size()) {
        const IncludeEdge& e = graph[node][f.edge++];
        if (e.toNode < 0) continue;
        const auto next = static_cast<std::size_t>(e.toNode);
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          pathNode.push_back(e.toNode);
          stack.push_back({e.toNode});
        } else if (color[next] == Color::kGray) {
          const SourceFile& sf = sources[node];
          if (isSuppressed(sf, e.line, kL)) continue;
          std::string cycle;
          const auto at = std::find(pathNode.begin(), pathNode.end(), e.toNode);
          for (auto it = at; it != pathNode.end(); ++it) {
            cycle += sources[static_cast<std::size_t>(*it)].displayPath + " -> ";
          }
          cycle += sources[next].displayPath;
          findings.push_back({sf.displayPath, e.line, kL, "include cycle: " + cycle,
                              "break the cycle with a forward declaration or by "
                              "splitting the shared type into its own header"});
        }
      } else {
        color[node] = Color::kBlack;
        pathNode.pop_back();
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D6-identity-drift: struct fields vs. the cfg-v cell-identity serializer.
// ---------------------------------------------------------------------------

/// Locates the body `{...}` of free function `name` in sf.stripped.
/// Returns false when the file has no definition of it.
bool functionBody(const SourceFile& sf, const std::string& name, std::size_t& bodyBegin,
                  std::size_t& bodyEnd) {
  const std::string& text = sf.stripped;
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += name.size();
    if (at > 0 && isIdentChar(text[at - 1])) continue;
    if (pos < text.size() && isIdentChar(text[pos])) continue;
    std::size_t i = pos;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
    if (i >= text.size() || text[i] != '(') continue;
    const std::size_t closeParen = matchBracket(text, i);
    if (closeParen == std::string::npos) continue;
    i = closeParen + 1;
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) != 0 || isIdentChar(text[i]))) {
      ++i;  // skip `const`, `noexcept`, trailing attributes-free tokens
    }
    if (i >= text.size() || text[i] != '{') continue;  // a declaration or a call
    const std::size_t closeBrace = matchBracket(text, i);
    if (closeBrace == std::string::npos) continue;
    bodyBegin = i + 1;
    bodyEnd = closeBrace;
    return true;
  }
  return false;
}

/// Parses the first structured binding `auto [a, b, c] = ...` inside
/// [begin, end) of sf.stripped. Returns the bound names in order plus the
/// binding's line and the offset just past the closing `]`.
bool structuredBinding(const SourceFile& sf, std::size_t begin, std::size_t end,
                       std::vector<std::string>& names, int& line, std::size_t& after) {
  const std::string& text = sf.stripped;
  const std::size_t open = text.find('[', begin);
  if (open == std::string::npos || open >= end) return false;
  const std::size_t close = matchBracket(text, open);
  if (close == std::string::npos || close >= end) return false;
  std::string current;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = text[i];
    if (c == ',' || i == close) {
      std::string t = current;
      t.erase(std::remove_if(t.begin(), t.end(),
                             [](char ch) {
                               return std::isspace(static_cast<unsigned char>(ch)) != 0;
                             }),
              t.end());
      if (!t.empty()) names.push_back(std::move(t));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  line = sf.lineOf(open);
  after = close + 1;
  return !names.empty();
}

/// First version number matching `"<prefix><N>` in the file's raw text
/// (versions live inside string literals, which `stripped` blanks). The
/// closing quote is deliberately not required: `"cfg-v2"` and `"cfg-v2;"`
/// both carry the version, and demanding the quote would let a harmless
/// reformat silently disable the lockstep check.
std::optional<int> versionLiteral(const SourceFile& sf, const std::string& prefix, int& line) {
  const std::regex re("\"" + prefix + "([0-9]+)");
  std::smatch m;
  if (!std::regex_search(sf.raw, m, re)) return std::nullopt;
  line = sf.lineOf(static_cast<std::size_t>(m.position(0)));
  return std::stoi(m[1].str());
}

/// How bound name `name` is used in the serializer tail [begin, end):
/// serialized (a real use), excluded (`(void)name`), or absent.
enum class Use { kAbsent, kExcluded, kSerialized };

Use usageOf(const SourceFile& sf, std::size_t begin, std::size_t end, const std::string& name,
            int& excludedLine) {
  const std::string& text = sf.stripped;
  Use seen = Use::kAbsent;
  std::size_t pos = begin;
  while ((pos = text.find(name, pos)) != std::string::npos && pos < end) {
    const std::size_t at = pos;
    pos += name.size();
    if (at > 0 && isIdentChar(text[at - 1])) continue;
    if (pos < text.size() && isIdentChar(text[pos])) continue;
    std::size_t k = at;
    while (k > begin && std::isspace(static_cast<unsigned char>(text[k - 1])) != 0) --k;
    if (k >= begin + 6 && text.compare(k - 6, 6, "(void)") == 0) {
      seen = Use::kExcluded;
      excludedLine = sf.lineOf(at);
      continue;
    }
    return Use::kSerialized;
  }
  return seen;
}

/// One serializer function vs. one struct definition.
void checkDestructuring(const SourceFile& serializer, const std::string& function,
                        const SourceFile* structFile, const std::string& structName,
                        std::vector<Finding>& findings) {
  std::size_t bodyBegin = 0;
  std::size_t bodyEnd = 0;
  if (!functionBody(serializer, function, bodyBegin, bodyEnd)) return;
  std::vector<std::string> bound;
  int bindLine = 0;
  std::size_t tailBegin = 0;
  if (!structuredBinding(serializer, bodyBegin, bodyEnd, bound, bindLine, tailBegin)) return;

  const auto emit = [&](int line, std::string message, std::string fixit = kD6Fix) {
    if (isSuppressed(serializer, line, kD6)) return;
    findings.push_back({serializer.displayPath, line, kD6, std::move(message), fixit});
  };

  // Field-list cross-check needs the struct definition in the scanned set.
  if (structFile != nullptr) {
    std::vector<StructField> fields;
    int structLine = 0;
    if (parseStructFields(*structFile, structName, fields, structLine)) {
      const std::size_t n = std::min(bound.size(), fields.size());
      bool drifted = false;
      for (std::size_t i = 0; i < n && !drifted; ++i) {
        if (bound[i] == fields[i].name) continue;
        drifted = true;
        emit(bindLine, function + " binding #" + std::to_string(i + 1) + " is `" + bound[i] +
                           "` but " + structName + " field #" + std::to_string(i + 1) +
                           " is `" + fields[i].name + "` (" + structFile->displayPath + ":" +
                           std::to_string(fields[i].line) + ")");
      }
      if (!drifted && fields.size() > bound.size()) {
        emit(bindLine, structName + " field `" + fields[bound.size()].name + "` (" +
                           structFile->displayPath + ":" +
                           std::to_string(fields[bound.size()].line) +
                           ") is missing from the " + function + " destructuring — the "
                           "structured binding would no longer compile exhaustively, and "
                           "the field would be invisible to the cell identity");
      } else if (!drifted && bound.size() > fields.size()) {
        emit(bindLine, function + " binds `" + bound[fields.size()] + "` which is not a "
                           "field of " + structName);
      }
    }
  }

  // Every bound name must feed the identity string, or carry a documented
  // `(void)` exclusion on its own line.
  for (const std::string& name : bound) {
    int excludedLine = 0;
    switch (usageOf(serializer, tailBegin, bodyEnd, name, excludedLine)) {
      case Use::kSerialized:
        break;
      case Use::kAbsent:
        emit(bindLine, function + " destructures `" + name +
                           "` but never serializes it into the identity string");
        break;
      case Use::kExcluded: {
        const auto [b, e] = serializer.lineRange(excludedLine);
        const std::string rawLine = serializer.raw.substr(b, e - b);
        if (rawLine.find("exclusion") == std::string::npos) {
          emit(excludedLine, function + " casts `" + name +
                                 "` to void without a documented exclusion",
               "state why the field cannot affect results: `(void)" + name +
                   ";  // deliberate exclusion: <why>`");
        }
        break;
      }
    }
  }
}

void runIdentityDrift(const std::vector<SourceFile>& sources, std::vector<Finding>& findings) {
  const SourceFile* serializer = nullptr;
  const SourceFile* configStruct = nullptr;
  const SourceFile* faultStruct = nullptr;
  const SourceFile* saltFile = nullptr;
  for (const SourceFile& sf : sources) {
    if (serializer == nullptr && endsWith(sf.displayPath, "analysis/fabric/cellid.cpp")) {
      serializer = &sf;
    }
    if (configStruct == nullptr) {
      std::vector<StructField> fields;
      int line = 0;
      if (parseStructFields(sf, "ExperimentConfig", fields, line)) configStruct = &sf;
    }
    if (faultStruct == nullptr &&
        sf.stripped.find("namespace wfs::fault") != std::string::npos) {
      std::vector<StructField> fields;
      int line = 0;
      if (parseStructFields(sf, "Spec", fields, line)) faultStruct = &sf;
    }
    if (saltFile == nullptr && sf.raw.find("\"wfs-results-v") != std::string::npos &&
        sf.stripped.find("salt") != std::string::npos) {
      saltFile = &sf;
    }
  }
  if (serializer == nullptr) return;  // partial scan: nothing to anchor on

  checkDestructuring(*serializer, "canonicalConfig", configStruct, "ExperimentConfig",
                     findings);
  checkDestructuring(*serializer, "canonicalFaultSpec", faultStruct, "Spec", findings);

  // Salt-bump coupling: the identity version and the cache salt version move
  // in lockstep (docs/SWEEPS.md). Equality is deliberate — bumping either
  // alone is the drift this rule exists to catch.
  int cfgLine = 0;
  const auto cfgVersion = versionLiteral(*serializer, "cfg-v", cfgLine);
  if (cfgVersion && saltFile != nullptr) {
    int saltLine = 0;
    const auto saltVersion = versionLiteral(*saltFile, "wfs-results-v", saltLine);
    if (saltVersion && *saltVersion != *cfgVersion &&
        !isSuppressed(*serializer, cfgLine, kD6)) {
      findings.push_back(
          {serializer->displayPath, cfgLine, kD6,
           "cell identity is cfg-v" + std::to_string(*cfgVersion) +
               " but the result-cache salt is wfs-results-v" + std::to_string(*saltVersion) +
               " (" + saltFile->displayPath + ":" + std::to_string(saltLine) +
               ") — versions must move in lockstep",
           kD6Fix});
    }
  }
}

}  // namespace

std::vector<Finding> runCrossFileRules(const std::vector<SourceFile>& sources) {
  std::vector<Finding> findings;
  runLayering(sources, findings);
  runIdentityDrift(sources, findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.ruleId < b.ruleId;
  });
  return findings;
}

}  // namespace wfs::lint
