#include "source_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace wfs::lint {

namespace {

/// What a `wfslint:` comment annotation turned out to be.
enum class AnnotationKind { kNone, kAllow, kHotBegin, kHotEnd };

/// Parses one comment's text (without the `//` or `/* */` fences) looking
/// for a wfslint annotation. `allow(<rule>) <reason>` fills `rule`/`reason`
/// — even with an empty reason, so the caller can report a bad suppression
/// instead of silently ignoring it. `hot-begin(<name>)` fills `rule` with
/// the region name; `hot-end` takes no operand.
AnnotationKind parseAnnotation(const std::string& comment, std::string& rule,
                               std::string& reason) {
  const std::string marker = "wfslint:";
  const std::size_t m = comment.find(marker);
  if (m == std::string::npos) return AnnotationKind::kNone;
  std::size_t i = m + marker.size();
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i])) != 0) ++i;
  const std::string hotEnd = "hot-end";
  if (comment.compare(i, hotEnd.size(), hotEnd) == 0) return AnnotationKind::kHotEnd;
  const std::string hotBegin = "hot-begin(";
  if (comment.compare(i, hotBegin.size(), hotBegin) == 0) {
    const std::size_t close = comment.find(')', i + hotBegin.size());
    if (close == std::string::npos) return AnnotationKind::kNone;
    rule = comment.substr(i + hotBegin.size(), close - i - hotBegin.size());
    return AnnotationKind::kHotBegin;
  }
  const std::string verb = "allow(";
  if (comment.compare(i, verb.size(), verb) != 0) return AnnotationKind::kNone;
  i += verb.size();
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) return AnnotationKind::kNone;
  rule = comment.substr(i, close - i);
  // Trim the rule token.
  while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front())) != 0) {
    rule.erase(rule.begin());
  }
  while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back())) != 0) {
    rule.pop_back();
  }
  reason = comment.substr(close + 1);
  // The reason is everything after the closing paren, trimmed; `*/` fences
  // were never included (the lexer hands us comment bodies only).
  const auto notSpace = [](char c) { return std::isspace(static_cast<unsigned char>(c)) == 0; };
  reason.erase(reason.begin(), std::find_if(reason.begin(), reason.end(), notSpace));
  reason.erase(std::find_if(reason.rbegin(), reason.rend(), notSpace).base(), reason.end());
  return AnnotationKind::kAllow;
}

/// True when `stripped[start, lineStart)` holds only whitespace — i.e. the
/// comment owned its whole line.
bool onlyWhitespaceBefore(const std::string& text, std::size_t lineStart, std::size_t pos) {
  for (std::size_t i = lineStart; i < pos; ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i])) == 0) return false;
  }
  return true;
}

}  // namespace

int SourceFile::lineOf(std::size_t offset) const {
  const auto it = std::upper_bound(lineStarts_.begin(), lineStarts_.end(), offset);
  return static_cast<int>(it - lineStarts_.begin());
}

std::pair<std::size_t, std::size_t> SourceFile::lineRange(int line) const {
  const auto idx = static_cast<std::size_t>(line - 1);
  if (idx >= lineStarts_.size()) return {stripped.size(), stripped.size()};
  const std::size_t begin = lineStarts_[idx];
  const std::size_t end =
      idx + 1 < lineStarts_.size() ? lineStarts_[idx + 1] : stripped.size();
  return {begin, end};
}

SourceFile loadSource(const std::string& path, const std::string& displayPath) {
  SourceFile sf;
  sf.path = path;
  sf.displayPath = displayPath;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    sf.loadFailed = true;
    return sf;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  sf.raw = buf.str();
  const std::string& text = sf.raw;

  sf.stripped.reserve(text.size());
  sf.lineStarts_.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string comment;          // Body of the comment currently being read.
  std::size_t commentStart = 0; // Offset of its first character.
  std::string rawDelim;         // Delimiter of the raw string in flight.

  auto finishComment = [&sf](const std::string& body, std::size_t startOffset) {
    std::string rule;
    std::string reason;
    const AnnotationKind kind = parseAnnotation(body, rule, reason);
    if (kind == AnnotationKind::kNone) return;
    if (kind == AnnotationKind::kHotBegin || kind == AnnotationKind::kHotEnd) {
      sf.hotMarkers.push_back(
          {sf.lineOf(startOffset), kind == AnnotationKind::kHotBegin, std::move(rule)});
      return;
    }
    Suppression s;
    s.line = sf.lineOf(startOffset);
    const auto [lineBegin, lineEnd] = sf.lineRange(s.line);
    (void)lineEnd;
    s.appliesToLine = onlyWhitespaceBefore(sf.stripped, lineBegin, startOffset)
                          ? s.line + 1
                          : s.line;
    s.rule = std::move(rule);
    s.reason = std::move(reason);
    sf.suppressions.push_back(std::move(s));
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    char out = c;

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          commentStart = i;
          out = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          commentStart = i;
          out = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(text[i - 1])) == 0 &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          state = State::kRawString;
          rawDelim.clear();
          std::size_t j = i + 2;
          while (j < text.size() && text[j] != '(') rawDelim.push_back(text[j++]);
          out = 'R';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(text[i - 1])) == 0 &&
                               text[i - 1] != '_'))) {
          // Apostrophes inside numbers (1'000'000) are digit separators, not chars.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          finishComment(comment, commentStart);
        } else {
          comment.push_back(c);
          out = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          finishComment(comment, commentStart);
          sf.stripped.push_back(' ');
          sf.stripped.push_back(' ');
          ++i;
          continue;
        }
        comment.push_back(c);
        if (c != '\n') out = ' ';
        break;
      case State::kString:
        if (c == '\\') {
          sf.stripped.push_back(' ');
          if (next != '\0' && next != '\n') {
            sf.stripped.push_back(' ');
            ++i;
          }
          continue;
        }
        if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          sf.stripped.push_back(' ');
          if (next != '\0' && next != '\n') {
            sf.stripped.push_back(' ');
            ++i;
          }
          continue;
        }
        if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out = ' ';
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + rawDelim + "\"";
        if (c == ')' && text.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = 0; k < closer.size(); ++k) sf.stripped.push_back(' ');
          i += closer.size() - 1;
          state = State::kCode;
          continue;
        }
        if (c != '\n') out = ' ';
        break;
      }
    }

    sf.stripped.push_back(out);
    if (c == '\n') sf.lineStarts_.push_back(sf.stripped.size());
  }
  if (state == State::kLineComment) finishComment(comment, commentStart);

  return sf;
}

}  // namespace wfs::lint
