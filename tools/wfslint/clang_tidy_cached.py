#!/usr/bin/env python3
"""Run clang-tidy over the compilation database, skipping unchanged files.

CI calls this instead of bare clang-tidy so that warm runs only re-analyze
what moved. The cache is a directory of stamp files, one per translation
unit, named by a digest of everything that could change the verdict:

  * the translation unit's own bytes,
  * every project header it could include (one concatenated digest — cheap,
    coarse, and safe: any header edit invalidates every stamp),
  * the translation unit's compile command from the database — flags,
    defines and include paths change the verdict as surely as the source
    does (a -D toggle flips whole #if branches),
  * every .clang-tidy in the tree, not just the root one: clang-tidy merges
    per-directory configs, so a nested override must also invalidate,
  * the clang-tidy version string.

A stamp is written only after clang-tidy exits clean, so a failing file is
always re-analyzed on the next run. The stamp directory is restored and
saved by actions/cache; deleting it simply makes the next run cold.

Usage:
  clang_tidy_cached.py -p build/compile_commands.json \
      --cache .clang-tidy-cache [--clang-tidy clang-tidy] [prefix ...]

Positional prefixes (e.g. "src tools") keep only database entries whose
source path, relative to the repo root, starts with one of them.
"""

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor


def sha256_file(path, chunk=1 << 16):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def headers_digest(root):
    """One digest over every project header, in sorted path order."""
    h = hashlib.sha256()
    for top in ("src", "tools"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        paths = []
        for dirpath, _, names in os.walk(base):
            for name in names:
                if name.endswith((".hpp", ".h")):
                    paths.append(os.path.join(dirpath, name))
        for path in sorted(paths):
            h.update(os.path.relpath(path, root).encode())
            h.update(sha256_file(path).encode())
    return h.hexdigest()


def configs_digest(root):
    """One digest over every .clang-tidy in the tree (clang-tidy merges
    per-directory configs, so any of them can change the verdict)."""
    h = hashlib.sha256()
    paths = []
    for dirpath, dirnames, names in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", "build") and not d.startswith("build")]
        if ".clang-tidy" in names:
            paths.append(os.path.join(dirpath, ".clang-tidy"))
    for path in sorted(paths):
        h.update(os.path.relpath(path, root).encode())
        h.update(sha256_file(path).encode())
    return h.hexdigest()


def compile_command(entry):
    """The entry's command line, normalized to one string. Either key is
    legal in a compilation database; CMake emits "command"."""
    if "arguments" in entry:
        return "\0".join(entry["arguments"])
    return entry.get("command", "")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-p", "--database", required=True,
                    help="path to compile_commands.json")
    ap.add_argument("--cache", required=True, help="stamp directory")
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("prefixes", nargs="*", default=[],
                    help="repo-relative path prefixes to keep (default: all)")
    args = ap.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"error: {args.clang_tidy} not found on PATH", file=sys.stderr)
        return 2

    root = os.getcwd()
    with open(args.database) as f:
        db = json.load(f)

    files = []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue  # system / third-party TU
        if args.prefixes and not any(
                rel == p or rel.startswith(p.rstrip("/") + "/")
                for p in args.prefixes):
            continue
        files.append((rel, path, compile_command(entry)))
    files = sorted(set(files))
    if not files:
        print("clang-tidy-cached: no translation units matched", file=sys.stderr)
        return 2

    os.makedirs(args.cache, exist_ok=True)
    version = subprocess.run([args.clang_tidy, "--version"],
                             capture_output=True, text=True).stdout
    config = configs_digest(root)
    headers = headers_digest(root)

    def stamp_for(rel, path, command):
        h = hashlib.sha256()
        for part in (rel, sha256_file(path), command, headers, config, version):
            h.update(part.encode())
        return os.path.join(args.cache, h.hexdigest())

    def analyze(item):
        rel, path, command = item
        stamp = stamp_for(rel, path, command)
        if os.path.exists(stamp):
            return rel, True, "(cached)"
        proc = subprocess.run(
            [args.clang_tidy, "-p", os.path.dirname(args.database),
             "--quiet", path],
            capture_output=True, text=True)
        ok = proc.returncode == 0 and "warning:" not in proc.stdout \
            and "error:" not in proc.stdout
        if ok:
            with open(stamp, "w") as f:
                f.write(rel + "\n")
        return rel, ok, (proc.stdout + proc.stderr).strip()

    failed = 0
    cached = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for rel, ok, output in pool.map(analyze, files):
            if output == "(cached)":
                cached += 1
            elif ok:
                print(f"clang-tidy: {rel}: clean")
            else:
                failed += 1
                print(f"clang-tidy: {rel}: FAILED\n{output}")

    print(f"clang-tidy-cached: {len(files)} files, {cached} cached, "
          f"{failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
