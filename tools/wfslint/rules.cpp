#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace wfs::lint {

namespace {

constexpr const char* kD1 = "D1-wall-clock";
constexpr const char* kD2 = "D2-unordered-iter";
constexpr const char* kD3 = "D3-rng-seed";
constexpr const char* kD4 = "D4-float-eq";
constexpr const char* kD5 = "D5-layering";
constexpr const char* kD7 = "D7-counter-monotonic";
constexpr const char* kD8 = "D8-hot-path-alloc";
constexpr const char* kD9 = "D9-error-style";
constexpr const char* kBadSuppression = "WFS-bad-suppression";

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string s) {
  const auto notSpace = [](char c) { return std::isspace(static_cast<unsigned char>(c)) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
  return s;
}

/// Matches `text[open]` (one of `([{<`) to its closing bracket, honouring
/// nesting of all four kinds. Returns npos when unbalanced.
std::size_t matchBracket(const std::string& text, std::size_t open) {
  const std::string opens = "([{<";
  const std::string closes = ")]}>";
  const auto kind = opens.find(text[open]);
  if (kind == std::string::npos) return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == opens[kind]) {
      ++depth;
    } else if (c == closes[kind]) {
      if (--depth == 0) return i;
    }
    // `->` and `>>` would confuse angle matching; the only caller that
    // matches `<` is the unordered-declaration scan, where template
    // argument lists contain neither.
  }
  return std::string::npos;
}

/// Reduces a range/argument expression to the identifier that names the
/// container: strips a std::move() wrapper, a trailing call, and leading
/// object paths (`catalog_.entries()` -> `entries`, `*foo.bar` -> `bar`).
std::string tailIdentifier(std::string expr) {
  expr = trim(std::move(expr));
  if (startsWith(expr, "std::move(") && expr.back() == ')') {
    expr = trim(expr.substr(10, expr.size() - 11));
  }
  while (!expr.empty() && (expr.front() == '*' || expr.front() == '&' || expr.front() == '(')) {
    expr.erase(expr.begin());
  }
  if (expr.size() >= 2 && expr.compare(expr.size() - 2, 2, "()") == 0) {
    expr.erase(expr.size() - 2);
  }
  std::size_t cut = 0;
  for (std::size_t i = 0; i + 1 < expr.size(); ++i) {
    if (expr[i] == '.' || (expr[i] == '-' && expr[i + 1] == '>') ||
        (expr[i] == ':' && expr[i + 1] == ':')) {
      cut = i + (expr[i] == '.' ? 1 : 2);
    }
  }
  expr = expr.substr(cut);
  if (expr.size() >= 2 && expr.compare(expr.size() - 2, 2, "()") == 0) {
    expr.erase(expr.size() - 2);
  }
  expr = trim(std::move(expr));
  // Anything that is not a plain identifier (arithmetic, braced init, ...)
  // cannot be looked up in the index.
  if (expr.empty() || !std::all_of(expr.begin(), expr.end(), isIdentChar)) return {};
  return expr;
}

struct RegexRule {
  std::regex pattern;
  const char* id;
  const char* message;
  const char* fixit;
};

const char* kD1Fix =
    "derive time from sim::Simulator::now() and entropy from a forked sim::Rng stream";
const char* kD2Fix =
    "iterate sorted keys or switch to std::map/std::set; if order provably cannot "
    "escape, annotate `// wfslint: allow(unordered-iter) <reason>`";
const char* kD3Fix =
    "construct from the experiment config seed or parent.fork() (see fault::FaultPlan)";
const char* kD4Fix =
    "compare against an epsilon, or sum over a deterministically ordered range";
const char* kD7Fix =
    "ledger counters only accumulate: use `+=`/`++`; zeroing belongs in a reset() member";
const char* kD8Fix =
    "hoist the construction out of the hot region (reused buffers, InlineFunction, "
    "slab indices) or annotate `// wfslint: allow(D8-hot-path-alloc) <reason>`";
const char* kD9Fix =
    "prefix the message with its subsystem (`cluster/afr: ...`; CLI flag complaints "
    "start with `--`) and keep it to one line";

const std::vector<RegexRule>& d1Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD1, msg, kD1Fix});
    };
    add(R"(\b(?:std::chrono::)?(?:system_clock|steady_clock|high_resolution_clock)\s*::)",
        "wall-clock read is invisible to the event queue and differs per run");
    add(R"(\bstd::(?:rand|srand)\b|\bsrand\s*\(|\brand\s*\(\s*\))",
        "C rand() draws from ambient global state");
    add(R"(\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0|&)\s*\w*\s*\))",
        "time() reads the host clock, not the simulation clock");
    add(R"(\b(?:gettimeofday|clock_gettime|localtime|gmtime)\s*\(|\bclock\s*\(\s*\))",
        "host-clock syscall in simulation code");
    add(R"(\b(?:std::)?random_device\b)",
        "random_device is fresh entropy on every run (fault::Spec seeds are the one "
        "sanctioned entropy root)");
    return r;
  }();
  return rules;
}

const std::vector<RegexRule>& d3Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD3, msg, kD3Fix});
    };
    add(R"(\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|knuth_b|ranlux(?:24|48)(?:_base)?)\b)",
        "libstdc++ engines are not stream-splittable and differ across standard libraries; "
        "use sim::Rng");
    add(R"(\bstd::[a-z_]+_distribution\b)",
        "libstdc++ distributions are implementation-defined; use the sim::Rng samplers");
    add(R"(\bRng(?:\s+\w+)?\s*[({]\s*(?:0[xX][0-9a-fA-F']+|[0-9][0-9']*)[uUlL']*\s*[)}])",
        "Rng seeded from a literal is a hidden global stream");
    return r;
  }();
  return rules;
}

const std::vector<RegexRule>& d4Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD4, msg, kD4Fix});
    };
    add(R"([=!]=\s*[-+]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+[eE][-+]?[0-9]+)[fFlL]?)",
        "exact comparison against a floating-point literal");
    add(R"((?:[0-9]+\.[0-9]*|\.[0-9]+)[fFlL]?\s*[=!]=[^=])",
        "exact comparison against a floating-point literal");
    return r;
  }();
  return rules;
}

/// Constructions banned inside `wfslint: hot-begin/hot-end` regions (D8):
/// anything that heap-allocates per call on the EventQueue schedule/cancel
/// and FlowNetwork settle paths.
const std::vector<RegexRule>& d8Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD8, msg, kD8Fix});
    };
    add(R"(\bnew\b)", "raw `new` allocates inside a hot region");
    add(R"(\bstd::string\b)", "std::string construction allocates inside a hot region");
    add(R"(\bstd::to_string\b)", "std::to_string allocates inside a hot region");
    add(R"(\bstd::function\b)",
        "std::function type-erases through the heap; use sim::InlineFunction");
    add(R"(\bstd::make_(?:shared|unique)\b)",
        "shared/unique allocation inside a hot region");
    add(R"(\bstd::o?stringstream\b)",
        "stringstream buffers allocate per construction; format into a reused "
        "buffer outside the region");
    add(R"(\bstd::unordered_(?:map|set)\b)",
        "hash-table construction allocates buckets inside a hot region; use a "
        "slab index or reused arena-backed container");
    return r;
  }();
  return rules;
}

/// Family short name of a rule id: the text after the `D2-`/`L-`/`WFS-`
/// family prefix ("D2-unordered-iter" -> "unordered-iter").
std::string familyShortName(const std::string& id) {
  const std::size_t dash = id.find('-');
  return dash == std::string::npos ? id : id.substr(dash + 1);
}

}  // namespace

std::string Finding::format() const {
  return file + ":" + std::to_string(line) + ": [" + ruleId + "] " + message +
         "; fix: " + fixit;
}

void UnorderedIndex::add(std::string name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) names_.insert(it, std::move(name));
}

bool UnorderedIndex::contains(const std::string& name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

void UnorderedIndex::collect(const SourceFile& sf) {
  const std::string& text = sf.stripped;
  for (const char* needle : {"unordered_map", "unordered_set"}) {
    const std::string n = needle;
    std::size_t pos = 0;
    while ((pos = text.find(n, pos)) != std::string::npos) {
      const std::size_t found = pos;
      const std::size_t after = pos + n.size();
      pos = after;
      if (found > 0 && isIdentChar(text[found - 1])) continue;  // my_unordered_map
      if (after >= text.size() || text[after] != '<') continue;
      const std::size_t close = matchBracket(text, after);
      if (close == std::string::npos) continue;
      // `std::unordered_map<...>::iterator` etc. is a nested-name use, not a
      // declaration of an iterable object.
      std::size_t i = close + 1;
      while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
                                 text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && isIdentChar(text[i])) name.push_back(text[i++]);
      if (name.empty() || name == "const") continue;
      // Either a variable/member (`files_;`, `consumed{...}`) or a function
      // returning the container (`entries() const`): both iterate unordered.
      add(std::move(name));
    }
  }
  // `auto leftovers = std::move(detached_);` aliases an unordered member.
  static const std::regex aliasRe(
      R"(\bauto\s+(\w+)\s*=\s*std::move\(\s*([\w.:>()*&-]+?)\s*\))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), aliasRe);
       it != std::sregex_iterator(); ++it) {
    aliases_.emplace_back((*it)[1].str(), tailIdentifier((*it)[2].str()));
  }
}

void UnorderedIndex::finalize() {
  // Two rounds cover alias-of-alias chains without a full fixpoint.
  for (int round = 0; round < 2; ++round) {
    for (const auto& [alias, source] : aliases_) {
      if (!source.empty() && contains(source)) add(alias);
    }
  }
}

bool parseStructFields(const SourceFile& sf, const std::string& structName,
                       std::vector<StructField>& out, int& structLine) {
  const std::string& text = sf.stripped;
  std::size_t pos = 0;
  while ((pos = text.find("struct", pos)) != std::string::npos) {
    const std::size_t kw = pos;
    pos += 6;
    if (kw > 0 && isIdentChar(text[kw - 1])) continue;
    std::size_t i = kw + 6;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
    std::string name;
    while (i < text.size() && isIdentChar(text[i])) name.push_back(text[i++]);
    if (name != structName) continue;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
    if (i >= text.size() || text[i] != '{') continue;  // forward declaration
    const std::size_t open = i;
    const std::size_t close = matchBracket(text, open);
    if (close == std::string::npos) return false;
    structLine = sf.lineOf(kw);

    // Walk depth-1 statements of the body. A `;` inside a member function's
    // own braces sits at depth >= 2 and does not split; a statement that
    // contains a paren (parameter list / accumulated inline body) is a
    // member function and is skipped.
    int depth = 0;
    std::size_t stmtBegin = open + 1;
    for (std::size_t k = open; k <= close; ++k) {
      const char c = text[k];
      if (c == '{' || c == '(' || c == '[') ++depth;
      if (c == '}' || c == ')' || c == ']') --depth;
      if ((c == ';' && depth == 1) || (k == close && depth == 0)) {
        std::string stmt = text.substr(stmtBegin, k - stmtBegin);
        stmtBegin = k + 1;
        if (stmt.find('(') != std::string::npos) continue;  // member function
        // Cut any default initializer, brace or `=` form.
        const std::size_t eq = stmt.find('=');
        if (eq != std::string::npos) stmt = stmt.substr(0, eq);
        const std::size_t brace = stmt.find('{');
        if (brace != std::string::npos) stmt = stmt.substr(0, brace);
        stmt = trim(std::move(stmt));
        if (stmt.empty() || startsWith(stmt, "using ") || startsWith(stmt, "static ")) {
          continue;
        }
        // The declared name is the trailing identifier of the declaration.
        std::size_t e = stmt.size();
        while (e > 0 && isIdentChar(stmt[e - 1])) --e;
        if (e == stmt.size()) continue;  // ends in punctuation: not a field
        StructField f;
        f.name = stmt.substr(e);
        f.type = trim(stmt.substr(0, e));
        if (f.type.empty()) continue;  // lone identifier: not a declaration
        // Locate the name inside the original statement for its line.
        const std::size_t at = text.rfind(f.name, k);
        f.line = sf.lineOf(at == std::string::npos ? k : at);
        out.push_back(std::move(f));
      }
    }
    return true;
  }
  return false;
}

void CounterIndex::add(std::string name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) names_.insert(it, std::move(name));
}

bool CounterIndex::contains(const std::string& name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

void CounterIndex::collect(const SourceFile& sf) {
  static const char* kLedgerStructs[] = {"LayerMetrics", "StorageMetrics", "FaultOutcome",
                                         "RedundancyOutcome"};
  for (const char* structName : kLedgerStructs) {
    std::vector<StructField> fields;
    int line = 0;
    if (!parseStructFields(sf, structName, fields, line)) continue;
    for (StructField& f : fields) {
      // Counters are the arithmetic accumulators; names, flags and nested
      // containers are not monotone and stay writable.
      const bool arithmetic = f.type.find("uint64_t") != std::string::npos ||
                              f.type.find("Bytes") != std::string::npos ||
                              f.type.find("double") != std::string::npos;
      const bool container = f.type.find("vector") != std::string::npos ||
                             f.type.find("string") != std::string::npos;
      if (arithmetic && !container) add(std::move(f.name));
    }
  }
}

int ruleTokenCoverage(const std::string& rule) {
  int covered = 0;
  for (const auto& [id, summary] : ruleTable()) {
    (void)summary;
    if (rule == id || rule == familyShortName(id)) ++covered;
  }
  return covered;
}

bool ruleTokenCovers(const std::string& rule, const std::string& id) {
  if (rule == id) return true;
  // A family short name covers its rule only while it names exactly one
  // family ("layering" stopped covering anything when L-layering joined
  // D5-layering; spell the full id).
  return rule == familyShortName(id) && ruleTokenCoverage(rule) == 1;
}

bool isSuppressed(const SourceFile& sf, int line, const std::string& id) {
  for (const Suppression& s : sf.suppressions) {
    if (s.appliesToLine == line && !s.reason.empty() && ruleTokenCovers(s.rule, id)) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> ruleTable() {
  return {
      {kD1, "no wall-clock or ambient entropy in simulation code"},
      {kD2, "no iteration over std::unordered_map/std::unordered_set"},
      {kD3, "RNG streams must be forked per concern, never literal-seeded"},
      {kD4, "no exact floating-point comparison or unordered accumulation"},
      {kD5, "no Trace::instance(); catalog mutations only inside src/storage"},
      {"L-layering",
       "include-graph layer DAG: simcore < blk/net < storage < fault < wf < cloud < "
       "analysis < apps/tools, transitively and cycle-free"},
      {"D6-identity-drift",
       "cfg-v identity serialization covers every ExperimentConfig/fault::Spec field; "
       "the cache salt version rides every identity bump"},
      {kD7, "LayerMetrics/StorageMetrics/FaultOutcome counters only accumulate "
            "(+=/++); no decrement or reassignment outside reset()"},
      {kD8, "no std::string/new/make_shared/std::function construction inside "
            "`wfslint: hot-begin/hot-end` regions"},
      {kD9, "throw/die() messages are one line and carry a subsystem prefix "
            "(`cluster/afr: ...`)"},
      {kBadSuppression,
       "wfslint: allow(<rule>) needs a known, unambiguous rule and a non-empty reason"},
  };
}

std::vector<Finding> runRules(const SourceFile& sf, const RuleContext& ctx, bool allRules) {
  std::vector<Finding> findings;
  const std::string& path = sf.displayPath;
  const std::string& text = sf.stripped;

  const bool libraryCode = startsWith(path, "src/") || startsWith(path, "tools/");
  const bool storageCode = startsWith(path, "src/storage/") ||
                           startsWith(path, "tests/storage/");

  const auto emit = [&](int line, const char* id, std::string message, const char* fixit) {
    if (isSuppressed(sf, line, id)) return;
    findings.push_back({path, line, id, std::move(message), fixit});
  };
  const auto scanRegexRules = [&](const std::vector<RegexRule>& rules, std::size_t begin,
                                  std::size_t end) {
    for (const RegexRule& rule : rules) {
      for (auto it = std::sregex_iterator(text.begin() + static_cast<std::ptrdiff_t>(begin),
                                          text.begin() + static_cast<std::ptrdiff_t>(end),
                                          rule.pattern);
           it != std::sregex_iterator(); ++it) {
        emit(sf.lineOf(begin + static_cast<std::size_t>(it->position())), rule.id,
             rule.message, rule.fixit);
      }
    }
  };
  const auto scanAll = [&](const std::vector<RegexRule>& rules) {
    scanRegexRules(rules, 0, text.size());
  };

  // D1 — ambient nondeterminism.
  scanAll(d1Rules());

  // D3 — RNG discipline (library code only: tests/benches/examples pin
  // experiment-root seeds by design, which IS the documented seeding root).
  if (allRules || libraryCode) scanAll(d3Rules());

  // D4 — float-literal comparisons.
  scanAll(d4Rules());

  // D2 — range-for over an unordered container, plus the D4 variant
  // std::accumulate over one.
  {
    std::size_t pos = 0;
    while ((pos = text.find("for", pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += 3;
      if (at > 0 && isIdentChar(text[at - 1])) continue;
      std::size_t i = at + 3;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
      if (i >= text.size() || text[i] != '(') continue;
      const std::size_t close = matchBracket(text, i);
      if (close == std::string::npos) continue;
      const std::string head = text.substr(i + 1, close - i - 1);
      // Find the range-for ':' at paren depth 0, skipping '::'.
      std::size_t colon = std::string::npos;
      int depth = 0;
      bool classicFor = false;
      for (std::size_t k = 0; k < head.size(); ++k) {
        const char c = head[k];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (depth != 0) continue;
        if (c == ';') {
          classicFor = true;
          break;
        }
        if (c == ':' && (k + 1 >= head.size() || head[k + 1] != ':') &&
            (k == 0 || head[k - 1] != ':')) {
          colon = k;
          break;
        }
      }
      if (classicFor || colon == std::string::npos) continue;
      const std::string name = tailIdentifier(head.substr(colon + 1));
      if (!name.empty() && ctx.unordered.contains(name)) {
        emit(sf.lineOf(at), kD2,
             "range-for over unordered container `" + name +
                 "` has platform-dependent order",
             kD2Fix);
      }
    }

    static const std::regex accumulateRe(
        R"(\bstd::accumulate\s*\(\s*([A-Za-z_][\w.>:()*&-]*?)\s*\.\s*c?begin\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), accumulateRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = tailIdentifier((*it)[1].str());
      if (!name.empty() && ctx.unordered.contains(name)) {
        emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD4,
             "std::accumulate over unordered container `" + name +
                 "` folds doubles in platform-dependent order",
             kD4Fix);
      }
    }
  }

  // D5 — layering invariants that stay per-file (the include-graph DAG
  // itself is the cross-file L-layering tier in project.cpp).
  {
    static const std::regex traceRe(R"(\bTrace\s*::\s*instance\b)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), traceRe);
         it != std::sregex_iterator(); ++it) {
      emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD5,
           "Trace::instance() global was removed for per-simulator trace isolation",
           "trace through the owning sim::Simulator (WFS_TRACE macro)");
    }

    if (allRules || !storageCode) {
      static const std::regex catalogRe(
          R"(\bcatalog_\s*\.\s*(?:create|markLost|markDiscarded|clearLost)\s*\(|\bFileCatalog\s+\w+)");
      for (auto it = std::sregex_iterator(text.begin(), text.end(), catalogRe);
           it != std::sregex_iterator(); ++it) {
        emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD5,
             "write-once catalog mutated outside src/storage",
             "route through StorageSystem::write/preload/retractFile so write-once "
             "invariants stay enforced in one place");
      }
    }
  }

  // D7 — counter monotonicity. Library code only: tests construct expected
  // ledger values freely.
  if ((allRules || libraryCode) && !ctx.counters.empty()) {
    // Bodies of reset()/clear() members are the sanctioned zeroing spot.
    std::vector<std::pair<std::size_t, std::size_t>> resetRanges;
    {
      static const std::regex resetRe(R"(\b(?:reset|clear)\s*\(\s*\)[^;{]*\{)");
      for (auto it = std::sregex_iterator(text.begin(), text.end(), resetRe);
           it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position() + it->length()) - 1;
        const std::size_t close = matchBracket(text, open);
        if (close != std::string::npos) resetRanges.emplace_back(open, close);
      }
    }
    const auto inReset = [&resetRanges](std::size_t pos) {
      for (const auto& [b, e] : resetRanges) {
        if (pos > b && pos < e) return true;
      }
      return false;
    };

    static const std::regex counterWriteRe(
        R"((?:\.|->)\s*([A-Za-z_]\w*)\s*(=(?!=)|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|--))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), counterWriteRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!ctx.counters.contains(name)) continue;
      const auto pos = static_cast<std::size_t>(it->position());
      if (inReset(pos)) continue;
      const std::string op = (*it)[2].str();
      emit(sf.lineOf(pos), kD7,
           op == "--" || op == "-="
               ? "metrics counter `" + name + "` is decremented — ledgers are monotone"
               : "metrics counter `" + name + "` is reassigned (`" + op +
                     "`) outside a reset()",
           kD7Fix);
    }
    // Prefix decrement: `--stats.crashes`.
    static const std::regex prefixDecRe(
        R"(--\s*[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*(?:\.|->)([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), prefixDecRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!ctx.counters.contains(name)) continue;
      const auto pos = static_cast<std::size_t>(it->position());
      if (inReset(pos)) continue;
      emit(sf.lineOf(pos), kD7,
           "metrics counter `" + name + "` is decremented — ledgers are monotone",
           kD7Fix);
    }
  }

  // D8 — allocation-free hot regions. The markers carry the policy: any
  // file (simcore or not) may declare one, and the banned set applies only
  // between hot-begin and hot-end.
  {
    std::vector<const HotMarker*> stack;
    for (const HotMarker& m : sf.hotMarkers) {
      if (m.begin) {
        stack.push_back(&m);
        continue;
      }
      if (stack.empty()) {
        emit(m.line, kD8, "`wfslint: hot-end` without a matching hot-begin",
             "open the region with `// wfslint: hot-begin(<name>)` or drop the marker");
        continue;
      }
      const HotMarker* begin = stack.back();
      stack.pop_back();
      const std::size_t b = sf.lineRange(begin->line + 1).first;
      const std::size_t e = sf.lineRange(m.line).first;
      if (b < e) scanRegexRules(d8Rules(), b, e);
    }
    for (const HotMarker* begin : stack) {
      emit(begin->line, kD8,
           "`wfslint: hot-begin(" + begin->name + ")` is never closed",
           "close the region with `// wfslint: hot-end`");
    }
  }

  // D9 — error style: every throw/die() message is one line and starts
  // with a subsystem prefix. Library code only; tests throw freely.
  if (allRules || libraryCode) {
    const auto literalPrefixOk = [](const std::string& lit) {
      if (startsWith(lit, "--")) return true;  // CLI flag complaint
      const std::size_t colon = lit.find(':');
      if (colon == std::string::npos || colon == 0) return false;
      if (colon + 1 < lit.size() && lit[colon + 1] != ' ') return false;
      for (std::size_t i = 0; i < colon; ++i) {
        const char c = lit[i];
        if (isIdentChar(c) || c == '/' || c == '.' || c == '+' || c == '*' || c == '=' ||
            c == '-') {
          continue;
        }
        return false;
      }
      return true;
    };

    const auto checkSpan = [&](std::size_t b, std::size_t e, const char* what) {
      bool sawFirstLiteral = false;
      bool multiLineReported = false;
      for (std::size_t i = b; i < e; ++i) {
        if (text[i] != '"') continue;
        std::size_t j = i + 1;
        while (j < e && text[j] != '"') ++j;
        if (j >= e) break;
        const std::string lit = sf.raw.substr(i + 1, j - i - 1);
        if (!multiLineReported && lit.find("\\n") != std::string::npos) {
          multiLineReported = true;
          emit(sf.lineOf(i), kD9,
               std::string(what) + " message spans multiple lines (`\\n`)", kD9Fix);
        }
        if (!sawFirstLiteral) {
          sawFirstLiteral = true;
          // Only a literal that opens the message is statically checkable:
          // it must directly follow the call's `(`/`{`. A leading variable
          // (file path, flag name) is its own prefix convention.
          std::size_t k = i;
          while (k > b && std::isspace(static_cast<unsigned char>(text[k - 1])) != 0) --k;
          const bool opensMessage = k > b && (text[k - 1] == '(' || text[k - 1] == '{');
          if (opensMessage && !literalPrefixOk(lit)) {
            emit(sf.lineOf(i), kD9,
                 std::string(what) + " message lacks a subsystem prefix: \"" +
                     lit.substr(0, 24) + (lit.size() > 24 ? "..." : "") + "\"",
                 kD9Fix);
          }
        }
        i = j;
      }
    };

    std::size_t pos = 0;
    while ((pos = text.find("throw", pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += 5;
      if (at > 0 && isIdentChar(text[at - 1])) continue;
      if (pos < text.size() && isIdentChar(text[pos])) continue;  // throws, rethrow
      // Span: to the statement-ending `;` at bracket depth 0.
      int depth = 0;
      std::size_t end = pos;
      while (end < text.size()) {
        const char c = text[end];
        if (c == '(' || c == '{' || c == '[') ++depth;
        if (c == ')' || c == '}' || c == ']') --depth;
        if (c == ';' && depth <= 0) break;
        ++end;
      }
      checkSpan(pos, end, "throw");
    }

    pos = 0;
    while ((pos = text.find("die", pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += 3;
      if (at > 0 && isIdentChar(text[at - 1])) continue;
      if (pos < text.size() && isIdentChar(text[pos])) continue;
      std::size_t i = at + 3;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
      if (i >= text.size() || text[i] != '(') continue;
      const std::size_t close = matchBracket(text, i);
      if (close == std::string::npos) continue;
      checkSpan(i, close + 1, "die()");
    }
  }

  // Suppression hygiene: every annotation needs a known, unambiguous rule
  // and a reason.
  for (const Suppression& s : sf.suppressions) {
    const int coverage = ruleTokenCoverage(s.rule);
    if (coverage == 0) {
      findings.push_back({path, s.line, kBadSuppression,
                          "unknown rule `" + s.rule + "` in wfslint annotation",
                          "use one of the ids from `wfslint --list-rules`"});
    } else if (coverage > 1) {
      findings.push_back({path, s.line, kBadSuppression,
                          "ambiguous token `" + s.rule + "` covers " +
                              std::to_string(coverage) + " rule families and silences none",
                          "spell the full rule id (e.g. `D5-layering` or `L-layering`)"});
    } else if (s.reason.empty()) {
      findings.push_back({path, s.line, kBadSuppression,
                          "suppression of `" + s.rule + "` carries no justification",
                          "write `// wfslint: allow(" + s.rule + ") <why this is safe>`"});
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.ruleId < b.ruleId;
  });
  return findings;
}

}  // namespace wfs::lint
