#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace wfs::lint {

namespace {

constexpr const char* kD1 = "D1-wall-clock";
constexpr const char* kD2 = "D2-unordered-iter";
constexpr const char* kD3 = "D3-rng-seed";
constexpr const char* kD4 = "D4-float-eq";
constexpr const char* kD5 = "D5-layering";
constexpr const char* kBadSuppression = "WFS-bad-suppression";

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string s) {
  const auto notSpace = [](char c) { return std::isspace(static_cast<unsigned char>(c)) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
  return s;
}

/// Matches `text[open]` (one of `([{<`) to its closing bracket, honouring
/// nesting of all four kinds. Returns npos when unbalanced.
std::size_t matchBracket(const std::string& text, std::size_t open) {
  const std::string opens = "([{<";
  const std::string closes = ")]}>";
  const auto kind = opens.find(text[open]);
  if (kind == std::string::npos) return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == opens[kind]) {
      ++depth;
    } else if (c == closes[kind]) {
      if (--depth == 0) return i;
    }
    // `->` and `>>` would confuse angle matching; the only caller that
    // matches `<` is the unordered-declaration scan, where template
    // argument lists contain neither.
  }
  return std::string::npos;
}

/// Reduces a range/argument expression to the identifier that names the
/// container: strips a std::move() wrapper, a trailing call, and leading
/// object paths (`catalog_.entries()` -> `entries`, `*foo.bar` -> `bar`).
std::string tailIdentifier(std::string expr) {
  expr = trim(std::move(expr));
  if (startsWith(expr, "std::move(") && expr.back() == ')') {
    expr = trim(expr.substr(10, expr.size() - 11));
  }
  while (!expr.empty() && (expr.front() == '*' || expr.front() == '&' || expr.front() == '(')) {
    expr.erase(expr.begin());
  }
  if (expr.size() >= 2 && expr.compare(expr.size() - 2, 2, "()") == 0) {
    expr.erase(expr.size() - 2);
  }
  std::size_t cut = 0;
  for (std::size_t i = 0; i + 1 < expr.size(); ++i) {
    if (expr[i] == '.' || (expr[i] == '-' && expr[i + 1] == '>') ||
        (expr[i] == ':' && expr[i + 1] == ':')) {
      cut = i + (expr[i] == '.' ? 1 : 2);
    }
  }
  expr = expr.substr(cut);
  if (expr.size() >= 2 && expr.compare(expr.size() - 2, 2, "()") == 0) {
    expr.erase(expr.size() - 2);
  }
  expr = trim(std::move(expr));
  // Anything that is not a plain identifier (arithmetic, braced init, ...)
  // cannot be looked up in the index.
  if (expr.empty() || !std::all_of(expr.begin(), expr.end(), isIdentChar)) return {};
  return expr;
}

struct RegexRule {
  std::regex pattern;
  const char* id;
  const char* message;
  const char* fixit;
};

const char* kD1Fix =
    "derive time from sim::Simulator::now() and entropy from a forked sim::Rng stream";
const char* kD2Fix =
    "iterate sorted keys or switch to std::map/std::set; if order provably cannot "
    "escape, annotate `// wfslint: allow(unordered-iter) <reason>`";
const char* kD3Fix =
    "construct from the experiment config seed or parent.fork() (see fault::FaultPlan)";
const char* kD4Fix =
    "compare against an epsilon, or sum over a deterministically ordered range";

const std::vector<RegexRule>& d1Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD1, msg, kD1Fix});
    };
    add(R"(\b(?:std::chrono::)?(?:system_clock|steady_clock|high_resolution_clock)\s*::)",
        "wall-clock read is invisible to the event queue and differs per run");
    add(R"(\bstd::(?:rand|srand)\b|\bsrand\s*\(|\brand\s*\(\s*\))",
        "C rand() draws from ambient global state");
    add(R"(\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0|&)\s*\w*\s*\))",
        "time() reads the host clock, not the simulation clock");
    add(R"(\b(?:gettimeofday|clock_gettime|localtime|gmtime)\s*\(|\bclock\s*\(\s*\))",
        "host-clock syscall in simulation code");
    add(R"(\b(?:std::)?random_device\b)",
        "random_device is fresh entropy on every run (fault::Spec seeds are the one "
        "sanctioned entropy root)");
    return r;
  }();
  return rules;
}

const std::vector<RegexRule>& d3Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD3, msg, kD3Fix});
    };
    add(R"(\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|knuth_b|ranlux(?:24|48)(?:_base)?)\b)",
        "libstdc++ engines are not stream-splittable and differ across standard libraries; "
        "use sim::Rng");
    add(R"(\bstd::[a-z_]+_distribution\b)",
        "libstdc++ distributions are implementation-defined; use the sim::Rng samplers");
    add(R"(\bRng(?:\s+\w+)?\s*[({]\s*(?:0[xX][0-9a-fA-F']+|[0-9][0-9']*)[uUlL']*\s*[)}])",
        "Rng seeded from a literal is a hidden global stream");
    return r;
  }();
  return rules;
}

const std::vector<RegexRule>& d4Rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    const auto add = [&r](const char* re, const char* msg) {
      r.push_back({std::regex(re), kD4, msg, kD4Fix});
    };
    add(R"([=!]=\s*[-+]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+[eE][-+]?[0-9]+)[fFlL]?)",
        "exact comparison against a floating-point literal");
    add(R"((?:[0-9]+\.[0-9]*|\.[0-9]+)[fFlL]?\s*[=!]=[^=])",
        "exact comparison against a floating-point literal");
    return r;
  }();
  return rules;
}

/// Layer prefixes `src/simcore` may never include: everything above it.
const std::vector<std::string>& bannedSimcoreIncludes() {
  static const std::vector<std::string> banned = {
      "storage/", "wf/", "cloud/", "analysis/", "apps/",
      "fault/",   "net/", "blk/",   "prof/"};
  return banned;
}

/// Does suppression token `rule` cover finding id `id` (e.g. both
/// "unordered-iter" and "D2-unordered-iter" and "D2" cover kD2)?
bool ruleTokenCovers(const std::string& rule, const std::string& id) {
  if (rule == id) return true;
  if (id.size() > 3 && rule == id.substr(3)) return true;  // short name
  if (rule.size() == 2 && id.compare(0, 2, rule) == 0) return true;  // "D2"
  return false;
}

bool knownRuleToken(const std::string& rule) {
  for (const auto& [id, unused] : ruleTable()) {
    (void)unused;
    if (ruleTokenCovers(rule, id)) return true;
  }
  return false;
}

}  // namespace

std::string Finding::format() const {
  return file + ":" + std::to_string(line) + ": [" + ruleId + "] " + message +
         "; fix: " + fixit;
}

void UnorderedIndex::add(std::string name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) names_.insert(it, std::move(name));
}

bool UnorderedIndex::contains(const std::string& name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

void UnorderedIndex::collect(const SourceFile& sf) {
  const std::string& text = sf.stripped;
  for (const char* needle : {"unordered_map", "unordered_set"}) {
    const std::string n = needle;
    std::size_t pos = 0;
    while ((pos = text.find(n, pos)) != std::string::npos) {
      const std::size_t found = pos;
      const std::size_t after = pos + n.size();
      pos = after;
      if (found > 0 && isIdentChar(text[found - 1])) continue;  // my_unordered_map
      if (after >= text.size() || text[after] != '<') continue;
      const std::size_t close = matchBracket(text, after);
      if (close == std::string::npos) continue;
      // `std::unordered_map<...>::iterator` etc. is a nested-name use, not a
      // declaration of an iterable object.
      std::size_t i = close + 1;
      while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
                                 text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && isIdentChar(text[i])) name.push_back(text[i++]);
      if (name.empty() || name == "const") continue;
      // Either a variable/member (`files_;`, `consumed{...}`) or a function
      // returning the container (`entries() const`): both iterate unordered.
      add(std::move(name));
    }
  }
  // `auto leftovers = std::move(detached_);` aliases an unordered member.
  static const std::regex aliasRe(
      R"(\bauto\s+(\w+)\s*=\s*std::move\(\s*([\w.:>()*&-]+?)\s*\))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), aliasRe);
       it != std::sregex_iterator(); ++it) {
    aliases_.emplace_back((*it)[1].str(), tailIdentifier((*it)[2].str()));
  }
}

void UnorderedIndex::finalize() {
  // Two rounds cover alias-of-alias chains without a full fixpoint.
  for (int round = 0; round < 2; ++round) {
    for (const auto& [alias, source] : aliases_) {
      if (!source.empty() && contains(source)) add(alias);
    }
  }
}

std::vector<std::pair<std::string, std::string>> ruleTable() {
  return {
      {kD1, "no wall-clock or ambient entropy in simulation code"},
      {kD2, "no iteration over std::unordered_map/std::unordered_set"},
      {kD3, "RNG streams must be forked per concern, never literal-seeded"},
      {kD4, "no exact floating-point comparison or unordered accumulation"},
      {kD5, "layering: simcore includes nothing above it; no Trace::instance(); "
            "catalog mutations only inside src/storage"},
      {kBadSuppression, "wfslint: allow(<rule>) needs a known rule and a non-empty reason"},
  };
}

std::vector<Finding> runRules(const SourceFile& sf, const UnorderedIndex& unordered,
                              bool allRules) {
  std::vector<Finding> findings;
  const std::string& path = sf.displayPath;
  const std::string& text = sf.stripped;

  const bool libraryCode = startsWith(path, "src/") || startsWith(path, "tools/");
  const bool storageCode = startsWith(path, "src/storage/") ||
                           startsWith(path, "tests/storage/");
  const bool simcoreCode = startsWith(path, "src/simcore/");

  const auto suppressed = [&sf](int line, const std::string& id) {
    for (const Suppression& s : sf.suppressions) {
      if (s.appliesToLine == line && !s.reason.empty() && ruleTokenCovers(s.rule, id)) {
        return true;
      }
    }
    return false;
  };
  const auto emit = [&](int line, const char* id, std::string message, const char* fixit) {
    if (suppressed(line, id)) return;
    findings.push_back({path, line, id, std::move(message), fixit});
  };
  const auto scanRegexRules = [&](const std::vector<RegexRule>& rules) {
    for (const RegexRule& rule : rules) {
      for (auto it = std::sregex_iterator(text.begin(), text.end(), rule.pattern);
           it != std::sregex_iterator(); ++it) {
        emit(sf.lineOf(static_cast<std::size_t>(it->position())), rule.id, rule.message,
             rule.fixit);
      }
    }
  };

  // D1 — ambient nondeterminism.
  scanRegexRules(d1Rules());

  // D3 — RNG discipline (library code only: tests/benches/examples pin
  // experiment-root seeds by design, which IS the documented seeding root).
  if (allRules || libraryCode) scanRegexRules(d3Rules());

  // D4 — float-literal comparisons.
  scanRegexRules(d4Rules());

  // D2 — range-for over an unordered container, plus the D4 variant
  // std::accumulate over one.
  {
    std::size_t pos = 0;
    while ((pos = text.find("for", pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += 3;
      if (at > 0 && isIdentChar(text[at - 1])) continue;
      std::size_t i = at + 3;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
      if (i >= text.size() || text[i] != '(') continue;
      const std::size_t close = matchBracket(text, i);
      if (close == std::string::npos) continue;
      const std::string head = text.substr(i + 1, close - i - 1);
      // Find the range-for ':' at paren depth 0, skipping '::'.
      std::size_t colon = std::string::npos;
      int depth = 0;
      bool classicFor = false;
      for (std::size_t k = 0; k < head.size(); ++k) {
        const char c = head[k];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (depth != 0) continue;
        if (c == ';') {
          classicFor = true;
          break;
        }
        if (c == ':' && (k + 1 >= head.size() || head[k + 1] != ':') &&
            (k == 0 || head[k - 1] != ':')) {
          colon = k;
          break;
        }
      }
      if (classicFor || colon == std::string::npos) continue;
      const std::string name = tailIdentifier(head.substr(colon + 1));
      if (!name.empty() && unordered.contains(name)) {
        emit(sf.lineOf(at), kD2,
             "range-for over unordered container `" + name +
                 "` has platform-dependent order",
             kD2Fix);
      }
    }

    static const std::regex accumulateRe(
        R"(\bstd::accumulate\s*\(\s*([A-Za-z_][\w.>:()*&-]*?)\s*\.\s*c?begin\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), accumulateRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = tailIdentifier((*it)[1].str());
      if (!name.empty() && unordered.contains(name)) {
        emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD4,
             "std::accumulate over unordered container `" + name +
                 "` folds doubles in platform-dependent order",
             kD4Fix);
      }
    }
  }

  // D5 — layering.
  {
    static const std::regex traceRe(R"(\bTrace\s*::\s*instance\b)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), traceRe);
         it != std::sregex_iterator(); ++it) {
      emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD5,
           "Trace::instance() global was removed for per-simulator trace isolation",
           "trace through the owning sim::Simulator (WFS_TRACE macro)");
    }

    if (allRules || !storageCode) {
      static const std::regex catalogRe(
          R"(\bcatalog_\s*\.\s*(?:create|markLost|markDiscarded|clearLost)\s*\(|\bFileCatalog\s+\w+)");
      for (auto it = std::sregex_iterator(text.begin(), text.end(), catalogRe);
           it != std::sregex_iterator(); ++it) {
        emit(sf.lineOf(static_cast<std::size_t>(it->position())), kD5,
             "write-once catalog mutated outside src/storage",
             "route through StorageSystem::write/preload/retractFile so write-once "
             "invariants stay enforced in one place");
      }
    }

    if (allRules || simcoreCode) {
      static const std::regex includeRe(R"re(#\s*include\s*"([^"]+)")re");
      // Include paths live inside string literals, which the lexer blanks;
      // scan the raw text but only on lines that are preprocessor directives
      // in the stripped view (so commented-out includes stay dead).
      for (auto it = std::sregex_iterator(sf.raw.begin(), sf.raw.end(), includeRe);
           it != std::sregex_iterator(); ++it) {
        const int line = sf.lineOf(static_cast<std::size_t>(it->position()));
        const auto [b, e] = sf.lineRange(line);
        const std::string strippedLine = trim(text.substr(b, e - b));
        if (strippedLine.empty() || strippedLine[0] != '#') continue;
        const std::string target = (*it)[1].str();
        for (const std::string& banned : bannedSimcoreIncludes()) {
          if (startsWith(target, banned.c_str())) {
            emit(line, kD5,
                 "src/simcore may not depend on `" + target +
                     "` (simcore is the bottom layer)",
                 "invert the dependency or move the code out of simcore");
            break;
          }
        }
      }
    }
  }

  // Suppression hygiene: every annotation needs a known rule and a reason.
  for (const Suppression& s : sf.suppressions) {
    if (!knownRuleToken(s.rule)) {
      findings.push_back({path, s.line, kBadSuppression,
                          "unknown rule `" + s.rule + "` in wfslint annotation",
                          "use one of the ids from `wfslint --list-rules`"});
    } else if (s.reason.empty()) {
      findings.push_back({path, s.line, kBadSuppression,
                          "suppression of `" + s.rule + "` carries no justification",
                          "write `// wfslint: allow(" + s.rule + ") <why this is safe>`"});
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.ruleId < b.ruleId;
  });
  return findings;
}

}  // namespace wfs::lint
