#pragma once

#include <string>
#include <vector>

namespace wfs::lint {

/// One suppression annotation found in a file: a comment carrying the
/// `wfslint:` marker followed by `allow(<rule>) <reason>`.
///
/// An annotation suppresses findings of `rule` on its own line; when the
/// comment is the only thing on its line it suppresses the next code line
/// instead (the idiom for annotating a `for` statement from above).
struct Suppression {
  int line = 0;          ///< 1-based line the comment sits on.
  int appliesToLine = 0; ///< Line whose findings it suppresses.
  std::string rule;      ///< As written: "unordered-iter" or "D2-unordered-iter".
  std::string reason;    ///< Trailing comment text; must be non-empty.
};

/// One hot-region marker: `wfslint: hot-begin(<name>)` opens an allocation-
/// free region (rule D8), `wfslint: hot-end` closes it. Markers are kept as
/// a flat list; rules.cpp pairs them and reports stray or unterminated ones.
struct HotMarker {
  int line = 0;      ///< 1-based line the comment sits on.
  bool begin = false;
  std::string name;  ///< Region label from hot-begin(<name>); empty on end.
};

/// A source file prepared for the token/regex tier: `stripped` mirrors the
/// original byte-for-byte in layout (same length, same newlines) but has
/// comment bodies and string/char literal contents blanked to spaces, so
/// rule regexes never fire inside a literal or a doc comment.
struct SourceFile {
  std::string path;        ///< As passed on the command line.
  std::string displayPath; ///< Path used for findings + rule scoping.
  std::string raw;         ///< Original bytes (preprocessor directives keep
                           ///< their include targets only here).
  std::string stripped;
  std::vector<Suppression> suppressions;
  std::vector<HotMarker> hotMarkers;
  bool loadFailed = false;

  /// Line (1-based) containing byte `offset` of `stripped`.
  [[nodiscard]] int lineOf(std::size_t offset) const;

  /// Byte range [begin, end) of 1-based `line` in `stripped`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> lineRange(int line) const;

 private:
  std::vector<std::size_t> lineStarts_;
  friend SourceFile loadSource(const std::string& path, const std::string& displayPath);
};

/// Reads and lexes `path`. Sets `loadFailed` when the file cannot be read.
SourceFile loadSource(const std::string& path, const std::string& displayPath);

}  // namespace wfs::lint
