#include "sarif.hpp"

#include <cstdio>
#include <fstream>
#include <map>

namespace wfs::lint {

namespace {

/// JSON string escaping per RFC 8259: the two mandatory escapes plus \uXXXX
/// for control characters. Finding text is ASCII in practice but file paths
/// need not be.
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string sarifReport(const std::vector<Finding>& findings) {
  const auto rules = ruleTable();
  std::map<std::string, std::size_t> ruleIndex;
  for (std::size_t i = 0; i < rules.size(); ++i) ruleIndex.emplace(rules[i].first, i);

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/"
      "schemas/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"wfslint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + jsonEscape(rules[i].first) +
           "\", \"shortDescription\": {\"text\": \"" + jsonEscape(rules[i].second) +
           "\"}, \"defaultConfiguration\": {\"level\": \"error\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto it = ruleIndex.find(f.ruleId);
    out += "        {\"ruleId\": \"" + jsonEscape(f.ruleId) + "\"";
    if (it != ruleIndex.end()) {
      out += ", \"ruleIndex\": " + std::to_string(it->second);
    }
    out += ", \"level\": \"error\", \"message\": {\"text\": \"" +
           jsonEscape(f.message + "; fix: " + f.fixit) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           jsonEscape(f.file) + "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

bool writeSarif(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << sarifReport(findings);
  return static_cast<bool>(out);
}

}  // namespace wfs::lint
