#pragma once

#include <vector>

#include "rules.hpp"
#include "source_file.hpp"

namespace wfs::lint {

/// Cross-file semantic tier. Runs over the whole scanned set at once:
///
///   L-layering         the real preprocessor include graph respects the
///                      layer DAG simcore < blk/net < storage < fault < wf
///                      < cloud < analysis < apps/tools (checking every
///                      direct edge against the total layer order makes the
///                      property hold transitively), and is cycle-free
///   D6-identity-drift  the structured bindings in the fabric cell-identity
///                      serializer cover every ExperimentConfig/fault::Spec
///                      field, every bound name is serialized (or carries a
///                      documented `(void)` exclusion), and the cfg-v
///                      identity version and the wfs-results-v cache salt
///                      move in lockstep
///
/// Findings respect the per-file allow-annotation suppressions. Partial
/// scans degrade gracefully: D6 only activates when the serializer file is
/// in the set, and each of its cross-checks only when its anchor (struct
/// definition, salt literal) was scanned too.
std::vector<Finding> runCrossFileRules(const std::vector<SourceFile>& sources);

}  // namespace wfs::lint
