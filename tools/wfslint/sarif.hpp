#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace wfs::lint {

/// Renders findings as a SARIF 2.1.0 log (one run, driver "wfslint", rule
/// metadata from ruleTable()). Deterministic: callers pass findings already
/// sorted, rule order is the table order, and no timestamps are emitted.
/// An empty findings list still yields a valid log with `"results": []` so
/// CI can upload unconditionally.
std::string sarifReport(const std::vector<Finding>& findings);

/// Writes sarifReport() to `path`. Returns false on I/O failure.
bool writeSarif(const std::string& path, const std::vector<Finding>& findings);

}  // namespace wfs::lint
