// wfsim — command-line front end to the simulator.
//
//   wfsim run    <app> <storage> <nodes> [--scale S] [--seed N] [--trace]
//                [--data-aware] [--no-first-write-penalty] [--cluster K]
//                [--nfs-server TYPE] [--metrics FILE] [--faults ...]
//   wfsim sweep  <app> [--jobs N] [--jsonl FILE] [--metrics FILE]
//                [--shard I/N] [--resume] [--cache DIR] [--list-cells]
//   wfsim repeat <app> <storage> <nodes> [--reps R] [--jobs N]
//   wfsim avail  <app> [nodes] [--crash-frac F] [--jobs N] [--jsonl FILE]
//   wfsim merge  FRAGMENT... --jsonl OUT           reassemble shard fragments
//   wfsim table1 [--scale S]                       reproduce Table I
//   wfsim list                                     storage systems & instance types
//
// Workflow sources (run/sweep/repeat; see docs/WORKFLOWS.md): instead of a
// built-in <app>, `--workflow FILE` imports a WfCommons JSON trace and
// `--synth SPEC` generates a parameterized DAG — the <app> positional is
// then dropped:
//   wfsim run --workflow examples/workflows/diamond_min.json nfs 2
//   wfsim sweep --synth layered:tasks=5000,fanin=3 --jsonl out.jsonl
//
// Fault injection (wfs::fault): --faults turns it on for run/sweep/repeat;
// the tuning flags below shape the schedule, which is drawn from
// --fault-seed, never from wall clock. `avail` runs the availability sweep:
// every backend fault-free, then again with one worker crash-stopped at
// --crash-frac of the clean makespan, reporting makespan/cost inflation.
//
// Sweep fabric (docs/SWEEPS.md): sweep, repeat and avail all run through
// analysis::fabric — every grid cell has a content hash over its canonical
// config, results stream to an fsync'd FILE.parts checkpoint as cells
// finish (--resume skips completed cells after a crash), --shard I/N runs
// the I-th of N deterministic grid slices (reassembled with `wfsim merge`
// into the byte-identical single-process ordering), and --cache DIR reuses
// finished cell lines across runs, keyed by config hash under a
// code-version salt. Identity and ordering come from the grid index alone,
// so output files are byte-identical for any --jobs value and for any mix
// of simulated, resumed and cached cells.
//
// Examples:
//   wfsim run broadband s3 4 --scale 0.25
//   wfsim sweep montage --jobs $(nproc) --jsonl montage.jsonl
//   wfsim sweep montage --shard 1/3 --jsonl frag1.jsonl --cache ~/.wfsim-cache
//   wfsim merge frag0.jsonl frag1.jsonl frag2.jsonl --jsonl montage.jsonl
//   wfsim repeat epigenome nfs 4 --reps 5 --jobs 2

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/availability.hpp"
#include "analysis/fabric/cellid.hpp"
#include "analysis/fabric/fabric.hpp"
#include "analysis/fabric/manifest.hpp"
#include "analysis/repeat.hpp"
#include "analysis/sweep.hpp"
#include "wfcloudsim.hpp"

namespace {

using namespace wfs::analysis;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  wfsim run    <app> <storage> <nodes> [options]\n"
               "  wfsim sweep  <app> [options]\n"
               "  wfsim repeat <app> <storage> <nodes> [--reps R] [options]\n"
               "  wfsim avail  <app> [nodes] [options]\n"
               "  wfsim merge  FRAGMENT... --jsonl OUT\n"
               "  wfsim table1 [options]\n"
               "  wfsim list\n"
               "\n"
               "apps:     montage | broadband | epigenome\n"
               "          or, for run/sweep/repeat (the <app> positional is dropped):\n"
               "          --workflow FILE   WfCommons JSON trace (docs/WORKFLOWS.md)\n"
               "          --synth SPEC      e.g. diamond:width=16  layered:tasks=100000\n"
               "storage:  local | s3 | nfs | gluster-nufa | gluster-dist | pvfs |\n"
               "          xtreemfs | p2p\n"
               "options:  --jobs N   --jsonl FILE  --metrics FILE  --scale S\n"
               "          --seed N  --reps R  --cluster K  --data-aware\n"
               "          --no-first-write-penalty  --nfs-server TYPE  --trace\n"
               "redundancy (run/avail):\n"
               "          --replicas N      AFR replication on gluster-* backends\n"
               "          --ec K+M          stripe+parity erasure coding on pvfs\n"
               "fabric:   --shard I/N  --resume  --cache DIR  --no-cache  --list-cells\n"
               "          (sweep/repeat/avail; WFS_SWEEP_CACHE sets the default cache;\n"
               "          see docs/SWEEPS.md)\n"
               "faults:   --faults  --crash-rate PER_NODE_HOUR  --crash-at T:NODE\n"
               "          --op-fault-prob P  --outage-rate PER_HOUR  --outage-mean S\n"
               "          --fault-seed N  --max-op-retries N  --retry-backoff S\n"
               "          --crash-frac F (avail only)\n");
  std::exit(2);
}

/// Actionable one-line CLI error (distinct from structural misuse, which
/// gets the full usage text).
[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

double parseDouble(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    die(flag + " expects a number, got '" + v + "'");
  }
  return x;
}

long parseLong(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    die(flag + " expects an integer, got '" + v + "'");
  }
  return x;
}

std::uint64_t parseU64(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || v.front() == '-' || end != v.c_str() + v.size()) {
    die(flag + " expects a non-negative integer, got '" + v + "'");
  }
  return x;
}

App parseApp(const std::string& s) {
  if (s == "montage") return App::kMontage;
  if (s == "broadband") return App::kBroadband;
  if (s == "epigenome") return App::kEpigenome;
  usage(("unknown app: " + s).c_str());
}

StorageKind parseStorage(const std::string& s) {
  for (const StorageKind k :
       {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs,
        StorageKind::kP2p}) {
    if (s == toString(k)) return k;
  }
  usage(("unknown storage system: " + s).c_str());
}

struct Cli {
  std::vector<std::string> positional;
  /// WfCommons trace path (--workflow); replaces the <app> positional.
  std::string workflowFile;
  /// Synthetic SPEC string (--synth), as typed; canonicalized in toConfig.
  std::string synthSpec;
  double scale = 1.0;
  std::uint64_t seed = 42;
  int reps = 5;
  int clusterFactor = 1;
  /// Sweep worker threads; 0 = all hardware threads.
  int jobs = 0;
  bool dataAware = false;
  bool firstWritePenalty = true;
  bool trace = false;
  std::string nfsServer = "m1.xlarge";
  /// Redundancy tier (run/avail): AFR replica count and erasure geometry.
  int replicas = 1;
  int ecK = 0;
  int ecM = 0;
  /// Raw flag spellings, for cross-flag error messages.
  std::string replicasRaw;
  std::string ecRaw;
  /// JSONL sweep output; empty = none, "-" = stdout.
  std::string jsonl;
  /// Per-layer/per-node metrics ledger JSONL; empty = none, "-" = stdout.
  std::string metrics;

  // Sweep fabric (sweep/repeat/avail).
  /// This invocation owns grid cells with index % shardCount == shardIndex.
  int shardIndex = 0;
  int shardCount = 1;
  bool shardGiven = false;
  /// Fold the FILE.parts checkpoint in and run only the missing cells.
  bool resume = false;
  /// Result-cache directory (--cache beats $WFS_SWEEP_CACHE beats none).
  std::string cacheDir;
  bool noCache = false;
  /// Print the cell grid (index, hash, label) and exit without simulating.
  bool listCells = false;

  // Fault injection.
  bool faults = false;
  /// Any fault-tuning flag was given (to reject tuning without --faults).
  std::string firstFaultFlag;
  double crashRate = 0.0;
  double opFaultProb = 0.0;
  double outageRate = 0.0;
  double outageMean = 30.0;
  std::uint64_t faultSeed = 1;
  std::vector<wfs::fault::NodeCrash> crashAt;
  double crashFrac = 0.5;
  int maxOpRetries = 4;
  double retryBackoff = 0.5;
};

Cli parseArgs(int argc, char** argv) {
  Cli cli;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    auto faultFlag = [&] {
      if (cli.firstFaultFlag.empty()) cli.firstFaultFlag = a;
    };
    // Range checks live here, next to the raw text, so every rejection can
    // quote the offending value verbatim.
    if (a == "--scale") {
      const std::string v = next();
      cli.scale = parseDouble(a, v);
      if (cli.scale <= 0) die("--scale must be > 0, got '" + v + "'");
    } else if (a == "--seed") {
      cli.seed = parseU64(a, next());
    } else if (a == "--reps") {
      const std::string v = next();
      cli.reps = static_cast<int>(parseLong(a, v));
      if (cli.reps < 1) die("--reps must be >= 1, got '" + v + "'");
    } else if (a == "--cluster") {
      const std::string v = next();
      cli.clusterFactor = static_cast<int>(parseLong(a, v));
      if (cli.clusterFactor < 1) die("--cluster must be >= 1, got '" + v + "'");
    } else if (a == "--jobs") {
      const std::string v = next();
      cli.jobs = static_cast<int>(parseLong(a, v));
      if (cli.jobs < 0) die("--jobs must be >= 0 (0 = all hardware threads), got '" + v + "'");
    } else if (a == "--workflow") {
      cli.workflowFile = next();
      if (cli.workflowFile.empty()) die("--workflow expects a trace file path");
    } else if (a == "--synth") {
      cli.synthSpec = next();
      if (cli.synthSpec.empty()) die("--synth expects a SPEC (e.g. diamond:width=16)");
    } else if (a == "--jsonl") {
      cli.jsonl = next();
    } else if (a == "--metrics") {
      cli.metrics = next();
    } else if (a == "--shard") {
      const std::string v = next();
      const auto slash = v.find('/');
      long idx = 0;
      long cnt = 0;
      bool wellFormed = slash != std::string::npos && slash > 0 && slash + 1 < v.size();
      if (wellFormed) {
        const std::string is = v.substr(0, slash);
        const std::string cs = v.substr(slash + 1);
        char* end = nullptr;
        idx = std::strtol(is.c_str(), &end, 10);
        wellFormed = end == is.c_str() + is.size();
        if (wellFormed) {
          cnt = std::strtol(cs.c_str(), &end, 10);
          wellFormed = end == cs.c_str() + cs.size();
        }
      }
      if (!wellFormed) die("--shard expects I/N (e.g. 0/4), got '" + v + "'");
      if (cnt < 1) die("--shard count must be >= 1, got '" + v + "'");
      if (idx < 0 || idx >= cnt) die("--shard index must be in [0,N), got '" + v + "'");
      cli.shardIndex = static_cast<int>(idx);
      cli.shardCount = static_cast<int>(cnt);
      cli.shardGiven = true;
    } else if (a == "--resume") {
      cli.resume = true;
    } else if (a == "--cache") {
      cli.cacheDir = next();
      if (cli.cacheDir.empty()) die("--cache expects a directory path");
    } else if (a == "--no-cache") {
      cli.noCache = true;
    } else if (a == "--list-cells") {
      cli.listCells = true;
    } else if (a == "--data-aware") {
      cli.dataAware = true;
    } else if (a == "--no-first-write-penalty") {
      cli.firstWritePenalty = false;
    } else if (a == "--trace") {
      cli.trace = true;
    } else if (a == "--nfs-server") {
      cli.nfsServer = next();
    } else if (a == "--replicas") {
      const std::string v = next();
      cli.replicas = static_cast<int>(parseLong(a, v));
      if (cli.replicas < 1) die("--replicas must be >= 1, got '" + v + "'");
      cli.replicasRaw = v;
    } else if (a == "--ec") {
      const std::string v = next();
      const auto plus = v.find('+');
      long k = 0;
      long m = 0;
      bool wellFormed = plus != std::string::npos && plus > 0 && plus + 1 < v.size();
      if (wellFormed) {
        const std::string ks = v.substr(0, plus);
        const std::string ms = v.substr(plus + 1);
        char* end = nullptr;
        k = std::strtol(ks.c_str(), &end, 10);
        wellFormed = end == ks.c_str() + ks.size();
        if (wellFormed) {
          m = std::strtol(ms.c_str(), &end, 10);
          wellFormed = end == ms.c_str() + ms.size();
        }
      }
      if (!wellFormed || k < 1 || m < 1) {
        die("--ec must be K+M with K >= 1 and M >= 1 (e.g. 2+1), got '" + v + "'");
      }
      cli.ecK = static_cast<int>(k);
      cli.ecM = static_cast<int>(m);
      cli.ecRaw = v;
    } else if (a == "--faults") {
      cli.faults = true;
    } else if (a == "--crash-rate") {
      faultFlag();
      const std::string v = next();
      cli.crashRate = parseDouble(a, v);
      if (cli.crashRate < 0.0) die("--crash-rate must be >= 0, got '" + v + "'");
    } else if (a == "--op-fault-prob") {
      faultFlag();
      const std::string v = next();
      cli.opFaultProb = parseDouble(a, v);
      if (cli.opFaultProb < 0.0 || cli.opFaultProb > 1.0) {
        die("--op-fault-prob must be a probability in [0,1], got '" + v + "'");
      }
    } else if (a == "--outage-rate") {
      faultFlag();
      const std::string v = next();
      cli.outageRate = parseDouble(a, v);
      if (cli.outageRate < 0.0) die("--outage-rate must be >= 0, got '" + v + "'");
    } else if (a == "--outage-mean") {
      faultFlag();
      const std::string v = next();
      cli.outageMean = parseDouble(a, v);
      if (cli.outageMean <= 0.0) die("--outage-mean must be > 0 seconds, got '" + v + "'");
    } else if (a == "--fault-seed") {
      faultFlag();
      cli.faultSeed = parseU64(a, next());
    } else if (a == "--crash-at") {
      faultFlag();
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        die("--crash-at expects T:NODE (e.g. 120.5:0), got '" + v + "'");
      }
      wfs::fault::NodeCrash c;
      c.atSeconds = parseDouble(a, v.substr(0, colon));
      c.node = static_cast<int>(parseLong(a, v.substr(colon + 1)));
      if (c.atSeconds < 0.0) die("--crash-at time must be >= 0, got '" + v + "'");
      if (c.node < 0) die("--crash-at node must be >= 0, got '" + v + "'");
      cli.crashAt.push_back(c);
    } else if (a == "--crash-frac") {
      faultFlag();
      const std::string v = next();
      cli.crashFrac = parseDouble(a, v);
      if (cli.crashFrac <= 0.0 || cli.crashFrac >= 1.0) {
        die("--crash-frac must be in (0,1): a fraction of the clean makespan, got '" + v +
            "'");
      }
    } else if (a == "--max-op-retries") {
      faultFlag();
      const std::string v = next();
      cli.maxOpRetries = static_cast<int>(parseLong(a, v));
      if (cli.maxOpRetries < 1) die("--max-op-retries must be >= 1, got '" + v + "'");
    } else if (a == "--retry-backoff") {
      faultFlag();
      const std::string v = next();
      cli.retryBackoff = parseDouble(a, v);
      if (cli.retryBackoff < 0.0) die("--retry-backoff must be >= 0 seconds, got '" + v + "'");
    } else if (a.rfind("--", 0) == 0) {
      usage(("unknown option: " + a).c_str());
    } else {
      cli.positional.push_back(a);
    }
  }
  return cli;
}

/// Cross-flag consistency checks, done once the command is known so errors
/// come out as one actionable line instead of a stack trace mid-sweep.
void validateCli(const Cli& cli, const std::string& cmd) {
  // Per-flag range checks live in parseArgs (they quote the raw value);
  // everything here spans flags or needs the command.
  if (!cli.workflowFile.empty() && !cli.synthSpec.empty()) {
    die("--workflow " + cli.workflowFile + " and --synth " + cli.synthSpec +
        " are mutually exclusive; pick one workflow source");
  }
  const std::string wfFlag = !cli.workflowFile.empty() ? "--workflow " + cli.workflowFile
                             : !cli.synthSpec.empty()  ? "--synth " + cli.synthSpec
                                                       : "";
  if (!wfFlag.empty()) {
    if (cmd == "avail" || cmd == "table1" || cmd == "merge") {
      die(wfFlag + ": only run, sweep and repeat accept external workflows");
    }
    // wfslint: allow(float-eq) flag-sentinel test: 1.0 is the parse default, not computed
    if (cli.scale != 1.0) {
      die(wfFlag + ": --scale applies only to built-in apps (external workflows fix "
                   "their own size)");
    }
  }
  if (!cli.workflowFile.empty()) {
    // Catch a bad path now, not after the cluster is built; the importer
    // itself re-validates content and prefixes errors with this same path.
    std::FILE* traceFile = std::fopen(cli.workflowFile.c_str(), "rb");
    if (traceFile == nullptr) die(wfFlag + ": cannot open file");
    std::fclose(traceFile);
  }
  if (!cli.synthSpec.empty()) {
    try {
      (void)wfs::wf::synth::SynthSpec::parse(cli.synthSpec);
    } catch (const wfs::wf::synth::SynthError& e) {
      die(wfFlag + ": " + e.what());
    }
  }

  // Fabric flags apply only to the grid commands, and sharded/resumed runs
  // need a real output file: the checkpoint and the fragment manifest are
  // sidecars of `--jsonl FILE`.
  const bool fabricCmd = cmd == "sweep" || cmd == "repeat" || cmd == "avail";
  if (!fabricCmd) {
    if (cli.shardGiven) die("--shard applies only to sweep, repeat and avail");
    if (cli.resume) die("--resume applies only to sweep, repeat and avail");
    if (!cli.cacheDir.empty() || cli.noCache) {
      die("--cache/--no-cache apply only to sweep, repeat and avail");
    }
    if (cli.listCells) die("--list-cells applies only to sweep, repeat and avail");
  }
  if (!cli.cacheDir.empty() && cli.noCache) {
    die("--cache " + cli.cacheDir + " and --no-cache are mutually exclusive");
  }
  const bool jsonlFile = !cli.jsonl.empty() && cli.jsonl != "-";
  if (cli.shardGiven && cli.shardCount > 1 && !jsonlFile && !cli.listCells) {
    die("--shard needs --jsonl FILE (not stdout): each fragment carries a "
        "FILE.manifest sidecar that wfsim merge consumes");
  }
  if (cli.resume && !jsonlFile) {
    die("--resume needs --jsonl FILE (not stdout): the checkpoint lives at FILE.parts");
  }
  if (!cli.metrics.empty() && fabricCmd) {
    // The per-cell metrics ledger exists only for freshly simulated cells;
    // it is neither checkpointed nor cached, so any source of non-simulated
    // lines would silently hole the ledger.
    if (cli.shardGiven && cli.shardCount > 1) {
      die("--metrics cannot be combined with --shard: the metrics ledger is not "
          "sharded or merged");
    }
    if (cli.resume) {
      die("--metrics cannot be combined with --resume: resumed cells are not "
          "re-simulated and produce no ledger");
    }
    if (!cli.cacheDir.empty()) {
      die("--metrics cannot be combined with --cache: cache hits skip simulation "
          "and produce no ledger");
    }
  }
  if (cmd == "merge" && cli.jsonl.empty()) {
    die("merge: needs --jsonl OUT (the merged output path)");
  }

  // Redundancy spans flags and commands: the two schemes are exclusive and
  // only run/avail carry a single backend (the default sweep grids must
  // stay redundancy-free so their reference outputs hold).
  if (cli.replicas > 1 && cli.ecK > 0) {
    die("--replicas " + cli.replicasRaw + " and --ec " + cli.ecRaw +
        " are mutually exclusive; pick one redundancy scheme");
  }
  if ((cli.replicas > 1 || cli.ecK > 0) && cmd != "run" && cmd != "avail") {
    die(std::string(cli.replicas > 1 ? "--replicas" : "--ec") +
        " applies only to run and avail");
  }

  if (!cli.faults && cmd != "avail" && !cli.firstFaultFlag.empty()) {
    die(cli.firstFaultFlag + " has no effect without --faults (or the avail command)");
  }
  if (cli.faults && cmd == "avail") {
    die("avail: drop --faults, the sweep injects its own crash (tuning flags still apply)");
  }
  // wfslint: allow(float-eq) flag-sentinel test: 0.0 is the parse default, not a computed value
  if (cli.faults && cli.crashRate == 0.0 && cli.opFaultProb == 0.0 &&
      // wfslint: allow(float-eq) flag-sentinel test continued
      cli.outageRate == 0.0 && cli.crashAt.empty()) {
    die("--faults given but no fault source; add --crash-rate, --crash-at, "
        "--op-fault-prob or --outage-rate");
  }
  // Fail on unwritable output targets before burning sweep time.
  for (const std::string& target : {cli.jsonl, cli.metrics}) {
    if (target.empty() || target == "-") continue;
    std::FILE* f = std::fopen(target.c_str(), "a");
    if (f == nullptr) die("wfsim: cannot open " + target + " for writing");
    std::fclose(f);
  }
}

ExperimentConfig toConfig(const Cli& cli, App app, StorageKind kind, int nodes) {
  ExperimentConfig cfg;
  cfg.app = app;
  if (!cli.workflowFile.empty()) {
    cfg.source = WorkflowSource::kImportedTrace;
    cfg.workflowFile = cli.workflowFile;
  } else if (!cli.synthSpec.empty()) {
    cfg.source = WorkflowSource::kSynthetic;
    // Canonical spelling (defaults resolved) — what JSONL reports and what
    // the generator names the workflow. validateCli already proved it parses.
    cfg.synthSpec = wfs::wf::synth::SynthSpec::parse(cli.synthSpec).canonical();
  }
  cfg.storage = kind;
  cfg.workerNodes = nodes;
  cfg.appScale = cli.scale;
  cfg.seed = cli.seed;
  cfg.clusterFactor = cli.clusterFactor;
  cfg.dataAwareScheduling = cli.dataAware;
  cfg.firstWritePenalty = cli.firstWritePenalty;
  cfg.nfsServerType = cli.nfsServer;
  cfg.replicas = cli.replicas;
  cfg.ecK = cli.ecK;
  cfg.ecM = cli.ecM;
  if (cli.faults) {
    cfg.faults.enabled = true;
    cfg.faults.seed = cli.faultSeed;
    cfg.faults.crashRatePerNodeHour = cli.crashRate;
    cfg.faults.opFaultProb = cli.opFaultProb;
    cfg.faults.outageRatePerHour = cli.outageRate;
    cfg.faults.outageMeanSeconds = cli.outageMean;
    cfg.faults.explicitCrashes = cli.crashAt;
    cfg.faults.maxOpRetries = cli.maxOpRetries;
    cfg.faults.retryBackoffSeconds = cli.retryBackoff;
  }
  return cfg;
}

SweepRunner makeRunner(const Cli& cli) {
  SweepRunner::Options opt;
  opt.threads = cli.jobs;
  opt.progress = [](std::size_t done, std::size_t total, const SweepCellResult& cell) {
    std::fprintf(stderr, "[%zu/%zu] %s%s\n", done, total, cell.label().c_str(),
                 cell.ok ? "" : (" FAILED: " + cell.error).c_str());
  };
  return SweepRunner{opt};
}

void writeFileOrStdout(const std::string& target, const std::string& out,
                       const char* what, std::size_t count) {
  if (target == "-") {
    std::fwrite(out.data(), 1, out.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("wfsim: cannot open " + target);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %zu %s to %s\n", count, what, target.c_str());
}

void writeJsonl(const Cli& cli, const std::vector<SweepCellResult>& cells) {
  if (!cli.jsonl.empty()) {
    writeFileOrStdout(cli.jsonl, sweepJsonl(cells), "cells", cells.size());
  }
  if (!cli.metrics.empty()) {
    writeFileOrStdout(cli.metrics, sweepMetricsJsonl(cells), "cell ledgers", cells.size());
  }
}

// ---------------------------------------------------------------------------
// Sweep fabric plumbing shared by sweep/repeat/avail.

/// The cache directory this run should use: --no-cache disables, --cache
/// wins, else $WFS_SWEEP_CACHE. The env default is silently dropped under
/// --metrics (an explicit --cache with --metrics is rejected in validateCli):
/// cache hits produce no metrics ledger, so an ambient cache must never
/// change what --metrics emits.
std::string resolveCacheDir(const Cli& cli) {
  if (cli.noCache) return "";
  if (!cli.cacheDir.empty()) return cli.cacheDir;
  if (!cli.metrics.empty()) return "";
  const char* env = std::getenv("WFS_SWEEP_CACHE");
  return env != nullptr ? env : "";
}

/// --list-cells: the dry run. Same vocabulary as the fragment manifest —
/// grid size + fingerprint, the shard spec, then one `cell <index> <hash>
/// <label>` line per cell this invocation would own.
int listCellsDryRun(const Cli& cli, const std::vector<fabric::FabricCell>& fcells) {
  std::printf("grid %zu %s\n", fcells.size(),
              fabric::hashHex(fabric::gridFingerprint(fcells)).c_str());
  std::size_t owned = 0;
  for (std::size_t i = static_cast<std::size_t>(cli.shardIndex); i < fcells.size();
       i += static_cast<std::size_t>(cli.shardCount)) {
    ++owned;
  }
  std::printf("shard %d/%d %zu\n", cli.shardIndex, cli.shardCount, owned);
  for (std::size_t i = static_cast<std::size_t>(cli.shardIndex); i < fcells.size();
       i += static_cast<std::size_t>(cli.shardCount)) {
    std::printf("cell %zu %s %s\n", i, fcells[i].hexHash.c_str(), fcells[i].label.c_str());
  }
  return 0;
}

/// Runs a cell grid through the fabric with this CLI's shard/resume/cache
/// options and prints the provenance summary (the hit/miss counters the
/// warm-cache CI gate greps for).
fabric::FabricOutput runGrid(const Cli& cli, const char* what,
                             const std::vector<fabric::FabricCell>& fcells) {
  fabric::FabricOptions opt;
  opt.threads = cli.jobs;
  opt.shardIndex = cli.shardIndex;
  opt.shardCount = cli.shardCount;
  opt.resume = cli.resume;
  opt.cacheDir = resolveCacheDir(cli);
  if (!cli.jsonl.empty() && cli.jsonl != "-") opt.checkpoint = fabric::partsPath(cli.jsonl);
  opt.progress = [](std::size_t done, std::size_t total, const fabric::FabricCell& cell,
                    fabric::CellSource source, const fabric::FabricStats&) {
    const bool fresh = source == fabric::CellSource::kSimulated;
    std::fprintf(stderr, "[%zu/%zu] %s%s%s%s\n", done, total, cell.label.c_str(),
                 fresh ? "" : " (", fresh ? "" : fabric::toString(source), fresh ? "" : ")");
  };

  const fabric::FabricOutput out = fabric::runFabric(fcells, opt);
  const fabric::FabricStats& st = out.stats;
  std::fprintf(stderr,
               "%s: grid %zu cells, shard %d/%d owns %zu: simulated %zu, cache hits %zu, "
               "cache misses %zu, resumed %zu\n",
               what, st.gridCells, cli.shardIndex, cli.shardCount, st.shardCells,
               st.simulated, st.cacheHits, st.cacheMisses, st.resumed);
  return out;
}

/// Writes the shard's JSONL (+ manifest sidecar for real files) and the
/// metrics ledger, then retires the checkpoint: once the final file is on
/// disk the parts log has served its purpose.
void writeFabricOutputs(const Cli& cli, const fabric::FabricOutput& out) {
  if (!cli.jsonl.empty()) {
    std::string body;
    for (const fabric::FabricRecord& rec : out.records) {
      body += rec.line;
      body += '\n';
    }
    writeFileOrStdout(cli.jsonl, body, "cells", out.records.size());
    if (cli.jsonl != "-") {
      fabric::ManifestInfo info;
      info.shardIndex = cli.shardIndex;
      info.shardCount = cli.shardCount;
      info.gridCells = out.stats.gridCells;
      info.gridHash = out.gridHash;
      info.entries.reserve(out.records.size());
      for (const fabric::FabricRecord& rec : out.records) {
        info.entries.emplace_back(rec.index, rec.hexHash);
      }
      fabric::writeManifest(fabric::manifestPath(cli.jsonl), info);
      std::remove(fabric::partsPath(cli.jsonl).c_str());
    }
  }
  if (!cli.metrics.empty()) {
    std::string body;
    for (const fabric::FabricRecord& rec : out.records) body += rec.extra;
    const auto lines =
        static_cast<std::size_t>(std::count(body.begin(), body.end(), '\n'));
    writeFileOrStdout(cli.metrics, body, "ledger lines", lines);
  }
}

/// Extracts a numeric field from a finished cell line or throws, naming the
/// cell — a missing field here means an exporter/extractor key mismatch, not
/// user error.
double requireNumber(const fabric::FabricRecord& rec, const std::string& label,
                     const char* key) {
  const auto v = fabric::lineNumberField(rec.line, key);
  if (!v) {
    throw std::runtime_error("wfsim: cell " + label + " line is missing \"" + key +
                             "\": " + rec.line);
  }
  return *v;
}

void printResult(const ExperimentResult& r) {
  std::printf("workflow   : %s (%d tasks)\n", r.workflowName.c_str(), r.tasks);
  std::printf("storage    : %s\n", r.storageName.c_str());
  std::printf("makespan   : %.0f s (%.2f h)\n", r.makespanSeconds,
              r.makespanSeconds / 3600.0);
  std::printf("cost       : $%.2f per-hour billed, $%.3f per-second\n",
              r.cost.totalHourly(), r.cost.totalPerSecond());
  if (r.cost.s3RequestCost > 0) {
    std::printf("             incl. $%.3f S3 request fees\n", r.cost.s3RequestCost);
  }
  std::printf("io         : %s\n", r.storageMetrics.summary().c_str());
  std::printf("profile    : I/O %s, Memory %s, CPU %s\n", toString(r.profile.ioLevel),
              toString(r.profile.memoryLevel), toString(r.profile.cpuLevel));
}

void printFaultOutcome(const FaultOutcome& f) {
  if (!f.enabled) return;
  std::printf("faults     : %llu crashes, %llu crash aborts, %llu files lost, "
              "%llu jobs recomputed\n",
              static_cast<unsigned long long>(f.crashes),
              static_cast<unsigned long long>(f.crashAborts),
              static_cast<unsigned long long>(f.lostFiles),
              static_cast<unsigned long long>(f.recomputedJobs));
  std::printf("             %llu replacement VMs, %llu inputs re-staged, "
              "%llu op faults (%llu retried, %llu exhausted), %llu outage stalls\n",
              static_cast<unsigned long long>(f.replacementVms),
              static_cast<unsigned long long>(f.restagedInputs),
              static_cast<unsigned long long>(f.opFaultsInjected),
              static_cast<unsigned long long>(f.opFaultsRetried),
              static_cast<unsigned long long>(f.opFaultsExhausted),
              static_cast<unsigned long long>(f.outageStalls));
  if (f.failed) {
    std::printf("             RUN FAILED: retry budget exhausted, %llu rescue jobs\n",
                static_cast<unsigned long long>(f.rescueJobs));
  }
}

/// With --workflow/--synth the <app> positional is dropped; the App value
/// passed to toConfig is then inert (source dispatch ignores it).
bool externalWorkflow(const Cli& cli) {
  return !cli.workflowFile.empty() || !cli.synthSpec.empty();
}

int cmdRun(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 2u : 3u)) {
    usage(external ? "run with --workflow/--synth needs <storage> <nodes>"
                   : "run needs <app> <storage> <nodes>");
  }
  const std::size_t base = external ? 0 : 1;
  const StorageKind kind = parseStorage(cli.positional[base]);
  if (cli.replicas > 1 && kind != StorageKind::kGlusterNufa &&
      kind != StorageKind::kGlusterDist) {
    die("--replicas " + cli.replicasRaw +
        " requires a GlusterFS backend (gluster-nufa or gluster-dist), got '" +
        cli.positional[base] + "'");
  }
  if (cli.ecK > 0 && kind != StorageKind::kPvfs) {
    die("--ec " + cli.ecRaw + " requires the pvfs backend (striping), got '" +
        cli.positional[base] + "'");
  }
  ExperimentConfig cfg =
      toConfig(cli, external ? App::kMontage : parseApp(cli.positional[0]), kind,
               static_cast<int>(parseLong("<nodes>", cli.positional[base + 1])));
  cfg.trace = cli.trace;
  const auto r = runExperiment(cfg);
  printResult(r);
  printFaultOutcome(r.fault);
  if (!cli.metrics.empty()) {
    SweepCellResult cell;
    cell.config = cfg;
    cell.ok = true;
    cell.result = r;
    const std::string out = metricsJsonl(cell);
    const auto lines = static_cast<std::size_t>(
        std::count(out.begin(), out.end(), '\n'));
    writeFileOrStdout(cli.metrics, out, "ledger lines", lines);
  }
  return 0;
}

int cmdSweep(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 0u : 1u)) {
    usage(external ? "sweep with --workflow/--synth takes no positional arguments"
                   : "sweep needs <app>");
  }
  const App app = external ? App::kMontage : parseApp(cli.positional[0]);
  const std::string title = external
                                ? (!cli.workflowFile.empty() ? cli.workflowFile : cli.synthSpec)
                                : toString(app);
  const StorageKind kinds[] = {StorageKind::kLocal,       StorageKind::kS3,
                               StorageKind::kNfs,         StorageKind::kGlusterNufa,
                               StorageKind::kGlusterDist, StorageKind::kPvfs};
  const int nodeCounts[] = {1, 2, 4, 8};

  // Flatten the valid cells of the grid; (kind, node) indices to refold
  // the index-ordered results into the figure's series.
  std::vector<fabric::FabricCell> fcells;
  std::vector<std::pair<std::size_t, std::size_t>> keys;
  const bool withMetrics = !cli.metrics.empty();
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    for (std::size_t ni = 0; ni < std::size(nodeCounts); ++ni) {
      const int n = nodeCounts[ni];
      const bool valid =
          !(kinds[k] == StorageKind::kLocal && n != 1) &&
          !((kinds[k] == StorageKind::kGlusterNufa || kinds[k] == StorageKind::kGlusterDist ||
             kinds[k] == StorageKind::kPvfs) &&
            n < 2);
      if (!valid) continue;
      fcells.push_back(fabric::experimentCell(toConfig(cli, app, kinds[k], n), withMetrics));
      keys.emplace_back(k, ni);
    }
  }

  if (cli.listCells) return listCellsDryRun(cli, fcells);
  const fabric::FabricOutput out = runGrid(cli, "sweep", fcells);

  if (cli.shardCount == 1) {
    std::vector<Series> series;
    for (const StorageKind kind : kinds) {
      Series s;
      s.label = toString(kind);
      s.values.assign(std::size(nodeCounts), std::nan(""));
      series.push_back(std::move(s));
    }
    for (const fabric::FabricRecord& rec : out.records) {
      if (const auto err = fabric::lineStringField(rec.line, "error")) {
        throw std::runtime_error("wfsim: cell " + fcells[rec.index].label + ": " + *err);
      }
      series[keys[rec.index].first].values[keys[rec.index].second] =
          requireNumber(rec, fcells[rec.index].label, "makespan_s");
    }
    std::printf("%s", renderTable(title + " runtime",
                                  {"1 node", "2 nodes", "4 nodes", "8 nodes"}, series,
                                  "seconds")
                          .c_str());
  } else {
    std::fprintf(stderr,
                 "shard %d/%d: table suppressed (partial grid); merge all fragments "
                 "with wfsim merge first\n",
                 cli.shardIndex, cli.shardCount);
  }
  writeFabricOutputs(cli, out);
  return 0;
}

int cmdRepeat(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 2u : 3u)) {
    usage(external ? "repeat with --workflow/--synth needs <storage> <nodes>"
                   : "repeat needs <app> <storage> <nodes>");
  }
  const std::size_t base = external ? 0 : 1;
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < cli.reps; ++i) seeds.push_back(cli.seed + static_cast<unsigned>(i));

  // A repeat is a seed-axis sweep, so it rides the same fabric: shardable,
  // resumable, cacheable.
  const ExperimentConfig cfg =
      toConfig(cli, external ? App::kMontage : parseApp(cli.positional[0]),
               parseStorage(cli.positional[base]),
               static_cast<int>(parseLong("<nodes>", cli.positional[base + 1])));
  std::vector<fabric::FabricCell> fcells;
  const bool withMetrics = !cli.metrics.empty();
  for (const ExperimentConfig& cell : repeatGrid(cfg, seeds)) {
    fcells.push_back(fabric::experimentCell(cell, withMetrics));
  }

  if (cli.listCells) return listCellsDryRun(cli, fcells);
  const fabric::FabricOutput out = runGrid(cli, "repeat", fcells);

  if (cli.shardCount == 1) {
    std::vector<std::string> lines;
    lines.reserve(out.records.size());
    for (const fabric::FabricRecord& rec : out.records) lines.push_back(rec.line);
    const RepeatLineAggregate agg = aggregateRepeatLines(lines);
    std::printf("%d repetitions (seeds %llu..%llu)\n", cli.reps,
                static_cast<unsigned long long>(seeds.front()),
                static_cast<unsigned long long>(seeds.back()));
    std::printf("makespan   : %.0f s +- %.0f (95%% CI), range [%.0f, %.0f]\n",
                agg.makespan.mean(), agg.makespan.ci95(), agg.makespan.min(),
                agg.makespan.max());
    std::printf("cost/hourly: $%.2f +- %.3f\n", agg.costHourly.mean(),
                agg.costHourly.ci95());
    std::printf("cost/second: $%.3f +- %.3f\n", agg.costPerSecond.mean(),
                agg.costPerSecond.ci95());
  } else {
    std::fprintf(stderr,
                 "shard %d/%d: aggregate suppressed (partial seed list); merge all "
                 "fragments with wfsim merge first\n",
                 cli.shardIndex, cli.shardCount);
  }
  writeFabricOutputs(cli, out);
  return 0;
}

int cmdAvail(const Cli& cli) {
  if (cli.positional.empty() || cli.positional.size() > 2) {
    usage("avail needs <app> [nodes]");
  }
  AvailabilityOptions opt;
  opt.app = parseApp(cli.positional[0]);
  if (cli.positional.size() == 2) {
    opt.nodes = static_cast<int>(parseLong("<nodes>", cli.positional[1]));
    if (opt.nodes < 1) die("avail: <nodes> must be >= 1, got '" + cli.positional[1] + "'");
  }
  opt.appScale = cli.scale;
  opt.seed = cli.seed;
  opt.crashFrac = cli.crashFrac;
  opt.replicas = cli.replicas;
  opt.ecK = cli.ecK;
  opt.ecM = cli.ecM;
  // A redundancy scheme narrows the sweep to the backends that carry it.
  if (cli.replicas > 1) {
    opt.backends = {StorageKind::kGlusterNufa, StorageKind::kGlusterDist};
  } else if (cli.ecK > 0) {
    opt.backends = {StorageKind::kPvfs};
  }
  opt.threads = cli.jobs;
  opt.faults.seed = cli.faultSeed;
  opt.faults.opFaultProb = cli.opFaultProb;
  opt.faults.outageRatePerHour = cli.outageRate;
  opt.faults.outageMeanSeconds = cli.outageMean;
  opt.faults.maxOpRetries = cli.maxOpRetries;
  opt.faults.retryBackoffSeconds = cli.retryBackoff;

  std::vector<fabric::FabricCell> fcells;
  fcells.reserve(opt.backends.size());
  for (const StorageKind kind : opt.backends) {
    fcells.push_back(availabilityFabricCell(opt, kind));
  }

  if (cli.listCells) return listCellsDryRun(cli, fcells);
  const fabric::FabricOutput out = runGrid(cli, "avail", fcells);

  // Each row is one backend, so a shard's table is just the owned subset.
  std::printf("%-14s %13s %13s %10s %10s %6s %6s\n", "storage", "clean_s", "faulted_s",
              "infl", "cost_infl", "recomp", "lost");
  for (const fabric::FabricRecord& rec : out.records) {
    const char* name = toString(opt.backends[rec.index]);
    if (const auto err = fabric::lineStringField(rec.line, "error")) {
      std::printf("%-14s FAILED: %s\n", name, err->c_str());
      continue;
    }
    const std::string& label = fcells[rec.index].label;
    std::printf("%-14s %13.1f %13.1f %9.3fx %9.3fx %6llu %6llu\n", name,
                requireNumber(rec, label, "clean_makespan_s"),
                requireNumber(rec, label, "faulted_makespan_s"),
                requireNumber(rec, label, "makespan_inflation"),
                requireNumber(rec, label, "cost_inflation"),
                static_cast<unsigned long long>(requireNumber(rec, label, "recomputed_jobs")),
                static_cast<unsigned long long>(requireNumber(rec, label, "lost_files")));
  }
  writeFabricOutputs(cli, out);
  return 0;
}

/// wfsim merge FRAGMENT... --jsonl OUT: reassembles shard fragments (each
/// with its FILE.manifest sidecar) into the byte-identical single-process
/// ordering. Refuses fragments from different grids, overlapping shards, or
/// an incomplete cover — a silently partial merge would masquerade as a
/// full result set.
int cmdMerge(const Cli& cli) {
  if (cli.positional.empty()) {
    usage("merge needs fragment files: wfsim merge FRAGMENT... --jsonl OUT");
  }

  struct Fragment {
    std::string path;
    fabric::ManifestInfo info;
    std::vector<std::string> lines;
  };
  std::vector<Fragment> frags;
  for (const std::string& path : cli.positional) {
    Fragment f;
    f.path = path;
    f.info = fabric::readManifest(fabric::manifestPath(path));

    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) die("merge: cannot open fragment " + path);
    std::string body;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) body.append(buf, n);
    std::fclose(in);
    std::size_t start = 0;
    while (start < body.size()) {
      const std::size_t nl = body.find('\n', start);
      if (nl == std::string::npos) {
        die("merge: fragment " + path + " ends mid-line (truncated write?); re-run that shard");
      }
      f.lines.push_back(body.substr(start, nl - start));
      start = nl + 1;
    }
    if (f.lines.size() != f.info.entries.size()) {
      die("merge: fragment " + path + " has " + std::to_string(f.lines.size()) +
          " lines but its manifest lists " + std::to_string(f.info.entries.size()) +
          " cells");
    }
    frags.push_back(std::move(f));
  }

  const Fragment& first = frags.front();
  for (const Fragment& f : frags) {
    if (f.info.gridCells != first.info.gridCells || f.info.gridHash != first.info.gridHash) {
      die("merge: fragments " + first.path + " and " + f.path +
          " come from different grids (grid " + std::to_string(first.info.gridCells) + " " +
          fabric::hashHex(first.info.gridHash) + " vs " + std::to_string(f.info.gridCells) +
          " " + fabric::hashHex(f.info.gridHash) + ")");
    }
    if (f.info.shardCount != first.info.shardCount) {
      die("merge: fragments disagree on shard count: " + first.path + " is /" +
          std::to_string(first.info.shardCount) + ", " + f.path + " is /" +
          std::to_string(f.info.shardCount));
    }
  }
  std::vector<const Fragment*> shardOwner(static_cast<std::size_t>(first.info.shardCount),
                                          nullptr);
  for (const Fragment& f : frags) {
    auto& owner = shardOwner[static_cast<std::size_t>(f.info.shardIndex)];
    if (owner != nullptr) {
      die("merge: fragments " + owner->path + " and " + f.path + " both cover shard " +
          std::to_string(f.info.shardIndex) + "/" + std::to_string(f.info.shardCount));
    }
    owner = &f;
  }

  std::vector<const std::string*> lines(first.info.gridCells, nullptr);
  std::vector<const std::string*> hashes(first.info.gridCells, nullptr);
  for (const Fragment& f : frags) {
    for (std::size_t k = 0; k < f.info.entries.size(); ++k) {
      const std::size_t idx = f.info.entries[k].first;
      if (idx >= first.info.gridCells) {
        die("merge: fragment " + f.path + " names cell index " + std::to_string(idx) +
            ", outside its own " + std::to_string(first.info.gridCells) + "-cell grid");
      }
      if (lines[idx] != nullptr) {
        die("merge: cell index " + std::to_string(idx) + " appears in more than one fragment");
      }
      lines[idx] = &f.lines[k];
      hashes[idx] = &f.info.entries[k].second;
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == nullptr) {
      die("merge: fragments cover only part of the grid: cell index " + std::to_string(i) +
          " of " + std::to_string(lines.size()) + " is missing (shard " +
          std::to_string(i % static_cast<std::size_t>(first.info.shardCount)) + "/" +
          std::to_string(first.info.shardCount) + " not supplied?)");
    }
  }

  std::string body;
  for (const std::string* line : lines) {
    body += *line;
    body += '\n';
  }
  writeFileOrStdout(cli.jsonl, body, "cells", lines.size());
  if (cli.jsonl != "-") {
    fabric::ManifestInfo merged;
    merged.shardIndex = 0;
    merged.shardCount = 1;
    merged.gridCells = first.info.gridCells;
    merged.gridHash = first.info.gridHash;
    merged.entries.reserve(lines.size());
    for (std::size_t i = 0; i < hashes.size(); ++i) merged.entries.emplace_back(i, *hashes[i]);
    fabric::writeManifest(fabric::manifestPath(cli.jsonl), merged);
  }
  return 0;
}

int cmdTable1(const Cli& cli) {
  std::vector<ExperimentConfig> cells;
  for (const App app : {App::kMontage, App::kBroadband, App::kEpigenome}) {
    cells.push_back(toConfig(cli, app, StorageKind::kLocal, 1));
  }
  const auto results = makeRunner(cli).run(std::move(cells));
  std::printf("%-12s %-8s %-8s %-8s\n", "Application", "I/O", "Memory", "CPU");
  for (const auto& cell : results) {
    if (!cell.ok) throw std::runtime_error("wfsim: cell " + cell.label() + ": " + cell.error);
    const auto& r = cell.result;
    std::printf("%-12s %-8s %-8s %-8s\n", toString(cell.config.app),
                toString(r.profile.ioLevel), toString(r.profile.memoryLevel),
                toString(r.profile.cpuLevel));
  }
  writeJsonl(cli, results);
  return 0;
}

int cmdList() {
  std::printf("storage systems:\n");
  for (const StorageKind k :
       {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs,
        StorageKind::kP2p}) {
    std::printf("  %s\n", toString(k));
  }
  std::printf("instance types:\n");
  for (const auto& t : wfs::cloud::instanceCatalog().all()) {
    std::printf("  %-11s %d cores, %4.0f GB RAM, %d disks, $%.2f/h\n", t.name.c_str(),
                t.cores, static_cast<double>(t.memory) / 1e9, t.ephemeralDisks,
                t.pricePerHour);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Cli cli = parseArgs(argc, argv);
  validateCli(cli, cmd);
  try {
    if (cmd == "run") return cmdRun(cli);
    if (cmd == "sweep") return cmdSweep(cli);
    if (cmd == "repeat") return cmdRepeat(cli);
    if (cmd == "avail") return cmdAvail(cli);
    if (cmd == "merge") return cmdMerge(cli);
    if (cmd == "table1") return cmdTable1(cli);
    if (cmd == "list") return cmdList();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command: " + cmd).c_str());
}
