// wfsim — command-line front end to the simulator.
//
//   wfsim run    <app> <storage> <nodes> [--scale S] [--seed N] [--trace]
//                [--data-aware] [--no-first-write-penalty] [--cluster K]
//                [--nfs-server TYPE] [--metrics FILE] [--faults ...]
//   wfsim sweep  <app> [--jobs N] [--jsonl FILE] [--metrics FILE]
//   wfsim repeat <app> <storage> <nodes> [--reps R] [--jobs N]
//   wfsim avail  <app> [nodes] [--crash-frac F] [--jobs N] [--jsonl FILE]
//   wfsim table1 [--scale S]                       reproduce Table I
//   wfsim list                                     storage systems & instance types
//
// Workflow sources (run/sweep/repeat; see docs/WORKFLOWS.md): instead of a
// built-in <app>, `--workflow FILE` imports a WfCommons JSON trace and
// `--synth SPEC` generates a parameterized DAG — the <app> positional is
// then dropped:
//   wfsim run --workflow examples/workflows/diamond_min.json nfs 2
//   wfsim sweep --synth layered:tasks=5000,fanin=3 --jsonl out.jsonl
//
// Fault injection (wfs::fault): --faults turns it on for run/sweep/repeat;
// the tuning flags below shape the schedule, which is drawn from
// --fault-seed, never from wall clock. `avail` runs the availability sweep:
// every backend fault-free, then again with one worker crash-stopped at
// --crash-frac of the clean makespan, reporting makespan/cost inflation.
//
// Sweeps fan out over a work-stealing thread pool (analysis::SweepRunner),
// one isolated simulator per grid cell; results are merged by cell index,
// so stdout and --jsonl output are byte-identical for any --jobs value.
//
// Examples:
//   wfsim run broadband s3 4 --scale 0.25
//   wfsim sweep montage --jobs $(nproc) --jsonl montage.jsonl
//   wfsim repeat epigenome nfs 4 --reps 5 --jobs 2

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/availability.hpp"
#include "analysis/repeat.hpp"
#include "analysis/sweep.hpp"
#include "wfcloudsim.hpp"

namespace {

using namespace wfs::analysis;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  wfsim run    <app> <storage> <nodes> [options]\n"
               "  wfsim sweep  <app> [options]\n"
               "  wfsim repeat <app> <storage> <nodes> [--reps R] [options]\n"
               "  wfsim avail  <app> [nodes] [options]\n"
               "  wfsim table1 [options]\n"
               "  wfsim list\n"
               "\n"
               "apps:     montage | broadband | epigenome\n"
               "          or, for run/sweep/repeat (the <app> positional is dropped):\n"
               "          --workflow FILE   WfCommons JSON trace (docs/WORKFLOWS.md)\n"
               "          --synth SPEC      e.g. diamond:width=16  layered:tasks=100000\n"
               "storage:  local | s3 | nfs | gluster-nufa | gluster-dist | pvfs |\n"
               "          xtreemfs | p2p\n"
               "options:  --jobs N   --jsonl FILE  --metrics FILE  --scale S\n"
               "          --seed N  --reps R  --cluster K  --data-aware\n"
               "          --no-first-write-penalty  --nfs-server TYPE  --trace\n"
               "faults:   --faults  --crash-rate PER_NODE_HOUR  --crash-at T:NODE\n"
               "          --op-fault-prob P  --outage-rate PER_HOUR  --outage-mean S\n"
               "          --fault-seed N  --max-op-retries N  --retry-backoff S\n"
               "          --crash-frac F (avail only)\n");
  std::exit(2);
}

/// Actionable one-line CLI error (distinct from structural misuse, which
/// gets the full usage text).
[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

double parseDouble(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    die(flag + " expects a number, got '" + v + "'");
  }
  return x;
}

long parseLong(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    die(flag + " expects an integer, got '" + v + "'");
  }
  return x;
}

std::uint64_t parseU64(const std::string& flag, const std::string& v) {
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || v.front() == '-' || end != v.c_str() + v.size()) {
    die(flag + " expects a non-negative integer, got '" + v + "'");
  }
  return x;
}

App parseApp(const std::string& s) {
  if (s == "montage") return App::kMontage;
  if (s == "broadband") return App::kBroadband;
  if (s == "epigenome") return App::kEpigenome;
  usage(("unknown app: " + s).c_str());
}

StorageKind parseStorage(const std::string& s) {
  for (const StorageKind k :
       {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs,
        StorageKind::kP2p}) {
    if (s == toString(k)) return k;
  }
  usage(("unknown storage system: " + s).c_str());
}

struct Cli {
  std::vector<std::string> positional;
  /// WfCommons trace path (--workflow); replaces the <app> positional.
  std::string workflowFile;
  /// Synthetic SPEC string (--synth), as typed; canonicalized in toConfig.
  std::string synthSpec;
  double scale = 1.0;
  std::uint64_t seed = 42;
  int reps = 5;
  int clusterFactor = 1;
  /// Sweep worker threads; 0 = all hardware threads.
  int jobs = 0;
  bool dataAware = false;
  bool firstWritePenalty = true;
  bool trace = false;
  std::string nfsServer = "m1.xlarge";
  /// JSONL sweep output; empty = none, "-" = stdout.
  std::string jsonl;
  /// Per-layer/per-node metrics ledger JSONL; empty = none, "-" = stdout.
  std::string metrics;

  // Fault injection.
  bool faults = false;
  /// Any fault-tuning flag was given (to reject tuning without --faults).
  std::string firstFaultFlag;
  double crashRate = 0.0;
  double opFaultProb = 0.0;
  double outageRate = 0.0;
  double outageMean = 30.0;
  std::uint64_t faultSeed = 1;
  std::vector<wfs::fault::NodeCrash> crashAt;
  double crashFrac = 0.5;
  int maxOpRetries = 4;
  double retryBackoff = 0.5;
};

Cli parseArgs(int argc, char** argv) {
  Cli cli;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    auto faultFlag = [&] {
      if (cli.firstFaultFlag.empty()) cli.firstFaultFlag = a;
    };
    // Range checks live here, next to the raw text, so every rejection can
    // quote the offending value verbatim.
    if (a == "--scale") {
      const std::string v = next();
      cli.scale = parseDouble(a, v);
      if (cli.scale <= 0) die("--scale must be > 0, got '" + v + "'");
    } else if (a == "--seed") {
      cli.seed = parseU64(a, next());
    } else if (a == "--reps") {
      const std::string v = next();
      cli.reps = static_cast<int>(parseLong(a, v));
      if (cli.reps < 1) die("--reps must be >= 1, got '" + v + "'");
    } else if (a == "--cluster") {
      const std::string v = next();
      cli.clusterFactor = static_cast<int>(parseLong(a, v));
      if (cli.clusterFactor < 1) die("--cluster must be >= 1, got '" + v + "'");
    } else if (a == "--jobs") {
      const std::string v = next();
      cli.jobs = static_cast<int>(parseLong(a, v));
      if (cli.jobs < 0) die("--jobs must be >= 0 (0 = all hardware threads), got '" + v + "'");
    } else if (a == "--workflow") {
      cli.workflowFile = next();
      if (cli.workflowFile.empty()) die("--workflow expects a trace file path");
    } else if (a == "--synth") {
      cli.synthSpec = next();
      if (cli.synthSpec.empty()) die("--synth expects a SPEC (e.g. diamond:width=16)");
    } else if (a == "--jsonl") {
      cli.jsonl = next();
    } else if (a == "--metrics") {
      cli.metrics = next();
    } else if (a == "--data-aware") {
      cli.dataAware = true;
    } else if (a == "--no-first-write-penalty") {
      cli.firstWritePenalty = false;
    } else if (a == "--trace") {
      cli.trace = true;
    } else if (a == "--nfs-server") {
      cli.nfsServer = next();
    } else if (a == "--faults") {
      cli.faults = true;
    } else if (a == "--crash-rate") {
      faultFlag();
      const std::string v = next();
      cli.crashRate = parseDouble(a, v);
      if (cli.crashRate < 0.0) die("--crash-rate must be >= 0, got '" + v + "'");
    } else if (a == "--op-fault-prob") {
      faultFlag();
      const std::string v = next();
      cli.opFaultProb = parseDouble(a, v);
      if (cli.opFaultProb < 0.0 || cli.opFaultProb > 1.0) {
        die("--op-fault-prob must be a probability in [0,1], got '" + v + "'");
      }
    } else if (a == "--outage-rate") {
      faultFlag();
      const std::string v = next();
      cli.outageRate = parseDouble(a, v);
      if (cli.outageRate < 0.0) die("--outage-rate must be >= 0, got '" + v + "'");
    } else if (a == "--outage-mean") {
      faultFlag();
      const std::string v = next();
      cli.outageMean = parseDouble(a, v);
      if (cli.outageMean <= 0.0) die("--outage-mean must be > 0 seconds, got '" + v + "'");
    } else if (a == "--fault-seed") {
      faultFlag();
      cli.faultSeed = parseU64(a, next());
    } else if (a == "--crash-at") {
      faultFlag();
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        die("--crash-at expects T:NODE (e.g. 120.5:0), got '" + v + "'");
      }
      wfs::fault::NodeCrash c;
      c.atSeconds = parseDouble(a, v.substr(0, colon));
      c.node = static_cast<int>(parseLong(a, v.substr(colon + 1)));
      if (c.atSeconds < 0.0) die("--crash-at time must be >= 0, got '" + v + "'");
      if (c.node < 0) die("--crash-at node must be >= 0, got '" + v + "'");
      cli.crashAt.push_back(c);
    } else if (a == "--crash-frac") {
      faultFlag();
      const std::string v = next();
      cli.crashFrac = parseDouble(a, v);
      if (cli.crashFrac <= 0.0 || cli.crashFrac >= 1.0) {
        die("--crash-frac must be in (0,1): a fraction of the clean makespan, got '" + v +
            "'");
      }
    } else if (a == "--max-op-retries") {
      faultFlag();
      const std::string v = next();
      cli.maxOpRetries = static_cast<int>(parseLong(a, v));
      if (cli.maxOpRetries < 1) die("--max-op-retries must be >= 1, got '" + v + "'");
    } else if (a == "--retry-backoff") {
      faultFlag();
      const std::string v = next();
      cli.retryBackoff = parseDouble(a, v);
      if (cli.retryBackoff < 0.0) die("--retry-backoff must be >= 0 seconds, got '" + v + "'");
    } else if (a.rfind("--", 0) == 0) {
      usage(("unknown option: " + a).c_str());
    } else {
      cli.positional.push_back(a);
    }
  }
  return cli;
}

/// Cross-flag consistency checks, done once the command is known so errors
/// come out as one actionable line instead of a stack trace mid-sweep.
void validateCli(const Cli& cli, const std::string& cmd) {
  // Per-flag range checks live in parseArgs (they quote the raw value);
  // everything here spans flags or needs the command.
  if (!cli.workflowFile.empty() && !cli.synthSpec.empty()) {
    die("--workflow " + cli.workflowFile + " and --synth " + cli.synthSpec +
        " are mutually exclusive; pick one workflow source");
  }
  const std::string wfFlag = !cli.workflowFile.empty() ? "--workflow " + cli.workflowFile
                             : !cli.synthSpec.empty()  ? "--synth " + cli.synthSpec
                                                       : "";
  if (!wfFlag.empty()) {
    if (cmd == "avail" || cmd == "table1") {
      die(wfFlag + ": only run, sweep and repeat accept external workflows");
    }
    // wfslint: allow(float-eq) flag-sentinel test: 1.0 is the parse default, not computed
    if (cli.scale != 1.0) {
      die(wfFlag + ": --scale applies only to built-in apps (external workflows fix "
                   "their own size)");
    }
  }
  if (!cli.workflowFile.empty()) {
    // Catch a bad path now, not after the cluster is built; the importer
    // itself re-validates content and prefixes errors with this same path.
    std::FILE* traceFile = std::fopen(cli.workflowFile.c_str(), "rb");
    if (traceFile == nullptr) die(wfFlag + ": cannot open file");
    std::fclose(traceFile);
  }
  if (!cli.synthSpec.empty()) {
    try {
      (void)wfs::wf::synth::SynthSpec::parse(cli.synthSpec);
    } catch (const wfs::wf::synth::SynthError& e) {
      die(wfFlag + ": " + e.what());
    }
  }
  if (!cli.faults && cmd != "avail" && !cli.firstFaultFlag.empty()) {
    die(cli.firstFaultFlag + " has no effect without --faults (or the avail command)");
  }
  if (cli.faults && cmd == "avail") {
    die("avail injects its own crash; drop --faults (tuning flags still apply)");
  }
  // wfslint: allow(float-eq) flag-sentinel test: 0.0 is the parse default, not a computed value
  if (cli.faults && cli.crashRate == 0.0 && cli.opFaultProb == 0.0 &&
      // wfslint: allow(float-eq) flag-sentinel test continued
      cli.outageRate == 0.0 && cli.crashAt.empty()) {
    die("--faults given but no fault source; add --crash-rate, --crash-at, "
        "--op-fault-prob or --outage-rate");
  }
  // Fail on unwritable output targets before burning sweep time.
  for (const std::string& target : {cli.jsonl, cli.metrics}) {
    if (target.empty() || target == "-") continue;
    std::FILE* f = std::fopen(target.c_str(), "a");
    if (f == nullptr) die("cannot open " + target + " for writing");
    std::fclose(f);
  }
}

ExperimentConfig toConfig(const Cli& cli, App app, StorageKind kind, int nodes) {
  ExperimentConfig cfg;
  cfg.app = app;
  if (!cli.workflowFile.empty()) {
    cfg.source = WorkflowSource::kImportedTrace;
    cfg.workflowFile = cli.workflowFile;
  } else if (!cli.synthSpec.empty()) {
    cfg.source = WorkflowSource::kSynthetic;
    // Canonical spelling (defaults resolved) — what JSONL reports and what
    // the generator names the workflow. validateCli already proved it parses.
    cfg.synthSpec = wfs::wf::synth::SynthSpec::parse(cli.synthSpec).canonical();
  }
  cfg.storage = kind;
  cfg.workerNodes = nodes;
  cfg.appScale = cli.scale;
  cfg.seed = cli.seed;
  cfg.clusterFactor = cli.clusterFactor;
  cfg.dataAwareScheduling = cli.dataAware;
  cfg.firstWritePenalty = cli.firstWritePenalty;
  cfg.nfsServerType = cli.nfsServer;
  if (cli.faults) {
    cfg.faults.enabled = true;
    cfg.faults.seed = cli.faultSeed;
    cfg.faults.crashRatePerNodeHour = cli.crashRate;
    cfg.faults.opFaultProb = cli.opFaultProb;
    cfg.faults.outageRatePerHour = cli.outageRate;
    cfg.faults.outageMeanSeconds = cli.outageMean;
    cfg.faults.explicitCrashes = cli.crashAt;
    cfg.faults.maxOpRetries = cli.maxOpRetries;
    cfg.faults.retryBackoffSeconds = cli.retryBackoff;
  }
  return cfg;
}

SweepRunner makeRunner(const Cli& cli) {
  SweepRunner::Options opt;
  opt.threads = cli.jobs;
  opt.progress = [](std::size_t done, std::size_t total, const SweepCellResult& cell) {
    std::fprintf(stderr, "[%zu/%zu] %s%s\n", done, total, cell.label().c_str(),
                 cell.ok ? "" : (" FAILED: " + cell.error).c_str());
  };
  return SweepRunner{opt};
}

void writeFileOrStdout(const std::string& target, const std::string& out,
                       const char* what, std::size_t count) {
  if (target == "-") {
    std::fwrite(out.data(), 1, out.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open " + target);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %zu %s to %s\n", count, what, target.c_str());
}

void writeJsonl(const Cli& cli, const std::vector<SweepCellResult>& cells) {
  if (!cli.jsonl.empty()) {
    writeFileOrStdout(cli.jsonl, sweepJsonl(cells), "cells", cells.size());
  }
  if (!cli.metrics.empty()) {
    writeFileOrStdout(cli.metrics, sweepMetricsJsonl(cells), "cell ledgers", cells.size());
  }
}

void printResult(const ExperimentResult& r) {
  std::printf("workflow   : %s (%d tasks)\n", r.workflowName.c_str(), r.tasks);
  std::printf("storage    : %s\n", r.storageName.c_str());
  std::printf("makespan   : %.0f s (%.2f h)\n", r.makespanSeconds,
              r.makespanSeconds / 3600.0);
  std::printf("cost       : $%.2f per-hour billed, $%.3f per-second\n",
              r.cost.totalHourly(), r.cost.totalPerSecond());
  if (r.cost.s3RequestCost > 0) {
    std::printf("             incl. $%.3f S3 request fees\n", r.cost.s3RequestCost);
  }
  std::printf("io         : %s\n", r.storageMetrics.summary().c_str());
  std::printf("profile    : I/O %s, Memory %s, CPU %s\n", toString(r.profile.ioLevel),
              toString(r.profile.memoryLevel), toString(r.profile.cpuLevel));
}

void printFaultOutcome(const FaultOutcome& f) {
  if (!f.enabled) return;
  std::printf("faults     : %llu crashes, %llu crash aborts, %llu files lost, "
              "%llu jobs recomputed\n",
              static_cast<unsigned long long>(f.crashes),
              static_cast<unsigned long long>(f.crashAborts),
              static_cast<unsigned long long>(f.lostFiles),
              static_cast<unsigned long long>(f.recomputedJobs));
  std::printf("             %llu replacement VMs, %llu inputs re-staged, "
              "%llu op faults (%llu retried, %llu exhausted), %llu outage stalls\n",
              static_cast<unsigned long long>(f.replacementVms),
              static_cast<unsigned long long>(f.restagedInputs),
              static_cast<unsigned long long>(f.opFaultsInjected),
              static_cast<unsigned long long>(f.opFaultsRetried),
              static_cast<unsigned long long>(f.opFaultsExhausted),
              static_cast<unsigned long long>(f.outageStalls));
  if (f.failed) {
    std::printf("             RUN FAILED: retry budget exhausted, %llu rescue jobs\n",
                static_cast<unsigned long long>(f.rescueJobs));
  }
}

/// With --workflow/--synth the <app> positional is dropped; the App value
/// passed to toConfig is then inert (source dispatch ignores it).
bool externalWorkflow(const Cli& cli) {
  return !cli.workflowFile.empty() || !cli.synthSpec.empty();
}

int cmdRun(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 2u : 3u)) {
    usage(external ? "run with --workflow/--synth needs <storage> <nodes>"
                   : "run needs <app> <storage> <nodes>");
  }
  const std::size_t base = external ? 0 : 1;
  ExperimentConfig cfg =
      toConfig(cli, external ? App::kMontage : parseApp(cli.positional[0]),
               parseStorage(cli.positional[base]),
               static_cast<int>(parseLong("<nodes>", cli.positional[base + 1])));
  cfg.trace = cli.trace;
  const auto r = runExperiment(cfg);
  printResult(r);
  printFaultOutcome(r.fault);
  if (!cli.metrics.empty()) {
    SweepCellResult cell;
    cell.config = cfg;
    cell.ok = true;
    cell.result = r;
    const std::string out = metricsJsonl(cell);
    const auto lines = static_cast<std::size_t>(
        std::count(out.begin(), out.end(), '\n'));
    writeFileOrStdout(cli.metrics, out, "ledger lines", lines);
  }
  return 0;
}

int cmdSweep(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 0u : 1u)) {
    usage(external ? "sweep with --workflow/--synth takes no positional arguments"
                   : "sweep needs <app>");
  }
  const App app = external ? App::kMontage : parseApp(cli.positional[0]);
  const std::string title = external
                                ? (!cli.workflowFile.empty() ? cli.workflowFile : cli.synthSpec)
                                : toString(app);
  const StorageKind kinds[] = {StorageKind::kLocal,       StorageKind::kS3,
                               StorageKind::kNfs,         StorageKind::kGlusterNufa,
                               StorageKind::kGlusterDist, StorageKind::kPvfs};
  const int nodeCounts[] = {1, 2, 4, 8};

  // Flatten the valid cells of the grid; (kind, node) indices to refold
  // the index-ordered results into the figure's series.
  std::vector<ExperimentConfig> cells;
  std::vector<std::pair<std::size_t, std::size_t>> keys;
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    for (std::size_t ni = 0; ni < std::size(nodeCounts); ++ni) {
      const int n = nodeCounts[ni];
      const bool valid =
          !(kinds[k] == StorageKind::kLocal && n != 1) &&
          !((kinds[k] == StorageKind::kGlusterNufa || kinds[k] == StorageKind::kGlusterDist ||
             kinds[k] == StorageKind::kPvfs) &&
            n < 2);
      if (!valid) continue;
      cells.push_back(toConfig(cli, app, kinds[k], n));
      keys.emplace_back(k, ni);
    }
  }

  const auto results = makeRunner(cli).run(std::move(cells));

  std::vector<Series> series;
  for (const StorageKind kind : kinds) {
    Series s;
    s.label = toString(kind);
    s.values.assign(std::size(nodeCounts), std::nan(""));
    series.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      throw std::runtime_error("cell " + results[i].label() + ": " + results[i].error);
    }
    series[keys[i].first].values[keys[i].second] = results[i].result.makespanSeconds;
  }
  std::printf("%s", renderTable(title + " runtime",
                                {"1 node", "2 nodes", "4 nodes", "8 nodes"}, series,
                                "seconds")
                        .c_str());
  writeJsonl(cli, results);
  return 0;
}

int cmdRepeat(const Cli& cli) {
  const bool external = externalWorkflow(cli);
  if (cli.positional.size() != (external ? 2u : 3u)) {
    usage(external ? "repeat with --workflow/--synth needs <storage> <nodes>"
                   : "repeat needs <app> <storage> <nodes>");
  }
  const std::size_t base = external ? 0 : 1;
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < cli.reps; ++i) seeds.push_back(cli.seed + static_cast<unsigned>(i));
  const auto agg = repeatExperiment(
      toConfig(cli, external ? App::kMontage : parseApp(cli.positional[0]),
               parseStorage(cli.positional[base]),
               static_cast<int>(parseLong("<nodes>", cli.positional[base + 1]))),
      seeds, cli.jobs);
  std::printf("%d repetitions (seeds %llu..%llu)\n", cli.reps,
              static_cast<unsigned long long>(seeds.front()),
              static_cast<unsigned long long>(seeds.back()));
  std::printf("makespan   : %.0f s +- %.0f (95%% CI), range [%.0f, %.0f]\n",
              agg.makespan.mean(), agg.makespan.ci95(), agg.makespan.min(),
              agg.makespan.max());
  std::printf("cost/hourly: $%.2f +- %.3f\n", agg.costHourly.mean(), agg.costHourly.ci95());
  std::printf("cost/second: $%.3f +- %.3f\n", agg.costPerSecond.mean(),
              agg.costPerSecond.ci95());
  return 0;
}

int cmdAvail(const Cli& cli) {
  if (cli.positional.empty() || cli.positional.size() > 2) {
    usage("avail needs <app> [nodes]");
  }
  AvailabilityOptions opt;
  opt.app = parseApp(cli.positional[0]);
  if (cli.positional.size() == 2) {
    opt.nodes = static_cast<int>(parseLong("<nodes>", cli.positional[1]));
    if (opt.nodes < 1) die("<nodes> must be >= 1, got '" + cli.positional[1] + "'");
  }
  opt.appScale = cli.scale;
  opt.seed = cli.seed;
  opt.crashFrac = cli.crashFrac;
  opt.threads = cli.jobs;
  opt.faults.seed = cli.faultSeed;
  opt.faults.opFaultProb = cli.opFaultProb;
  opt.faults.outageRatePerHour = cli.outageRate;
  opt.faults.outageMeanSeconds = cli.outageMean;
  opt.faults.maxOpRetries = cli.maxOpRetries;
  opt.faults.retryBackoffSeconds = cli.retryBackoff;

  const auto cells = runAvailabilitySweep(opt);
  std::printf("%-14s %13s %13s %10s %10s %6s %6s\n", "storage", "clean_s", "faulted_s",
              "infl", "cost_infl", "recomp", "lost");
  for (const auto& c : cells) {
    const char* name = toString(c.clean.config.storage);
    if (!c.clean.ok || !c.faulted.ok) {
      std::printf("%-14s FAILED: %s\n", name,
                  (!c.clean.ok ? c.clean.error : c.faulted.error).c_str());
      continue;
    }
    const auto& base = c.clean.result;
    const auto& hurt = c.faulted.result;
    std::printf("%-14s %13.1f %13.1f %9.3fx %9.3fx %6llu %6llu\n", name,
                base.makespanSeconds, hurt.makespanSeconds,
                hurt.makespanSeconds / base.makespanSeconds,
                hurt.cost.totalHourly() / base.cost.totalHourly(),
                static_cast<unsigned long long>(hurt.fault.recomputedJobs),
                static_cast<unsigned long long>(hurt.fault.lostFiles));
  }
  if (!cli.jsonl.empty()) {
    writeFileOrStdout(cli.jsonl, availabilityJsonl(cells), "backends", cells.size());
  }
  return 0;
}

int cmdTable1(const Cli& cli) {
  std::vector<ExperimentConfig> cells;
  for (const App app : {App::kMontage, App::kBroadband, App::kEpigenome}) {
    cells.push_back(toConfig(cli, app, StorageKind::kLocal, 1));
  }
  const auto results = makeRunner(cli).run(std::move(cells));
  std::printf("%-12s %-8s %-8s %-8s\n", "Application", "I/O", "Memory", "CPU");
  for (const auto& cell : results) {
    if (!cell.ok) throw std::runtime_error("cell " + cell.label() + ": " + cell.error);
    const auto& r = cell.result;
    std::printf("%-12s %-8s %-8s %-8s\n", toString(cell.config.app),
                toString(r.profile.ioLevel), toString(r.profile.memoryLevel),
                toString(r.profile.cpuLevel));
  }
  writeJsonl(cli, results);
  return 0;
}

int cmdList() {
  std::printf("storage systems:\n");
  for (const StorageKind k :
       {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs,
        StorageKind::kP2p}) {
    std::printf("  %s\n", toString(k));
  }
  std::printf("instance types:\n");
  for (const auto& t : wfs::cloud::instanceCatalog().all()) {
    std::printf("  %-11s %d cores, %4.0f GB RAM, %d disks, $%.2f/h\n", t.name.c_str(),
                t.cores, static_cast<double>(t.memory) / 1e9, t.ephemeralDisks,
                t.pricePerHour);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Cli cli = parseArgs(argc, argv);
  validateCli(cli, cmd);
  try {
    if (cmd == "run") return cmdRun(cli);
    if (cmd == "sweep") return cmdSweep(cli);
    if (cmd == "repeat") return cmdRepeat(cli);
    if (cmd == "avail") return cmdAvail(cli);
    if (cmd == "table1") return cmdTable1(cli);
    if (cmd == "list") return cmdList();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command: " + cmd).c_str());
}
