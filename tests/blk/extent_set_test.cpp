#include "blk/extent_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/rng.hpp"

namespace wfs::blk {
namespace {

TEST(ExtentSet, EmptyCoversNothing) {
  ExtentSet s;
  EXPECT_EQ(s.totalCovered(), 0);
  EXPECT_EQ(s.coveredWithin(0, 1000), 0);
  EXPECT_EQ(s.uncoveredWithin(0, 1000), 1000);
  EXPECT_FALSE(s.contains(0));
}

TEST(ExtentSet, SingleInsert) {
  ExtentSet s;
  s.insert(100, 200);
  EXPECT_EQ(s.totalCovered(), 100);
  EXPECT_EQ(s.coveredWithin(0, 1000), 100);
  EXPECT_EQ(s.coveredWithin(150, 160), 10);
  EXPECT_TRUE(s.contains(100));
  EXPECT_TRUE(s.contains(199));
  EXPECT_FALSE(s.contains(200));
}

TEST(ExtentSet, InsertMergesOverlap) {
  ExtentSet s;
  s.insert(100, 200);
  s.insert(150, 300);
  EXPECT_EQ(s.totalCovered(), 200);
  EXPECT_EQ(s.extentCount(), 1u);
}

TEST(ExtentSet, InsertMergesTouching) {
  ExtentSet s;
  s.insert(0, 100);
  s.insert(100, 200);
  EXPECT_EQ(s.extentCount(), 1u);
  EXPECT_EQ(s.totalCovered(), 200);
}

TEST(ExtentSet, InsertBridgesGap) {
  ExtentSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(5, 25);
  EXPECT_EQ(s.extentCount(), 1u);
  EXPECT_EQ(s.totalCovered(), 30);
}

TEST(ExtentSet, DisjointInsertsStaySeparate) {
  ExtentSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.extentCount(), 2u);
  EXPECT_EQ(s.coveredWithin(0, 30), 20);
  EXPECT_EQ(s.uncoveredWithin(0, 30), 10);
}

TEST(ExtentSet, EmptyRangeIsNoop) {
  ExtentSet s;
  s.insert(5, 5);
  EXPECT_EQ(s.totalCovered(), 0);
  EXPECT_EQ(s.extentCount(), 0u);
}

TEST(ExtentSet, IdempotentInsert) {
  ExtentSet s;
  s.insert(10, 50);
  s.insert(10, 50);
  s.insert(15, 40);
  EXPECT_EQ(s.totalCovered(), 40);
  EXPECT_EQ(s.extentCount(), 1u);
}

TEST(ExtentSet, EraseSplitsExtent) {
  ExtentSet s;
  s.insert(0, 100);
  s.erase(40, 60);
  EXPECT_EQ(s.extentCount(), 2u);
  EXPECT_EQ(s.totalCovered(), 80);
  EXPECT_EQ(s.coveredWithin(40, 60), 0);
  EXPECT_TRUE(s.contains(39));
  EXPECT_TRUE(s.contains(60));
}

TEST(ExtentSet, EraseAcrossMultipleExtents) {
  ExtentSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.erase(5, 45);
  EXPECT_EQ(s.totalCovered(), 10);
  EXPECT_EQ(s.coveredWithin(0, 5), 5);
  EXPECT_EQ(s.coveredWithin(45, 50), 5);
}

TEST(ExtentSet, ClearResets) {
  ExtentSet s;
  s.insert(0, 1000);
  s.clear();
  EXPECT_EQ(s.totalCovered(), 0);
  EXPECT_EQ(s.extentCount(), 0u);
}

// Property test: the set agrees with a brute-force bitmap under a random
// operation sequence.
class ExtentSetRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentSetRandomized, MatchesBitmapOracle) {
  constexpr Bytes kSpace = 512;
  sim::Rng rng{GetParam()};
  ExtentSet s;
  std::vector<bool> oracle(kSpace, false);
  for (int step = 0; step < 400; ++step) {
    const Bytes a = rng.uniformInt(0, kSpace - 1);
    const Bytes b = rng.uniformInt(a, kSpace);
    if (rng.nextDouble() < 0.7) {
      s.insert(a, b);
      for (Bytes i = a; i < b; ++i) oracle[static_cast<std::size_t>(i)] = true;
    } else {
      s.erase(a, b);
      for (Bytes i = a; i < b; ++i) oracle[static_cast<std::size_t>(i)] = false;
    }
    // Check a few random queries plus the whole range.
    for (int q = 0; q < 3; ++q) {
      const Bytes qa = rng.uniformInt(0, kSpace - 1);
      const Bytes qb = rng.uniformInt(qa, kSpace);
      Bytes expect = 0;
      for (Bytes i = qa; i < qb; ++i) expect += oracle[static_cast<std::size_t>(i)];
      ASSERT_EQ(s.coveredWithin(qa, qb), expect) << "seed=" << GetParam() << " step=" << step;
    }
    Bytes expectTotal = 0;
    for (bool v : oracle) expectTotal += v;
    ASSERT_EQ(s.totalCovered(), expectTotal);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentSetRandomized,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace wfs::blk
