#include "blk/disk.hpp"

#include <gtest/gtest.h>

#include "blk/raid0.hpp"
#include "simcore/simulator.hpp"

namespace wfs::blk {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;

Disk::Config fastOpConfig() {
  Disk::Config cfg;
  cfg.perOpLatency = Duration::zero();  // isolate bandwidth behaviour
  cfg.seekTime = Duration::zero();
  return cfg;
}

double runTimed(Simulator& sim, Task<void> t) {
  double finish = -1;
  sim.spawn([](Simulator& s, Task<void> inner, double& out) -> Task<void> {
    co_await std::move(inner);
    out = s.now().asSeconds();
  }(sim, std::move(t), finish));
  sim.run();
  return finish;
}

TEST(Disk, FirstWriteIsSlow) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  // 100 MB first write at 20 MB/s -> 5 s.
  EXPECT_NEAR(runTimed(sim, d.write(100_MB)), 5.0, 1e-6);
}

TEST(Disk, RewriteIsFast) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  const double t1 = runTimed(sim, d.writeAt(0, 100_MB));
  EXPECT_NEAR(t1, 5.0, 1e-6);
  // Rewriting the same blocks runs at 100 MB/s -> 1 s more.
  const double t2 = runTimed(sim, d.writeAt(0, 100_MB));
  EXPECT_NEAR(t2 - t1, 1.0, 1e-6);
}

TEST(Disk, PartialOverlapBlendsCost) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  // 52 MB = 13 whole init chunks -> 2.6 s at the 20 MB/s first-write rate.
  const double t1 = runTimed(sim, d.writeAt(0, 52_MB));
  EXPECT_NEAR(t1, 2.6, 1e-6);
  // Next write over [0, 100 MB): 48 MB of fresh chunks (2.4 s) plus 52 MB
  // rewriting warm chunks (0.52 s).
  const double t2 = runTimed(sim, d.writeAt(0, 100_MB));
  EXPECT_NEAR(t2 - t1, 2.92, 1e-6);
}

TEST(Disk, SmallWriteInitializesWholeChunk) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  // 1 MB into a fresh 4 MB chunk: the whole chunk is initialized at
  // 20 MB/s -> 0.2 s, the amplification behind small-file slowness.
  const double t = runTimed(sim, d.writeAt(0, 1_MB));
  EXPECT_NEAR(t, 0.2, 1e-6);
  EXPECT_EQ(d.initializedBytes(), 4_MB);
}

TEST(Disk, InitializeAllRemovesPenalty) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  d.initializeAll();
  EXPECT_NEAR(runTimed(sim, d.write(100_MB)), 1.0, 1e-6);
}

TEST(Disk, ReadRate) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  // 110 MB at 110 MB/s -> 1 s.
  EXPECT_NEAR(runTimed(sim, d.read(110_MB)), 1.0, 1e-6);
}

TEST(Disk, PerOpLatencyApplies) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk::Config cfg = fastOpConfig();
  cfg.perOpLatency = Duration::millis(4);
  Disk d{net, cfg, "d"};
  EXPECT_NEAR(runTimed(sim, d.read(110_MB)), 1.004, 1e-6);
}

TEST(Disk, SeekServiceOccupiesDevice) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk::Config cfg = fastOpConfig();
  cfg.seekTime = Duration::millis(5);
  Disk d{net, cfg, "d"};
  // A lone 1.1 MB read: 10 ms transfer + 5 ms seek service = 15 ms.
  const double t1 = runTimed(sim, d.read(1100_KB));
  EXPECT_NEAR(t1, 0.015, 1e-4);
  // 100 concurrent small reads saturate the device with seek service:
  // total service = 100 * 15 ms = 1.5 s of device time.
  std::vector<double> fin(100, -1);
  auto timed = [](Simulator& s, Task<void> t, double& out) -> Task<void> {
    co_await std::move(t);
    out = s.now().asSeconds();
  };
  for (auto& f : fin) sim.spawn(timed(sim, d.read(1100_KB), f));
  sim.run();
  double last = 0;
  for (double f : fin) last = std::max(last, f);
  EXPECT_NEAR(last - t1, 1.5, 0.01);
}

TEST(Disk, ConcurrentReadsShareDevice) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  double f1 = -1, f2 = -1;
  auto timed = [](Simulator& s, Task<void> t, double& out) -> Task<void> {
    co_await std::move(t);
    out = s.now().asSeconds();
  };
  sim.spawn(timed(sim, d.read(55_MB), f1));
  sim.spawn(timed(sim, d.read(55_MB), f2));
  sim.run();
  EXPECT_NEAR(f1, 1.0, 1e-6);
  EXPECT_NEAR(f2, 1.0, 1e-6);
}

TEST(Disk, MixedReadAndWriteShareProportionally) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  d.initializeAll();
  double fr = -1, fw = -1;
  auto timed = [](Simulator& s, Task<void> t, double& out) -> Task<void> {
    co_await std::move(t);
    out = s.now().asSeconds();
  };
  // Read weight 1/110e6, write weight 1/100e6. Equal fair rates r satisfy
  // r*(1/110e6 + 1/100e6) = 1 -> r = 52.38 MB/s each.
  sim.spawn(timed(sim, d.read(52380952), fr));
  sim.spawn(timed(sim, d.writeAt(0, 52380952), fw));
  sim.run();
  EXPECT_NEAR(fr, 1.0, 1e-3);
  EXPECT_NEAR(fw, 1.0, 1e-3);
}

TEST(Disk, AllocateScattersChunkAlignedWithinCapacity) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk::Config cfg = fastOpConfig();
  cfg.capacityBytes = 1_GB;
  Disk d{net, cfg, "d"};
  bool sawDistinct = false;
  Bytes first = -1;
  for (int i = 0; i < 32; ++i) {
    const Bytes off = d.allocate(2_MB);
    EXPECT_GE(off, 0);
    EXPECT_LE(off + 2_MB, cfg.capacityBytes);
    EXPECT_EQ(off % cfg.initChunk, 0) << "allocations are chunk aligned";
    if (first < 0) first = off;
    if (off != first) sawDistinct = true;
  }
  EXPECT_TRUE(sawDistinct) << "allocations scatter across block groups";
}

TEST(Raid0, AggregateFirstWriteMatchesPaperEnvelope) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Raid0::Config cfg;
  cfg.member = fastOpConfig();
  Raid0 r{net, cfg, "md0"};
  // 4 x 20 MB/s = 80 MB/s first write (paper: 80-100 MB/s).
  const double t = runTimed(sim, r.write(800_MB));
  EXPECT_NEAR(t, 10.0, 1e-3);
}

TEST(Raid0, SubsequentWritesHitCeiling) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Raid0::Config cfg;
  cfg.member = fastOpConfig();
  Raid0 r{net, cfg, "md0"};
  r.initializeAll();
  // 4 x 100 = 400 MB/s capped at 400 -> 400 MB/s (paper: 350-400 MB/s).
  const double t = runTimed(sim, r.write(800_MB));
  EXPECT_NEAR(t, 2.0, 1e-3);
}

TEST(Raid0, ReadCeilingAppliesBelowMemberSum) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Raid0::Config cfg;
  cfg.member = fastOpConfig();
  Raid0 r{net, cfg, "md0"};
  // 4 x 110 = 440 but controller caps at 310 MB/s (paper: ~310 MB/s).
  const double t = runTimed(sim, r.read(620_MB));
  EXPECT_NEAR(t, 2.0, 1e-3);
}

TEST(Raid0, CapacityAndInitializedAggregate) {
  Simulator sim;
  net::FlowNetwork net{sim};
  Raid0::Config cfg;
  cfg.member = fastOpConfig();
  cfg.member.capacityBytes = 100_MB;
  Raid0 r{net, cfg, "md0"};
  EXPECT_EQ(r.capacity(), 400_MB);
  EXPECT_EQ(r.initializedBytes(), 0);
  runTimed(sim, r.write(40_MB));
  // 10 MB per member, rounded up to whole 4 MB init chunks (12 MB each).
  EXPECT_GE(r.initializedBytes(), 40_MB);
  EXPECT_LE(r.initializedBytes(), 48_MB);
}

TEST(Raid0, ZeroInitOf50GBTakesRoughly42Minutes) {
  // Paper §III.C: initializing 50 GB of ephemeral storage takes ~42 min,
  // i.e. a single device zero-filled at the ~20 MB/s first-write rate:
  // 50e9 / 20e6 = 2500 s ~= 42 min. We reproduce that single-disk figure.
  Simulator sim;
  net::FlowNetwork net{sim};
  Disk d{net, fastOpConfig(), "d"};
  const double t = runTimed(sim, d.writeAt(0, 50_GB));
  EXPECT_NEAR(t / 60.0, 41.7, 0.2);  // minutes
}

}  // namespace
}  // namespace wfs::blk
