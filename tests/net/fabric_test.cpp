#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "simcore/simulator.hpp"

namespace wfs::net {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;

struct TwoHosts {
  Simulator sim;
  FlowNetwork net{sim};
  Nic a{net, MBps(100), MBps(100), Duration::micros(50), "a"};
  Nic b{net, MBps(100), MBps(100), Duration::micros(50), "b"};
  Fabric fabric{net, Fabric::Config{.coreRate = 0, .hopLatency = Duration::micros(100)}};
};

TEST(Fabric, PathIncludesBothNicDirections) {
  TwoHosts w;
  const Path p = w.fabric.path(&w.a, &w.b);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].cap, &w.a.tx());
  EXPECT_EQ(p[1].cap, &w.b.rx());
}

TEST(Fabric, LoopbackPathIsEmptyAndFree) {
  TwoHosts w;
  EXPECT_TRUE(w.fabric.path(&w.a, &w.a).empty());
  EXPECT_EQ(w.fabric.oneWayLatency(&w.a, &w.a), Duration::zero());
  double finish = -1;
  w.sim.spawn([](TwoHosts& t, double& f) -> Task<void> {
    co_await t.fabric.send(&t.a, &t.a, 1000_MB);
    f = t.sim.now().asSeconds();
  }(w, finish));
  w.sim.run();
  EXPECT_NEAR(finish, 0.0, 1e-9);
}

TEST(Fabric, SendTakesLatencyPlusBandwidthTime) {
  TwoHosts w;
  double finish = -1;
  w.sim.spawn([](TwoHosts& t, double& f) -> Task<void> {
    co_await t.fabric.send(&t.a, &t.b, 100_MB);
    f = t.sim.now().asSeconds();
  }(w, finish));
  w.sim.run();
  // 200us of latency (50+100+50) + 1 s at 100 MB/s.
  EXPECT_NEAR(finish, 1.0002, 1e-5);
}

TEST(Fabric, RpcRoundTrip) {
  TwoHosts w;
  double finish = -1;
  w.sim.spawn([](TwoHosts& t, double& f) -> Task<void> {
    co_await t.fabric.rpc(&t.a, &t.b, 1_KB, 1_KB, Duration::millis(2));
    f = t.sim.now().asSeconds();
  }(w, finish));
  w.sim.run();
  // Two one-way latencies (200us each) + 2ms service + tiny transfer times.
  EXPECT_GT(finish, 0.0024);
  EXPECT_LT(finish, 0.0030);
}

TEST(Fabric, CoreCapacityThrottlesAggregate) {
  Simulator sim;
  FlowNetwork net{sim};
  Nic a{net, MBps(100), MBps(100), Duration::zero(), "a"};
  Nic b{net, MBps(100), MBps(100), Duration::zero(), "b"};
  Nic c{net, MBps(100), MBps(100), Duration::zero(), "c"};
  Nic d{net, MBps(100), MBps(100), Duration::zero(), "d"};
  Fabric fabric{net, Fabric::Config{.coreRate = MBps(100), .hopLatency = Duration::zero()}};
  double f1 = -1, f2 = -1;
  sim.spawn([](Fabric& fab, Nic& s, Nic& t, double& f) -> Task<void> {
    co_await fab.send(&s, &t, 100_MB);
    f = fab.network().simulator().now().asSeconds();
  }(fabric, a, b, f1));
  sim.spawn([](Fabric& fab, Nic& s, Nic& t, double& f) -> Task<void> {
    co_await fab.send(&s, &t, 100_MB);
    f = fab.network().simulator().now().asSeconds();
  }(fabric, c, d, f2));
  sim.run();
  // Without the core each pair would run at 100 MB/s (1 s); the shared
  // 100 MB/s core halves both.
  EXPECT_NEAR(f1, 2.0, 1e-6);
  EXPECT_NEAR(f2, 2.0, 1e-6);
}

TEST(Fabric, ConcurrentSendsToOneReceiverShareItsRxNic) {
  TwoHosts w;
  Nic c{w.net, MBps(100), MBps(100), Duration::micros(50), "c"};
  double f1 = -1, f2 = -1;
  w.sim.spawn([](TwoHosts& t, Nic&, double& f) -> Task<void> {
    co_await t.fabric.send(&t.a, &t.b, 100_MB);
    f = t.sim.now().asSeconds();
  }(w, c, f1));
  w.sim.spawn([](TwoHosts& t, Nic& src, double& f) -> Task<void> {
    co_await t.fabric.send(&src, &t.b, 100_MB);
    f = t.sim.now().asSeconds();
  }(w, c, f2));
  w.sim.run();
  EXPECT_NEAR(f1, 2.0, 1e-3);
  EXPECT_NEAR(f2, 2.0, 1e-3);
}

}  // namespace
}  // namespace wfs::net
