// Property test: component-restricted (incremental) flow settlement must be
// bit-identical to a full global recompute, under randomized churn of flow
// arrivals, departures, and capacity rate changes.
//
// Two mechanisms check this:
//  * setVerifySettle(true) makes FlowNetwork re-run the global algorithm
//    after every incremental reshare and throw on any single-bit divergence
//    in flow rates or capacity used-rates.
//  * The same scenario is replayed with verification off, and completion
//    times are compared bit-for-bit — verification overwrites state with the
//    global result, so agreement proves the pure-incremental trajectory
//    equals the global one end to end.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/flow_network.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace wfs::net {
namespace {

using sim::Duration;
using sim::Rng;
using sim::Simulator;
using sim::Task;

struct World {
  Simulator sim;
  FlowNetwork net{sim};
  std::vector<std::unique_ptr<Capacity>> caps;
  std::vector<double> finishes;
};

/// `clusters` groups of `perCluster` capacities. Flows inside a group form
/// one connected component; `crossLinks` extra capacities are shared by all
/// groups so some churn merges components.
void buildTopology(World& w, int clusters, int perCluster, int crossLinks) {
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < perCluster; ++i) {
      w.caps.push_back(std::make_unique<Capacity>(
          w.net, MBps(50 + 10 * i), "c" + std::to_string(c) + "/l" + std::to_string(i)));
    }
  }
  for (int i = 0; i < crossLinks; ++i) {
    w.caps.push_back(
        std::make_unique<Capacity>(w.net, MBps(200), "core" + std::to_string(i)));
  }
}

/// One churn actor: repeatedly waits a random interval and runs a transfer
/// over a random 1–3 hop path drawn from its cluster (occasionally routed
/// through a shared core capacity).
Task<void> churn(World& w, Rng rng, int cluster, int perCluster, int clusters,
                 int crossLinks, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await w.sim.delay(Duration::fromSeconds(rng.uniform(0.01, 0.4)));
    Path path;
    const int hops = static_cast<int>(rng.uniformInt(1, 3));
    for (int h = 0; h < hops; ++h) {
      const std::size_t base = static_cast<std::size_t>(cluster * perCluster);
      const auto pick = static_cast<std::size_t>(rng.uniformInt(0, perCluster - 1));
      path.push_back(Hop{w.caps[base + pick].get(), rng.nextDouble() < 0.2 ? 5.0 : 1.0});
    }
    if (crossLinks > 0 && rng.nextDouble() < 0.25) {
      const std::size_t core = static_cast<std::size_t>(clusters * perCluster) +
                               static_cast<std::size_t>(rng.uniformInt(0, crossLinks - 1));
      path.push_back(Hop{w.caps[core].get(), 1.0});
    }
    const auto bytes = static_cast<Bytes>(rng.uniformInt(1, 64)) * 1_MB;
    co_await w.net.transfer(std::move(path), bytes);
    w.finishes.push_back(w.sim.now().asSeconds());
  }
}

/// Degraded-mode actor: flaps a random capacity's rate now and then.
Task<void> rateFlapper(World& w, Rng rng, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await w.sim.delay(Duration::fromSeconds(rng.uniform(0.3, 1.1)));
    const auto pick = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(w.caps.size()) - 1));
    w.caps[pick]->setRate(MBps(rng.uniform(20.0, 220.0)));
  }
}

void runScenario(World& w, std::uint64_t seed, bool verify, bool coalesce = true) {
  constexpr int kClusters = 4;
  constexpr int kPerCluster = 3;
  w.net.setCoalesce(coalesce);
  constexpr int kCrossLinks = 2;
  constexpr int kActorsPerCluster = 2;
  constexpr int kRounds = 25;
  w.net.setVerifySettle(verify);
  buildTopology(w, kClusters, kPerCluster, kCrossLinks);
  Rng master{seed};
  for (int c = 0; c < kClusters; ++c) {
    for (int a = 0; a < kActorsPerCluster; ++a) {
      w.sim.spawn(churn(w, master.fork(), c, kPerCluster, kClusters, kCrossLinks, kRounds));
    }
  }
  w.sim.spawn(rateFlapper(w, master.fork(), 12));
  w.sim.run();
}

TEST(FlowSettleProperty, IncrementalMatchesGlobalUnderChurn) {
  // setVerifySettle throws std::logic_error from inside the event loop on
  // the first diverging bit; completing the run is the assertion.
  World w;
  runScenario(w, 0xfeedfacecafeull, /*verify=*/true);
  EXPECT_EQ(w.finishes.size(), 4u * 2u * 25u);
  EXPECT_EQ(w.net.activeFlows(), 0u);
}

TEST(FlowSettleProperty, VerifyModeDoesNotPerturbTrajectory) {
  // Replay the identical scenario with and without verification and demand
  // bit-identical completion times: the global recompute that verification
  // installs after every reshare must equal what incremental-only produced.
  World a;
  runScenario(a, 0x5eed5eed5eedull, /*verify=*/true);
  World b;
  runScenario(b, 0x5eed5eed5eedull, /*verify=*/false);
  ASSERT_EQ(a.finishes.size(), b.finishes.size());
  for (std::size_t i = 0; i < a.finishes.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.finishes[i]),
              std::bit_cast<std::uint64_t>(b.finishes[i]))
        << "completion " << i << " diverged";
  }
}

Task<void> oneTransfer(World& w, std::size_t capIdx, Bytes bytes) {
  Path p;
  p.push_back(Hop{w.caps[capIdx].get(), 1.0});
  co_await w.net.transfer(std::move(p), bytes);
  w.finishes.push_back(w.sim.now().asSeconds());
}

/// Launches `width` transfers at the same simulated instant each round —
/// the same-timestamp burst shape coalescing exists for (a finishing job's
/// outputs all start uploading in one scheduler pass).
Task<void> burster(World& w, Rng rng, int rounds, int width) {
  for (int r = 0; r < rounds; ++r) {
    co_await w.sim.delay(Duration::fromSeconds(rng.uniform(0.01, 0.2)));
    for (int i = 0; i < width; ++i) {
      const auto cap = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(w.caps.size()) - 1));
      w.sim.spawn(oneTransfer(w, cap, static_cast<Bytes>(rng.uniformInt(1, 32)) * 1_MB));
    }
  }
}

void runBurstScenario(World& w, std::uint64_t seed, bool coalesce) {
  w.net.setVerifySettle(true);
  w.net.setCoalesce(coalesce);
  buildTopology(w, /*clusters=*/2, /*perCluster=*/3, /*crossLinks=*/1);
  Rng master{seed};
  w.sim.spawn(burster(w, master.fork(), /*rounds=*/12, /*width=*/4));
  w.sim.spawn(burster(w, master.fork(), /*rounds=*/12, /*width=*/4));
  w.sim.run();
}

TEST(FlowSettleProperty, CoalescedMatchesPerTouchOracle) {
  // Same-timestamp settle coalescing (one recompute at the flush barrier)
  // must be observationally identical to the per-touch oracle that
  // recomputes after every individual arrival/departure/rate change.
  // Intermediate rates inside one instant may differ, but no simulated time
  // elapses there, so every completion must land on the same bit pattern.
  // Both runs keep verification on: the coalesced run also cross-checks each
  // flush against the global algorithm (the WFS_SETTLE_VERIFY=1 path).
  World a;
  runBurstScenario(a, 0xc0a1e5cedull, /*coalesce=*/true);
  World b;
  runBurstScenario(b, 0xc0a1e5cedull, /*coalesce=*/false);
  // Identical trajectories record identical touches, and the batching must
  // actually have merged some of them into shared recomputes.
  EXPECT_EQ(a.net.settleTouches(), b.net.settleTouches());
  EXPECT_LT(a.net.fillCount(), b.net.fillCount());
  ASSERT_EQ(a.finishes.size(), 2u * 12u * 4u);
  ASSERT_EQ(a.finishes.size(), b.finishes.size());
  for (std::size_t i = 0; i < a.finishes.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.finishes[i]),
              std::bit_cast<std::uint64_t>(b.finishes[i]))
        << "completion " << i << " diverged between coalesced and per-touch";
  }
}

TEST(FlowSettleProperty, DisjointComponentsStayIndependent) {
  // No cross links: every cluster is its own component for the whole run.
  // Verification still compares against the full global recompute, so this
  // exercises the "untouched components keep bit-identical rates" claim.
  World w;
  constexpr int kClusters = 6;
  constexpr int kPerCluster = 2;
  w.net.setVerifySettle(true);
  buildTopology(w, kClusters, kPerCluster, /*crossLinks=*/0);
  Rng master{0xd15c0d15c0ull};
  for (int c = 0; c < kClusters; ++c) {
    w.sim.spawn(churn(w, master.fork(), c, kPerCluster, kClusters, 0, 20));
  }
  w.sim.run();
  EXPECT_EQ(w.finishes.size(), 6u * 20u);
}

}  // namespace
}  // namespace wfs::net
