#include "net/flow_network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulator.hpp"

namespace wfs::net {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::SimTime;
using sim::Task;

double seconds(SimTime t) { return t.asSeconds(); }

/// Runs one transfer and records its completion time.
Task<void> timedTransfer(Simulator& sim, FlowNetwork& net, Path path, Bytes bytes,
                         double& finishSec) {
  co_await net.transfer(std::move(path), bytes);
  finishSec = seconds(sim.now());
}

TEST(FlowNetwork, SingleFlowUsesFullCapacity) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double finish = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 1000_MB, finish));
  sim.run();
  EXPECT_NEAR(finish, 10.0, 1e-6);
  EXPECT_EQ(net.completedFlows(), 1u);
}

TEST(FlowNetwork, TwoFlowsShareEqually) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double f1 = -1, f2 = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 500_MB, f1));
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 500_MB, f2));
  sim.run();
  // Both at 50 MB/s -> 10 s each.
  EXPECT_NEAR(f1, 10.0, 1e-6);
  EXPECT_NEAR(f2, 10.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongFlowSpeedsUp) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double shortF = -1, longF = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 100_MB, shortF));
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 1000_MB, longF));
  sim.run();
  // Short: 100 MB at 50 MB/s -> 2 s. Long: 100 MB done at t=2 (50 MB/s),
  // remaining 900 MB at 100 MB/s -> 2 + 9 = 11 s.
  EXPECT_NEAR(shortF, 2.0, 1e-6);
  EXPECT_NEAR(longF, 11.0, 1e-6);
}

TEST(FlowNetwork, MaxMinRespectsSecondBottleneck) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity wide{net, MBps(100), "wide"};
  Capacity narrow{net, MBps(20), "narrow"};
  double through = -1, solo = -1;
  // Flow A is limited to 20 by the narrow link; flow B should get the
  // remaining 80 of the wide link (max-min), not a naive 50.
  sim.spawn(timedTransfer(sim, net, {{&wide, 1.0}, {&narrow, 1.0}}, 20_MB, through));
  sim.spawn(timedTransfer(sim, net, {{&wide, 1.0}}, 80_MB, solo));
  sim.run();
  EXPECT_NEAR(through, 1.0, 1e-6);
  EXPECT_NEAR(solo, 1.0, 1e-6);
}

TEST(FlowNetwork, WeightedHopConsumesScaledCapacity) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity disk{net, MBps(100), "disk"};
  double finish = -1;
  // Weight 5 models a first-write penalty: 100 MB of flow consume 500 MB of
  // disk service -> effective 20 MB/s.
  sim.spawn(timedTransfer(sim, net, {{&disk, 5.0}}, 100_MB, finish));
  sim.run();
  EXPECT_NEAR(finish, 5.0, 1e-6);
}

TEST(FlowNetwork, EmptyPathCompletesImmediately) {
  Simulator sim;
  FlowNetwork net{sim};
  double finish = -1;
  sim.spawn(timedTransfer(sim, net, {}, 500_MB, finish));
  sim.run();
  EXPECT_NEAR(finish, 0.0, 1e-9);
}

TEST(FlowNetwork, ZeroByteTransferCompletes) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double finish = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 0, finish));
  sim.run();
  EXPECT_NEAR(finish, 0.0, 1e-9);
}

TEST(FlowNetwork, SetRateMidFlowChangesCompletion) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double finish = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 1000_MB, finish));
  sim.spawn([](Simulator& s, Capacity& c) -> Task<void> {
    co_await s.delay(Duration::seconds(5));
    c.setRate(MBps(50));  // halve after 500 MB done
  }(sim, link));
  sim.run();
  // 5 s at 100 MB/s + 10 s at 50 MB/s.
  EXPECT_NEAR(finish, 15.0, 1e-6);
}

TEST(FlowNetwork, ServiceBytesAccountsUtilization) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  double finish = -1;
  sim.spawn(timedTransfer(sim, net, {{&link, 2.0}}, 100_MB, finish));
  sim.run();
  EXPECT_NEAR(link.serviceBytes(), 200e6, 1e3);
}

TEST(FlowNetwork, ManyConcurrentFlowsAllComplete) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "link"};
  std::vector<double> finishes(200, -1);
  for (int i = 0; i < 200; ++i) {
    sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, 10_MB, finishes[i]));
  }
  sim.run();
  for (double f : finishes) EXPECT_GT(f, 0.0);
  // 200 x 10 MB at 100 MB/s aggregate -> 20 s.
  EXPECT_NEAR(seconds(sim.now()), 20.0, 0.01);
}

// ---- Property-style sweep: work conservation & bottleneck saturation ----

struct FairShareCase {
  int nFlows;
  double capMBps;
  Bytes flowBytes;
};

class FairShareSweep : public ::testing::TestWithParam<FairShareCase> {};

TEST_P(FairShareSweep, AggregateThroughputEqualsCapacityWhileBacklogged) {
  const auto p = GetParam();
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(p.capMBps), "link"};
  std::vector<double> finishes(p.nFlows, -1);
  for (int i = 0; i < p.nFlows; ++i) {
    sim.spawn(timedTransfer(sim, net, {{&link, 1.0}}, p.flowBytes, finishes[i]));
  }
  sim.run();
  // Identical flows must finish simultaneously at total/capacity.
  const double expected =
      static_cast<double>(p.flowBytes) * p.nFlows / (p.capMBps * 1e6);
  for (double f : finishes) EXPECT_NEAR(f, expected, expected * 1e-6 + 1e-6);
  // Work conservation: the link serviced exactly the bytes injected.
  EXPECT_NEAR(link.serviceBytes(), static_cast<double>(p.flowBytes) * p.nFlows,
              static_cast<double>(p.flowBytes) * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairShareSweep,
    ::testing::Values(FairShareCase{1, 100, 100_MB}, FairShareCase{2, 100, 100_MB},
                      FairShareCase{7, 100, 100_MB}, FairShareCase{16, 250, 64_MB},
                      FairShareCase{3, 10, 1_MB}, FairShareCase{32, 1000, 512_MB}));

}  // namespace
}  // namespace wfs::net
