#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "simcore/simulator.hpp"

namespace wfs::net {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;

TEST(Latency, OneWayComposesNicAndHop) {
  Simulator sim;
  FlowNetwork net{sim};
  Nic a{net, MBps(100), MBps(100), Duration::micros(40), "a"};
  Nic b{net, MBps(100), MBps(100), Duration::micros(60), "b"};
  Fabric f{net, Fabric::Config{.coreRate = 0, .hopLatency = Duration::micros(100)}};
  EXPECT_EQ(f.oneWayLatency(&a, &b), Duration::micros(200));
  EXPECT_EQ(f.oneWayLatency(&b, &a), Duration::micros(200));
}

TEST(Latency, RpcServiceTimeAdds) {
  Simulator sim;
  FlowNetwork net{sim};
  Nic a{net, MBps(100), MBps(100), Duration::zero(), "a"};
  Nic b{net, MBps(100), MBps(100), Duration::zero(), "b"};
  Fabric f{net, Fabric::Config{.coreRate = 0, .hopLatency = Duration::millis(1)}};
  double finish = -1;
  sim.spawn([](Simulator& s, Fabric& fab, Nic& x, Nic& y, double& out) -> Task<void> {
    co_await fab.rpc(&x, &y, 0, 0, Duration::millis(5));
    out = s.now().asSeconds();
  }(sim, f, a, b, finish));
  sim.run();
  // 1 ms out + 5 ms service + 1 ms back (zero-byte payloads round to one
  // scheduling tick each).
  EXPECT_NEAR(finish, 0.007, 1e-4);
}

TEST(Capacity, SetRateRejectsNothingAndReshapesFairly) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "l"};
  double f1 = -1, f2 = -1;
  auto timed = [](Simulator& s, FlowNetwork& n, Capacity& c, Bytes b,
                  double& out) -> Task<void> {
    Path p;
    p.push_back(Hop{&c, 1.0});
    co_await n.transfer(std::move(p), b);
    out = s.now().asSeconds();
  };
  sim.spawn(timed(sim, net, link, 100_MB, f1));
  sim.spawn(timed(sim, net, link, 100_MB, f2));
  sim.spawn([](Simulator& s, Capacity& c) -> Task<void> {
    co_await s.delay(sim::Duration::seconds(1));
    c.setRate(MBps(200));  // mid-flight upgrade
  }(sim, link));
  sim.run();
  // 1 s at 50 MB/s each (50 MB done), then 100 MB/s each -> +0.5 s.
  EXPECT_NEAR(f1, 1.5, 1e-3);
  EXPECT_NEAR(f2, 1.5, 1e-3);
}

TEST(FlowNetwork, CompletedFlowCounterAndBytes) {
  Simulator sim;
  FlowNetwork net{sim};
  Capacity link{net, MBps(100), "l"};
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](FlowNetwork& n, Capacity& c) -> Task<void> {
      Path p;
      p.push_back(Hop{&c, 1.0});
      co_await n.transfer(std::move(p), 10_MB);
    }(net, link));
  }
  sim.run();
  EXPECT_EQ(net.completedFlows(), 5u);
  EXPECT_NEAR(net.totalBytesMoved(), 50e6, 1.0);
  EXPECT_EQ(net.activeFlows(), 0u);
}

TEST(FlowNetwork, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulator sim;
    FlowNetwork net{sim};
    Capacity a{net, MBps(73), "a"};
    Capacity b{net, MBps(41), "b"};
    std::vector<double> finishes(20, -1);
    for (int i = 0; i < 20; ++i) {
      Path p;
      p.push_back({&a, 1.0});
      if (i % 3 == 0) p.push_back({&b, 1.0 + i * 0.01});
      sim.spawn([](Simulator& s, FlowNetwork& n, Path path, Bytes bytes,
                   double& out) -> Task<void> {
        co_await n.transfer(std::move(path), bytes);
        out = s.now().asSeconds();
      }(sim, net, p, (i + 1) * 1_MB, finishes[static_cast<std::size_t>(i)]));
    }
    sim.run();
    return finishes;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace wfs::net
