#include <gtest/gtest.h>

#include "apps/broadband.hpp"
#include "apps/epigenome.hpp"
#include "apps/montage.hpp"

namespace wfs::apps {
namespace {

TEST(Montage, FullScaleMatchesPublishedNumbers) {
  sim::Rng rng{1};
  const auto awf = makeMontage(MontageConfig{}, rng);
  // Paper §II: 10,429 tasks, 4.2 GB input, 7.9 GB output.
  EXPECT_EQ(awf.dag.jobCount(), 10429);
  EXPECT_NEAR(static_cast<double>(awf.dag.totalInputBytes()) / 1e9, 4.2, 0.25);
  EXPECT_NEAR(static_cast<double>(awf.finalOutputBytes()) / 1e9, 7.9, 0.6);
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(Montage, ScaledWorkflowIsProportional) {
  sim::Rng rng{1};
  MontageConfig cfg;
  cfg.scale = 0.1;
  const auto awf = makeMontage(cfg, rng);
  EXPECT_NEAR(awf.dag.jobCount(), 1043, 15);
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(Montage, DeterministicForSameSeed) {
  sim::Rng a{7}, b{7};
  MontageConfig cfg;
  cfg.scale = 0.02;
  const auto w1 = makeMontage(cfg, a);
  const auto w2 = makeMontage(cfg, b);
  ASSERT_EQ(w1.dag.jobCount(), w2.dag.jobCount());
  for (wf::JobId i = 0; i < w1.dag.jobCount(); ++i) {
    EXPECT_EQ(w1.dag.job(i).name, w2.dag.job(i).name);
    EXPECT_DOUBLE_EQ(w1.dag.job(i).cpuSeconds, w2.dag.job(i).cpuSeconds);
  }
}

TEST(Broadband, FullScaleMatchesPublishedNumbers) {
  sim::Rng rng{1};
  const auto awf = makeBroadband(BroadbandConfig{}, rng);
  // Paper §II: 768 tasks, ~6 GB input, ~303 MB output.
  EXPECT_EQ(awf.dag.jobCount(), 768);
  EXPECT_NEAR(static_cast<double>(awf.dag.totalInputBytes()) / 1e9, 6.0, 0.3);
  EXPECT_NEAR(static_cast<double>(awf.finalOutputBytes()) / 1e6, 303.0, 150.0);
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(Broadband, MemoryHeavyTasksDominateRuntimeBudget) {
  sim::Rng rng{1};
  const auto awf = makeBroadband(BroadbandConfig{}, rng);
  double heavyCpu = 0, totalCpu = 0;
  for (wf::JobId i = 0; i < awf.dag.jobCount(); ++i) {
    const auto& j = awf.dag.job(i);
    totalCpu += j.cpuSeconds;
    if (j.peakMemory > 1_GB) heavyCpu += j.cpuSeconds;
  }
  // Paper: >75 % of runtime in tasks requiring more than 1 GB.
  EXPECT_GT(heavyCpu / totalCpu, 0.75);
}

TEST(Broadband, InputReuseIsHigh) {
  sim::Rng rng{1};
  const auto awf = makeBroadband(BroadbandConfig{}, rng);
  // Count how many tasks consume each external input; velocity models must
  // be consumed many times (S3 cache effectiveness, paper §V.C).
  std::size_t velocityReads = 0;
  for (wf::JobId i = 0; i < awf.dag.jobCount(); ++i) {
    for (const auto& f : awf.dag.job(i).inputs) {
      if (f.lfn.starts_with("vel/")) ++velocityReads;
    }
  }
  EXPECT_GT(velocityReads, 200u);  // 288 simulation tasks read a model each
}

TEST(Epigenome, FullScaleMatchesPublishedNumbers) {
  sim::Rng rng{1};
  const auto awf = makeEpigenome(EpigenomeConfig{}, rng);
  // Paper §II: 529 tasks, 1.9 GB input, ~300 MB output.
  EXPECT_EQ(awf.dag.jobCount(), 529);
  EXPECT_NEAR(static_cast<double>(awf.dag.totalInputBytes()) / 1e9, 1.9, 0.1);
  EXPECT_NEAR(static_cast<double>(awf.finalOutputBytes()) / 1e6, 300.0, 120.0);
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(Epigenome, CpuDominates) {
  sim::Rng rng{1};
  const auto awf = makeEpigenome(EpigenomeConfig{}, rng);
  // Mapping tasks carry the overwhelming majority of compute.
  double mapCpu = 0, totalCpu = 0;
  for (wf::JobId i = 0; i < awf.dag.jobCount(); ++i) {
    const auto& j = awf.dag.job(i);
    totalCpu += j.cpuSeconds;
    if (j.transformation == "maq_map") mapCpu += j.cpuSeconds;
  }
  EXPECT_GT(mapCpu / totalCpu, 0.6);
}

TEST(AllApps, TransformationCatalogsCoverEveryJob) {
  sim::Rng rng{1};
  wf::TransformationCatalog tc;
  registerMontageTransformations(tc);
  registerBroadbandTransformations(tc);
  registerEpigenomeTransformations(tc);
  MontageConfig mc;
  mc.scale = 0.01;
  BroadbandConfig bc;
  bc.scale = 0.1;
  EpigenomeConfig ec;
  ec.scale = 0.1;
  for (const auto& awf :
       {makeMontage(mc, rng), makeBroadband(bc, rng), makeEpigenome(ec, rng)}) {
    for (wf::JobId i = 0; i < awf.dag.jobCount(); ++i) {
      EXPECT_TRUE(tc.has(awf.dag.job(i).transformation))
          << awf.dag.job(i).transformation;
    }
  }
}

}  // namespace
}  // namespace wfs::apps
