#include "fault/plan.hpp"

#include <gtest/gtest.h>

namespace wfs::fault {
namespace {

Spec rateSpec() {
  Spec s;
  s.enabled = true;
  s.seed = 11;
  s.crashRatePerNodeHour = 2.0;
  s.outageRatePerHour = 6.0;
  s.outageMeanSeconds = 45.0;
  s.horizonSeconds = 2 * 3600.0;
  return s;
}

TEST(FaultPlan, DisabledOrEmptySpecMaterializesNothing) {
  Spec off = rateSpec();
  off.enabled = false;
  EXPECT_FALSE(off.active());
  EXPECT_TRUE(off.materialize(4).empty());

  Spec enabledButBare;
  enabledButBare.enabled = true;
  EXPECT_FALSE(enabledButBare.active());
  EXPECT_TRUE(enabledButBare.materialize(4).empty());
}

TEST(FaultPlan, OpFaultProbAloneIsActive) {
  Spec s;
  s.enabled = true;
  s.opFaultProb = 0.01;
  ASSERT_TRUE(s.active());
  const FaultPlan p = s.materialize(4);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.opFaultProb, 0.01);
  EXPECT_TRUE(p.crashes.empty());
  EXPECT_TRUE(p.outages.empty());
}

TEST(FaultPlan, SameSeedDrawsIdenticalSchedule) {
  const FaultPlan a = rateSpec().materialize(4);
  const FaultPlan b = rateSpec().materialize(4);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  ASSERT_FALSE(a.crashes.empty());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.crashes[i].atSeconds, b.crashes[i].atSeconds);
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
  }
  ASSERT_EQ(a.outages.size(), b.outages.size());
  ASSERT_FALSE(a.outages.empty());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages[i].startSeconds, b.outages[i].startSeconds);
    EXPECT_DOUBLE_EQ(a.outages[i].endSeconds, b.outages[i].endSeconds);
  }
}

TEST(FaultPlan, DifferentSeedsDrawDifferentSchedules) {
  const FaultPlan a = rateSpec().materialize(4);
  Spec other = rateSpec();
  other.seed = 12;
  const FaultPlan b = other.materialize(4);
  ASSERT_FALSE(a.crashes.empty());
  ASSERT_FALSE(b.crashes.empty());
  EXPECT_NE(a.crashes.front().atSeconds, b.crashes.front().atSeconds);
}

TEST(FaultPlan, CrashesSortedByTimeThenNodeWithinHorizon) {
  const FaultPlan p = rateSpec().materialize(4);
  ASSERT_FALSE(p.crashes.empty());
  for (std::size_t i = 1; i < p.crashes.size(); ++i) {
    const NodeCrash& prev = p.crashes[i - 1];
    const NodeCrash& cur = p.crashes[i];
    EXPECT_TRUE(prev.atSeconds < cur.atSeconds ||
                (prev.atSeconds == cur.atSeconds && prev.node <= cur.node));
  }
  for (const NodeCrash& c : p.crashes) {
    EXPECT_GE(c.atSeconds, 0.0);
    EXPECT_LT(c.atSeconds, rateSpec().horizonSeconds);
    EXPECT_GE(c.node, 0);
    EXPECT_LT(c.node, 4);
  }
}

TEST(FaultPlan, OutagesSortedAndNonOverlapping) {
  const FaultPlan p = rateSpec().materialize(4);
  ASSERT_FALSE(p.outages.empty());
  for (const Outage& o : p.outages) EXPECT_LT(o.startSeconds, o.endSeconds);
  for (std::size_t i = 1; i < p.outages.size(); ++i) {
    EXPECT_GE(p.outages[i].startSeconds, p.outages[i - 1].endSeconds);
  }
  const auto windows = p.outageWindows();
  ASSERT_EQ(windows.size(), p.outages.size());
  EXPECT_DOUBLE_EQ(windows.front().first, p.outages.front().startSeconds);
  EXPECT_DOUBLE_EQ(windows.front().second, p.outages.front().endSeconds);
}

TEST(FaultPlan, ExplicitEventsMergeSortedWithRateDrawn) {
  Spec s = rateSpec();
  s.explicitCrashes = {NodeCrash{9999.0, 1}, NodeCrash{1.0, 0}};
  s.explicitOutages = {Outage{0.25, 0.5}};
  const FaultPlan p = s.materialize(4);
  // Both explicit crashes are present and the merged list stays sorted.
  EXPECT_DOUBLE_EQ(p.crashes.front().atSeconds, 1.0);
  bool sawLate = false;
  // wfslint: allow(float-eq) 9999.0 is the exactly-representable sentinel this test planted above
  for (const NodeCrash& c : p.crashes) sawLate = sawLate || c.atSeconds == 9999.0;
  EXPECT_TRUE(sawLate);
  for (std::size_t i = 1; i < p.crashes.size(); ++i) {
    EXPECT_LE(p.crashes[i - 1].atSeconds, p.crashes[i].atSeconds);
  }
  EXPECT_DOUBLE_EQ(p.outages.front().startSeconds, 0.25);
}

TEST(FaultPlan, ConcernStreamsAreIndependent) {
  // Turning crashes on must not change which outage times are drawn.
  Spec outagesOnly = rateSpec();
  outagesOnly.crashRatePerNodeHour = 0.0;
  const FaultPlan a = outagesOnly.materialize(4);
  const FaultPlan b = rateSpec().materialize(4);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages[i].startSeconds, b.outages[i].startSeconds);
  }
}

TEST(FaultPlan, CrashScheduleScalesWithClusterSize) {
  const FaultPlan small = rateSpec().materialize(1);
  const FaultPlan big = rateSpec().materialize(8);
  EXPECT_GT(big.crashes.size(), small.crashes.size());
  // The single node's schedule is the first fork either way.
  ASSERT_FALSE(small.crashes.empty());
  double firstNode0Big = -1.0;
  for (const NodeCrash& c : big.crashes) {
    if (c.node == 0) {
      firstNode0Big = c.atSeconds;
      break;
    }
  }
  EXPECT_DOUBLE_EQ(small.crashes.front().atSeconds, firstNode0Big);
}

}  // namespace
}  // namespace wfs::fault
