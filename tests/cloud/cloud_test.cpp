#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "cloud/context_broker.hpp"
#include "cloud/instance_types.hpp"
#include "cloud/provisioner.hpp"
#include "net/flow_network.hpp"
#include "simcore/simulator.hpp"

namespace wfs::cloud {
namespace {

TEST(InstanceCatalog, PaperTypesPresent) {
  const auto& cat = instanceCatalog();
  const auto& c1 = cat.get("c1.xlarge");
  EXPECT_EQ(c1.cores, 8);
  EXPECT_EQ(c1.memory, 7_GB);
  EXPECT_EQ(c1.ephemeralDisks, 4);
  EXPECT_DOUBLE_EQ(c1.pricePerHour, 0.68);
  const auto& m1 = cat.get("m1.xlarge");
  EXPECT_EQ(m1.memory, 16_GB);
  const auto& m2 = cat.get("m2.4xlarge");
  EXPECT_EQ(m2.memory, 64_GB);
  EXPECT_DOUBLE_EQ(m2.pricePerHour, 2.40);
  EXPECT_THROW((void)cat.get("t2.nano"), std::out_of_range);
}

TEST(Billing, HourlyRoundsUpPerSecondDoesNot) {
  BillingEngine b;
  const auto& c1 = instanceCatalog().get("c1.xlarge");
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1, t0, t0 + sim::Duration::seconds(3700));  // 1h 100s
  const auto r = b.report();
  EXPECT_DOUBLE_EQ(r.resourceCostHourly, 2 * 0.68);
  EXPECT_NEAR(r.resourceCostPerSecond, 3700.0 / 3600.0 * 0.68, 1e-9);
}

TEST(Billing, ExactHourIsNotRoundedUp) {
  BillingEngine b;
  const auto& c1 = instanceCatalog().get("c1.xlarge");
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1, t0, t0 + sim::Duration::hours(2));
  EXPECT_DOUBLE_EQ(b.report().resourceCostHourly, 2 * 0.68);
}

TEST(Billing, S3RequestFeesMatchSchedule) {
  BillingEngine b;
  b.recordS3Requests(/*puts=*/25000, /*gets=*/100000);
  const auto r = b.report();
  // 25k PUTs -> $0.25; 100k GETs -> $0.10 (paper: Montage extra ~ $0.28).
  EXPECT_NEAR(r.s3RequestCost, 0.35, 1e-9);
}

TEST(Billing, S3StorageCostTiny) {
  BillingEngine b;
  b.recordS3Storage(10_GB, 3600.0);
  // 10 GB for an hour at $0.15/GB-month << $0.01 (paper's observation).
  EXPECT_LT(b.report().s3StorageCost, 0.01);
}

TEST(Vm, StorageNodeViewMatchesType) {
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  Vm vm{sim, net, instanceCatalog().get("c1.xlarge"), "host0", Vm::Options{}};
  const auto node = vm.storageNode();
  EXPECT_EQ(node.host, "host0");
  EXPECT_EQ(node.memoryBytes, 7_GB);
  EXPECT_EQ(vm.cores().capacity(), 8);
  EXPECT_EQ(vm.disk().memberCount(), 4);
}

TEST(ContextBroker, DeploysClusterWithinBootEnvelope) {
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  BillingEngine billing;
  Provisioner prov{sim, net, billing};
  VirtualCluster cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.workers.push_back(prov.request("c1.xlarge", "w" + std::to_string(i)));
  }
  ContextBroker broker{sim, prov};
  sim::Rng rng{3};
  sim.spawn([](ContextBroker& cb, VirtualCluster& vc, sim::Rng& r) -> sim::Task<void> {
    co_await cb.deploy(vc, r);
  }(broker, cluster, rng));
  sim.run();
  // Boot 70-90 s + 8 s contextualization, in parallel across nodes.
  EXPECT_GE(broker.readyAt().asSeconds(), 78.0);
  EXPECT_LE(broker.readyAt().asSeconds(), 98.0);
  for (auto& vm : cluster.workers) {
    EXPECT_GT(vm->bootedAt().asSeconds(), 0.0);
  }
}

}  // namespace
}  // namespace wfs::cloud
