#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "cloud/instance_types.hpp"
#include "cloud/provisioner.hpp"
#include "net/flow_network.hpp"
#include "simcore/simulator.hpp"

namespace wfs::cloud {
namespace {

const InstanceType& c1() { return instanceCatalog().get("c1.xlarge"); }

TEST(BillingEdge, OneSecondCostsAFullHour) {
  BillingEngine b;
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1(), t0, t0 + sim::Duration::seconds(1));
  EXPECT_DOUBLE_EQ(b.report().resourceCostHourly, 0.68);
  EXPECT_NEAR(b.report().resourceCostPerSecond, 0.68 / 3600.0, 1e-12);
}

TEST(BillingEdge, OneSecondOverTheHourAddsAnHour) {
  BillingEngine b;
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1(), t0, t0 + sim::Duration::seconds(3601));
  EXPECT_DOUBLE_EQ(b.report().resourceCostHourly, 2 * 0.68);
}

TEST(BillingEdge, ZeroDurationCostsNothing) {
  BillingEngine b;
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1(), t0, t0);
  EXPECT_DOUBLE_EQ(b.report().resourceCostHourly, 0.0);
}

TEST(BillingEdge, MixedFleetSums) {
  BillingEngine b;
  const auto t0 = sim::SimTime::origin();
  b.recordInstance(c1(), t0, t0 + sim::Duration::minutes(30));
  b.recordInstance(instanceCatalog().get("m2.4xlarge"), t0, t0 + sim::Duration::minutes(30));
  EXPECT_DOUBLE_EQ(b.report().resourceCostHourly, 0.68 + 2.40);
}

TEST(BillingEdge, ExtraFeesFlowIntoTotals) {
  BillingEngine b;
  b.recordExtraFee(0.25);
  b.recordExtraFee(0.05);
  const auto r = b.report();
  EXPECT_DOUBLE_EQ(r.extraFees, 0.30);
  EXPECT_DOUBLE_EQ(r.totalHourly(), 0.30);
  EXPECT_DOUBLE_EQ(r.totalPerSecond(), 0.30);
}

TEST(Provisioner, BootTimesWithinPaperEnvelope) {
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  BillingEngine billing;
  Provisioner prov{sim, net, billing};
  sim::Rng rng{17};
  for (int i = 0; i < 200; ++i) {
    const auto boot = prov.sampleBootTime(rng);
    EXPECT_GE(boot.asSeconds(), 70.0);
    EXPECT_LE(boot.asSeconds(), 90.0);
  }
}

TEST(Provisioner, SettleBillingCoversRequestToNow) {
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  BillingEngine billing;
  Provisioner prov{sim, net, billing};
  auto vm = prov.request("c1.xlarge", "w0");
  sim.schedule(sim::Duration::seconds(100), [] {});
  sim.run();
  prov.settleBilling();
  EXPECT_NEAR(billing.report().resourceCostPerSecond, 100.0 / 3600.0 * 0.68, 1e-9);
  // Settling twice must not double-charge.
  prov.settleBilling();
  EXPECT_NEAR(billing.report().resourceCostPerSecond, 100.0 / 3600.0 * 0.68, 1e-9);
}

TEST(InstanceCatalog, AllEntriesSane) {
  for (const auto& t : instanceCatalog().all()) {
    EXPECT_GT(t.cores, 0);
    EXPECT_GT(t.memory, 0);
    EXPECT_GT(t.ephemeralDisks, 0);
    EXPECT_GT(t.pricePerHour, 0.0);
    EXPECT_GT(t.nicRate, 0.0);
    EXPECT_GT(t.coreSpeed, 0.0);
    EXPECT_TRUE(instanceCatalog().has(t.name));
  }
  EXPECT_FALSE(instanceCatalog().has("nonexistent.type"));
}

}  // namespace
}  // namespace wfs::cloud
