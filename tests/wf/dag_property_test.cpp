#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "simcore/rng.hpp"
#include "wf/dag.hpp"
#include "wf/planner.hpp"

namespace wfs::wf {
namespace {

/// Builds a random layered workflow: files flow only from lower to higher
/// layers, so connectByFiles must always yield a DAG whose topological
/// order respects layers.
AbstractWorkflow randomWorkflow(sim::Rng& rng, int layers, int width) {
  AbstractWorkflow awf;
  awf.name = "random";
  std::vector<std::vector<std::string>> produced(static_cast<std::size_t>(layers));
  awf.externalInputs.push_back({"seed.dat", 1_MB});
  for (int l = 0; l < layers; ++l) {
    const int jobs = 1 + static_cast<int>(rng.uniformInt(0, width - 1));
    for (int j = 0; j < jobs; ++j) {
      JobSpec spec;
      spec.name = "L" + std::to_string(l) + "_" + std::to_string(j);
      spec.transformation = "t";
      spec.cpuSeconds = rng.uniform(0.1, 5.0);
      // Inputs from any earlier layer (or the external seed).
      const int nIn = 1 + static_cast<int>(rng.uniformInt(0, 2));
      for (int k = 0; k < nIn; ++k) {
        if (l == 0) {
          spec.inputs.push_back({"seed.dat", 1_MB});
        } else {
          const auto& pool =
              produced[static_cast<std::size_t>(rng.uniformInt(0, l - 1))];
          if (pool.empty()) {
            spec.inputs.push_back({"seed.dat", 1_MB});
          } else {
            spec.inputs.push_back(
                {pool[static_cast<std::size_t>(rng.uniformInt(
                     0, static_cast<std::int64_t>(pool.size()) - 1))],
                 1_MB});
          }
        }
      }
      const std::string out = spec.name + ".out";
      spec.outputs.push_back({out, 1_MB});
      produced[static_cast<std::size_t>(l)].push_back(out);
      awf.dag.addJob(std::move(spec));
    }
  }
  awf.finalize();
  return awf;
}

class RandomDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDag, ConnectByFilesYieldsValidDag) {
  sim::Rng rng{GetParam()};
  const auto awf = randomWorkflow(rng, 6, 8);
  EXPECT_TRUE(awf.dag.isAcyclic());
  // Every edge respects the topological order.
  const auto order = awf.dag.topologicalOrder();
  std::vector<int> pos(static_cast<std::size_t>(awf.dag.jobCount()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (JobId id = 0; id < awf.dag.jobCount(); ++id) {
    for (const JobId c : awf.dag.children(id)) {
      EXPECT_LT(pos[static_cast<std::size_t>(id)], pos[static_cast<std::size_t>(c)]);
    }
  }
}

TEST_P(RandomDag, ClusteringPreservesWorkAndAcyclicity) {
  sim::Rng rng{GetParam()};
  const auto awf = randomWorkflow(rng, 6, 8);
  TransformationCatalog tc;
  tc.add({"t", 1.0});
  ReplicaCatalog rc;
  rc.registerReplica("seed.dat", "fs");
  Planner planner{tc, rc, SiteCatalog{}};
  for (const int factor : {1, 2, 4, 16}) {
    Planner::Options opt;
    opt.clusterFactor = factor;
    const auto exec = planner.plan(awf, opt);
    EXPECT_TRUE(exec.dag.isAcyclic()) << "factor " << factor;
    EXPECT_LE(exec.dag.jobCount(), awf.dag.jobCount());
    EXPECT_NEAR(exec.dag.totalCpuSeconds(), awf.dag.totalCpuSeconds(), 1e-9)
        << "clustering must conserve total compute";
  }
}

TEST_P(RandomDag, ParentsAndChildrenAreConsistent) {
  sim::Rng rng{GetParam()};
  const auto awf = randomWorkflow(rng, 5, 6);
  for (JobId id = 0; id < awf.dag.jobCount(); ++id) {
    for (const JobId c : awf.dag.children(id)) {
      const auto& parents = awf.dag.parents(c);
      EXPECT_NE(std::find(parents.begin(), parents.end(), id), parents.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDag,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

}  // namespace
}  // namespace wfs::wf
