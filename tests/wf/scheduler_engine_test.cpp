#include <gtest/gtest.h>

#include "storage/local/local_fs.hpp"
#include "storage/s3/s3_fs.hpp"
#include "testing/cluster_fixture.hpp"
#include "wf/engine.hpp"
#include "wf/planner.hpp"
#include "wf/scheduler.hpp"

namespace wfs::wf {
namespace {

using testing::MiniCluster;

TEST(Scheduler, RoundRobinsAcrossFreeNodes) {
  sim::Simulator sim;
  Scheduler s{sim, {2, 2}, Scheduler::Policy::kFifo};
  JobSpec j;
  std::vector<int> got;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Scheduler& sch, const JobSpec& job, std::vector<int>& out) -> sim::Task<void> {
      out.push_back(co_await sch.claimSlot(job));
    }(s, j, got));
  }
  sim.run();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 1);
}

TEST(Scheduler, QueuesWhenFullAndResumesOnRelease) {
  sim::Simulator sim;
  Scheduler s{sim, {1}, Scheduler::Policy::kFifo};
  JobSpec j;
  std::vector<int> order;
  auto worker = [](sim::Simulator& si, Scheduler& sch, const JobSpec& job,
                   std::vector<int>& out, int id) -> sim::Task<void> {
    const int node = co_await sch.claimSlot(job);
    out.push_back(id);
    co_await si.delay(sim::Duration::seconds(1));
    sch.releaseSlot(node);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(worker(sim, s, j, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.freeSlots(0), 1);
}

TEST(Scheduler, DataAwarePrefersNodeWithCachedInput) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  storage::S3Fs fs{w.sim, w.net, w.nodes};
  // Produce a file on node 1 so it is client-cached there.
  w.run(fs.write(1, "hot.dat", 50_MB));
  Scheduler s{w.sim, {8, 8}, Scheduler::Policy::kDataAware, &fs};
  JobSpec j;
  j.inputs = {{"hot.dat", 50_MB}};
  int chosen = -1;
  w.run([](Scheduler& sch, const JobSpec& job, int& out) -> sim::Task<void> {
    out = co_await sch.claimSlot(job);
  }(s, j, chosen));
  EXPECT_EQ(chosen, 1);
}

// ---- Engine integration on a small diamond ----

ExecutableWorkflow smallWorkflow() {
  AbstractWorkflow awf;
  awf.name = "mini";
  JobSpec a;
  a.name = "prep";
  a.transformation = "t";
  a.cpuSeconds = 10;
  a.inputs = {{"in.dat", 100_MB}};
  a.outputs = {{"mid1.dat", 50_MB}, {"mid2.dat", 50_MB}};
  awf.dag.addJob(std::move(a));
  for (int i = 0; i < 2; ++i) {
    JobSpec b;
    b.name = "work_" + std::to_string(i);
    b.transformation = "t";
    b.cpuSeconds = 20;
    b.inputs = {{"mid" + std::to_string(i + 1) + ".dat", 50_MB}};
    b.outputs = {{"out" + std::to_string(i) + ".dat", 10_MB}};
    awf.dag.addJob(std::move(b));
  }
  JobSpec c;
  c.name = "final";
  c.transformation = "t";
  c.cpuSeconds = 5;
  c.inputs = {{"out0.dat", 10_MB}, {"out1.dat", 10_MB}};
  c.outputs = {{"result.dat", 5_MB}};
  awf.dag.addJob(std::move(c));
  awf.externalInputs = {{"in.dat", 100_MB}};
  awf.finalize();

  TransformationCatalog tc;
  tc.add({"t", 1.0});
  ReplicaCatalog rc;
  rc.registerReplica("in.dat", "fs");
  Planner p{tc, rc, SiteCatalog{}};
  return p.plan(awf);
}

TEST(Engine, ExecutesDagRespectingDependenciesAndSlots) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  storage::LocalFs fs{w.sim, w.nodes};
  fs.preload("in.dat", 100_MB);
  auto exec = smallWorkflow();
  Scheduler sched{w.sim, {8}, Scheduler::Policy::kFifo};
  sim::Resource mem{w.sim, 7_GB, "mem"};
  prof::WfProf prof;
  DagmanEngine engine{w.sim, exec, fs, sched, {&mem}, &prof, DagmanEngine::Options{}};
  w.run(engine.execute());
  EXPECT_EQ(engine.completedJobs(), 4);
  // Critical path is prep(10) -> work(20) -> final(5) = 35 s of CPU plus I/O.
  EXPECT_GT(engine.makespan().asSeconds(), 35.0);
  EXPECT_LT(engine.makespan().asSeconds(), 40.0);
  EXPECT_EQ(prof.traces().size(), 4u);
  EXPECT_TRUE(fs.exists("result.dat"));
}

TEST(Engine, MemoryLimitThrottlesParallelism) {
  // 8 identical 60s tasks, each needing 3 GB on a 7 GB node: only 2 run
  // at once even though 8 slots are free -> makespan ~ 4 x 60 s.
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  storage::LocalFs fs{w.sim, w.nodes};
  AbstractWorkflow awf;
  awf.name = "memhog";
  for (int i = 0; i < 8; ++i) {
    JobSpec j;
    j.name = "hog_" + std::to_string(i);
    j.transformation = "hog";
    j.cpuSeconds = 60;
    j.peakMemory = 3_GB;
    awf.dag.addJob(std::move(j));
  }
  awf.finalize();
  TransformationCatalog tc;
  tc.add({"hog", 1.0});
  ReplicaCatalog rc;
  Planner p{tc, rc, SiteCatalog{}};
  auto exec = p.plan(awf);
  Scheduler sched{w.sim, {8}, Scheduler::Policy::kFifo};
  sim::Resource mem{w.sim, 7_GB, "mem"};
  DagmanEngine engine{w.sim, exec, fs, sched, {&mem}, nullptr, DagmanEngine::Options{}};
  w.run(engine.execute());
  EXPECT_NEAR(engine.makespan().asSeconds(), 240.0, 1.0);
}

TEST(Engine, FasterCoresShortenCompute) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  storage::LocalFs fs{w.sim, w.nodes};
  fs.preload("in.dat", 100_MB);
  auto exec = smallWorkflow();
  Scheduler sched{w.sim, {8}, Scheduler::Policy::kFifo};
  sim::Resource mem{w.sim, 7_GB, "mem"};
  DagmanEngine::Options opt;
  opt.coreSpeed = 2.0;
  DagmanEngine engine{w.sim, exec, fs, sched, {&mem}, nullptr, opt};
  w.run(engine.execute());
  EXPECT_LT(engine.makespan().asSeconds(), 20.0);
}

}  // namespace
}  // namespace wfs::wf
