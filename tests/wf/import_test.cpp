#include "wf/import/wfcommons.hpp"

#include <gtest/gtest.h>

#include <string>

#include "wf/import/json.hpp"

namespace wfs::wf::import {
namespace {

/// gtest-only harness: assert `text` contains `needle`, printing both on
/// failure.
::testing::AssertionResult containsSubstr(const std::string& text, const std::string& needle) {
  if (text.find(needle) != std::string::npos) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "expected substring '" << needle << "' in: " << text;
}

constexpr const char* kDiamondTrace = WFS_SOURCE_DIR "/examples/workflows/diamond_min.json";
constexpr const char* kEpigenomicsTrace =
    WFS_SOURCE_DIR "/examples/workflows/epigenomics_sub.json";

/// The one-line rejection for a given document, or "" if it imported.
std::string rejectionFor(const std::string& doc) {
  try {
    (void)importWfCommons(doc, "trace.json");
  } catch (const ImportError& e) {
    return e.what();
  }
  return "";
}

TEST(WfCommonsImport, LegacyDiamondRoundTrips) {
  const AbstractWorkflow awf = importWfCommonsFile(kDiamondTrace);
  EXPECT_EQ(awf.name, "diamond-min");
  ASSERT_EQ(awf.dag.jobCount(), 4);

  // Instance identity from "id", transformation from "category".
  EXPECT_EQ(awf.dag.job(0).name, "split_0");
  EXPECT_EQ(awf.dag.job(0).transformation, "split");
  EXPECT_DOUBLE_EQ(awf.dag.job(0).cpuSeconds, 5.0);
  EXPECT_EQ(awf.dag.job(0).peakMemory, 102400 * Bytes{1024});  // legacy KB field

  // The only unproduced input is the external one.
  ASSERT_EQ(awf.externalInputs.size(), 1u);
  EXPECT_EQ(awf.externalInputs[0].lfn, "raw.dat");
  EXPECT_EQ(awf.externalInputs[0].size, 4000000);

  // Diamond shape: split fans out to both analyzes, merge joins them.
  EXPECT_EQ(awf.dag.children(0).size(), 2u);
  EXPECT_EQ(awf.dag.parents(3).size(), 2u);
  EXPECT_TRUE(awf.dag.isAcyclic());
  EXPECT_EQ(awf.dag.topologicalOrder().front(), 0);
}

TEST(WfCommonsImport, V14SpecificationShapeRoundTrips) {
  const AbstractWorkflow awf = importWfCommonsFile(kEpigenomicsTrace);
  EXPECT_EQ(awf.name, "epigenomics-sub");
  ASSERT_EQ(awf.dag.jobCount(), 24);

  // Runtimes come from workflow.execution.tasks, sizes from
  // workflow.specification.files.
  EXPECT_EQ(awf.dag.job(0).name, "fastqSplit_0");
  EXPECT_DOUBLE_EQ(awf.dag.job(0).cpuSeconds, 25.3);
  ASSERT_EQ(awf.dag.job(0).outputs.size(), 5u);
  EXPECT_EQ(awf.dag.job(0).outputs[0].size, 36000000);

  // External inputs in first-appearance order: reads, then the reference.
  ASSERT_EQ(awf.externalInputs.size(), 2u);
  EXPECT_EQ(awf.externalInputs[0].lfn, "reads.fastq");
  EXPECT_EQ(awf.externalInputs[1].lfn, "chr21.bfa");

  EXPECT_TRUE(awf.dag.isAcyclic());
  // fastqSplit fans out to the five filterContams tasks.
  EXPECT_EQ(awf.dag.children(0).size(), 5u);
}

TEST(WfCommonsImport, ImportIsDeterministic) {
  const AbstractWorkflow a = importWfCommonsFile(kDiamondTrace);
  const AbstractWorkflow b = importWfCommonsFile(kDiamondTrace);
  ASSERT_EQ(a.dag.jobCount(), b.dag.jobCount());
  for (JobId id = 0; id < a.dag.jobCount(); ++id) {
    EXPECT_EQ(a.dag.job(id).name, b.dag.job(id).name);
    EXPECT_EQ(a.dag.job(id).inputs, b.dag.job(id).inputs);
    EXPECT_EQ(a.dag.job(id).outputs, b.dag.job(id).outputs);
    EXPECT_EQ(a.dag.children(id), b.dag.children(id));
  }
  EXPECT_EQ(a.externalInputs, b.externalInputs);
}

// --- rejection table: every malformed input dies with one actionable line --

TEST(WfCommonsImport, RejectsInvalidJson) {
  EXPECT_TRUE(containsSubstr(rejectionFor("{\"workflow\": "), "invalid JSON at"));
  EXPECT_TRUE(containsSubstr(rejectionFor("{} trailing"), "trailing characters"));
}

TEST(WfCommonsImport, RejectsMissingWorkflowObject) {
  EXPECT_TRUE(containsSubstr(rejectionFor("{}"), "missing required 'workflow' object"));
  EXPECT_TRUE(containsSubstr(rejectionFor("[1,2]"), "top-level JSON value must be an object"));
}

TEST(WfCommonsImport, RejectsEmptyOrMissingTaskList) {
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {}})"), "no task list"));
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": []}})"), "workflow contains no tasks"));
}

TEST(WfCommonsImport, RejectsTaskWithoutIdentity) {
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"runtime": 1}]}})"), "missing required field 'name'"));
}

TEST(WfCommonsImport, RejectsTaskWithoutRuntime) {
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a"}]}})"), "task 'a': no runtime"));
}

TEST(WfCommonsImport, RejectsDuplicateTaskIds) {
  const std::string doc = R"({"workflow": {"tasks": [
    {"name": "a", "runtime": 1},
    {"name": "a", "runtime": 2}]}})";
  EXPECT_TRUE(containsSubstr(rejectionFor(doc), "duplicate task id 'a'"));
}

TEST(WfCommonsImport, RejectsUnknownAndSelfParents) {
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1, "parents": ["ghost"]}]}})"), "unknown parent 'ghost'"));
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1, "parents": ["a"]}]}})"), "lists itself as a parent"));
}

TEST(WfCommonsImport, RejectsDependencyCycles) {
  const std::string doc = R"({"workflow": {"tasks": [
    {"name": "a", "runtime": 1, "parents": ["b"]},
    {"name": "b", "runtime": 1, "parents": ["a"]}]}})";
  EXPECT_TRUE(containsSubstr(rejectionFor(doc), "dependency cycle"));
}

TEST(WfCommonsImport, RejectsConflictingFileSizes) {
  const std::string doc = R"({"workflow": {"tasks": [
    {"name": "a", "runtime": 1, "files": [{"link": "output", "name": "f", "size": 10}]},
    {"name": "b", "runtime": 1, "files": [{"link": "input", "name": "f", "size": 20}]}]}})";
  EXPECT_TRUE(containsSubstr(rejectionFor(doc), "conflicting sizes"));
}

TEST(WfCommonsImport, RejectsDuplicateProducers) {
  const std::string doc = R"({"workflow": {"tasks": [
    {"name": "a", "runtime": 1, "files": [{"link": "output", "name": "f", "size": 10}]},
    {"name": "b", "runtime": 1, "files": [{"link": "output", "name": "f", "size": 10}]}]}})";
  EXPECT_TRUE(containsSubstr(rejectionFor(doc), "two jobs produce the same file"));
}

TEST(WfCommonsImport, RejectsBadSizes) {
  // Negative, fractional, and beyond-2^53 byte counts are trace bugs.
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1,
        "files": [{"link": "output", "name": "f", "size": -5}]}]}})"), "finite non-negative"));
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1,
        "files": [{"link": "output", "name": "f", "size": 1.5}]}]}})"), "whole number of bytes"));
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1,
        "files": [{"link": "output", "name": "f", "size": 1e17}]}]}})"), "overflows"));
}

TEST(WfCommonsImport, RejectsBadRuntimeAndLink) {
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": -1}]}})"), "runtime must be finite and >= 0"));
  EXPECT_TRUE(containsSubstr(rejectionFor(R"({"workflow": {"tasks": [{"name": "a", "runtime": 1,
        "files": [{"link": "sideways", "name": "f", "size": 1}]}]}})"), "link must be 'input' or 'output'"));
}

TEST(WfCommonsImport, RejectsUndeclaredV14FileReference) {
  const std::string doc = R"({"workflow": {"specification": {
    "tasks": [{"id": "a", "inputFiles": ["missing.dat"]}],
    "files": []},
    "execution": {"tasks": [{"id": "a", "runtimeInSeconds": 1}]}}})";
  EXPECT_TRUE(containsSubstr(rejectionFor(doc), "not declared in workflow.specification.files"));
}

TEST(WfCommonsImport, ErrorsNameTheSource) {
  EXPECT_TRUE(containsSubstr(rejectionFor("{}"), "trace.json: "));
  try {
    (void)importWfCommonsFile("/nonexistent/trace.json");
    FAIL() << "expected ImportError";
  } catch (const ImportError& e) {
    EXPECT_TRUE(containsSubstr(e.what(), "/nonexistent/trace.json: cannot open file"));
  }
}

TEST(JsonParser, ReportsLineAndColumn) {
  try {
    (void)parseJson("{\n  \"a\": nope\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_TRUE(containsSubstr(e.what(), "2:"));
  }
}

TEST(JsonParser, HandlesEscapesAndPreservesMemberOrder) {
  const JsonValue v = parseJson(R"({"z": "aé\n", "a": 1})");
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "z");  // source order, not sorted
  EXPECT_EQ(v.members[0].second.text, "a\xc3\xa9\n");
  EXPECT_EQ(v.members[1].first, "a");
}

TEST(JsonParser, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)parseJson(deep), JsonError);
}

}  // namespace
}  // namespace wfs::wf::import
