#include "wf/dag.hpp"

#include <gtest/gtest.h>

#include "wf/planner.hpp"

namespace wfs::wf {
namespace {

Dag diamond() {
  Dag d;
  JobSpec a;
  a.name = "a";
  a.transformation = "t";
  a.outputs = {{"fa", 1}};
  JobSpec b;
  b.name = "b";
  b.transformation = "t";
  b.inputs = {{"fa", 1}};
  b.outputs = {{"fb", 1}};
  JobSpec c;
  c.name = "c";
  c.transformation = "t";
  c.inputs = {{"fa", 1}};
  c.outputs = {{"fc", 1}};
  JobSpec e;
  e.name = "e";
  e.transformation = "t";
  e.inputs = {{"fb", 1}, {"fc", 1}};
  e.outputs = {{"fe", 1}};
  d.addJob(std::move(a));
  d.addJob(std::move(b));
  d.addJob(std::move(c));
  d.addJob(std::move(e));
  return d;
}

TEST(Dag, ConnectByFilesBuildsDiamond) {
  Dag d = diamond();
  d.connectByFiles({});
  EXPECT_EQ(d.children(0).size(), 2u);
  EXPECT_EQ(d.parents(3).size(), 2u);
  EXPECT_TRUE(d.isAcyclic());
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag d = diamond();
  d.connectByFiles({});
  const auto order = d.topologicalOrder();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Dag, MissingProducerIsError) {
  Dag d;
  JobSpec j;
  j.name = "x";
  j.transformation = "t";
  j.inputs = {{"nowhere.dat", 1}};
  d.addJob(std::move(j));
  EXPECT_THROW(d.connectByFiles({}), std::logic_error);
  Dag d2;
  JobSpec j2;
  j2.name = "x";
  j2.transformation = "t";
  j2.inputs = {{"staged.dat", 1}};
  d2.addJob(std::move(j2));
  EXPECT_NO_THROW(d2.connectByFiles({{"staged.dat", 1}}));
}

TEST(Dag, DoubleProducerIsError) {
  Dag d;
  JobSpec a;
  a.name = "a";
  a.transformation = "t";
  a.outputs = {{"same", 1}};
  JobSpec b;
  b.name = "b";
  b.transformation = "t";
  b.outputs = {{"same", 1}};
  d.addJob(std::move(a));
  d.addJob(std::move(b));
  EXPECT_THROW(d.connectByFiles({}), std::logic_error);
}

TEST(Dag, CycleDetected) {
  Dag d;
  JobSpec a;
  a.name = "a";
  a.transformation = "t";
  d.addJob(std::move(a));
  JobSpec b;
  b.name = "b";
  b.transformation = "t";
  d.addJob(std::move(b));
  d.addEdge(0, 1);
  d.addEdge(1, 0);
  EXPECT_FALSE(d.isAcyclic());
  EXPECT_THROW(d.topologicalOrder(), std::logic_error);
}

TEST(Dag, AggregateStats) {
  Dag d = diamond();
  d.job(0).cpuSeconds = 1;
  d.job(1).cpuSeconds = 2;
  d.job(2).cpuSeconds = 3;
  d.job(3).cpuSeconds = 4;
  d.connectByFiles({});
  EXPECT_DOUBLE_EQ(d.totalCpuSeconds(), 10.0);
  EXPECT_EQ(d.totalOutputBytes(), 1);  // only fe is never consumed
  EXPECT_EQ(d.distinctFileCount(), 4u);
}

TEST(Planner, ValidatesCatalogs) {
  AbstractWorkflow awf;
  awf.name = "w";
  JobSpec j;
  j.name = "a";
  j.transformation = "known";
  j.inputs = {{"in.dat", 5}};
  j.outputs = {{"out.dat", 5}};
  awf.dag.addJob(std::move(j));
  awf.externalInputs = {{"in.dat", 5}};
  awf.finalize();

  TransformationCatalog tc;
  ReplicaCatalog rc;
  SiteCatalog site;
  Planner p{tc, rc, site};
  EXPECT_THROW((void)p.plan(awf), std::logic_error);  // no transformation
  tc.add({"known", 1.0});
  Planner p2{tc, rc, site};
  EXPECT_THROW((void)p2.plan(awf), std::logic_error);  // no replica
  rc.registerReplica("in.dat", "fs");
  Planner p3{tc, rc, site};
  const auto exec = p3.plan(awf);
  EXPECT_EQ(exec.dag.jobCount(), 1);
}

TEST(Planner, CpuFactorApplied) {
  AbstractWorkflow awf;
  awf.name = "w";
  JobSpec j;
  j.name = "a";
  j.transformation = "slow";
  j.cpuSeconds = 10.0;
  awf.dag.addJob(std::move(j));
  awf.finalize();
  TransformationCatalog tc;
  tc.add({"slow", 2.5});
  ReplicaCatalog rc;
  Planner p{tc, rc, SiteCatalog{}};
  EXPECT_DOUBLE_EQ(p.plan(awf).dag.job(0).cpuSeconds, 25.0);
}

TEST(Planner, HorizontalClusteringMergesSiblings) {
  AbstractWorkflow awf;
  awf.name = "w";
  for (int i = 0; i < 10; ++i) {
    JobSpec j;
    j.name = "map_" + std::to_string(i);
    j.transformation = "map";
    j.cpuSeconds = 1.0;
    j.inputs = {{"in.dat", 5}};
    j.outputs = {{"out_" + std::to_string(i), 1}};
    awf.dag.addJob(std::move(j));
  }
  JobSpec r;
  r.name = "reduce";
  r.transformation = "reduce";
  for (int i = 0; i < 10; ++i) r.inputs.push_back({"out_" + std::to_string(i), 1});
  r.outputs = {{"final", 1}};
  awf.dag.addJob(std::move(r));
  awf.externalInputs = {{"in.dat", 5}};
  awf.finalize();

  TransformationCatalog tc;
  tc.add({"map", 1.0});
  tc.add({"reduce", 1.0});
  ReplicaCatalog rc;
  rc.registerReplica("in.dat", "fs");
  Planner p{tc, rc, SiteCatalog{}};
  Planner::Options opt;
  opt.clusterFactor = 4;
  const auto exec = p.plan(awf, opt);
  // 10 maps -> ceil(10/4)=3 clustered jobs, + 1 reduce.
  EXPECT_EQ(exec.dag.jobCount(), 4);
  EXPECT_TRUE(exec.dag.isAcyclic());
  double cpu = 0;
  for (JobId id = 0; id < exec.dag.jobCount(); ++id) cpu += exec.dag.job(id).cpuSeconds;
  EXPECT_DOUBLE_EQ(cpu, 10.0);
}

}  // namespace
}  // namespace wfs::wf
