#include <gtest/gtest.h>

#include "storage/p2p/p2p_fs.hpp"
#include "testing/cluster_fixture.hpp"
#include "wf/engine.hpp"
#include "wf/planner.hpp"
#include "wf/scheduler.hpp"

namespace wfs::wf {
namespace {

using testing::MiniCluster;

TEST(SchedulerEdge, QueueLengthAndDispatchCounters) {
  sim::Simulator sim;
  Scheduler s{sim, {1, 1}, Scheduler::Policy::kFifo};
  JobSpec j;
  std::vector<int> got;
  auto worker = [](sim::Simulator& si, Scheduler& sch, const JobSpec& job,
                   std::vector<int>& out) -> sim::Task<void> {
    const int node = co_await sch.claimSlot(job);
    out.push_back(node);
    co_await si.delay(sim::Duration::seconds(1));
    sch.releaseSlot(node);
  };
  for (int i = 0; i < 6; ++i) sim.spawn(worker(sim, s, j, got));
  sim.runUntil(sim::SimTime::origin());
  EXPECT_EQ(s.queueLength(), 4u);  // 2 running, 4 waiting
  sim.run();
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(s.dispatched(0) + s.dispatched(1), 6u);
  EXPECT_EQ(s.queueLength(), 0u);
}

TEST(SchedulerEdge, DataAwareFallsBackWhenNoLocalityInfo) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  storage::P2pFs fs{w.sim, w.fabric, w.nodes};
  Scheduler s{w.sim, {1, 1}, Scheduler::Policy::kDataAware, &fs};
  JobSpec j;  // no inputs -> all scores zero -> round-robin order
  std::vector<int> got;
  w.sim.spawn([](Scheduler& sch, const JobSpec& job, std::vector<int>& out) -> sim::Task<void> {
    out.push_back(co_await sch.claimSlot(job));
    out.push_back(co_await sch.claimSlot(job));
  }(s, j, got));
  w.sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1}));
}

TEST(SchedulerEdge, DataAwareRoutesConsumersToProducers) {
  // End-to-end: on p2p storage with data-aware scheduling, each consumer
  // should land on its producer's node and pull nothing over the network.
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  storage::P2pFs fs{w.sim, w.fabric, w.nodes};

  AbstractWorkflow awf;
  awf.name = "pairs";
  for (int i = 0; i < 8; ++i) {
    JobSpec prod;
    prod.name = "produce_" + std::to_string(i);
    prod.transformation = "produce";
    prod.cpuSeconds = 10 + i;  // staggered so consumers schedule one by one
    prod.outputs = {{"d" + std::to_string(i), 200_MB}};
    awf.dag.addJob(std::move(prod));
    JobSpec cons;
    cons.name = "consume_" + std::to_string(i);
    cons.transformation = "consume";
    cons.cpuSeconds = 5;
    cons.inputs = {{"d" + std::to_string(i), 200_MB}};
    cons.outputs = {{"r" + std::to_string(i), 1_MB}};
    awf.dag.addJob(std::move(cons));
  }
  awf.finalize();
  TransformationCatalog tc;
  tc.add({"produce", 1.0});
  tc.add({"consume", 1.0});
  ReplicaCatalog rc;
  Planner planner{tc, rc, SiteCatalog{}};
  auto exec = planner.plan(awf);

  Scheduler sched{w.sim, {2, 2, 2, 2}, Scheduler::Policy::kDataAware, &fs};
  std::vector<sim::Resource*> mems;
  std::vector<std::unique_ptr<sim::Resource>> owned;
  for (int i = 0; i < 4; ++i) {
    owned.push_back(std::make_unique<sim::Resource>(w.sim, 7_GB, "m"));
    mems.push_back(owned.back().get());
  }
  DagmanEngine engine{w.sim, exec, fs, sched, mems, nullptr, DagmanEngine::Options{}};
  w.run(engine.execute());
  EXPECT_EQ(engine.completedJobs(), 16);
  // Every consumer found its input locally.
  EXPECT_EQ(fs.pullCount(), 0u);
}

TEST(SchedulerEdge, BlindSchedulingCausesPulls) {
  // Same workflow, locality-blind: consumers land anywhere, so most inputs
  // cross the network — the contrast the paper's §IV.A conjecture is about.
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  storage::P2pFs fs{w.sim, w.fabric, w.nodes};
  AbstractWorkflow awf;
  awf.name = "pairs";
  for (int i = 0; i < 8; ++i) {
    JobSpec prod;
    prod.name = "produce_" + std::to_string(i);
    prod.transformation = "produce";
    prod.cpuSeconds = 10;  // all finish together
    prod.outputs = {{"d" + std::to_string(i), 200_MB}};
    awf.dag.addJob(std::move(prod));
  }
  for (int i = 0; i < 8; ++i) {
    JobSpec cons;
    cons.name = "consume_" + std::to_string(i);
    cons.transformation = "consume";
    cons.cpuSeconds = 5;
    // Two inputs from different producers: no single placement can be
    // local to both, so the blind scheduler must pull at least one.
    cons.inputs = {{"d" + std::to_string(i), 200_MB},
                   {"d" + std::to_string((i + 1) % 8), 200_MB}};
    cons.outputs = {{"r" + std::to_string(i), 1_MB}};
    awf.dag.addJob(std::move(cons));
  }
  awf.finalize();
  TransformationCatalog tc;
  tc.add({"produce", 1.0});
  tc.add({"consume", 1.0});
  ReplicaCatalog rc;
  Planner planner{tc, rc, SiteCatalog{}};
  auto exec = planner.plan(awf);
  Scheduler sched{w.sim, {2, 2, 2, 2}, Scheduler::Policy::kFifo};
  std::vector<sim::Resource*> mems;
  std::vector<std::unique_ptr<sim::Resource>> owned;
  for (int i = 0; i < 4; ++i) {
    owned.push_back(std::make_unique<sim::Resource>(w.sim, 7_GB, "m"));
    mems.push_back(owned.back().get());
  }
  DagmanEngine engine{w.sim, exec, fs, sched, mems, nullptr, DagmanEngine::Options{}};
  w.run(engine.execute());
  EXPECT_EQ(engine.completedJobs(), 16);
  EXPECT_GT(fs.pullCount(), 0u);
}

}  // namespace
}  // namespace wfs::wf
