#include <gtest/gtest.h>

#include "storage/local/local_fs.hpp"
#include "testing/cluster_fixture.hpp"
#include "wf/engine.hpp"
#include "wf/planner.hpp"

namespace wfs::wf {
namespace {

using testing::MiniCluster;

ExecutableWorkflow chainWorkflow(int n) {
  AbstractWorkflow awf;
  awf.name = "chain";
  for (int i = 0; i < n; ++i) {
    JobSpec j;
    j.name = "step_" + std::to_string(i);
    j.transformation = "step";
    j.cpuSeconds = 10;
    if (i > 0) j.inputs = {{"f" + std::to_string(i - 1), 1_MB}};
    j.outputs = {{"f" + std::to_string(i), 1_MB}};
    j.scratchFiles = {{"s" + std::to_string(i), 1_MB}};
    awf.dag.addJob(std::move(j));
  }
  awf.finalize();
  TransformationCatalog tc;
  tc.add({"step", 1.0});
  ReplicaCatalog rc;
  Planner p{tc, rc, SiteCatalog{}};
  return p.plan(awf);
}

struct Rig {
  explicit Rig(int jobs) : exec{chainWorkflow(jobs)} {}
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  storage::LocalFs fs{w.sim, w.nodes};
  ExecutableWorkflow exec;
  Scheduler sched{w.sim, {8}, Scheduler::Policy::kFifo};
  sim::Resource mem{w.sim, 7_GB, "mem"};
};

TEST(Retry, TransientFailuresAreRetriedToCompletion) {
  Rig r{10};
  DagmanEngine::Options opt;
  opt.transientFailureProb = 0.3;
  opt.maxRetries = 25;  // effectively unlimited for p=0.3
  DagmanEngine engine{r.w.sim, r.exec, r.fs, r.sched, {&r.mem}, nullptr, opt};
  r.w.run(engine.execute());
  EXPECT_FALSE(engine.failed());
  EXPECT_EQ(engine.completedJobs(), 10);
  EXPECT_GT(engine.retryCount(), 0u);
  EXPECT_TRUE(engine.rescueDag().empty());
}

TEST(Retry, RetriesCostTime) {
  Rig a{10};
  DagmanEngine::Options clean;
  DagmanEngine e1{a.w.sim, a.exec, a.fs, a.sched, {&a.mem}, nullptr, clean};
  a.w.run(e1.execute());

  Rig b{10};
  DagmanEngine::Options flaky;
  flaky.transientFailureProb = 0.4;
  flaky.maxRetries = 50;
  DagmanEngine e2{b.w.sim, b.exec, b.fs, b.sched, {&b.mem}, nullptr, flaky};
  b.w.run(e2.execute());

  EXPECT_GT(e2.makespan().asSeconds(), e1.makespan().asSeconds());
}

TEST(Retry, ExhaustedRetriesFailRunAndEmitRescueDag) {
  Rig r{10};
  DagmanEngine::Options opt;
  opt.transientFailureProb = 1.0;  // every attempt crashes
  opt.maxRetries = 2;
  DagmanEngine engine{r.w.sim, r.exec, r.fs, r.sched, {&r.mem}, nullptr, opt};
  r.w.run(engine.execute());
  EXPECT_TRUE(engine.failed());
  EXPECT_LT(engine.completedJobs(), 10);
  const auto rescue = engine.rescueDag();
  EXPECT_FALSE(rescue.empty());
  // The rescue DAG is everything that did not finish, in topological order.
  EXPECT_EQ(static_cast<int>(rescue.size()) + engine.completedJobs(), 10);
  for (std::size_t i = 1; i < rescue.size(); ++i) {
    EXPECT_LT(rescue[i - 1], rescue[i]);  // chain order == id order here
  }
}

TEST(Retry, RetriedScratchReusesItsLfnWithoutOrphans) {
  Rig r{10};
  DagmanEngine::Options opt;
  opt.transientFailureProb = 0.5;
  opt.maxRetries = 50;
  DagmanEngine engine{r.w.sim, r.exec, r.fs, r.sched, {&r.mem}, nullptr, opt};
  r.w.run(engine.execute());
  ASSERT_FALSE(engine.failed());
  ASSERT_GT(engine.retryCount(), 0u);
  for (int i = 0; i < 10; ++i) {
    const std::string s = "s" + std::to_string(i);
    // Every retried attempt regenerated its temporary under the planned
    // LFN; downstream consumers resolve that exact name and the catalog
    // holds no attempt-suffixed duplicates.
    ASSERT_TRUE(r.fs.exists(s)) << s;
    const storage::FileMeta* m = r.fs.meta(s);
    ASSERT_NE(m, nullptr) << s;
    EXPECT_TRUE(m->scratch) << s;
    EXPECT_TRUE(m->discarded) << s;
    for (int attempt = 1; attempt <= 5; ++attempt) {
      EXPECT_FALSE(r.fs.exists(s + ".retry" + std::to_string(attempt))) << s;
    }
  }
}

TEST(Retry, FaultSeedIsDeterministic) {
  auto runOnce = [] {
    Rig r{10};
    DagmanEngine::Options opt;
    opt.transientFailureProb = 0.3;
    opt.maxRetries = 25;
    opt.faultSeed = 99;
    DagmanEngine engine{r.w.sim, r.exec, r.fs, r.sched, {&r.mem}, nullptr, opt};
    r.w.run(engine.execute());
    return std::make_pair(engine.retryCount(), engine.makespan().asSeconds());
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace wfs::wf
