#include "wf/synth/generate.hpp"

#include <gtest/gtest.h>

#include <string>

#include "simcore/rng.hpp"
#include "wf/synth/spec.hpp"

namespace wfs::wf::synth {
namespace {

/// gtest-only harness: assert `text` contains `needle`, printing both on
/// failure.
::testing::AssertionResult containsSubstr(const std::string& text, const std::string& needle) {
  if (text.find(needle) != std::string::npos) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "expected substring '" << needle << "' in: " << text;
}

/// The one-line rejection for a given spec, or "" if it parsed.
std::string rejectionFor(const std::string& text) {
  try {
    (void)SynthSpec::parse(text);
  } catch (const SynthError& e) {
    return e.what();
  }
  return "";
}

TEST(SynthSpec, ResolvesChainDefaults) {
  const SynthSpec s = SynthSpec::parse("chain");
  EXPECT_EQ(s.topology, SynthSpec::Topology::kChain);
  EXPECT_EQ(s.tasks, 100);
  EXPECT_DOUBLE_EQ(s.cpuSeconds, 10.0);
  EXPECT_EQ(s.fileBytes, 16_MB);
  EXPECT_EQ(s.canonical(), "chain:tasks=100,mix=balanced,cpu=10,file=16MB");
}

TEST(SynthSpec, ResolvesFanShapes) {
  const SynthSpec fanout = SynthSpec::parse("fanout:width=8");
  EXPECT_EQ(fanout.tasks, 9);  // hub + width sinks
  const SynthSpec diamond = SynthSpec::parse("diamond:width=16,mix=data");
  EXPECT_EQ(diamond.tasks, 18);  // src + width stages + sink
  EXPECT_DOUBLE_EQ(diamond.cpuSeconds, 1.0);
  EXPECT_EQ(diamond.fileBytes, 64_MB);
  EXPECT_EQ(diamond.canonical(), "diamond:width=16,mix=data,cpu=1,file=64MB");
}

TEST(SynthSpec, ResolvesLayeredWidthFromLayersOrSqrt) {
  const SynthSpec byLayers = SynthSpec::parse("layered:tasks=1000,layers=20");
  EXPECT_EQ(byLayers.width, 50);
  EXPECT_EQ(byLayers.layers, 20);

  const SynthSpec bySqrt = SynthSpec::parse("layered:tasks=100000");
  EXPECT_EQ(bySqrt.width, 317);  // ceil(sqrt(100000))
  EXPECT_EQ(bySqrt.layers, (100000 + 316) / 317);

  const SynthSpec overrides = SynthSpec::parse("layered:tasks=1000,width=50,fanin=3,cpu=2.5,file=4MB");
  EXPECT_EQ(overrides.fanin, 3);
  EXPECT_EQ(overrides.canonical(), "layered:tasks=1000,width=50,fanin=3,mix=balanced,cpu=2.5,file=4MB");
}

TEST(SynthSpec, CanonicalIsAFixpoint) {
  for (const char* text : {"chain", "fanout:width=3", "fanin:width=7,mix=cpu",
                           "diamond:width=5,file=1500KB", "layered:tasks=999,fanin=4"}) {
    const std::string canon = SynthSpec::parse(text).canonical();
    EXPECT_EQ(SynthSpec::parse(canon).canonical(), canon) << "for spec: " << text;
  }
}

TEST(SynthSpec, ParsesSizeSuffixes) {
  EXPECT_EQ(SynthSpec::parse("chain:file=500KB").fileBytes, 500'000);
  EXPECT_EQ(SynthSpec::parse("chain:file=2GB").fileBytes, 2'000'000'000);
  EXPECT_EQ(SynthSpec::parse("chain:file=123").fileBytes, 123);
}

TEST(SynthSpec, RejectionTable) {
  EXPECT_TRUE(containsSubstr(rejectionFor(""), "empty spec"));
  EXPECT_TRUE(containsSubstr(rejectionFor("ring:tasks=5"), "unknown topology 'ring'"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:bogus=1"), "unknown parameter 'bogus'"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:tasks=5,tasks=6"), "duplicate parameter 'tasks'"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:width=5"), "does not apply to the chain"));
  EXPECT_TRUE(containsSubstr(rejectionFor("fanout:tasks=5"), "only applies to chain and layered"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:fanin=2"), "only applies to the layered"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:mix=spicy"), "unknown mix 'spicy'"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:tasks"), "malformed parameter"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:tasks=0"), "tasks must be in [1, 2000000]"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:tasks=9999999"), "tasks must be in"));
  EXPECT_TRUE(containsSubstr(rejectionFor("fanout:width=20000"), "width must be in [1, 10000]"));
  EXPECT_TRUE(containsSubstr(rejectionFor("layered:fanin=65"), "fanin must be in [1, 64]"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:cpu=-2"), "positive number of seconds"));
  EXPECT_TRUE(containsSubstr(rejectionFor("chain:file=0"), "positive size"));
  EXPECT_TRUE(containsSubstr(rejectionFor("layered:tasks=100,width=50,layers=7"),
                             "inconsistent with"));
}

TEST(SynthGenerate, ChainShape) {
  sim::Rng rng;  // default master seed; tests only need determinism
  const AbstractWorkflow awf = makeSynthetic(SynthSpec::parse("chain:tasks=10"), rng);
  ASSERT_EQ(awf.dag.jobCount(), 10);
  EXPECT_EQ(awf.name, "chain:tasks=10,mix=balanced,cpu=10,file=16MB");
  EXPECT_EQ(awf.dag.job(0).transformation, "synth_src");
  EXPECT_EQ(awf.dag.job(5).transformation, "synth_stage");
  EXPECT_EQ(awf.dag.job(9).transformation, "synth_sink");
  for (JobId id = 1; id < 10; ++id) {
    ASSERT_EQ(awf.dag.parents(id).size(), 1u);
    EXPECT_EQ(awf.dag.parents(id).front(), id - 1);
  }
  ASSERT_EQ(awf.externalInputs.size(), 1u);
  EXPECT_EQ(awf.externalInputs[0].lfn, "synth/in");
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(SynthGenerate, FanAndDiamondShapes) {
  sim::Rng rng;
  const AbstractWorkflow fanout = makeSynthetic(SynthSpec::parse("fanout:width=6"), rng);
  ASSERT_EQ(fanout.dag.jobCount(), 7);
  EXPECT_EQ(fanout.dag.children(0).size(), 6u);

  sim::Rng rng2;
  const AbstractWorkflow fanin = makeSynthetic(SynthSpec::parse("fanin:width=6"), rng2);
  ASSERT_EQ(fanin.dag.jobCount(), 7);
  EXPECT_EQ(fanin.dag.parents(6).size(), 6u);

  sim::Rng rng3;
  const AbstractWorkflow diamond = makeSynthetic(SynthSpec::parse("diamond:width=6"), rng3);
  ASSERT_EQ(diamond.dag.jobCount(), 8);
  EXPECT_EQ(diamond.dag.children(0).size(), 6u);
  EXPECT_EQ(diamond.dag.parents(7).size(), 6u);
}

TEST(SynthGenerate, LayeredShapeRespectsFanin) {
  sim::Rng rng;
  const SynthSpec spec = SynthSpec::parse("layered:tasks=200,width=20,fanin=3");
  const AbstractWorkflow awf = makeSynthetic(spec, rng);
  ASSERT_EQ(awf.dag.jobCount(), 200);
  for (JobId id = 0; id < awf.dag.jobCount(); ++id) {
    if (id < 20) {
      EXPECT_TRUE(awf.dag.parents(id).empty());
    } else {
      const std::size_t n = awf.dag.parents(id).size();
      EXPECT_GE(n, 1u);
      EXPECT_LE(n, 3u);  // fanin caps the parent count (dupes dropped)
    }
  }
  EXPECT_TRUE(awf.dag.isAcyclic());
}

TEST(SynthGenerate, SameSeedSameWorkflow) {
  const SynthSpec spec = SynthSpec::parse("layered:tasks=300,fanin=2,mix=data");
  sim::Rng a;
  sim::Rng b;
  const AbstractWorkflow wa = makeSynthetic(spec, a);
  const AbstractWorkflow wb = makeSynthetic(spec, b);
  ASSERT_EQ(wa.dag.jobCount(), wb.dag.jobCount());
  for (JobId id = 0; id < wa.dag.jobCount(); ++id) {
    EXPECT_EQ(wa.dag.job(id).name, wb.dag.job(id).name);
    EXPECT_DOUBLE_EQ(wa.dag.job(id).cpuSeconds, wb.dag.job(id).cpuSeconds);
    EXPECT_EQ(wa.dag.job(id).inputs, wb.dag.job(id).inputs);
    EXPECT_EQ(wa.dag.job(id).outputs, wb.dag.job(id).outputs);
    EXPECT_EQ(wa.dag.children(id), wb.dag.children(id));
  }
}

TEST(SynthGenerate, TopologyDrawsDoNotShiftRuntimeDraws) {
  // cpu/size streams are forked off before topology draws, so changing
  // fanin rewires edges without perturbing any task's runtime or sizes.
  sim::Rng a;
  sim::Rng b;
  const AbstractWorkflow w2 = makeSynthetic(SynthSpec::parse("layered:tasks=300,fanin=2"), a);
  const AbstractWorkflow w3 = makeSynthetic(SynthSpec::parse("layered:tasks=300,fanin=3"), b);
  ASSERT_EQ(w2.dag.jobCount(), w3.dag.jobCount());
  for (JobId id = 0; id < w2.dag.jobCount(); ++id) {
    EXPECT_DOUBLE_EQ(w2.dag.job(id).cpuSeconds, w3.dag.job(id).cpuSeconds);
    EXPECT_EQ(w2.dag.job(id).outputs.front().size, w3.dag.job(id).outputs.front().size);
  }
}

TEST(SynthGenerate, RuntimesAndSizesStayNearMeans) {
  sim::Rng rng;
  const SynthSpec spec = SynthSpec::parse("chain:tasks=500,cpu=8,file=10MB");
  const AbstractWorkflow awf = makeSynthetic(spec, rng);
  for (JobId id = 0; id < awf.dag.jobCount(); ++id) {
    const JobSpec& j = awf.dag.job(id);
    EXPECT_GE(j.cpuSeconds, 4.0);  // jitter is uniform(0.5, 1.5) * mean
    EXPECT_LE(j.cpuSeconds, 12.0);
    EXPECT_GE(j.outputs.front().size, 5_MB);
    EXPECT_LE(j.outputs.front().size, 15_MB);
  }
}

TEST(SynthGenerate, RegistersAllSynthTransformations) {
  TransformationCatalog tc;
  registerSynthTransformations(tc);
  EXPECT_TRUE(tc.has("synth_src"));
  EXPECT_TRUE(tc.has("synth_stage"));
  EXPECT_TRUE(tc.has("synth_sink"));
}

}  // namespace
}  // namespace wfs::wf::synth
