#include "prof/wfprof.hpp"

#include <gtest/gtest.h>

namespace wfs::prof {
namespace {

TaskTrace trace(double start, double end, double cpu, double io, Bytes mem) {
  TaskTrace t;
  t.startSeconds = start;
  t.endSeconds = end;
  t.cpuSeconds = cpu;
  t.ioSeconds = io;
  t.peakMemory = mem;
  return t;
}

TEST(WfProf, EmptyProfileIsAllZero) {
  WfProf p;
  const auto prof = p.profile();
  EXPECT_EQ(prof.taskCount, 0u);
  EXPECT_DOUBLE_EQ(prof.cpuFraction, 0.0);
}

TEST(WfProf, IoBoundClassifiedHigh) {
  WfProf p;
  for (int i = 0; i < 10; ++i) p.record(trace(0, 10, 0.4, 9.5, 50_MB));
  const auto prof = p.profile();
  EXPECT_EQ(prof.ioLevel, UsageLevel::kHigh);
  EXPECT_EQ(prof.cpuLevel, UsageLevel::kLow);
  EXPECT_EQ(prof.memoryLevel, UsageLevel::kLow);
}

TEST(WfProf, CpuBoundClassifiedHigh) {
  WfProf p;
  for (int i = 0; i < 10; ++i) p.record(trace(0, 100, 99, 1, 500_MB));
  const auto prof = p.profile();
  EXPECT_EQ(prof.cpuLevel, UsageLevel::kHigh);
  EXPECT_EQ(prof.ioLevel, UsageLevel::kLow);
  EXPECT_EQ(prof.memoryLevel, UsageLevel::kMedium);  // 500 MB peak
}

TEST(WfProf, MemoryHeavyRuntimeClassifiedHigh) {
  WfProf p;
  // 80 % of runtime in >1 GB tasks.
  p.record(trace(0, 80, 40, 30, 3_GB));
  p.record(trace(0, 20, 10, 5, 100_MB));
  const auto prof = p.profile();
  EXPECT_EQ(prof.memoryLevel, UsageLevel::kHigh);
  EXPECT_NEAR(prof.memHeavyRuntimeFraction, 0.8, 1e-9);
}

TEST(WfProf, FractionsComputedOverTaskRuntime) {
  WfProf p;
  p.record(trace(0, 10, 6, 3, 0));
  p.record(trace(10, 20, 2, 7, 0));
  const auto prof = p.profile();
  EXPECT_NEAR(prof.cpuFraction, 0.4, 1e-9);
  EXPECT_NEAR(prof.ioFraction, 0.5, 1e-9);
  EXPECT_EQ(prof.taskCount, 2u);
}

TEST(WfProf, LevelToString) {
  EXPECT_STREQ(toString(UsageLevel::kLow), "Low");
  EXPECT_STREQ(toString(UsageLevel::kMedium), "Medium");
  EXPECT_STREQ(toString(UsageLevel::kHigh), "High");
}

}  // namespace
}  // namespace wfs::prof
