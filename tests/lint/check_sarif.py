#!/usr/bin/env python3
"""Schema-shape check for wfslint's SARIF 2.1.0 output.

Usage: check_sarif.py <wfslint-binary> <repo-root> <fixture>...

Runs the linter twice over the given fixtures with --sarif and asserts:
  - the document parses as JSON and carries the 2.1.0 $schema/version pair,
  - runs[0].tool.driver names the tool and enumerates the full rule table,
  - every result is a well-formed SARIF result whose ruleIndex agrees with
    the rule table and whose location carries a uri + 1-based startLine,
  - the output is byte-identical across runs (the determinism contract).

Exits non-zero with a one-line diagnostic on the first violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA = ("https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/"
          "schemas/sarif-schema-2.1.0.json")


def fail(msg):
    print(f"check_sarif: {msg}", file=sys.stderr)
    sys.exit(1)


def run_once(binary, root, fixtures, out_path):
    cmd = [binary, "--root", root, "--all-rules", "--sarif", str(out_path)]
    cmd += fixtures
    # Exit 1 (findings) is expected on must-fire fixtures; anything else
    # (usage error, failed SARIF write) is a hard failure.
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        fail(f"wfslint exited {proc.returncode}: {proc.stderr.strip()}")
    return out_path.read_bytes()


def check_shape(raw):
    doc = json.loads(raw)
    if doc.get("$schema") != SCHEMA:
        fail(f"$schema mismatch: {doc.get('$schema')!r}")
    if doc.get("version") != "2.1.0":
        fail(f"version mismatch: {doc.get('version')!r}")

    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("runs must be a single-element array")
    driver = runs[0].get("tool", {}).get("driver", {})
    if driver.get("name") != "wfslint":
        fail(f"tool.driver.name mismatch: {driver.get('name')!r}")
    if not driver.get("version"):
        fail("tool.driver.version missing")

    rules = driver.get("rules")
    if not isinstance(rules, list) or not rules:
        fail("tool.driver.rules missing or empty")
    ids = []
    for rule in rules:
        if not rule.get("id"):
            fail(f"rule without id: {rule!r}")
        if not rule.get("shortDescription", {}).get("text"):
            fail(f"rule {rule['id']} lacks shortDescription.text")
        ids.append(rule["id"])
    if len(set(ids)) != len(ids):
        fail("duplicate rule ids in the rule table")

    results = runs[0].get("results")
    if not isinstance(results, list):
        fail("runs[0].results must be an array")
    for res in results:
        rid = res.get("ruleId")
        if not rid:
            fail(f"result without ruleId: {res!r}")
        idx = res.get("ruleIndex")
        if not isinstance(idx, int) or not (0 <= idx < len(ids)) or ids[idx] != rid:
            fail(f"ruleIndex {idx!r} does not point at {rid}")
        if res.get("level") != "error":
            fail(f"result level must be 'error', got {res.get('level')!r}")
        if not res.get("message", {}).get("text"):
            fail(f"result for {rid} lacks message.text")
        locs = res.get("locations")
        if not isinstance(locs, list) or len(locs) != 1:
            fail(f"result for {rid} must carry exactly one location")
        phys = locs[0].get("physicalLocation", {})
        if not phys.get("artifactLocation", {}).get("uri"):
            fail(f"result for {rid} lacks artifactLocation.uri")
        start = phys.get("region", {}).get("startLine")
        if not isinstance(start, int) or start < 1:
            fail(f"result for {rid} has bad startLine {start!r}")
    return len(results)


def main():
    argv = sys.argv[1:]
    expect_empty = "--expect-empty" in argv
    argv = [a for a in argv if a != "--expect-empty"]
    if len(argv) < 3:
        fail("usage: check_sarif.py [--expect-empty] <wfslint-binary> <repo-root> <fixture>...")
    binary, root, fixtures = argv[0], argv[1], argv[2:]

    with tempfile.TemporaryDirectory() as tmp:
        first = run_once(binary, root, fixtures, Path(tmp) / "a.sarif")
        second = run_once(binary, root, fixtures, Path(tmp) / "b.sarif")
    if first != second:
        fail("SARIF output differs between identical runs")

    n = check_shape(first)
    if expect_empty and n != 0:
        fail(f"expected an empty results array, got {n}")
    if not expect_empty and n == 0:
        fail("expected at least one result from the must-fire fixtures")

    print(f"check_sarif: OK ({n} results, deterministic, schema shape valid)")


if __name__ == "__main__":
    main()
