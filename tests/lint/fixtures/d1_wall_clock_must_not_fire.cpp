// wfslint fixture — D1-wall-clock must stay silent: simulated time comes
// from the event queue, and near-miss tokens must not trip the regexes.
struct Sim {
  double nowSeconds = 0.0;
  double now() const { return nowSeconds; }
};

struct TaskTrace {
  double startSeconds = 0.0;
  double endSeconds = 0.0;
  // `runtime()` contains the letters of time( but is simulation arithmetic.
  double runtime() const { return endSeconds - startSeconds; }
};

double simulatedClock(const Sim& sim, const TaskTrace& t) {
  const char* label = "system_clock";  // string literal, not a clock read
  (void)label;
  double downtime(0.0);  // identifier ending in `time` followed by (
  return sim.now() + t.runtime() + downtime;
}
