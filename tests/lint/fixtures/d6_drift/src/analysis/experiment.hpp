// wfslint fixture — mirror of the ExperimentConfig identity surface.
#pragma once
#include "fault/plan.hpp"

namespace wfs::analysis {

struct ExperimentConfig {
  int app = 0;
  unsigned long long seed = 42;
  int replicas = 1;
  int ecM = 0;
  fault::Spec faults;
};

}  // namespace wfs::analysis
