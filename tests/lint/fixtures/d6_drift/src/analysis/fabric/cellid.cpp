// wfslint fixture — mirror of the cfg-v identity serializer (rule D6).
#include "analysis/experiment.hpp"

#include <string>

namespace wfs::analysis::fabric {

namespace {

std::string canonicalFaultSpec(const fault::Spec& spec) {
  const auto& [enabled, seed] = spec;
  std::string s = "faults-v1;";
  s += enabled ? "1" : "0";
  s += ";" + std::to_string(seed);
  return s;
}

}  // namespace

std::string canonicalConfig(const ExperimentConfig& cfg) {
  const auto& [app, seed, replicas, faults] = cfg;
  std::string s = "cfg-v2;";
  s += std::to_string(app) + ";";
  s += std::to_string(seed) + ";";
  s += std::to_string(replicas) + ";";
  s += canonicalFaultSpec(faults);
  return s;
}

}  // namespace wfs::analysis::fabric
