// wfslint fixture — mirror of the result-cache salt (rule D6 couples it to
// the cfg-v identity version).
#include <string>

namespace wfs::analysis::fabric {

std::string salt() { return "wfs-results-v2"; }

}  // namespace wfs::analysis::fabric
