// wfslint fixture — D9-error-style must stay silent: subsystem-prefixed
// one-line messages, CLI flag complaints, and variable-first messages.
#include <stdexcept>
#include <string>

namespace fixture {

[[noreturn]] inline void die(const std::string& msg);

inline void checks(int nodes, const std::string& path) {
  if (nodes < 1) {
    throw std::invalid_argument("cluster/afr: nodes must be >= 1");  // prefixed: fine
  }
  if (nodes > 512) {
    throw std::runtime_error("wf/engine: too many nodes for one fabric");
  }
  die("--nodes must be a positive integer");  // CLI flag complaint: fine
  die(path + " is not readable");  // variable-first: the variable is the prefix
  throw std::runtime_error("WFS_SETTLE_VERIFY: rate drift on " + path);
}

}  // namespace fixture
