// wfslint fixture — mirror of the fault::Spec identity surface.
#pragma once

namespace wfs::fault {

struct Spec {
  bool enabled = false;
  unsigned long long seed = 0;
};

}  // namespace wfs::fault
