// wfslint fixture — WFS-bad-suppression MUST fire: the short name
// "layering" matches both D5-layering and L-layering, so it covers nothing
// (and does not silence the D5 finding it sits on).
#include <string>

namespace wfs {

class Trace {
 public:
  static Trace& instance();
  void log(const std::string& line);
};

inline void ambient(const std::string& line) {
  // wfslint: allow(layering) ambiguous token, silences neither family
  Trace::instance().log(line);
}

}  // namespace wfs
