// wfslint fixture — D4-float-eq MUST fire: exact comparisons against float
// literals, and accumulation over an unordered range into a double.
#include <numeric>
#include <unordered_set>

bool converged(double residual) {
  return residual == 0.0;  // fires: exact float compare
}

bool notDone(double progress) {
  return 1.0 != progress;  // fires: literal on the left
}

double total(const std::unordered_set<int>& samples) {
  // fires: fold order over an unordered range is platform-defined
  return std::accumulate(samples.begin(), samples.end(), 0.0);
}
