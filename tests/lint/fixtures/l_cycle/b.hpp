// wfslint fixture — second half of the include cycle (see a.hpp).
#pragma once
#include "a.hpp"

inline int fromB() { return 2; }
