// wfslint fixture — L-layering MUST fire: a.hpp and b.hpp include each
// other, so the include graph has a cycle (the ctest case passes both files
// explicitly; resolution is dirname-relative).
#pragma once
#include "b.hpp"

inline int fromA() { return 1; }
