// wfslint fixture — D8-hot-path-alloc MUST fire: heap-allocating
// constructions inside a hot region, plus a stray hot-end marker.
#include <functional>
#include <memory>
#include <string>

namespace fixture {

// wfslint: hot-begin(fixture-hot-loop)
inline int hotLoop(int n) {
  std::string label = "iteration";            // fires: std::string in region
  auto widget = std::make_shared<int>(n);     // fires: make_shared in region
  std::function<int()> thunk = [n] { return n; };  // fires: std::function
  int* scratch = new int[8];                  // fires: raw new
  delete[] scratch;
  return static_cast<int>(label.size()) + *widget + thunk();
}
// wfslint: hot-end

inline void coldPath() {}
// wfslint: hot-end
// ^ fires: hot-end without a matching hot-begin

}  // namespace fixture
