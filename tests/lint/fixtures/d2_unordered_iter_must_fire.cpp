// wfslint fixture — D2-unordered-iter MUST fire: all three iterations feed
// an export-shaped sink and their order is platform-defined.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

struct Exporter {
  std::unordered_map<std::string, int> counters;
  std::unordered_set<std::string> seenPaths;

  std::vector<std::string> dumpJsonl() const {
    std::vector<std::string> lines;
    for (const auto& [key, value] : counters) {  // fires: member map
      lines.push_back(key + ":" + std::to_string(value));
    }
    for (const auto& path : seenPaths) {  // fires: member set
      lines.push_back(path);
    }
    return lines;
  }
};

int drain(Exporter e) {
  auto grabbed = std::move(e.counters);
  int total = 0;
  for (const auto& kv : grabbed) total += kv.second;  // fires: moved alias
  return total;
}
