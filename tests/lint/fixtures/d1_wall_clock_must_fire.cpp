// wfslint fixture — D1-wall-clock MUST fire on every ambient time/entropy
// read below. Never compiled; consumed by the lint_d1_* ctest cases.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double ambientSeconds() {
  const auto t = std::chrono::system_clock::now();   // fires: wall clock
  const auto s = std::chrono::steady_clock::now();   // fires: monotonic host clock
  (void)t;
  (void)s;
  return static_cast<double>(time(nullptr));         // fires: time()
}

unsigned ambientEntropy() {
  std::random_device rd;                             // fires: fresh entropy
  return rd() + static_cast<unsigned>(std::rand());  // fires: C rand
}
