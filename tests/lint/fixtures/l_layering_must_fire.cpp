// wfslint fixture — L-layering MUST fire when this file is classified as
// living in src/simcore (the ctest case passes --treat-as src/simcore/x.cpp):
// the bottom layer may not include anything stacked above it, and the layer
// of an unresolved target is read off the include string itself.
#include "storage/base/storage_system.hpp"  // fires under src/simcore
#include "wf/engine.hpp"                    // fires under src/simcore

// A commented-out include must stay dead:
// #include "analysis/sweep.hpp"

// System headers carry no layer:
#include <vector>

int bottomLayer() { return 0; }
