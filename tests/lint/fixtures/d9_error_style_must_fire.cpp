// wfslint fixture — D9-error-style MUST fire: unprefixed and multi-line
// throw/die() messages. Runs with --all-rules (D9 guards library code only).
#include <stdexcept>
#include <string>

namespace fixture {

[[noreturn]] inline void die(const std::string& msg);

inline void checks(int nodes) {
  if (nodes < 1) {
    throw std::invalid_argument("nodes must be >= 1");  // fires: no subsystem prefix
  }
  if (nodes > 512) {
    // fires twice: no prefix, and the message spans multiple lines
    throw std::runtime_error("too many nodes\nsecond line of the message");
  }
  die("something went wrong");  // fires: no subsystem prefix
}

}  // namespace fixture
