// wfslint fixture — D8-hot-path-alloc MUST fire: per-call allocations
// sneaking back into the arena/SoA settle and ready-scan region shapes
// (mirrors src/net/flow_network.cpp flow-settle and src/wf/engine.cpp
// ready-scan, which run per batch flush / per job completion).
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Slab {
  std::vector<double> remaining;
  std::vector<double> rate;
  std::vector<std::uint32_t> mark;
};

// wfslint: hot-begin(fixture-flow-settle) runs once per same-timestamp batch
inline double settleBatch(Slab& s, std::uint32_t epoch) {
  std::ostringstream trace;                        // fires: ostringstream in region
  double total = 0;
  std::unordered_map<std::uint32_t, double> seen;  // fires: hash table in region
  for (std::size_t i = 0; i < s.remaining.size(); ++i) {
    if (s.mark[i] != epoch) continue;
    total += s.rate[i];
    seen[static_cast<std::uint32_t>(i)] = s.rate[i];
    trace << i << ":" << s.rate[i] << " ";
  }
  std::string rendered = trace.str();              // fires: std::string in region
  return total + static_cast<double>(rendered.size() + seen.size());
}
// wfslint: hot-end

// wfslint: hot-begin(fixture-ready-scan) runs after every job completion
inline int readyScan(const std::vector<int>& indegree) {
  auto* scratch = new int[indegree.size()];        // fires: raw new in region
  int ready = 0;
  for (std::size_t i = 0; i < indegree.size(); ++i) {
    scratch[i] = indegree[i];
    if (indegree[i] == 0) ++ready;
  }
  delete[] scratch;
  return ready;
}
// wfslint: hot-end

}  // namespace fixture
