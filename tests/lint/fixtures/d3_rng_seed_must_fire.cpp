// wfslint fixture — D3-rng-seed MUST fire: libstdc++ engines/distributions
// and literal-seeded project streams all bypass per-concern forking.
// (Run with --all-rules: D3 scopes to library code in normal operation.)
#include <random>

namespace sim {
class Rng {
 public:
  explicit Rng(unsigned long long seed) : s_{seed} {}
  unsigned long long s_;
};
}  // namespace sim

double sample() {
  std::mt19937 gen(42);                            // fires: libstdc++ engine
  std::uniform_real_distribution<double> u(0, 1);  // fires: distribution
  return u(gen);
}

sim::Rng hiddenStream() {
  sim::Rng rng{12345};  // fires: literal seed
  return rng;
}
