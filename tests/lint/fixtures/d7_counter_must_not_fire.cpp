// wfslint fixture — D7-counter-monotonic must stay silent: counters only
// accumulate, zeroing lives in reset(), and reads/comparisons are free.
#include <cstdint>

namespace fixture {

struct StorageMetrics {
  std::uint64_t writeOps = 0;
  std::uint64_t bytesWritten = 0;

  void reset() {
    writeOps = 0;      // sanctioned: zeroing inside reset()
    bytesWritten = 0;  // sanctioned: zeroing inside reset()
  }
};

inline std::uint64_t wellBehaved(StorageMetrics& m) {
  m.writeOps += 1;      // accumulate: fine
  m.bytesWritten += 4096;
  ++m.writeOps;         // increment: fine
  m.writeOps++;
  if (m.writeOps == 3) m.reset();
  // A local named like a counter is not a member access:
  std::uint64_t writeOps = 0;
  writeOps -= 0;
  return m.bytesWritten + writeOps;  // read: fine
}

}  // namespace fixture
