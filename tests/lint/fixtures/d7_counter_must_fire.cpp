// wfslint fixture — D7-counter-monotonic MUST fire: the ledger structs'
// counters are decremented / reassigned outside a reset(). The counter set
// is collected from the struct definitions in the same scan, so this file
// is self-contained. Runs with --all-rules (D7 guards library code only).
#include <cstdint>

namespace fixture {

struct LayerMetrics {
  std::uint64_t readOps = 0;
  std::uint64_t cacheHits = 0;
  double busySeconds = 0.0;
};

struct FaultOutcome {
  bool enabled = false;
  std::uint64_t crashes = 0;
};

inline void mangle(LayerMetrics& m, FaultOutcome& out) {
  m.readOps -= 1;        // fires: decrement
  m.cacheHits = 7;       // fires: reassignment outside reset()
  m.busySeconds *= 0.5;  // fires: compound write that is not +=
  --out.crashes;         // fires: prefix decrement
  out.enabled = true;    // silent: not a counter (bool flag)
}

}  // namespace fixture
