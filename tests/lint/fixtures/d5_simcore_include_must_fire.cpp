// wfslint fixture — D5-layering MUST fire when this file is classified as
// living in src/simcore (the ctest case passes --treat-as src/simcore/x.cpp):
// the bottom layer may not include anything stacked above it.
#include "storage/base/storage_system.hpp"  // fires under src/simcore
#include "wf/engine.hpp"                    // fires under src/simcore

// A commented-out include must stay dead:
// #include "analysis/sweep.hpp"

int bottomLayer() { return 0; }
