// wfslint fixture — D2-unordered-iter must stay silent: membership lookups
// on unordered containers are fine, ordered containers iterate freely, and
// a justified annotation suppresses a deliberate order-free sweep.
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

struct Catalog {
  std::map<std::string, int> ordered;
  std::unordered_set<std::string> membership;

  int sumOrdered() const {
    int total = 0;
    for (const auto& [key, value] : ordered) total += value;  // ordered: fine
    (void)total;
    std::vector<int> sizes{1, 2, 3};
    for (int s : sizes) total += s;  // vector: fine
    return total;
  }

  bool contains(const std::string& key) const {
    return membership.contains(key);  // lookup, not iteration: fine
  }

  int clearAll() {
    int dropped = 0;
    // wfslint: allow(unordered-iter) every element is mutated identically; no order can escape
    for (const auto& key : membership) dropped += static_cast<int>(key.size());
    return dropped;
  }
};
